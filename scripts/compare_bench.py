#!/usr/bin/env python3
"""CI perf-regression gate: diff two `lbsim perf` JSON files.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--max-regression FRACTION]
                     [--tolerance BENCH=FRACTION ...]

Compares per-bench throughput (the last numeric column of each row) of
CURRENT against BASELINE. Exits 1 when any baseline bench regressed by more
than its tolerance or disappeared from CURRENT. New benches only present in
CURRENT are reported but never fail the gate; benches that sped up past their
tolerance are flagged IMPROVED (also passing) so a stale baseline is visible.

Tolerances resolve per row: a --tolerance BENCH=FRACTION flag wins, then a
"tolerance.BENCH" entry in the baseline's metadata block (the committed
baseline carries these for rows whose wall time is too small to hold a 30%
gate — e.g. perf_solver's ~2 ms row), then --max-regression (default 0.30,
i.e. current must keep >= 70% of the baseline throughput).
"""

from __future__ import annotations

import argparse
import json
import sys

TOLERANCE_PREFIX = "tolerance."


def load_doc(path: str) -> tuple[dict[str, float], dict[str, float]]:
    """(bench name -> throughput, bench name -> metadata tolerance)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows: dict[str, float] = {}
    for row in doc.get("rows", []):
        numbers = [c for c in row if isinstance(c, (int, float))]
        strings = [c for c in row if isinstance(c, str)]
        if not numbers or not strings:
            continue
        rows[strings[0]] = float(numbers[-1])
    if not rows:
        raise SystemExit(f"error: no bench rows found in {path}")
    tolerances: dict[str, float] = {}
    for key, value in doc.get("metadata", {}).items():
        if key.startswith(TOLERANCE_PREFIX):
            tolerances[key[len(TOLERANCE_PREFIX):]] = parse_fraction(key, value)
    return rows, tolerances


def parse_fraction(label: str, value: object) -> float:
    try:
        fraction = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise SystemExit(f"error: tolerance {label!r} is not a number: {value!r}")
    if not 0.0 <= fraction < 1.0:
        raise SystemExit(f"error: tolerance {label!r} must be in [0, 1): {fraction}")
    return fraction


def parse_tolerance_flag(spec: str) -> tuple[str, float]:
    name, sep, value = spec.partition("=")
    if not sep or not name:
        raise SystemExit(f"error: --tolerance expects BENCH=FRACTION, got {spec!r}")
    return name, parse_fraction(name, value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="default tolerated fractional throughput drop per bench (default 0.30)",
    )
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="BENCH=FRACTION",
        help="per-bench override of --max-regression (repeatable; wins over the "
        "baseline's tolerance.BENCH metadata)",
    )
    args = parser.parse_args()

    baseline, tolerances = load_doc(args.baseline)
    current, _ = load_doc(args.current)
    for spec in args.tolerance:
        name, fraction = parse_tolerance_flag(spec)
        tolerances[name] = fraction

    width = max(len(name) for name in baseline | current)
    header = (
        f"{'bench':<{width}}  {'baseline/s':>12}  {'current/s':>12}  {'ratio':>7}"
        f"  {'floor':>6}  verdict"
    )
    print(header)
    print("-" * len(header))

    failures = []
    improved = 0
    for name in sorted(baseline):
        base = baseline[name]
        tolerance = tolerances.get(name, args.max_regression)
        floor = 1.0 - tolerance
        if name not in current:
            print(
                f"{name:<{width}}  {base:>12.1f}  {'-':>12}  {'-':>7}  {floor:>6.2f}"
                "  MISSING"
            )
            failures.append(f"{name}: missing from {args.current}")
            continue
        now = current[name]
        ratio = now / base if base > 0 else 1.0
        if ratio < floor:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {ratio:.3f}x of baseline (floor {floor:.2f}x)"
            )
        elif ratio > 1.0 + tolerance:
            # Outside the noise band on the good side: not a failure, but the
            # committed baseline understates the tree and deserves a refresh.
            verdict = "IMPROVED"
            improved += 1
        else:
            verdict = "ok"
        print(
            f"{name:<{width}}  {base:>12.1f}  {now:>12.1f}  {ratio:>7.3f}"
            f"  {floor:>6.2f}  {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(
            f"{name:<{width}}  {'-':>12}  {current[name]:>12.1f}  {'-':>7}  {'-':>6}  new"
        )

    if failures:
        print(f"\nperf gate FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    summary = "\nperf gate passed: no bench below its floor"
    if improved:
        summary += f" ({improved} improved past tolerance; consider refreshing the baseline)"
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
