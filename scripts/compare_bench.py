#!/usr/bin/env python3
"""CI perf-regression gate: diff two `lbsim perf` JSON files.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--max-regression FRACTION]

Compares per-bench throughput (the last numeric column of each row) of
CURRENT against BASELINE. Exits 1 when any baseline bench regressed by more
than --max-regression (default 0.30, i.e. current must keep >= 70% of the
baseline throughput) or disappeared from CURRENT. New benches only present in
CURRENT are reported but never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_rows(path: str) -> dict[str, float]:
    """bench name -> throughput (last numeric cell of the row)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = {}
    for row in doc.get("rows", []):
        numbers = [c for c in row if isinstance(c, (int, float))]
        strings = [c for c in row if isinstance(c, str)]
        if not numbers or not strings:
            continue
        rows[strings[0]] = float(numbers[-1])
    if not rows:
        raise SystemExit(f"error: no bench rows found in {path}")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop per bench (default 0.30)",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    floor = 1.0 - args.max_regression

    width = max(len(name) for name in baseline | current)
    header = f"{'bench':<{width}}  {'baseline/s':>12}  {'current/s':>12}  {'ratio':>7}  verdict"
    print(header)
    print("-" * len(header))

    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            print(f"{name:<{width}}  {base:>12.1f}  {'-':>12}  {'-':>7}  MISSING")
            failures.append(f"{name}: missing from {args.current}")
            continue
        now = current[name]
        ratio = now / base if base > 0 else 1.0
        verdict = "ok"
        if ratio < floor:
            verdict = "REGRESSED"
            failures.append(f"{name}: {ratio:.3f}x of baseline (floor {floor:.2f}x)")
        print(f"{name:<{width}}  {base:>12.1f}  {now:>12.1f}  {ratio:>7.3f}  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'-':>12}  {current[name]:>12.1f}  {'-':>7}  new")

    if failures:
        print(f"\nperf gate FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: no bench below {floor:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
