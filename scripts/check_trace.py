#!/usr/bin/env python3
"""CI smoke validator for lbsim observability artifacts.

Usage:
    check_trace.py TRACE.jsonl [--metrics METRICS.json]
                   [--expect-kind KIND=COUNT ...]

Validates a `lbsim run --trace=FILE` JSONL export structurally:

  - the optional first line is a `{"meta": {...}}` header carrying the
    scenario name and seed;
  - every record line is a JSON object with exactly the fixed record fields
    (t, kind, node, peer, count, payload) of the right types and ranges;
  - every `kind` is one of the known kind names;
  - replications are delimited by `rep_begin` markers with strictly
    increasing replication indices, and simulation time never decreases
    within a replication (each replication restarts at t = 0).

With --metrics it also checks a `--metrics=FILE` dump: a top-level object
with a "metadata" stamp (seed + git revision keys present) and a "metrics"
object holding the counters/gauges/histograms sections.

Exits 1 with a per-violation report on the first malformed artifact; prints
a one-line summary (record count, replication count, kinds seen) on success.
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_KINDS = {
    "rep_begin",
    "task_arrive",
    "service_start",
    "task_complete",
    "transfer_send",
    "transfer_deliver",
    "fail",
    "recover",
    "env_transition",
    "channel_state",
    "state_packet_lost",
    "policy_decision",
    "inject",
}

RECORD_FIELDS = {"t", "kind", "node", "peer", "count", "payload"}

INT32_MIN, INT32_MAX = -(2**31), 2**31 - 1
UINT32_MAX = 2**32 - 1
UINT64_MAX = 2**64 - 1


def check_record(obj: dict, line_no: int, errors: list[str]) -> None:
    fields = set(obj)
    if fields != RECORD_FIELDS:
        errors.append(
            f"line {line_no}: fields {sorted(fields)} != expected {sorted(RECORD_FIELDS)}"
        )
        return
    if not isinstance(obj["t"], (int, float)):
        errors.append(f"line {line_no}: 't' is not a number")
    if obj["kind"] not in KNOWN_KINDS:
        errors.append(f"line {line_no}: unknown kind {obj['kind']!r}")
    for key, lo, hi in (
        ("node", INT32_MIN, INT32_MAX),
        ("peer", INT32_MIN, INT32_MAX),
        ("count", 0, UINT32_MAX),
        ("payload", 0, UINT64_MAX),
    ):
        value = obj[key]
        if not isinstance(value, int) or isinstance(value, bool) or not lo <= value <= hi:
            errors.append(f"line {line_no}: {key}={value!r} outside {key} range")


def check_trace(path: str, errors: list[str]) -> tuple[int, int, dict[str, int]]:
    """(record count, replication count, per-kind counts)."""
    records = 0
    reps = 0
    last_rep_index = -1
    last_time = 0.0
    kinds: dict[str, int] = {}
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                errors.append(f"line {line_no}: not valid JSON ({err})")
                continue
            if line_no == 1 and set(obj) == {"meta"}:
                meta = obj["meta"]
                for key in ("scenario", "seed"):
                    if key not in meta:
                        errors.append(f"line 1: meta header missing {key!r}")
                continue
            check_record(obj, line_no, errors)
            if errors:
                continue
            records += 1
            kinds[obj["kind"]] = kinds.get(obj["kind"], 0) + 1
            if obj["kind"] == "rep_begin":
                reps += 1
                if obj["payload"] <= last_rep_index:
                    errors.append(
                        f"line {line_no}: rep_begin index {obj['payload']} not increasing"
                    )
                last_rep_index = obj["payload"]
                last_time = 0.0
            elif obj["t"] < last_time:
                errors.append(
                    f"line {line_no}: time {obj['t']} decreases within replication "
                    f"{last_rep_index} (previous {last_time})"
                )
            last_time = max(last_time, obj["t"])
    if records == 0:
        errors.append(f"{path}: no trace records")
    elif reps == 0:
        errors.append(f"{path}: no rep_begin markers")
    return records, reps, kinds


def check_metrics(path: str, errors: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        errors.append(f"{path}: unreadable metrics JSON ({err})")
        return
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        errors.append(f"{path}: missing 'metadata' object")
    else:
        for key in ("seed", "git"):
            if key not in metadata:
                errors.append(f"{path}: metadata missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(f"{path}: missing 'metrics' object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                errors.append(f"{path}: metrics missing {section!r} section")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace from lbsim run --trace=FILE")
    parser.add_argument("--metrics", help="JSON dump from lbsim run --metrics=FILE")
    parser.add_argument(
        "--expect-kind",
        action="append",
        default=[],
        metavar="KIND=COUNT",
        help="require exactly COUNT records of KIND (repeatable)",
    )
    args = parser.parse_args(argv)

    errors: list[str] = []
    records, reps, kinds = check_trace(args.trace, errors)
    for spec in args.expect_kind:
        kind, _, want = spec.partition("=")
        if kind not in KNOWN_KINDS or not want.isdigit():
            errors.append(f"--expect-kind {spec!r}: malformed (want KIND=COUNT)")
        elif kinds.get(kind, 0) != int(want):
            errors.append(
                f"{args.trace}: expected {want} {kind!r} records, found {kinds.get(kind, 0)}"
            )
    if args.metrics:
        check_metrics(args.metrics, errors)

    if errors:
        print(f"trace check FAILED ({len(errors)}):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    seen = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
    print(f"trace check passed: {records} records over {reps} replications ({seen})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
