"""Unit tests for compare_bench.py (run via `python3 -m unittest` or ctest).

Covers the verdict paths of the gate: ok, REGRESSED (exit 1), MISSING
(exit 1), IMPROVED (exit 0), new-row (exit 0), and per-row tolerance
resolution from both the baseline metadata and the --tolerance flag.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compare_bench  # noqa: E402


def bench_doc(rows: dict[str, float], metadata: dict[str, str] | None = None) -> dict:
    """A minimal `lbsim perf` JSON document: [name, wall_ms, work, throughput]."""
    return {
        "metadata": metadata or {},
        "columns": ["bench", "wall_ms", "work", "throughput_per_s"],
        "rows": [[name, 1.0, "work", value] for name, value in rows.items()],
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self) -> None:
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name: str, doc: dict) -> str:
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def run_gate(self, baseline: dict, current: dict, *flags: str) -> tuple[int, str, str]:
        argv = [
            "compare_bench.py",
            self.write("baseline.json", baseline),
            self.write("current.json", current),
            *flags,
        ]
        out, err = io.StringIO(), io.StringIO()
        old_argv, sys.argv = sys.argv, argv
        try:
            with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
                code = compare_bench.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue(), err.getvalue()

    def test_within_tolerance_passes(self) -> None:
        code, out, err = self.run_gate(
            bench_doc({"perf_mc": 1000.0}), bench_doc({"perf_mc": 800.0})
        )
        self.assertEqual(code, 0, err)
        self.assertIn("ok", out)
        self.assertIn("perf gate passed", out)

    def test_regression_fails(self) -> None:
        code, out, err = self.run_gate(
            bench_doc({"perf_mc": 1000.0}), bench_doc({"perf_mc": 500.0})
        )
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        self.assertIn("perf gate FAILED", err)

    def test_missing_row_fails(self) -> None:
        code, out, err = self.run_gate(
            bench_doc({"perf_mc": 1000.0, "perf_des": 500.0}),
            bench_doc({"perf_mc": 1000.0}),
        )
        self.assertEqual(code, 1)
        self.assertIn("MISSING", out)
        self.assertIn("perf_des: missing", err)

    def test_new_row_reported_but_passes(self) -> None:
        code, out, _ = self.run_gate(
            bench_doc({"perf_mc": 1000.0}),
            bench_doc({"perf_mc": 1000.0, "perf_mc_vr": 2000.0}),
        )
        self.assertEqual(code, 0)
        self.assertIn("new", out)

    def test_improvement_flagged_but_passes(self) -> None:
        code, out, _ = self.run_gate(
            bench_doc({"perf_mc": 1000.0}), bench_doc({"perf_mc": 1500.0})
        )
        self.assertEqual(code, 0)
        self.assertIn("IMPROVED", out)
        self.assertIn("consider refreshing the baseline", out)

    def test_metadata_tolerance_rescues_jittery_row(self) -> None:
        # perf_solver's ~2 ms wall time jitters far beyond 30%; a 60% metadata
        # tolerance in the committed baseline must widen ONLY that row's gate.
        baseline = bench_doc(
            {"perf_solver": 700.0, "perf_mc": 1000.0},
            metadata={"tolerance.perf_solver": "0.60"},
        )
        current = bench_doc({"perf_solver": 350.0, "perf_mc": 1000.0})
        code, out, _ = self.run_gate(baseline, current)
        self.assertEqual(code, 0, out)
        # The same 50% drop on a default-tolerance row still fails.
        current = bench_doc({"perf_solver": 700.0, "perf_mc": 500.0})
        code, out, _ = self.run_gate(baseline, current)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)

    def test_flag_tolerance_wins_over_metadata(self) -> None:
        baseline = bench_doc(
            {"perf_solver": 1000.0}, metadata={"tolerance.perf_solver": "0.60"}
        )
        current = bench_doc({"perf_solver": 500.0})
        code, _, _ = self.run_gate(baseline, current, "--tolerance", "perf_solver=0.10")
        self.assertEqual(code, 1)

    def test_bad_tolerance_flag_rejected(self) -> None:
        with self.assertRaises(SystemExit):
            compare_bench.parse_tolerance_flag("perf_solver")
        with self.assertRaises(SystemExit):
            compare_bench.parse_tolerance_flag("perf_solver=1.5")
        with self.assertRaises(SystemExit):
            compare_bench.parse_tolerance_flag("=0.3")

    def test_empty_rows_rejected(self) -> None:
        with self.assertRaises(SystemExit):
            self.run_gate({"metadata": {}, "rows": []}, bench_doc({"perf_mc": 1.0}))


if __name__ == "__main__":
    unittest.main()
