#include "util/cli.hpp"

#include <climits>
#include <cstdlib>
#include <stdexcept>

#include "util/error.hpp"

namespace lbsim::util {
namespace {

bool looks_like_flag(const std::string& s) { return s.rfind("--", 0) == 0 && s.size() > 2; }

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  LBSIM_REQUIRE(argc >= 1 && argv != nullptr, "argc/argv must describe a program invocation");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      LBSIM_REQUIRE(!key.empty(), "malformed flag '" << arg << "'");
      values_[key] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) != 0; }

std::optional<std::string> CliArgs::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    LBSIM_REQUIRE(pos == v->size(), "trailing characters in --" << key << "=" << *v);
    return out;
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got '" + *v + "'");
  }
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  const long long wide = get_int64(key, fallback);
  LBSIM_REQUIRE(wide >= INT_MIN && wide <= INT_MAX, "--" << key << " out of int range");
  return static_cast<int>(wide);
}

long long CliArgs::get_int64(const std::string& key, long long fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(*v, &pos);
    LBSIM_REQUIRE(pos == v->size(), "trailing characters in --" << key << "=" << *v);
    return out;
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("flag --" + key + " expects an integer, got '" + *v + "'");
  }
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("flag --" + key + " expects a boolean, got '" + *v + "'");
}

}  // namespace lbsim::util
