#pragma once
/// \file
/// Minimal leveled logger. Global level defaults to `warn` so library code may log
/// diagnostics without polluting test or bench output.

#include <iostream>
#include <sstream>
#include <string>

namespace lbsim::util {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Process-wide log level. Reads and writes are atomic (relaxed), so mutating
/// it while worker threads log is safe — records already in flight may still
/// use the previous threshold, but there is no data race.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "trace|debug|info|warn|error|off"; throws std::invalid_argument otherwise.
LogLevel parse_log_level(const std::string& name);

/// Writes one formatted record to stderr if `level` passes the global threshold.
void log_record(LogLevel level, const std::string& component, const std::string& message);

}  // namespace lbsim::util

#define LBSIM_LOG(level, component, expr)                                      \
  do {                                                                         \
    if (static_cast<int>(level) >= static_cast<int>(::lbsim::util::log_level())) { \
      std::ostringstream lbsim_log_os;                                         \
      lbsim_log_os << expr;                                                    \
      ::lbsim::util::log_record(level, component, lbsim_log_os.str());         \
    }                                                                          \
  } while (false)

#define LBSIM_DEBUG(component, expr) LBSIM_LOG(::lbsim::util::LogLevel::debug, component, expr)
#define LBSIM_INFO(component, expr) LBSIM_LOG(::lbsim::util::LogLevel::info, component, expr)
#define LBSIM_WARN(component, expr) LBSIM_LOG(::lbsim::util::LogLevel::warn, component, expr)
