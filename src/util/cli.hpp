#pragma once
/// \file
/// Tiny command-line flag parser used by benches and examples.
///
/// Accepted forms: `--key=value`, `--key value`, and bare `--flag` (boolean true).
/// Unknown positional arguments are collected in order.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lbsim::util {

/// Parsed command line. Copyable value type (CppCoreGuidelines C.10/C.11).
class CliArgs {
 public:
  CliArgs() = default;

  /// Parses argv; throws std::invalid_argument on malformed input (e.g. "--=x").
  CliArgs(int argc, const char* const* argv);

  /// True if `--key` was given in any form.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters: return `fallback` when the flag is absent; throw
  /// std::invalid_argument when present but unparsable or out of the value domain.
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] long long get_int64(const std::string& key, long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Name of the executable (argv[0]) or empty when default-constructed.
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lbsim::util
