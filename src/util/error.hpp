#pragma once
/// \file
/// Contract-checking macros used across the library.
///
/// LBSIM_REQUIRE  — precondition on public API arguments; throws std::invalid_argument.
/// LBSIM_CHECK    — internal invariant; throws std::logic_error.
/// Both stay enabled in release builds: the library is a research instrument and a
/// silently-wrong number is worse than a throw.

#include <sstream>
#include <stdexcept>
#include <string>

namespace lbsim::util {

/// Builds the exception message "<cond> failed at <file>:<line>: <detail>".
[[nodiscard]] std::string contract_message(const char* cond, const char* file, int line,
                                           const std::string& detail);

[[noreturn]] void throw_invalid_argument(const char* cond, const char* file, int line,
                                         const std::string& detail);
[[noreturn]] void throw_logic_error(const char* cond, const char* file, int line,
                                    const std::string& detail);

}  // namespace lbsim::util

#define LBSIM_REQUIRE(cond, detail)                                                  \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      ::lbsim::util::throw_invalid_argument(#cond, __FILE__, __LINE__,               \
                                            (std::ostringstream{} << detail).str()); \
    }                                                                                \
  } while (false)

#define LBSIM_CHECK(cond, detail)                                                \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::lbsim::util::throw_logic_error(#cond, __FILE__, __LINE__,                \
                                       (std::ostringstream{} << detail).str()); \
    }                                                                            \
  } while (false)
