#include "util/error.hpp"

namespace lbsim::util {

std::string contract_message(const char* cond, const char* file, int line,
                             const std::string& detail) {
  std::ostringstream os;
  os << cond << " failed at " << file << ':' << line;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

void throw_invalid_argument(const char* cond, const char* file, int line,
                            const std::string& detail) {
  throw std::invalid_argument(contract_message(cond, file, line, detail));
}

void throw_logic_error(const char* cond, const char* file, int line,
                       const std::string& detail) {
  throw std::logic_error(contract_message(cond, file, line, detail));
}

}  // namespace lbsim::util
