#pragma once
/// \file
/// Fixed-width text tables and CSV emission for bench/report output.

#include <iosfwd>
#include <string>
#include <vector>

namespace lbsim::util {

/// Formats `value` with `digits` fractional digits (fixed notation).
[[nodiscard]] std::string format_double(double value, int digits);

/// A small column-aligned text table: set a header once, append rows, stream it.
/// Cells are strings; use `format_double` / `std::to_string` to fill them.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }

  /// Renders with column alignment, a header underline, and 2-space gutters.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV cell when needed.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace lbsim::util
