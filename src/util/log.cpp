#include "util/log.hpp"

#include <atomic>
#include <mutex>

#include "util/error.hpp"

namespace lbsim::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::trace;
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  throw std::invalid_argument("unknown log level '" + name + "'");
}

void log_record(LogLevel level, const std::string& component, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << '[' << level_name(level) << "] " << component << ": " << message << '\n';
}

}  // namespace lbsim::util
