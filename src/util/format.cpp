#include "util/format.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace lbsim::util {

std::string format_double(double value, int digits) {
  LBSIM_REQUIRE(digits >= 0 && digits <= 17, "digits=" << digits);
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  LBSIM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  LBSIM_REQUIRE(row.size() == header_.size(),
                "row has " << row.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      os << (c + 1 == cells.size() ? "" : "  ");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 == width.size() ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csv_escape(cells[c]) << (c + 1 == cells.size() ? "" : ",");
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace lbsim::util
