#pragma once
/// \file
/// Small numeric helpers shared by the solvers and statistics code.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace lbsim::util {

/// Full-match strtod: the entire string must parse as a finite-representable
/// double (empty input, trailing junk, and ERANGE all yield nullopt). The one
/// definition behind the config/schedule/sweep-axis text parsers, so their
/// accept/reject behavior cannot drift apart.
[[nodiscard]] std::optional<double> try_parse_double(const std::string& text) noexcept;

/// `count` evenly spaced values from `lo` to `hi` inclusive (count >= 2), or {lo} if count==1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Compensated (Kahan) summation; exact enough for long Monte-Carlo accumulations.
class KahanSum {
 public:
  void add(double x) noexcept;
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double carry_ = 0.0;
};

/// Relative difference |a-b| / max(|a|,|b|,floor); 0 when both are ~0.
[[nodiscard]] double relative_difference(double a, double b, double floor = 1e-12) noexcept;

/// Trapezoidal integral of samples y on a uniform grid with spacing dx.
[[nodiscard]] double trapezoid(const std::vector<double>& y, double dx);

/// Binomial coefficient as double (exact for the small arguments used by the
/// Erlang-race oracle; returns +inf on overflow of double).
[[nodiscard]] double binomial_coefficient(unsigned n, unsigned k) noexcept;

}  // namespace lbsim::util
