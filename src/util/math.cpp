#include "util/math.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace lbsim::util {

std::optional<double> try_parse_double(const std::string& text) noexcept {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    // strtod accepts "inf"/"nan" without ERANGE; neither is a usable config
    // value (NaN additionally defeats every downstream range check).
    return std::nullopt;
  }
  return value;
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  LBSIM_REQUIRE(count >= 1, "linspace needs at least one point");
  if (count == 1) return {lo};
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid drift on the final point
  return out;
}

void KahanSum::add(double x) noexcept {
  const double y = x - carry_;
  const double t = sum_ + y;
  carry_ = (t - sum_) - y;
  sum_ = t;
}

double relative_difference(double a, double b, double floor) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / scale;
}

double trapezoid(const std::vector<double>& y, double dx) {
  LBSIM_REQUIRE(dx > 0.0, "dx=" << dx);
  if (y.size() < 2) return 0.0;
  KahanSum acc;
  for (std::size_t i = 0; i + 1 < y.size(); ++i) acc.add(0.5 * (y[i] + y[i + 1]) * dx);
  return acc.value();
}

double binomial_coefficient(unsigned n, unsigned k) noexcept {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

}  // namespace lbsim::util
