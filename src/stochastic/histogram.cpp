#include "stochastic/histogram.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lbsim::stoch {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  LBSIM_REQUIRE(bins >= 1, "bins=" << bins);
  LBSIM_REQUIRE(hi > lo, "range [" << lo << ", " << hi << ")");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (x - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
  ++in_range_;
}

void Histogram::add_all(const std::vector<double>& xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bin_center(std::size_t i) const {
  LBSIM_REQUIRE(i < counts_.size(), "bin " << i);
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::size_t Histogram::count(std::size_t i) const {
  LBSIM_REQUIRE(i < counts_.size(), "bin " << i);
  return counts_[i];
}

double Histogram::density(std::size_t i) const {
  LBSIM_REQUIRE(i < counts_.size(), "bin " << i);
  if (in_range_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(in_range_) * width_);
}

std::vector<double> Histogram::densities() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = density(i);
  return out;
}

}  // namespace lbsim::stoch
