#pragma once
/// \file
/// Fixed-bin histogram with probability-density normalisation, used to reproduce
/// the empirical pdfs of Figs. 1 and 2.

#include <cstddef>
#include <string>
#include <vector>

namespace lbsim::stoch {

class Histogram {
 public:
  /// Bins [lo, hi) split into `bins` equal cells; samples outside are counted
  /// in underflow/overflow and excluded from the density.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(const std::vector<double>& xs) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t count(std::size_t i) const;
  [[nodiscard]] std::size_t total_in_range() const noexcept { return in_range_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }

  /// Density estimate at bin i: count / (total_in_range * bin_width); 0 if empty.
  [[nodiscard]] double density(std::size_t i) const;

  /// All bin densities (integrates to ~1 over [lo, hi) when overflow is negligible).
  [[nodiscard]] std::vector<double> densities() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t in_range_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace lbsim::stoch
