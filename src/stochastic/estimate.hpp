#pragma once
/// \file
/// Online parameter estimation. The paper assumes the service, failure and
/// recovery rates are known; a deployed balancer has to learn them from its
/// own event history. These estimators feed the policies' NodeParams with
/// maximum-likelihood rates and expose confidence information so callers can
/// tell "estimated" from "known".

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::stoch {

/// Result of a pilot-calibrated linear control-variate adjustment (the
/// estimator layer of the MC engine; see docs/ARCHITECTURE.md).
struct ControlVariateEstimate {
  bool ok = false;          ///< false: pilot had no usable signal (Var(Y) ~ 0)
  std::size_t pilot = 0;    ///< observations consumed to calibrate beta only
  std::size_t evaluated = 0;  ///< observations behind mean / std_error
  double beta = 0.0;        ///< fitted coefficient Cov(T, Y) / Var(Y)
  double mean = 0.0;        ///< mean of the adjusted samples T - beta (Y - mu)
  double std_error = 0.0;   ///< standard error of that mean
  double variance = 0.0;    ///< per-observation variance of the adjusted samples
};

/// Pilot-block control variate: the first `pilot` pairs calibrate
/// beta = Cov(T, Y) / Var(Y); the remaining pairs are adjusted to
/// T_i - beta (Y_i - control_mean) and summarised. Because beta never sees the
/// evaluation block, the adjusted mean is exactly unbiased for E[T] whenever
/// control_mean = E[Y] (Lavenberg & Welch splitting). Requires
/// pilot >= 2 and target.size() >= pilot + 2; `ok` is false when the pilot
/// shows (numerically) zero control variance — the caller should fall back to
/// the plain estimator.
[[nodiscard]] ControlVariateEstimate control_variate_adjust(
    const std::vector<double>& target, const std::vector<double>& control,
    double control_mean, std::size_t pilot);

/// MLE for the rate of an exponential law from observed iid durations:
/// rate-hat = n / sum(x). Streaming, mergeable, O(1) memory.
class ExponentialRateEstimator {
 public:
  /// Records one duration (>= 0; zero-length observations are legal and keep
  /// the estimate finite because the estimator requires sum > 0 to report).
  void observe(double duration);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// MLE of the rate; empty until at least one strictly positive duration.
  [[nodiscard]] std::optional<double> rate() const;

  /// Large-sample 95% interval for the rate: rate * (1 -+ 1.96/sqrt(n)).
  /// Empty until rate() is available.
  [[nodiscard]] std::optional<std::pair<double, double>> rate_ci95() const;

  /// Relative half-width of the CI (1.96/sqrt(n)); +inf with no data.
  [[nodiscard]] double relative_error() const;

  void merge(const ExponentialRateEstimator& other) noexcept;

 private:
  std::size_t count_ = 0;
  double total_ = 0.0;
};

/// Watches one node's up/down transitions and maintains MLE failure and
/// recovery rates plus the empirical availability. Feed it the node's state
/// changes in time order (same convention as FailureProcess handlers).
class ChurnObserver {
 public:
  /// The node is assumed up at t = start_time.
  explicit ChurnObserver(double start_time = 0.0);

  void observe_failure(double t);
  void observe_recovery(double t);

  /// Closes the current sojourn at time t without a transition (end of the
  /// observation window) and returns the estimates so far. Can be called
  /// repeatedly; it never records a transition.
  [[nodiscard]] markov::NodeParams estimate(double now, double lambda_d) const;

  /// MLE churn rates; empty before the first complete up (resp. down) sojourn.
  [[nodiscard]] std::optional<double> failure_rate() const { return up_times_.rate(); }
  [[nodiscard]] std::optional<double> recovery_rate() const { return down_times_.rate(); }

  /// Fraction of [start, now] spent up (counts the open sojourn).
  [[nodiscard]] double empirical_availability(double now) const;

  [[nodiscard]] std::size_t failures_seen() const noexcept { return up_times_.count(); }

 private:
  double start_time_;
  double last_transition_;
  bool up_ = true;
  double up_accumulated_ = 0.0;
  ExponentialRateEstimator up_times_;    // completed up sojourns -> lambda_f
  ExponentialRateEstimator down_times_;  // completed down sojourns -> lambda_r
};

}  // namespace lbsim::stoch
