#include "stochastic/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lbsim::stoch {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

double ci_half_width(const RunningStats& stats, double z) noexcept {
  return z * stats.std_error();
}

double quantile(std::vector<double> data, double q) {
  std::sort(data.begin(), data.end());
  return quantile_sorted(data, q);
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  LBSIM_REQUIRE(!sorted.empty(), "quantile of empty sample");
  LBSIM_REQUIRE(q >= 0.0 && q <= 1.0, "q=" << q);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  LBSIM_REQUIRE(!sorted_.empty(), "ECDF of empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double ks_distance_to_curve(const Ecdf& ecdf, const std::vector<double>& grid,
                            const std::vector<double>& reference) {
  LBSIM_REQUIRE(grid.size() == reference.size(), "grid/reference size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    worst = std::max(worst, std::fabs(ecdf(grid[i]) - reference[i]));
  }
  return worst;
}

double ks_distance(const Ecdf& a, const Ecdf& b) {
  double worst = 0.0;
  for (const double x : a.sorted_samples()) worst = std::max(worst, std::fabs(a(x) - b(x)));
  for (const double x : b.sorted_samples()) worst = std::max(worst, std::fabs(a(x) - b(x)));
  return worst;
}

}  // namespace lbsim::stoch
