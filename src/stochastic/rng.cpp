#include "stochastic/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lbsim::stoch {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is a fixed point of xoshiro; splitmix cannot produce four zero
  // outputs from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                            0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

RngStream::RngStream(std::uint64_t seed, std::uint64_t stream) noexcept
    // Mix the stream id through splitmix so that (seed, 0) and (seed, 1) start in
    // unrelated regions of the state space even before the long jumps.
    : engine_([&] {
        std::uint64_t sm = stream + 0x632be59bd9b4e019ULL;
        return Xoshiro256pp(seed ^ splitmix64(sm));
      }()) {
  const std::uint64_t jumps = stream % 8;  // extra decorrelation, bounded cost
  for (std::uint64_t i = 0; i < jumps; ++i) engine_.long_jump();
}

double RngStream::uniform01() noexcept {
  const double u = static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  if (!antithetic_) return u;
  // Mirror into (0, 1]; fold the single point 1.0 (from u = 0) back below 1
  // so the contract "in [0, 1)" holds for both modes.
  const double mirrored = 1.0 - u;
  return mirrored < 1.0 ? mirrored : 1.0 - 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double RngStream::exponential(double rate) {
  LBSIM_REQUIRE(rate > 0.0, "exponential rate must be positive, got " << rate);
  // Inverse CDF on (0,1]: -log(1-U) avoids log(0) because uniform01() < 1.
  return -std::log1p(-uniform01()) / rate;
}

std::uint64_t RngStream::uniform_index(std::uint64_t bound) {
  LBSIM_REQUIRE(bound >= 1, "uniform_index bound must be >= 1");
  // Lemire multiply-shift with rejection for exact uniformity.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    const std::uint64_t x = engine_();
    const __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace lbsim::stoch
