#include "stochastic/distributions.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace lbsim::stoch {

Exponential::Exponential(double rate) : rate_(rate) {
  LBSIM_REQUIRE(rate > 0.0, "Exponential rate=" << rate);
}

double Exponential::sample(RngStream& rng) const { return rng.exponential(rate_); }

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "Exponential(rate=" << rate_ << ")";
  return os.str();
}

DistributionPtr Exponential::clone() const { return std::make_unique<Exponential>(*this); }

ShiftedExponential::ShiftedExponential(double shift, double rate) : shift_(shift), rate_(rate) {
  LBSIM_REQUIRE(shift >= 0.0, "shift=" << shift);
  LBSIM_REQUIRE(rate > 0.0, "rate=" << rate);
}

double ShiftedExponential::sample(RngStream& rng) const {
  return shift_ + rng.exponential(rate_);
}

std::string ShiftedExponential::describe() const {
  std::ostringstream os;
  os << "ShiftedExponential(shift=" << shift_ << ", rate=" << rate_ << ")";
  return os.str();
}

DistributionPtr ShiftedExponential::clone() const {
  return std::make_unique<ShiftedExponential>(*this);
}

Erlang::Erlang(unsigned shape, double rate) : shape_(shape), rate_(rate) {
  LBSIM_REQUIRE(shape >= 1, "Erlang shape=" << shape);
  LBSIM_REQUIRE(rate > 0.0, "Erlang rate=" << rate);
}

double Erlang::sample(RngStream& rng) const {
  // Product-of-uniforms form: one log instead of k logs.
  double product = 1.0;
  for (unsigned i = 0; i < shape_; ++i) product *= 1.0 - rng.uniform01();
  return -std::log(product) / rate_;
}

std::string Erlang::describe() const {
  std::ostringstream os;
  os << "Erlang(shape=" << shape_ << ", rate=" << rate_ << ")";
  return os.str();
}

DistributionPtr Erlang::clone() const { return std::make_unique<Erlang>(*this); }

Deterministic::Deterministic(double value) : value_(value) {
  LBSIM_REQUIRE(value >= 0.0, "Deterministic value=" << value);
}

double Deterministic::sample(RngStream& /*rng*/) const { return value_; }

std::string Deterministic::describe() const {
  std::ostringstream os;
  os << "Deterministic(" << value_ << ")";
  return os.str();
}

DistributionPtr Deterministic::clone() const { return std::make_unique<Deterministic>(*this); }

UniformReal::UniformReal(double lo, double hi) : lo_(lo), hi_(hi) {
  LBSIM_REQUIRE(lo >= 0.0 && hi > lo, "UniformReal [" << lo << ", " << hi << ")");
}

double UniformReal::sample(RngStream& rng) const { return rng.uniform(lo_, hi_); }

std::string UniformReal::describe() const {
  std::ostringstream os;
  os << "UniformReal[" << lo_ << ", " << hi_ << ")";
  return os.str();
}

DistributionPtr UniformReal::clone() const { return std::make_unique<UniformReal>(*this); }

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  LBSIM_REQUIRE(shape > 0.0, "Weibull shape=" << shape);
  LBSIM_REQUIRE(scale > 0.0, "Weibull scale=" << scale);
}

double Weibull::sample(RngStream& rng) const {
  // Inverse CDF: scale * (-ln(1-U))^(1/k).
  return scale_ * std::pow(-std::log1p(-rng.uniform01()), 1.0 / shape_);
}

double Weibull::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::describe() const {
  std::ostringstream os;
  os << "Weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

DistributionPtr Weibull::clone() const { return std::make_unique<Weibull>(*this); }

}  // namespace lbsim::stoch
