#pragma once
/// \file
/// Streaming summary statistics, confidence intervals, quantiles, and ECDF/KS
/// utilities used by the Monte-Carlo engine and the validation tests.

#include <cstddef>
#include <vector>

namespace lbsim::stoch {

/// Welford streaming mean/variance accumulator. Regular value type.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when count < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when count < 2.
  [[nodiscard]] double std_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Normal-approximation confidence half-width: z * stderr (z = 1.96 for 95%).
[[nodiscard]] double ci_half_width(const RunningStats& stats, double z = 1.96) noexcept;

/// Linear-interpolation sample quantile (type 7); q in [0,1]; data need not be sorted.
[[nodiscard]] double quantile(std::vector<double> data, double q);

/// Same quantile over data that is already sorted ascending (no copy, no sort);
/// the form the MC engine uses on its sorted sample vector.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

/// Empirical CDF over a fixed sample. Construction sorts a copy.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// P(X <= x) under the empirical measure.
  [[nodiscard]] double operator()(double x) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Kolmogorov–Smirnov distance between an ECDF and a reference CDF sampled on a
/// grid: max_i |ecdf(grid[i]) - reference[i]|. Grid and reference must align.
[[nodiscard]] double ks_distance_to_curve(const Ecdf& ecdf, const std::vector<double>& grid,
                                          const std::vector<double>& reference);

/// Two-sample Kolmogorov–Smirnov statistic.
[[nodiscard]] double ks_distance(const Ecdf& a, const Ecdf& b);

}  // namespace lbsim::stoch
