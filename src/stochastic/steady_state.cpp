#include "stochastic/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace lbsim::stoch {

double lag1_autocorrelation(const std::vector<double>& series) {
  const std::size_t n = series.size();
  if (n < 3) return 0.0;
  double mean = 0.0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = series[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (series[i + 1] - mean);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

std::size_t mser5_truncation(const std::vector<double>& series, double max_fraction) {
  LBSIM_REQUIRE(max_fraction >= 0.0 && max_fraction <= 0.9,
                "mser5 max_fraction " << max_fraction << " outside [0, 0.9]");
  constexpr std::size_t kBlock = 5;
  const std::size_t blocks = series.size() / kBlock;
  if (blocks < 10) return 0;  // too short to diagnose a transient

  std::vector<double> block_means(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < kBlock; ++i) sum += series[b * kBlock + i];
    block_means[b] = sum / static_cast<double>(kBlock);
  }

  // Suffix sums let every candidate truncation be scored in O(1):
  // MSER(d) = var(block_means[d..]) / (m - d)^2, minimised over d.
  std::vector<double> suffix_sum(blocks + 1, 0.0);
  std::vector<double> suffix_sq(blocks + 1, 0.0);
  for (std::size_t b = blocks; b-- > 0;) {
    suffix_sum[b] = suffix_sum[b + 1] + block_means[b];
    suffix_sq[b] = suffix_sq[b + 1] + block_means[b] * block_means[b];
  }

  const std::size_t max_drop =
      static_cast<std::size_t>(max_fraction * static_cast<double>(blocks));
  std::size_t best_d = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= max_drop; ++d) {
    const double m = static_cast<double>(blocks - d);
    if (m < 2.0) break;
    const double mean = suffix_sum[d] / m;
    const double var = std::max(0.0, suffix_sq[d] / m - mean * mean);
    const double score = var / (m * m);
    if (score < best_score) {
      best_score = score;
      best_d = d;
    }
  }
  return best_d * kBlock;
}

namespace {

BatchMeans summarize(std::vector<double> means, std::size_t batch_size,
                     std::size_t observations) {
  BatchMeans out;
  out.batches = means.size();
  out.batch_size = batch_size;
  out.observations = observations;
  double sum = 0.0;
  for (const double m : means) sum += m;
  const double b = static_cast<double>(means.size());
  out.mean = sum / b;
  double ss = 0.0;
  for (const double m : means) {
    const double d = m - out.mean;
    ss += d * d;
  }
  const double var = ss / (b - 1.0);  // between-batch sample variance
  out.std_error = std::sqrt(var / b);
  out.lag1 = lag1_autocorrelation(means);
  out.lag1_gate = 2.576 / std::sqrt(b);
  out.correlated = std::abs(out.lag1) > out.lag1_gate;
  out.means = std::move(means);
  return out;
}

}  // namespace

BatchMeans batch_means(const std::vector<double>& series, std::size_t offset,
                       std::size_t batches) {
  LBSIM_REQUIRE(batches >= 2, "batch_means needs >= 2 batches, got " << batches);
  LBSIM_REQUIRE(offset < series.size(),
                "batch_means offset " << offset << " >= series size " << series.size());
  const std::size_t n = series.size() - offset;
  const std::size_t batch_size = n / batches;
  LBSIM_REQUIRE(batch_size >= 1, "batch_means: " << n << " observations cannot fill "
                                                 << batches << " batches");
  std::vector<double> means(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    const std::size_t start = offset + b * batch_size;
    for (std::size_t i = 0; i < batch_size; ++i) sum += series[start + i];
    means[b] = sum / static_cast<double>(batch_size);
  }
  return summarize(std::move(means), batch_size, batches * batch_size);
}

BatchMeans summarize_batch_means(std::vector<double> means, std::size_t batch_size) {
  LBSIM_REQUIRE(means.size() >= 2,
                "summarize_batch_means needs >= 2 means, got " << means.size());
  const std::size_t observations = means.size() * batch_size;
  return summarize(std::move(means), batch_size, observations);
}

}  // namespace lbsim::stoch
