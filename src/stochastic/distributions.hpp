#pragma once
/// \file
/// Positive-valued delay/service-time distributions behind a small polymorphic
/// interface, so simulators can be configured with the paper's exponential laws
/// or with the ablation alternatives (Erlang, deterministic, Weibull, ...).

#include <memory>
#include <string>

#include "stochastic/rng.hpp"

namespace lbsim::stoch {

/// A nonnegative random variable: sample it, and query its first two moments.
/// Implementations are immutable after construction (safe to share across threads
/// as long as each thread passes its own RngStream).
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate using the caller's stream.
  [[nodiscard]] virtual double sample(RngStream& rng) const = 0;

  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;

  /// Human-readable description, e.g. "Exponential(rate=1.08)".
  [[nodiscard]] virtual std::string describe() const = 0;

  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

/// Exponential(rate); mean 1/rate. The paper's model for service, failure,
/// recovery, and bundle-transfer times.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double sample(RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override { return 1.0 / (rate_ * rate_); }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// shift + Exponential(rate): the paper observes "a slight shift" in the empirical
/// transfer-delay pdf (Fig. 2) before folding it into the exponential parameter.
class ShiftedExponential final : public Distribution {
 public:
  ShiftedExponential(double shift, double rate);
  [[nodiscard]] double sample(RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return shift_ + 1.0 / rate_; }
  [[nodiscard]] double variance() const override { return 1.0 / (rate_ * rate_); }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] double shift() const noexcept { return shift_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double shift_;
  double rate_;
};

/// Erlang(k, rate): sum of k iid exponentials; used by the testbed's per-task
/// bundle-delay model and by the ablation on delay laws.
class Erlang final : public Distribution {
 public:
  Erlang(unsigned shape, double rate);
  [[nodiscard]] double sample(RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return static_cast<double>(shape_) / rate_; }
  [[nodiscard]] double variance() const override {
    return static_cast<double>(shape_) / (rate_ * rate_);
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] unsigned shape() const noexcept { return shape_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  unsigned shape_;
  double rate_;
};

/// Always returns `value` (>= 0). Ablation baseline for "no randomness".
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  [[nodiscard]] double sample(RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return value_; }
  [[nodiscard]] double variance() const override { return 0.0; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double value_;
};

/// Uniform on [lo, hi), 0 <= lo < hi.
class UniformReal final : public Distribution {
 public:
  UniformReal(double lo, double hi);
  [[nodiscard]] double sample(RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Weibull(shape k, scale λ): heavy/light-tailed alternative for churn ablations.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double sample(RngStream& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace lbsim::stoch
