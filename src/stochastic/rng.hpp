#pragma once
/// \file
/// Deterministic, stream-splittable random number generation.
///
/// We implement xoshiro256++ seeded through splitmix64 rather than relying on
/// std::mt19937_64 + std::*_distribution, because (a) the standard distributions are
/// implementation-defined (results would differ across libstdc++/libc++ and break
/// golden tests) and (b) Monte-Carlo replications need cheap independent streams.
/// `RngStream(seed, stream)` yields streams that are independent for distinct
/// (seed, stream) pairs; replication r of experiment e uses stream id (e, r).

#include <cstdint>
#include <limits>

namespace lbsim::stoch {

/// splitmix64 step; used for seeding and for hashing stream ids.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ engine (public-domain algorithm by Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from `seed` via splitmix64 (never all-zero).
  explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to derive parallel streams.
  void long_jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// A named random stream: engine plus convenience variate generators.
/// Distinct (seed, stream) pairs produce statistically independent sequences.
///
/// A stream may be switched into *antithetic* mode: every uniform01-derived
/// variate U is replaced by its mirror 1 - U, so a run driven by the mirrored
/// stream is the antithetic twin of the run driven by the plain stream (same
/// seed/stream id, same number of draws). Raw-bit draws (next_u64,
/// uniform_index) are NOT mirrored — there is no meaningful reflection of a
/// discrete index — so policies drawing indices see identical choices in both
/// twins, which keeps the pair coupling tight.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Switches uniform01-derived variates to mirrored (1 - U) draws. The
  /// underlying bit sequence is unchanged, so plain and antithetic streams
  /// stay in lockstep draw-for-draw.
  void set_antithetic(bool on) noexcept { antithetic_ = on; }
  [[nodiscard]] bool antithetic() const noexcept { return antithetic_; }

  /// Uniform double in [0, 1) with 53 random bits (mirrored to 1 - U in
  /// antithetic mode, nudged to stay inside [0, 1)).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Exponential variate with the given rate (mean 1/rate); rate must be > 0.
  [[nodiscard]] double exponential(double rate);

  /// Uniform integer in [0, bound) via rejection-free Lemire reduction; bound >= 1.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t bound);

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept { return engine_(); }

  [[nodiscard]] Xoshiro256pp& engine() noexcept { return engine_; }

 private:
  Xoshiro256pp engine_;
  bool antithetic_ = false;
};

}  // namespace lbsim::stoch
