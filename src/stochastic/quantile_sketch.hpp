#pragma once
/// \file
/// Streaming quantile estimation for the Monte-Carlo engine: the P-square
/// (P²) algorithm of Jain & Chlamtac (CACM 1985) tracks one quantile with
/// five markers in O(1) memory and O(1) work per observation, so large sweeps
/// can report p50/p90/p99 without retaining every completion-time sample.
///
/// The estimate is exact while fewer than five observations have been seen
/// (the markers simply hold the sorted sample) and an interpolation-based
/// approximation afterwards. For exact (type-7) quantiles, collect the raw
/// samples instead (`mc.collect_samples`) and use stoch::quantile.

#include <array>
#include <cstddef>
#include <vector>

namespace lbsim::stoch {

/// One P² estimator for a fixed quantile q in [0, 1].
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate: exact for count() < 5, the P² middle marker otherwise.
  /// Requires count() >= 1.
  [[nodiscard]] double estimate() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double target() const noexcept { return q_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (ascending)
  std::array<double, 5> positions_{};  // actual marker positions (1-based)
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increment_{};  // per-observation desired-position steps
};

/// Count-weighted combination of independent partial estimates, used to fold
/// the per-worker P² sketches of a parallel Monte-Carlo run into one value.
/// Each entry is (observation count, quantile estimate); entries with zero
/// count are ignored. Returns 0 when every entry is empty.
[[nodiscard]] double combine_estimates(
    const std::vector<std::pair<std::size_t, double>>& parts);

}  // namespace lbsim::stoch
