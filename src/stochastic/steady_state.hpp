#pragma once
/// \file
/// Steady-state output analysis for infinite-horizon (open-system) runs:
/// MSER-5 initial-transient truncation, non-overlapping batch-means confidence
/// intervals, and a lag-1 autocorrelation sanity check on the batch means.
/// These operate on a within-run observation series (per-task sojourn times in
/// completion order), which is autocorrelated — the whole point of batching is
/// to recover an honest standard error despite that.

#include <cstddef>
#include <vector>

namespace lbsim::stoch {

/// Lag-1 sample autocorrelation of `series` (denominator: sample variance
/// about the series mean). Returns 0 when fewer than 3 points or the series
/// is constant.
[[nodiscard]] double lag1_autocorrelation(const std::vector<double>& series);

/// MSER-5 warm-up truncation (White, Cobb & Spratt): average the series into
/// non-overlapping blocks of 5, then pick the truncation point d* minimising
/// the MSER statistic  var(blocks[d..]) / (m - d)^2  over candidate d — the
/// point past which the remaining data gives the tightest half-width. The
/// search is capped at `max_fraction` of the blocks so a pathological series
/// cannot delete itself. Returns the number of *observations* (a multiple of
/// 5) to drop from the front; 0 for series shorter than 10 blocks.
[[nodiscard]] std::size_t mser5_truncation(const std::vector<double>& series,
                                           double max_fraction = 0.5);

/// Result of a batch-means pass over a (truncated) observation series.
struct BatchMeans {
  std::size_t batches = 0;       ///< number of non-overlapping batches actually formed
  std::size_t batch_size = 0;    ///< observations per batch (floor; tail dropped)
  std::size_t observations = 0;  ///< observations consumed (batches * batch_size)
  double mean = 0.0;             ///< grand mean of the batch means
  /// Standard error of the grand mean estimated from the between-batch
  /// variability: sqrt(var(means) / batches). Honest in the presence of
  /// within-run autocorrelation once batches are long enough.
  double std_error = 0.0;
  /// Lag-1 autocorrelation of the batch means themselves; near 0 when the
  /// batches are long enough to be effectively independent.
  double lag1 = 0.0;
  /// The iid 99% bound 2.576 / sqrt(batches) the lag-1 estimate is compared
  /// against.
  double lag1_gate = 0.0;
  /// True when |lag1| exceeds the gate — batches too short, widen the CI's
  /// interpretation (or rerun with more observations).
  bool correlated = false;
  /// The batch means, in series order (exposed so replications can be pooled).
  std::vector<double> means;

  /// 95% normal-approximation half-width (t-quantile refinement is < 5% at
  /// the >= 8 batches every caller uses).
  [[nodiscard]] double ci95() const noexcept { return 1.96 * std_error; }
};

/// Splits series[offset..] into `batches` equal non-overlapping batches
/// (integer batch size; the tail remainder is dropped) and summarises them.
/// Requires batches >= 2 and at least one observation per batch.
[[nodiscard]] BatchMeans batch_means(const std::vector<double>& series, std::size_t offset,
                                     std::size_t batches);

/// Summary of a set of already-computed batch means (used to pool batch means
/// across replications: each replication contributes its own batch means, and
/// the pooled set is summarised once, in replication order, so the result is
/// independent of the thread count).
[[nodiscard]] BatchMeans summarize_batch_means(std::vector<double> means,
                                               std::size_t batch_size);

}  // namespace lbsim::stoch
