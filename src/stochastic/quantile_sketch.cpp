#include "stochastic/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "stochastic/stats.hpp"
#include "util/error.hpp"

namespace lbsim::stoch {

P2Quantile::P2Quantile(double q) : q_(q) {
  LBSIM_REQUIRE(q >= 0.0 && q <= 1.0, "q=" << q);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increment_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // Locate the cell k with heights[k] <= x < heights[k+1], clamping the
  // extreme markers to the observed extremes.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions with the
  // piecewise-parabolic (P²) height update, falling back to linear when the
  // parabola would leave the bracketing heights.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    const bool right = gap >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool left = gap <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!right && !left) continue;
    const double d = right ? 1.0 : -1.0;
    const double np1 = positions_[i + 1];
    const double nm1 = positions_[i - 1];
    const double ni = positions_[i];
    const double candidate =
        heights_[i] +
        d / (np1 - nm1) *
            ((ni - nm1 + d) * (heights_[i + 1] - heights_[i]) / (np1 - ni) +
             (np1 - ni - d) * (heights_[i] - heights_[i - 1]) / (ni - nm1));
    if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
      heights_[i] = candidate;
    } else {
      const std::size_t j = right ? i + 1 : i - 1;
      heights_[i] += d * (heights_[j] - heights_[i]) / (positions_[j] - ni);
    }
    positions_[i] += d;
  }
}

double P2Quantile::estimate() const {
  LBSIM_REQUIRE(count_ >= 1, "estimate of empty P2Quantile");
  if (count_ < 5) {
    // Exact type-7 quantile over the stored prefix.
    std::vector<double> sorted(heights_.begin(),
                               heights_.begin() + static_cast<long>(count_));
    std::sort(sorted.begin(), sorted.end());
    return quantile_sorted(sorted, q_);
  }
  if (q_ <= 0.0) return heights_[0];
  if (q_ >= 1.0) return heights_[4];
  return heights_[2];
}

double combine_estimates(const std::vector<std::pair<std::size_t, double>>& parts) {
  double total = 0.0;
  double weighted = 0.0;
  for (const auto& [count, estimate] : parts) {
    if (count == 0) continue;
    total += static_cast<double>(count);
    weighted += static_cast<double>(count) * estimate;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

}  // namespace lbsim::stoch
