#include "stochastic/fit.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace lbsim::stoch {

ExponentialFit fit_exponential(const std::vector<double>& samples) {
  LBSIM_REQUIRE(!samples.empty(), "fit on empty sample");
  util::KahanSum sum;
  for (const double s : samples) {
    LBSIM_REQUIRE(s >= 0.0, "exponential samples must be nonnegative, got " << s);
    sum.add(s);
  }
  ExponentialFit fit;
  fit.mean = sum.value() / static_cast<double>(samples.size());
  LBSIM_REQUIRE(fit.mean > 0.0, "all samples are zero");
  fit.rate = 1.0 / fit.mean;
  fit.log_likelihood =
      static_cast<double>(samples.size()) * (std::log(fit.rate) - 1.0);
  return fit;
}

ExponentialFit fit_shifted_exponential(const std::vector<double>& samples, double* shift_out) {
  LBSIM_REQUIRE(samples.size() >= 2, "shifted fit needs >= 2 samples");
  const double shift = *std::min_element(samples.begin(), samples.end());
  std::vector<double> residual;
  residual.reserve(samples.size());
  for (const double s : samples) residual.push_back(s - shift);
  ExponentialFit fit = fit_exponential(residual);
  fit.mean += shift;
  if (shift_out != nullptr) *shift_out = shift;
  return fit;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LBSIM_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  LBSIM_REQUIRE(x.size() >= 2, "linear fit needs >= 2 points");
  const double n = static_cast<double>(x.size());
  util::KahanSum sx, sy, sxx, sxy, syy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx.add(x[i]);
    sy.add(y[i]);
    sxx.add(x[i] * x[i]);
    sxy.add(x[i] * y[i]);
    syy.add(y[i] * y[i]);
  }
  const double mean_x = sx.value() / n;
  const double mean_y = sy.value() / n;
  const double var_x = sxx.value() / n - mean_x * mean_x;
  const double cov_xy = sxy.value() / n - mean_x * mean_y;
  const double var_y = syy.value() / n - mean_y * mean_y;
  LBSIM_REQUIRE(var_x > 0.0, "all x identical");
  LinearFit fit;
  fit.slope = cov_xy / var_x;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = var_y <= 0.0 ? 1.0 : (cov_xy * cov_xy) / (var_x * var_y);
  return fit;
}

}  // namespace lbsim::stoch
