#pragma once
/// \file
/// Parameter fits used when reproducing the measurement figures: exponential MLE
/// (Fig. 1, Fig. 2 top) and least-squares lines (Fig. 2 bottom).

#include <vector>

namespace lbsim::stoch {

struct ExponentialFit {
  double rate = 0.0;      ///< MLE rate = 1 / sample mean.
  double mean = 0.0;      ///< Sample mean.
  double log_likelihood = 0.0;
};

/// MLE of an exponential law from iid samples (all >= 0, at least one > 0).
[[nodiscard]] ExponentialFit fit_exponential(const std::vector<double>& samples);

/// MLE of a shifted exponential: shift = min(sample), rate = 1/(mean - shift).
[[nodiscard]] ExponentialFit fit_shifted_exponential(const std::vector<double>& samples,
                                                     double* shift_out);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = slope*x + intercept; needs >= 2 distinct x.
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace lbsim::stoch
