#include "stochastic/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace lbsim::stoch {

ControlVariateEstimate control_variate_adjust(const std::vector<double>& target,
                                              const std::vector<double>& control,
                                              double control_mean, std::size_t pilot) {
  LBSIM_REQUIRE(target.size() == control.size(),
                "control variate needs paired samples: " << target.size() << " vs "
                                                         << control.size());
  LBSIM_REQUIRE(pilot >= 2 && target.size() >= pilot + 2,
                "control variate needs pilot >= 2 and >= 2 evaluation samples (pilot="
                    << pilot << ", n=" << target.size() << ")");
  ControlVariateEstimate out;
  out.pilot = pilot;

  // Pilot block: beta-hat = Cov(T, Y) / Var(Y), centred single pass.
  double t_mean = 0.0;
  double y_mean = 0.0;
  for (std::size_t i = 0; i < pilot; ++i) {
    t_mean += target[i];
    y_mean += control[i];
  }
  t_mean /= static_cast<double>(pilot);
  y_mean /= static_cast<double>(pilot);
  double cov = 0.0;
  double var_y = 0.0;
  for (std::size_t i = 0; i < pilot; ++i) {
    const double dy = control[i] - y_mean;
    cov += (target[i] - t_mean) * dy;
    var_y += dy * dy;
  }
  // Degenerate control (constant Y in the pilot): no signal to regress on.
  const double scale = std::max({std::fabs(t_mean), std::fabs(y_mean), 1.0});
  if (var_y <= static_cast<double>(pilot) * scale * scale * 1e-24) return out;
  out.beta = cov / var_y;

  // Evaluation block: the adjusted samples are iid with mean E[T] because
  // beta-hat is independent of them.
  double mean = 0.0;
  for (std::size_t i = pilot; i < target.size(); ++i) {
    mean += target[i] - out.beta * (control[i] - control_mean);
  }
  out.evaluated = target.size() - pilot;
  mean /= static_cast<double>(out.evaluated);
  double m2 = 0.0;
  for (std::size_t i = pilot; i < target.size(); ++i) {
    const double d = target[i] - out.beta * (control[i] - control_mean) - mean;
    m2 += d * d;
  }
  out.mean = mean;
  out.variance = m2 / static_cast<double>(out.evaluated - 1);
  out.std_error = std::sqrt(out.variance / static_cast<double>(out.evaluated));
  out.ok = true;
  return out;
}

void ExponentialRateEstimator::observe(double duration) {
  LBSIM_REQUIRE(duration >= 0.0, "duration=" << duration);
  ++count_;
  total_ += duration;
}

std::optional<double> ExponentialRateEstimator::rate() const {
  if (count_ == 0 || total_ <= 0.0) return std::nullopt;
  return static_cast<double>(count_) / total_;
}

std::optional<std::pair<double, double>> ExponentialRateEstimator::rate_ci95() const {
  const auto r = rate();
  if (!r) return std::nullopt;
  const double rel = 1.96 / std::sqrt(static_cast<double>(count_));
  return std::make_pair(*r * std::max(0.0, 1.0 - rel), *r * (1.0 + rel));
}

double ExponentialRateEstimator::relative_error() const {
  if (count_ == 0) return std::numeric_limits<double>::infinity();
  return 1.96 / std::sqrt(static_cast<double>(count_));
}

void ExponentialRateEstimator::merge(const ExponentialRateEstimator& other) noexcept {
  count_ += other.count_;
  total_ += other.total_;
}

ChurnObserver::ChurnObserver(double start_time)
    : start_time_(start_time), last_transition_(start_time) {}

void ChurnObserver::observe_failure(double t) {
  LBSIM_REQUIRE(up_, "observe_failure while already down");
  LBSIM_REQUIRE(t >= last_transition_, "failure at t=" << t << " is in the past");
  up_times_.observe(t - last_transition_);
  up_accumulated_ += t - last_transition_;
  last_transition_ = t;
  up_ = false;
}

void ChurnObserver::observe_recovery(double t) {
  LBSIM_REQUIRE(!up_, "observe_recovery while already up");
  LBSIM_REQUIRE(t >= last_transition_, "recovery at t=" << t << " is in the past");
  down_times_.observe(t - last_transition_);
  last_transition_ = t;
  up_ = true;
}

markov::NodeParams ChurnObserver::estimate(double now, double lambda_d) const {
  LBSIM_REQUIRE(now >= last_transition_, "now=" << now << " precedes last transition");
  markov::NodeParams params;
  params.lambda_d = lambda_d;
  const auto lf = failure_rate();
  const auto lr = recovery_rate();
  if (lf && lr) {
    params.lambda_f = *lf;
    params.lambda_r = *lr;
  }  // else: not enough evidence of churn -> report a reliable node
  return params;
}

double ChurnObserver::empirical_availability(double now) const {
  LBSIM_REQUIRE(now >= last_transition_, "now=" << now << " precedes last transition");
  const double horizon = now - start_time_;
  if (horizon <= 0.0) return 1.0;
  const double up_time = up_accumulated_ + (up_ ? now - last_transition_ : 0.0);
  return up_time / horizon;
}

}  // namespace lbsim::stoch
