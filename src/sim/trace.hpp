#pragma once
/// \file
/// Step-function time series recorder (queue lengths over time, Fig. 4).
/// Structured event logging lives in obs/trace.hpp (typed 32-byte records);
/// the string-tag EventLog that used to live here was replaced by it.

#include <vector>

namespace lbsim::des {

/// Piecewise-constant time series: record (t, value) on every change.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  /// Records a new value at `time`; times must be nondecreasing.
  void record(double time, double value);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }

  /// Value of the step function at `time` (last recorded value with t <= time);
  /// requires at least one point at or before `time`.
  [[nodiscard]] double value_at(double time) const;

  /// Resamples onto a uniform grid of `count` points spanning [t0, t1], holding
  /// the last value. Used for compact text plots of Fig. 4.
  [[nodiscard]] std::vector<Point> resample(double t0, double t1, std::size_t count) const;

 private:
  std::vector<Point> points_;
};

}  // namespace lbsim::des
