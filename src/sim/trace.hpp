#pragma once
/// \file
/// Step-function time series recorder (queue lengths over time, Fig. 4) and a
/// tagged event log for debugging simulations.

#include <string>
#include <vector>

namespace lbsim::des {

/// Piecewise-constant time series: record (t, value) on every change.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  /// Records a new value at `time`; times must be nondecreasing.
  void record(double time, double value);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }

  /// Value of the step function at `time` (last recorded value with t <= time);
  /// requires at least one point at or before `time`.
  [[nodiscard]] double value_at(double time) const;

  /// Resamples onto a uniform grid of `count` points spanning [t0, t1], holding
  /// the last value. Used for compact text plots of Fig. 4.
  [[nodiscard]] std::vector<Point> resample(double t0, double t1, std::size_t count) const;

 private:
  std::vector<Point> points_;
};

/// Append-only log of (time, tag, detail) records.
class EventLog {
 public:
  struct Record {
    double time;
    std::string tag;
    std::string detail;
  };

  void log(double time, std::string tag, std::string detail);
  [[nodiscard]] const std::vector<Record>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t count_tag(const std::string& tag) const noexcept;

 private:
  std::vector<Record> records_;
};

}  // namespace lbsim::des
