#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lbsim::des {

EventId EventQueue::push(double time, Callback cb) {
  LBSIM_REQUIRE(std::isfinite(time) && time >= 0.0, "event time " << time);
  LBSIM_REQUIRE(cb != nullptr, "null event callback");
  const std::uint64_t serial = next_serial_++;
  heap_.push_back(Entry{time, serial, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  pending_.insert(serial);
  return EventId{serial};
}

bool EventQueue::cancel(EventId id) noexcept {
  if (!id.valid()) return false;
  return pending_.erase(id.serial_) > 0;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && pending_.count(heap_.front().serial) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

double EventQueue::next_time() {
  LBSIM_REQUIRE(!empty(), "next_time on empty queue");
  drop_dead_top();
  return heap_.front().time;
}

EventQueue::Entry EventQueue::pop() {
  LBSIM_REQUIRE(!empty(), "pop on empty queue");
  drop_dead_top();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry out = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(out.serial);
  return out;
}

void EventQueue::clear() noexcept {
  heap_.clear();
  pending_.clear();
}

}  // namespace lbsim::des
