#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lbsim::des {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  LBSIM_CHECK(slots_.size() < kNilSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.callback.reset();
  s.serial = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::push(double time, Callback cb, std::size_t shard_hint) {
  LBSIM_REQUIRE(std::isfinite(time) && time >= 0.0, "event time " << time);
  LBSIM_REQUIRE(static_cast<bool>(cb), "null event callback");
  const std::uint64_t serial = next_serial_++;
  const std::uint32_t slot = acquire_slot();
  const auto shard_index = static_cast<std::uint32_t>(shard_hint % shards_.size());
  slots_[slot].callback = std::move(cb);
  slots_[slot].serial = serial;
  slots_[slot].shard = shard_index;
  Shard& shard = shards_[shard_index];
  shard.heap.push_back(HeapItem{time, serial, slot});
  std::push_heap(shard.heap.begin(), shard.heap.end(), later);
  ++shard.live;
  ++live_;
  ++stats_.scheduled;
  if (live_ > stats_.max_depth) stats_.max_depth = live_;
  if (shard.live > stats_.max_shard_depth) stats_.max_shard_depth = shard.live;
  return EventId{serial, slot};
}

bool EventQueue::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  if (slots_[id.slot_].serial != id.serial_) return false;  // already fired/cancelled
  Shard& shard = shards_[slots_[id.slot_].shard];
  release_slot(id.slot_);
  --shard.live;
  --live_;
  ++stats_.cancelled;
  // The heap record stays behind as a corpse; rebuild once corpses dominate.
  if (shard.heap.size() >= kCompactMin && shard.heap.size() > 2 * shard.live) compact(shard);
  return true;
}

void EventQueue::set_shard_count(std::size_t shards) {
  LBSIM_REQUIRE(shards >= 1, "shard count must be >= 1, got " << shards);
  LBSIM_REQUIRE(empty(), "set_shard_count with " << live_ << " live events pending");
  // Only corpses can remain; their slots are already released, so the records
  // can simply be dropped instead of migrated.
  for (Shard& shard : shards_) shard.heap.clear();
  shards_.resize(shards);
}

std::size_t EventQueue::heap_records() const noexcept {
  std::size_t records = 0;
  for (const Shard& shard : shards_) records += shard.heap.size();
  return records;
}

void EventQueue::compact(Shard& shard) noexcept {
  ++stats_.compactions;
  shard.heap.erase(std::remove_if(shard.heap.begin(), shard.heap.end(),
                                  [this](const HeapItem& item) { return is_dead(item); }),
                   shard.heap.end());
  std::make_heap(shard.heap.begin(), shard.heap.end(), later);
}

void EventQueue::drop_dead_top(Shard& shard) {
  while (!shard.heap.empty() && is_dead(shard.heap.front())) {
    std::pop_heap(shard.heap.begin(), shard.heap.end(), later);
    shard.heap.pop_back();
  }
}

EventQueue::Shard& EventQueue::top_shard() {
  Shard* best = nullptr;
  for (Shard& shard : shards_) {
    if (shard.live == 0) continue;
    drop_dead_top(shard);
    // Serials are globally unique, so the (time, serial) comparison totally
    // orders the shard tops: the winner is exactly the event a single global
    // heap would surface.
    if (best == nullptr || later(best->heap.front(), shard.heap.front())) best = &shard;
  }
  LBSIM_CHECK(best != nullptr, "no live shard in a non-empty queue");
  return *best;
}

double EventQueue::next_time() {
  LBSIM_REQUIRE(!empty(), "next_time on empty queue");
  return top_shard().heap.front().time;
}

EventQueue::Entry EventQueue::pop() {
  LBSIM_REQUIRE(!empty(), "pop on empty queue");
  Shard& shard = top_shard();
  std::pop_heap(shard.heap.begin(), shard.heap.end(), later);
  const HeapItem item = shard.heap.back();
  shard.heap.pop_back();
  Entry out{item.time, item.serial, std::move(slots_[item.slot].callback)};
  release_slot(item.slot);
  --shard.live;
  --live_;
  ++stats_.popped;
  return out;
}

void EventQueue::clear() noexcept {
  for (Shard& shard : shards_) {
    shard.heap.clear();
    shard.live = 0;
  }
  slots_.clear();  // capacity (the slab) is retained for the next run
  free_head_ = kNilSlot;
  live_ = 0;
  // next_serial_ is never reset: a stale EventId must not alias a new event.
}

}  // namespace lbsim::des
