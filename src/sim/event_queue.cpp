#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lbsim::des {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  LBSIM_CHECK(slots_.size() < kNilSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.callback.reset();
  s.serial = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::push(double time, Callback cb) {
  LBSIM_REQUIRE(std::isfinite(time) && time >= 0.0, "event time " << time);
  LBSIM_REQUIRE(static_cast<bool>(cb), "null event callback");
  const std::uint64_t serial = next_serial_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].callback = std::move(cb);
  slots_[slot].serial = serial;
  heap_.push_back(HeapItem{time, serial, slot});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return EventId{serial, slot};
}

bool EventQueue::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  if (slots_[id.slot_].serial != id.serial_) return false;  // already fired/cancelled
  release_slot(id.slot_);
  --live_;
  // The heap record stays behind as a corpse; rebuild once corpses dominate.
  if (heap_.size() >= kCompactMin && heap_.size() > 2 * live_) compact();
  return true;
}

void EventQueue::compact() noexcept {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapItem& item) { return is_dead(item); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && is_dead(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

double EventQueue::next_time() {
  LBSIM_REQUIRE(!empty(), "next_time on empty queue");
  drop_dead_top();
  return heap_.front().time;
}

EventQueue::Entry EventQueue::pop() {
  LBSIM_REQUIRE(!empty(), "pop on empty queue");
  drop_dead_top();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const HeapItem item = heap_.back();
  heap_.pop_back();
  Entry out{item.time, item.serial, std::move(slots_[item.slot].callback)};
  release_slot(item.slot);
  --live_;
  return out;
}

void EventQueue::clear() noexcept {
  heap_.clear();
  slots_.clear();  // capacity (the slab) is retained for the next run
  free_head_ = kNilSlot;
  live_ = 0;
  // next_serial_ is never reset: a stale EventId must not alias a new event.
}

}  // namespace lbsim::des
