#pragma once
/// \file
/// Cancellable priority queue of timestamped events with deterministic FIFO
/// tie-breaking: events at equal times fire in scheduling order, so simulations
/// are bit-reproducible given the same RNG streams.
///
/// Storage is pooled: callbacks live in a slot slab recycled across pushes
/// (and, via clear(), across Monte-Carlo replications), and the binary heaps
/// hold plain (time, serial, slot) records. See docs/ARCHITECTURE.md,
/// "Event memory model".
///
/// The queue is *sharded*: push() carries a shard hint (reduced modulo the
/// shard count), each shard keeps its own binary heap, and pop() removes the
/// globally earliest live event across shards by the same (time, serial)
/// order a single heap would use. Results are therefore bit-identical for
/// every shard count; sharding exists as groundwork for intra-replication
/// parallelism — per-node heaps are independent structures that concurrent
/// node workers can later own without contending on one global heap.

#include <cstdint>
#include <vector>

#include "sim/small_callback.hpp"

namespace lbsim::des {

/// Opaque handle for cancelling a scheduled event. Default-constructed handles
/// are invalid and safe to cancel (no-op).
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const noexcept { return serial_ != 0; }

 private:
  friend class EventQueue;
  EventId(std::uint64_t serial, std::uint32_t slot) noexcept
      : serial_(serial), slot_(slot) {}
  std::uint64_t serial_ = 0;
  std::uint32_t slot_ = 0;
};

/// Sharded binary min-heaps on (time, serial) over one pooled slot slab.
/// Cancellation is lazy — the heap record stays behind and is skipped on pop —
/// but the slot (and its callback) is released immediately, and a shard is
/// compacted when dead records outnumber its live events, so long churny runs
/// cannot accumulate unbounded garbage.
class EventQueue {
 public:
  using Callback = SmallCallback;

  struct Entry {
    double time = 0.0;
    std::uint64_t serial = 0;
    Callback callback;
  };

  /// Lifetime instrumentation counters. Cumulative across clear() — a reused
  /// simulator's stats cover every replication it ran — and free to maintain
  /// (a handful of integer ops on paths that already touch the same lines).
  struct Stats {
    std::uint64_t scheduled = 0;    ///< push() calls
    std::uint64_t popped = 0;       ///< pop() calls (events fired)
    std::uint64_t cancelled = 0;    ///< successful cancel() calls
    std::uint64_t compactions = 0;  ///< shard heap rebuilds (corpse sweeps)
    std::uint64_t max_depth = 0;    ///< live-event high-water mark (all shards)
    std::uint64_t max_shard_depth = 0;  ///< live high-water mark of any one shard
  };

  EventQueue() : shards_(1) {}

  /// Schedules `cb` at absolute time `time` (finite, >= 0). The shard hint
  /// (typically the owning node id) selects the backing heap modulo the shard
  /// count; it never affects firing order.
  EventId push(double time, Callback cb, std::size_t shard_hint = 0);

  /// Cancels a pending event; returns false if already fired/cancelled/invalid.
  bool cancel(EventId id) noexcept;

  /// Re-partitions the backing heaps into `shards` (>= 1) shards. Only legal
  /// while no live event is pending; the shard count survives clear().
  void set_shard_count(std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Heap records including dead (cancelled) ones — compaction diagnostics.
  [[nodiscard]] std::size_t heap_records() const noexcept;

  /// Lifetime counters (see Stats); survive clear().
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Time of the earliest live event; queue must not be empty.
  [[nodiscard]] double next_time();

  /// Removes and returns the earliest live event; queue must not be empty.
  Entry pop();

  /// Drops everything (live and cancelled). Slab, heap capacity and the shard
  /// count are kept, and serial numbers keep counting up, so stale EventIds
  /// can never alias a later event. Safe to call from inside a running
  /// callback.
  void clear() noexcept;

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Compaction threshold: rebuild once a shard's heap is mostly corpses.
  static constexpr std::size_t kCompactMin = 64;

  struct HeapItem {
    double time;
    std::uint64_t serial;
    std::uint32_t slot;
  };

  struct Shard {
    std::vector<HeapItem> heap;
    std::size_t live = 0;
  };

  struct Slot {
    Callback callback;
    std::uint64_t serial = 0;  ///< 0 = free; else the serial occupying this slot
    std::uint32_t next_free = kNilSlot;
    std::uint32_t shard = 0;   ///< heap holding this slot's record
  };

  static bool later(const HeapItem& a, const HeapItem& b) noexcept {
    return a.time > b.time || (a.time == b.time && a.serial > b.serial);
  }

  [[nodiscard]] bool is_dead(const HeapItem& item) const noexcept {
    return slots_[item.slot].serial != item.serial;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  /// Pops cancelled records off one shard's heap top.
  void drop_dead_top(Shard& shard);

  /// The shard holding the globally earliest live event (dead tops dropped);
  /// queue must not be empty.
  [[nodiscard]] Shard& top_shard();

  /// Removes a shard's dead records and re-heapifies (when dead dominates).
  void compact(Shard& shard) noexcept;

  std::vector<Shard> shards_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::uint64_t next_serial_ = 1;
  Stats stats_;
};

}  // namespace lbsim::des
