#pragma once
/// \file
/// Cancellable priority queue of timestamped events with deterministic FIFO
/// tie-breaking: events at equal times fire in scheduling order, so simulations
/// are bit-reproducible given the same RNG streams.
///
/// Storage is pooled: callbacks live in a slot slab recycled across pushes
/// (and, via clear(), across Monte-Carlo replications), and the binary heap
/// holds plain (time, serial, slot) records. See docs/ARCHITECTURE.md,
/// "Event memory model".

#include <cstdint>
#include <vector>

#include "sim/small_callback.hpp"

namespace lbsim::des {

/// Opaque handle for cancelling a scheduled event. Default-constructed handles
/// are invalid and safe to cancel (no-op).
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const noexcept { return serial_ != 0; }

 private:
  friend class EventQueue;
  EventId(std::uint64_t serial, std::uint32_t slot) noexcept
      : serial_(serial), slot_(slot) {}
  std::uint64_t serial_ = 0;
  std::uint32_t slot_ = 0;
};

/// Binary min-heap on (time, serial) over a pooled slot slab. Cancellation is
/// lazy — the heap record stays behind and is skipped on pop — but the slot
/// (and its callback) is released immediately, and the heap is compacted when
/// dead records outnumber live events, so long churny runs cannot accumulate
/// unbounded garbage.
class EventQueue {
 public:
  using Callback = SmallCallback;

  struct Entry {
    double time = 0.0;
    std::uint64_t serial = 0;
    Callback callback;
  };

  /// Schedules `cb` at absolute time `time` (finite, >= 0).
  EventId push(double time, Callback cb);

  /// Cancels a pending event; returns false if already fired/cancelled/invalid.
  bool cancel(EventId id) noexcept;

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Heap records including dead (cancelled) ones — compaction diagnostics.
  [[nodiscard]] std::size_t heap_records() const noexcept { return heap_.size(); }

  /// Time of the earliest live event; queue must not be empty.
  [[nodiscard]] double next_time();

  /// Removes and returns the earliest live event; queue must not be empty.
  Entry pop();

  /// Drops everything (live and cancelled). Slab and heap capacity are kept,
  /// and serial numbers keep counting up, so stale EventIds can never alias a
  /// later event. Safe to call from inside a running callback.
  void clear() noexcept;

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Compaction threshold: rebuild once the heap is mostly corpses.
  static constexpr std::size_t kCompactMin = 64;

  struct HeapItem {
    double time;
    std::uint64_t serial;
    std::uint32_t slot;
  };

  struct Slot {
    Callback callback;
    std::uint64_t serial = 0;  ///< 0 = free; else the serial occupying this slot
    std::uint32_t next_free = kNilSlot;
  };

  static bool later(const HeapItem& a, const HeapItem& b) noexcept {
    return a.time > b.time || (a.time == b.time && a.serial > b.serial);
  }

  [[nodiscard]] bool is_dead(const HeapItem& item) const noexcept {
    return slots_[item.slot].serial != item.serial;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  /// Pops cancelled records off the heap top.
  void drop_dead_top();

  /// Removes every dead record and re-heapifies (called when dead dominates).
  void compact() noexcept;

  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::uint64_t next_serial_ = 1;
};

}  // namespace lbsim::des
