#pragma once
/// \file
/// Cancellable priority queue of timestamped events with deterministic FIFO
/// tie-breaking: events at equal times fire in scheduling order, so simulations
/// are bit-reproducible given the same RNG streams.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace lbsim::des {

/// Opaque handle for cancelling a scheduled event. Default-constructed handles
/// are invalid and safe to cancel (no-op).
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const noexcept { return serial_ != 0; }

 private:
  friend class EventQueue;
  explicit EventId(std::uint64_t serial) noexcept : serial_(serial) {}
  std::uint64_t serial_ = 0;
};

/// Binary min-heap on (time, serial). Cancellation is lazy: cancelled entries
/// stay in the heap and are skipped on pop, so cancel is O(1) and pop stays
/// O(log n) amortised.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  struct Entry {
    double time = 0.0;
    std::uint64_t serial = 0;
    Callback callback;
  };

  /// Schedules `cb` at absolute time `time` (finite, >= 0).
  EventId push(double time, Callback cb);

  /// Cancels a pending event; returns false if already fired/cancelled/invalid.
  bool cancel(EventId id) noexcept;

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event; queue must not be empty.
  [[nodiscard]] double next_time();

  /// Removes and returns the earliest live event; queue must not be empty.
  Entry pop();

  /// Drops everything (live and cancelled).
  void clear() noexcept;

 private:
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.time > b.time || (a.time == b.time && a.serial > b.serial);
  }

  /// Pops cancelled entries off the heap top.
  void drop_dead_top();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace lbsim::des
