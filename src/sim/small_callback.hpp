#pragma once
/// \file
/// A move-only `void()` callable with small-buffer storage sized so that every
/// callback the simulation engine itself schedules (service completions, churn
/// timers, bundle deliveries, periodic-rebalance ticks) lives inline — the
/// event hot path never heap-allocates. Larger or throwing-move callables fall
/// back to the heap transparently, so the type stays as general as
/// std::function for external users of the DES kernel.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lbsim::des {

class SmallCallback {
 public:
  /// Inline capacity in bytes. 64 covers the engine's largest event capture
  /// (a link delivery: owner pointer + owned transfer + std::function handler
  /// + task count); measured captures beyond this are testbed-only cold paths.
  static constexpr std::size_t kInlineSize = 64;

  SmallCallback() noexcept = default;
  SmallCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  SmallCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      vtable_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) vtable_->relocate(storage_, other.storage_);
    other.vtable_ = nullptr;
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-constructs dst from src and destroys src (nothrow by contract).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) noexcept { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); }};

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* self) noexcept { delete *std::launder(reinterpret_cast<Fn**>(self)); }};

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace lbsim::des
