#include "sim/trace.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/math.hpp"

namespace lbsim::des {

void TimeSeries::record(double time, double value) {
  LBSIM_REQUIRE(points_.empty() || time >= points_.back().time,
                "time series must be nondecreasing: " << time << " after "
                                                      << points_.back().time);
  points_.push_back(Point{time, value});
}

double TimeSeries::value_at(double time) const {
  LBSIM_REQUIRE(!points_.empty() && points_.front().time <= time,
                "no sample at or before t=" << time);
  // Last point with point.time <= time.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), time,
      [](double t, const Point& p) { return t < p.time; });
  return (it - 1)->value;
}

std::vector<TimeSeries::Point> TimeSeries::resample(double t0, double t1,
                                                    std::size_t count) const {
  LBSIM_REQUIRE(t1 >= t0, "bad window [" << t0 << ", " << t1 << "]");
  std::vector<Point> out;
  out.reserve(count);
  for (const double t : util::linspace(t0, t1, count)) {
    out.push_back(Point{t, value_at(t)});
  }
  return out;
}

}  // namespace lbsim::des
