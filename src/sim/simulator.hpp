#pragma once
/// \file
/// The discrete-event simulation kernel: a virtual clock plus the event loop.
/// Model components hold a Simulator& and schedule callbacks; the owner drives
/// the loop with run()/run_until()/step().

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace lbsim::des {

class Simulator {
 public:
  Simulator() = default;

  // The kernel is referenced by every component; copying would tear the world apart.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `cb` after a nonnegative delay. The shard hint (typically the
  /// owning node id) only selects the event queue's backing heap; it never
  /// changes firing order (see EventQueue).
  EventId schedule_in(double delay, EventQueue::Callback cb, std::size_t shard_hint = 0);

  /// Schedules `cb` at an absolute time >= now().
  EventId schedule_at(double time, EventQueue::Callback cb, std::size_t shard_hint = 0);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id) noexcept { return queue_.cancel(id); }

  /// Executes the next event, advancing the clock. Returns false if none remain.
  bool step();

  /// Runs until the queue drains. Returns the final clock value.
  double run();

  /// Runs events with time <= `t_end`, then sets the clock to `t_end`
  /// (if the queue drained earlier the clock still ends at `t_end`).
  double run_until(double t_end);

  /// Runs until `stop()` returns true (checked after each event) or the queue
  /// drains; returns the clock.
  double run_while_pending(const std::function<bool()>& stop);

  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// The event queue's lifetime counters (cumulative across reset(): a reused
  /// worker simulator's stats cover every replication it ran).
  [[nodiscard]] const EventQueue::Stats& queue_stats() const noexcept {
    return queue_.stats();
  }

  /// Re-partitions the event queue into `shards` (>= 1) per-shard heaps; only
  /// legal while no event is pending. Bit-neutral: any shard count replays
  /// events in the identical order. Survives reset().
  void set_shard_count(std::size_t shards) { queue_.set_shard_count(shards); }
  [[nodiscard]] std::size_t shard_count() const noexcept { return queue_.shard_count(); }

  /// Drops all pending events and rewinds the clock to zero. Statistics reset.
  void reset();

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace lbsim::des
