#include "sim/simulator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lbsim::des {

EventId Simulator::schedule_in(double delay, EventQueue::Callback cb, std::size_t shard_hint) {
  LBSIM_REQUIRE(std::isfinite(delay) && delay >= 0.0, "delay " << delay);
  return queue_.push(now_ + delay, std::move(cb), shard_hint);
}

EventId Simulator::schedule_at(double time, EventQueue::Callback cb, std::size_t shard_hint) {
  LBSIM_REQUIRE(time >= now_, "schedule_at(" << time << ") is in the past (now=" << now_ << ")");
  return queue_.push(time, std::move(cb), shard_hint);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Entry entry = queue_.pop();
  LBSIM_CHECK(entry.time >= now_, "event time went backwards");
  now_ = entry.time;
  ++executed_;
  entry.callback();
  return true;
}

double Simulator::run() {
  while (step()) {
  }
  return now_;
}

double Simulator::run_until(double t_end) {
  LBSIM_REQUIRE(t_end >= now_, "run_until(" << t_end << ") is in the past");
  while (!queue_.empty() && queue_.next_time() <= t_end) step();
  now_ = t_end;
  return now_;
}

double Simulator::run_while_pending(const std::function<bool()>& stop) {
  LBSIM_REQUIRE(stop != nullptr, "null stop predicate");
  while (!stop() && step()) {
  }
  return now_;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0.0;
  executed_ = 0;
}

}  // namespace lbsim::des
