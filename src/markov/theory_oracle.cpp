#include "markov/theory_oracle.hpp"

#include <string>

#include "markov/two_node_mean.hpp"
#include "util/error.hpp"

namespace lbsim::markov {
namespace {

/// Builds the TwoNodeParams view of a two-node multi-node parameter set.
TwoNodeParams two_node_view(const MultiNodeParams& params) {
  TwoNodeParams two;
  two.nodes[0] = params.nodes[0];
  two.nodes[1] = params.nodes[1];
  two.per_task_delay_mean = params.per_task_delay_mean;
  return two;
}

std::string node_label(std::size_t i) { return "node " + std::to_string(i); }

}  // namespace

unsigned TheoryQuery::resolved_state() const noexcept {
  if (initial_state != kAllUpSentinel) return initial_state;
  return all_up_state(params.nodes.size());
}

std::string TheoryOracle::screen(const TheoryQuery& query) const {
  const std::size_t n = query.params.nodes.size();
  LBSIM_REQUIRE(n >= 1, "theory query without nodes");
  LBSIM_REQUIRE(query.queues.size() == n,
                "queue vector has " << query.queues.size() << " entries for " << n
                                    << " nodes");
  if (n > kMaxSolverNodes) {
    return "no exact solver for n=" + std::to_string(n) +
           " > " + std::to_string(kMaxSolverNodes) +
           " nodes (one 2^n x 2^n work-state solve per lattice point)";
  }
  if (query.transfers.size() > kMaxTransfers) {
    return "more than " + std::to_string(kMaxTransfers) + " simultaneous bundles";
  }
  const unsigned state = query.resolved_state();
  if (state >= (1u << n)) {
    return "initial state mask " + std::to_string(state) +
           " addresses nodes beyond n=" + std::to_string(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool up = (state >> i) & 1u;
    if (!up && query.params.nodes[i].lambda_f == 0.0) {
      // The regeneration solvers pin "never-failing node down" work states to
      // zero (they are unreachable from any churn path), so a run that STARTS
      // there is outside their state space.
      return node_label(i) + " starts down but never fails (outside the solvers' "
                             "reachable work states)";
    }
  }
  for (const TransferSpec& t : query.transfers) {
    if (t.count == 0) return "empty bundle in the transfer list";
    if (t.from < 0 || static_cast<std::size_t>(t.from) >= n || t.to < 0 ||
        static_cast<std::size_t>(t.to) >= n || t.to == t.from) {
      return "bundle endpoints outside the node set";
    }
  }

  // Tractability: every solver's work scales with the task lattice — the
  // product over nodes of (queue + incoming bundles + 1). The dedicated
  // two-node solver affords a larger budget than the 2^n-coupled multi-node
  // recursion; past either, declining beats hanging a sweep.
  std::vector<std::size_t> extents = query.queues;
  for (const TransferSpec& t : query.transfers) {
    extents[static_cast<std::size_t>(t.to)] += t.count;
  }
  double lattice = 1.0;
  for (const std::size_t e : extents) lattice *= static_cast<double>(e + 1);
  const bool dedicated_two_node = n == 2 && query.transfers.size() <= 1;
  const double budget = dedicated_two_node ? 4e6 : 2e5;
  if (lattice > budget) {
    return "task lattice of ~" + std::to_string(static_cast<long long>(lattice)) +
           " points exceeds the exact solvers' budget";
  }
  return "";
}

TheoryPrediction TheoryOracle::mean(const TheoryQuery& query) const {
  TheoryPrediction prediction;
  if (std::string reason = screen(query); !reason.empty()) {
    prediction.reason = std::move(reason);
    return prediction;
  }
  const std::size_t n = query.params.nodes.size();
  const unsigned state = query.resolved_state();

  // Two-node queries with at most one bundle take the dedicated eq. (4)
  // solver (faster and independently golden-pinned); everything else up to
  // n = 8 goes through the multi-node recursion.
  if (n == 2 && query.transfers.size() <= 1) {
    TwoNodeMeanSolver solver(two_node_view(query.params));
    if (query.transfers.empty()) {
      prediction.mean = solver.mean_no_transit(query.queues[0], query.queues[1], state);
    } else {
      const TransferSpec& t = query.transfers[0];
      prediction.mean = solver.mean_with_transit(query.queues[0], query.queues[1], t.count,
                                                 t.to, state);
    }
    prediction.method = "two-node regeneration (eq. 4)";
  } else {
    MultiNodeMeanSolver solver(query.params);
    prediction.mean = solver.expected_completion(query.queues, query.transfers, state);
    prediction.method = "multi-node regeneration (n=" + std::to_string(n) + ")";
  }
  prediction.applicable = true;
  return prediction;
}

TheoryCdfPrediction TheoryOracle::cdf(const TheoryQuery& query,
                                      const TwoNodeCdfSolver::Config& config) const {
  TheoryCdfPrediction prediction;
  if (std::string reason = screen(query); !reason.empty()) {
    prediction.reason = std::move(reason);
    return prediction;
  }
  const std::size_t n = query.params.nodes.size();
  if (n != 2) {
    prediction.reason =
        "the eq. (5) distribution solver covers two-node systems only (n=" +
        std::to_string(n) + ")";
    return prediction;
  }
  if (query.transfers.size() > 1) {
    prediction.reason = "the eq. (5) distribution solver handles at most one bundle";
    return prediction;
  }
  const TwoNodeCdfSolver solver(two_node_view(query.params), config);
  const unsigned state = query.resolved_state();
  if (query.transfers.empty()) {
    prediction.curve = solver.cdf_no_transit(query.queues[0], query.queues[1], state);
  } else {
    const TransferSpec& t = query.transfers[0];
    prediction.curve = solver.cdf_with_transit(query.queues[0], query.queues[1], t.count,
                                               t.to, state);
  }
  prediction.applicable = true;
  return prediction;
}

}  // namespace lbsim::markov
