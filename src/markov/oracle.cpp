#include "markov/oracle.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace lbsim::markov {

double single_node_mean(std::size_t m, double lambda_d) {
  LBSIM_REQUIRE(lambda_d > 0.0, "lambda_d=" << lambda_d);
  return static_cast<double>(m) / lambda_d;
}

double single_node_churn_mean(std::size_t m, const NodeParams& node) {
  validate(node);
  if (node.lambda_f == 0.0) return single_node_mean(m, node.lambda_d);
  const double per_task = (1.0 + node.lambda_f / node.lambda_r) / node.lambda_d;
  return static_cast<double>(m) * per_task;
}

double erlang_race_mean_min(std::size_t m1, double r1, std::size_t m2, double r2) {
  LBSIM_REQUIRE(r1 > 0.0 && r2 > 0.0, "rates " << r1 << ", " << r2);
  if (m1 == 0 || m2 == 0) return 0.0;
  const double p = r1 / (r1 + r2);
  const double q = 1.0 - p;
  util::KahanSum acc;
  for (std::size_t j1 = 0; j1 < m1; ++j1) {
    // term(j1, j2) = C(j1+j2, j1) p^j1 q^j2, built by recurrence over j2.
    double term = std::pow(p, static_cast<double>(j1));
    for (std::size_t j2 = 0; j2 < m2; ++j2) {
      if (j2 > 0) {
        term *= q * static_cast<double>(j1 + j2) / static_cast<double>(j2);
      }
      acc.add(term);
    }
  }
  return acc.value() / (r1 + r2);
}

double erlang_race_mean_max(std::size_t m1, double r1, std::size_t m2, double r2) {
  const double sum_of_means =
      static_cast<double>(m1) / r1 + static_cast<double>(m2) / r2;
  return sum_of_means - erlang_race_mean_min(m1, r1, m2, r2);
}

}  // namespace lbsim::markov
