#pragma once
/// \file
/// The theory oracle: one front door to every exact solver in this module.
///
/// A TheoryQuery is a solver-neutral description of an initial condition —
/// per-node rates, queue lengths net of departed bundles, the bundles in
/// flight at t = 0, and the initial work-state mask. The oracle dispatches it
/// to the tightest applicable solver (the eq. (4) two-node regeneration
/// solver, the eq. (5) ODE distribution solver, or the multi-node memoised
/// recursion for n <= 8) and answers with either a prediction or a precise
/// reason why no closed form exists, so callers (`lbsim sweep
/// --compare=theory`, `lbsim validate`, the validation tests) can print a
/// clean "no solver applies" marker past the tractability boundary instead of
/// guessing at it.

#include <cstddef>
#include <string>
#include <vector>

#include "markov/multi_node_mean.hpp"
#include "markov/params.hpp"
#include "markov/two_node_cdf.hpp"

namespace lbsim::markov {

/// Work-state mask with the first `n` nodes up.
[[nodiscard]] constexpr unsigned all_up_state(std::size_t n) noexcept {
  return n >= 32 ? ~0u : (1u << n) - 1u;
}

/// A solver-neutral initial condition: what every exact solver needs and
/// nothing any particular solver owns.
struct TheoryQuery {
  MultiNodeParams params;
  /// Queue lengths at t = 0, net of any tasks already in flight.
  std::vector<std::size_t> queues;
  /// Bundles in flight at t = 0, each delayed Exp(1/(d * count)).
  std::vector<TransferSpec> transfers;
  /// Initial work state, bit i = node i up. Defaults to "resolve from n" —
  /// callers that leave it untouched get the all-up state.
  unsigned initial_state = kAllUpSentinel;

  static constexpr unsigned kAllUpSentinel = ~0u;

  /// The effective initial state (sentinel resolved against params size).
  [[nodiscard]] unsigned resolved_state() const noexcept;
};

/// Outcome of a mean-completion-time query.
struct TheoryPrediction {
  bool applicable = false;
  double mean = 0.0;    ///< E[T] in seconds (valid iff applicable)
  std::string method;   ///< solver used, e.g. "two-node regeneration (eq. 4)"
  std::string reason;   ///< why no solver applies (valid iff !applicable)
};

/// Outcome of a completion-time-distribution query.
struct TheoryCdfPrediction {
  bool applicable = false;
  CdfCurve curve;       ///< P{T <= t} on a uniform grid (valid iff applicable)
  std::string reason;   ///< why no solver applies (valid iff !applicable)
};

class TheoryOracle {
 public:
  /// The multi-node recursion solves one 2^n x 2^n system per lattice point;
  /// past this it is intractable and the MC engine is the only truth.
  static constexpr std::size_t kMaxSolverNodes = 8;
  static constexpr std::size_t kMaxTransfers = 16;

  /// Exact mean completion time, or the reason none of the solvers applies.
  /// Never throws on out-of-model queries; malformed ones (queue/params size
  /// mismatch, invalid rates) still throw like the solvers do.
  [[nodiscard]] TheoryPrediction mean(const TheoryQuery& query) const;

  /// Exact completion-time CDF (two-node systems with at most one bundle in
  /// flight; the eq. (5) ODE solver), or the reason it does not apply.
  [[nodiscard]] TheoryCdfPrediction cdf(
      const TheoryQuery& query, const TwoNodeCdfSolver::Config& config = {}) const;

 private:
  /// Shared applicability screen; returns a non-empty reason to decline.
  [[nodiscard]] std::string screen(const TheoryQuery& query) const;
};

}  // namespace lbsim::markov
