#include "markov/multi_node_mean.hpp"

#include <cmath>

#include "markov/linsolve.hpp"
#include "util/error.hpp"

namespace lbsim::markov {

std::size_t MultiNodeMeanSolver::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ key.transfer_mask;
  for (const std::size_t q : key.queues) {
    h ^= q + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

MultiNodeMeanSolver::MultiNodeMeanSolver(MultiNodeParams params)
    : params_(std::move(params)), n_(params_.nodes.size()) {
  validate(params_);
  LBSIM_REQUIRE(n_ >= 1 && n_ <= 8, "multi-node solver supports 1..8 nodes, got " << n_);
}

double MultiNodeMeanSolver::expected_completion(const std::vector<std::size_t>& queues,
                                                const std::vector<TransferSpec>& transfers) {
  return expected_completion(queues, transfers, (1u << n_) - 1u);
}

double MultiNodeMeanSolver::expected_completion(const std::vector<std::size_t>& queues,
                                                const std::vector<TransferSpec>& transfers,
                                                unsigned initial_state) {
  LBSIM_REQUIRE(queues.size() == n_, "queue vector has " << queues.size() << " entries");
  LBSIM_REQUIRE(transfers.size() <= 16, "at most 16 simultaneous transfers");
  LBSIM_REQUIRE(initial_state < (1u << n_), "state=" << initial_state);
  for (const auto& t : transfers) {
    LBSIM_REQUIRE(t.count >= 1, "empty transfer");
    LBSIM_REQUIRE(t.from >= 0 && static_cast<std::size_t>(t.from) < n_, "from=" << t.from);
    LBSIM_REQUIRE(t.to >= 0 && static_cast<std::size_t>(t.to) < n_ && t.to != t.from,
                  "to=" << t.to);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    const bool up = (initial_state >> i) & 1u;
    LBSIM_REQUIRE(up || params_.nodes[i].lambda_f > 0.0,
                  "node " << i << " starts down but can never fail/recover");
  }

  // The memo is tied to the transfer list (masks index into it).
  transfers_ = transfers;
  memo_.clear();

  Key key{transfers.empty() ? 0u : (1u << transfers.size()) - 1u, queues};
  return solve(key)[initial_state];
}

const std::vector<double>& MultiNodeMeanSolver::solve(const Key& key) {
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

  const unsigned n_states = 1u << n_;
  const auto total_tasks = [&] {
    std::size_t total = 0;
    for (const std::size_t q : key.queues) total += q;
    return total;
  }();

  if (total_tasks == 0 && key.transfer_mask == 0) {
    return memo_.emplace(key, std::vector<double>(n_states, 0.0)).first->second;
  }

  // Resolve children first so the deep recursion holds only small frames.
  for (std::size_t i = 0; i < n_; ++i) {
    if (key.queues[i] > 0) {
      Key child = key;
      child.queues[i] -= 1;
      solve(child);
    }
  }
  for (std::size_t t = 0; t < transfers_.size(); ++t) {
    if ((key.transfer_mask >> t) & 1u) {
      Key child = key;
      child.transfer_mask &= ~(1u << t);
      child.queues[transfers_[t].to] += transfers_[t].count;
      solve(child);
    }
  }

  std::vector<double> mat(static_cast<std::size_t>(n_states) * n_states, 0.0);
  std::vector<double> rhs(n_states, 0.0);

  for (unsigned w = 0; w < n_states; ++w) {
    double total = 0.0;
    bool unreachable = false;
    for (std::size_t i = 0; i < n_; ++i) {
      const bool up = (w >> i) & 1u;
      const NodeParams& node = params_.nodes[i];
      if (up) {
        if (key.queues[i] > 0) total += node.lambda_d;
        total += node.lambda_f;
      } else {
        if (node.lambda_f == 0.0) unreachable = true;
        total += node.lambda_r;
      }
    }
    double arrival_total = 0.0;
    for (std::size_t t = 0; t < transfers_.size(); ++t) {
      if ((key.transfer_mask >> t) & 1u) {
        arrival_total +=
            1.0 / (params_.per_task_delay_mean * static_cast<double>(transfers_[t].count));
      }
    }
    total += arrival_total;

    if (unreachable || total <= 0.0) {
      mat[w * n_states + w] = 1.0;
      rhs[w] = 0.0;
      continue;
    }

    mat[w * n_states + w] = 1.0;
    double known = 1.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const bool up = (w >> i) & 1u;
      const NodeParams& node = params_.nodes[i];
      if (up && key.queues[i] > 0) {
        Key child = key;
        child.queues[i] -= 1;
        known += node.lambda_d * memo_.at(child)[w];
      }
      const double churn = up ? node.lambda_f : node.lambda_r;
      if (churn > 0.0) mat[w * n_states + (w ^ (1u << i))] -= churn / total;
    }
    for (std::size_t t = 0; t < transfers_.size(); ++t) {
      if ((key.transfer_mask >> t) & 1u) {
        const double rate =
            1.0 / (params_.per_task_delay_mean * static_cast<double>(transfers_[t].count));
        Key child = key;
        child.transfer_mask &= ~(1u << t);
        child.queues[transfers_[t].to] += transfers_[t].count;
        known += rate * memo_.at(child)[w];
      }
    }
    rhs[w] = known / total;
  }

  std::vector<double> mu = solve_dense(std::move(mat), std::move(rhs));
  return memo_.emplace(key, std::move(mu)).first->second;
}

}  // namespace lbsim::markov
