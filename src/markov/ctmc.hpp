#pragma once
/// \file
/// A generic absorbing continuous-time Markov chain, used as an *independent*
/// implementation of the completion-time analysis: instead of the lattice
/// recursion of eq. (4), enumerate the full state space, assemble the
/// generator, and solve the first-passage equations directly. The two
/// implementations share no code, so their agreement (tests) certifies both.

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::markov {

/// An absorbing CTMC described by an explicit transition list.
class AbsorbingCtmc {
 public:
  struct Transition {
    std::size_t to = 0;
    double rate = 0.0;
  };

  /// `transitions_of(s)` returns the outgoing transitions of state s; a state
  /// with no outgoing transitions is absorbing. States are 0..n-1.
  AbsorbingCtmc(std::size_t state_count,
                std::function<std::vector<Transition>(std::size_t)> transitions_of);

  [[nodiscard]] std::size_t state_count() const noexcept { return n_; }
  [[nodiscard]] bool is_absorbing(std::size_t state) const;

  /// Expected time to absorption from every state (mean first-passage time),
  /// by solving (I - P) mu = 1/Lambda over the transient states with dense
  /// Gaussian elimination. States that cannot reach absorption make the
  /// system singular (throws std::logic_error). O(n^3): intended for
  /// cross-validation on small chains, not production solving.
  [[nodiscard]] std::vector<double> mean_absorption_times() const;

  /// P{absorbed by time t} from `from`, by uniformisation (truncated Poisson
  /// mixture, error < epsilon).
  [[nodiscard]] double absorption_cdf(std::size_t from, double t,
                                      double epsilon = 1e-9) const;

 private:
  std::size_t n_;
  std::vector<std::vector<Transition>> out_;
  std::vector<double> exit_rate_;
};

/// Enumerates the full two-node completion chain — state = (work-state mask,
/// q0, q1, bundle-in-flight flag) — and returns the CTMC plus the index of the
/// requested initial state. Bundle semantics identical to TwoNodeMeanSolver:
/// L tasks travel toward `dest` at rate 1/(d*L) and join that queue on arrival.
struct TwoNodeChain {
  AbsorbingCtmc chain;
  std::size_t initial_state;
};

[[nodiscard]] TwoNodeChain build_two_node_chain(const TwoNodeParams& params,
                                                std::size_t q0, std::size_t q1,
                                                std::size_t transit, int dest,
                                                unsigned initial_work_state = kBothUp);

}  // namespace lbsim::markov
