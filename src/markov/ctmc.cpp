#include "markov/ctmc.hpp"

#include <cmath>
#include <deque>

#include "markov/linsolve.hpp"
#include "util/error.hpp"

namespace lbsim::markov {

AbsorbingCtmc::AbsorbingCtmc(
    std::size_t state_count,
    std::function<std::vector<Transition>(std::size_t)> transitions_of)
    : n_(state_count) {
  LBSIM_REQUIRE(n_ >= 1, "empty chain");
  LBSIM_REQUIRE(transitions_of != nullptr, "null transition function");
  out_.resize(n_);
  exit_rate_.assign(n_, 0.0);
  for (std::size_t s = 0; s < n_; ++s) {
    out_[s] = transitions_of(s);
    for (const Transition& t : out_[s]) {
      LBSIM_REQUIRE(t.to < n_, "transition to unknown state " << t.to);
      LBSIM_REQUIRE(t.rate > 0.0, "nonpositive rate " << t.rate);
      exit_rate_[s] += t.rate;
    }
  }
}

bool AbsorbingCtmc::is_absorbing(std::size_t state) const {
  LBSIM_REQUIRE(state < n_, "state " << state);
  return out_[state].empty();
}

std::vector<double> AbsorbingCtmc::mean_absorption_times() const {
  // Unknowns: transient states only. mu_s * Lambda_s - sum rate * mu_to = 1.
  std::vector<std::size_t> transient;
  std::vector<std::size_t> row_of(n_, SIZE_MAX);
  for (std::size_t s = 0; s < n_; ++s) {
    if (!out_[s].empty()) {
      row_of[s] = transient.size();
      transient.push_back(s);
    }
  }
  const std::size_t m = transient.size();
  std::vector<double> mat(m * m, 0.0);
  std::vector<double> rhs(m, 1.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t s = transient[r];
    mat[r * m + r] = exit_rate_[s];
    for (const Transition& t : out_[s]) {
      if (row_of[t.to] != SIZE_MAX) mat[r * m + row_of[t.to]] -= t.rate;
    }
  }
  const std::vector<double> mu_transient = solve_dense(std::move(mat), std::move(rhs));
  std::vector<double> mu(n_, 0.0);
  for (std::size_t r = 0; r < m; ++r) mu[transient[r]] = mu_transient[r];
  return mu;
}

double AbsorbingCtmc::absorption_cdf(std::size_t from, double t, double epsilon) const {
  LBSIM_REQUIRE(from < n_, "state " << from);
  LBSIM_REQUIRE(t >= 0.0, "t=" << t);
  LBSIM_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon=" << epsilon);
  if (is_absorbing(from)) return 1.0;
  double lambda_max = 0.0;
  for (const double rate : exit_rate_) lambda_max = std::max(lambda_max, rate);
  if (lambda_max == 0.0) return 0.0;

  // Uniformisation: p(t) = sum_k Pois(lambda_max * t; k) * P^k, with
  // P = I + Q / lambda_max (absorbing states become self-loops).
  const double theta = lambda_max * t;
  std::vector<double> v(n_, 0.0);
  v[from] = 1.0;
  // Poisson weights in log space (theta can be large enough that exp(-theta)
  // underflows): Pois(theta; k) = exp(k ln(theta) - theta - ln(k!)).
  const auto poisson_weight = [theta](std::size_t k) {
    if (theta == 0.0) return k == 0 ? 1.0 : 0.0;
    return std::exp(static_cast<double>(k) * std::log(theta) - theta -
                    std::lgamma(static_cast<double>(k) + 1.0));
  };
  double weight = poisson_weight(0);
  double absorbed_mass = 0.0;
  double accumulated_weight = 0.0;
  const auto absorbed_in = [&](const std::vector<double>& vec) {
    double total = 0.0;
    for (std::size_t s = 0; s < n_; ++s) {
      if (out_[s].empty()) total += vec[s];
    }
    return total;
  };

  std::vector<double> next(n_, 0.0);
  std::size_t k = 0;
  while (accumulated_weight < 1.0 - epsilon) {
    absorbed_mass += weight * absorbed_in(v);
    accumulated_weight += weight;
    ++k;
    weight = poisson_weight(k);
    // one uniformised jump: next = v * P
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n_; ++s) {
      if (v[s] == 0.0) continue;
      const double stay = 1.0 - exit_rate_[s] / lambda_max;
      next[s] += v[s] * stay;
      for (const Transition& tr : out_[s]) {
        next[tr.to] += v[s] * tr.rate / lambda_max;
      }
    }
    v.swap(next);
    LBSIM_CHECK(k < 2'000'000, "uniformisation failed to converge");
  }
  return absorbed_mass;
}

TwoNodeChain build_two_node_chain(const TwoNodeParams& params, std::size_t q0,
                                  std::size_t q1, std::size_t transit, int dest,
                                  unsigned initial_work_state) {
  validate(params);
  LBSIM_REQUIRE(initial_work_state < 4, "state=" << initial_work_state);
  LBSIM_REQUIRE(transit == 0 || (dest == 0 || dest == 1), "dest=" << dest);
  for (const int i : {0, 1}) {
    LBSIM_REQUIRE(((initial_work_state >> i) & 1u) || params.nodes[i].lambda_f > 0.0,
                  "initial state marks never-failing node " << i << " as down");
  }

  // Reachable-state BFS; key packs (w, a, b, tau).
  struct Raw {
    unsigned w;
    std::size_t a, b;
    bool tau;
  };
  const auto pack = [](const Raw& s) {
    return (static_cast<std::uint64_t>(s.tau) << 63) |
           (static_cast<std::uint64_t>(s.a) << 34) |
           (static_cast<std::uint64_t>(s.b) << 5) | s.w;
  };
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<Raw> states;
  std::deque<std::size_t> frontier;
  const auto intern = [&](const Raw& s) {
    const auto [it, inserted] = index.emplace(pack(s), states.size());
    if (inserted) {
      states.push_back(s);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  const Raw initial{initial_work_state, q0, q1, transit > 0};
  const std::size_t initial_index = intern(initial);
  const double arrival_rate =
      transit > 0 ? 1.0 / (params.per_task_delay_mean * static_cast<double>(transit)) : 0.0;

  // First pass: discover all reachable states and record raw transitions.
  std::vector<std::vector<AbsorbingCtmc::Transition>> transitions;
  while (!frontier.empty()) {
    const std::size_t s_index = frontier.front();
    frontier.pop_front();
    const Raw s = states[s_index];
    std::vector<AbsorbingCtmc::Transition> out;
    if (!(s.a == 0 && s.b == 0 && !s.tau)) {
      const bool up0 = (s.w >> 0) & 1u;
      const bool up1 = (s.w >> 1) & 1u;
      if (up0 && s.a > 0) {
        out.push_back({intern({s.w, s.a - 1, s.b, s.tau}), params.nodes[0].lambda_d});
      }
      if (up1 && s.b > 0) {
        out.push_back({intern({s.w, s.a, s.b - 1, s.tau}), params.nodes[1].lambda_d});
      }
      const double churn0 = up0 ? params.nodes[0].lambda_f : params.nodes[0].lambda_r;
      const double churn1 = up1 ? params.nodes[1].lambda_f : params.nodes[1].lambda_r;
      if (churn0 > 0.0) out.push_back({intern({s.w ^ 0b01u, s.a, s.b, s.tau}), churn0});
      if (churn1 > 0.0) out.push_back({intern({s.w ^ 0b10u, s.a, s.b, s.tau}), churn1});
      if (s.tau) {
        const Raw landed{s.w, s.a + (dest == 0 ? transit : 0),
                         s.b + (dest == 1 ? transit : 0), false};
        out.push_back({intern(landed), arrival_rate});
      }
    }
    if (transitions.size() <= s_index) transitions.resize(states.size());
    transitions[s_index] = std::move(out);
  }
  transitions.resize(states.size());

  AbsorbingCtmc chain(states.size(), [&transitions](std::size_t s) {
    return transitions[s];
  });
  return TwoNodeChain{std::move(chain), initial_index};
}

}  // namespace lbsim::markov
