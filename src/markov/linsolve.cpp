#include "markov/linsolve.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lbsim::markov {

std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  LBSIM_REQUIRE(a.size() == n * n, "matrix is " << a.size() << " entries for n=" << n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column, at or below the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double mag = std::fabs(a[row * n + col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    LBSIM_CHECK(best > 1e-14, "singular work-state system (column " << col << ")");
    if (pivot != col) {
      for (std::size_t k = col; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      a[row * n + col] = 0.0;
      for (std::size_t k = col + 1; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i * n + k] * x[k];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

}  // namespace lbsim::markov
