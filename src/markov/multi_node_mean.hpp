#pragma once
/// \file
/// The paper's "straightforward extension" of the regeneration analysis to n
/// nodes (Section 1/5), implemented as a memoised recursion.
///
/// State: (pending-transfer mask, queue vector, work-state mask). Service and
/// bundle-arrival events move to strictly smaller states in the lexicographic
/// order (total outstanding tasks, pending transfers); failure/recovery events
/// couple the 2^n work states at a fixed (mask, queues), yielding one
/// 2^n x 2^n linear solve per lattice point. Two-node problems reduce exactly
/// to TwoNodeMeanSolver, which is used as a cross-check in the tests.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::markov {

/// One bundle launched at t = 0 from `from` to `to` (count >= 1); in flight
/// for an Exp(1/(d*count)) time.
struct TransferSpec {
  int from = 0;
  int to = 0;
  std::size_t count = 0;
};

class MultiNodeMeanSolver {
 public:
  /// Supports up to 8 nodes (the work-state solve is 2^n x 2^n) and up to 16
  /// simultaneous initial transfers.
  explicit MultiNodeMeanSolver(MultiNodeParams params);

  [[nodiscard]] const MultiNodeParams& params() const noexcept { return params_; }

  /// Mean overall completion time given queue lengths at t = 0 (net of any
  /// departed bundles), the bundles in flight, and the initial work state
  /// (bit i = node i up; defaults to all-up).
  [[nodiscard]] double expected_completion(const std::vector<std::size_t>& queues,
                                           const std::vector<TransferSpec>& transfers = {});

  [[nodiscard]] double expected_completion(const std::vector<std::size_t>& queues,
                                           const std::vector<TransferSpec>& transfers,
                                           unsigned initial_state);

  /// Number of memoised lattice points (diagnostics / perf tests).
  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }

 private:
  struct Key {
    unsigned transfer_mask;
    std::vector<std::size_t> queues;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  const std::vector<double>& solve(const Key& key);

  MultiNodeParams params_;
  std::vector<TransferSpec> transfers_;
  std::size_t n_ = 0;
  std::unordered_map<Key, std::vector<double>, KeyHash> memo_;
};

}  // namespace lbsim::markov
