#pragma once
/// \file
/// Stochastic parameters of the analytical model (Section 2 of the paper).
/// All rates are in 1/seconds; a rate is the inverse of the corresponding mean.

#include <cstddef>
#include <vector>

namespace lbsim::markov {

/// Work-state bitmask with both nodes of a two-node system up (bit i = node i up).
inline constexpr unsigned kBothUp = 0b11;

struct NodeParams {
  /// Service rate lambda_d: tasks completed per second while up.
  double lambda_d = 1.0;
  /// Failure rate lambda_f of an up node; 0 means the node never fails.
  double lambda_f = 0.0;
  /// Recovery rate lambda_r of a down node; required > 0 whenever lambda_f > 0.
  double lambda_r = 0.0;
};

/// Throws std::invalid_argument unless lambda_d > 0 and the failure/recovery
/// pair is consistent (lambda_f > 0 implies lambda_r > 0; both nonnegative).
void validate(const NodeParams& node);

/// Steady-state probability that the node is up: lambda_r/(lambda_f+lambda_r),
/// or 1 when the node never fails. Enters LBP-2's eq. (8).
[[nodiscard]] double availability(const NodeParams& node);

/// Two-node system of Section 2: nodes plus the mean per-task transfer delay d.
/// A bundle of L tasks is delayed Exp(1/(d*L)) — mean d*L (paper Fig. 2).
struct TwoNodeParams {
  NodeParams nodes[2];
  double per_task_delay_mean = 0.02;
};

void validate(const TwoNodeParams& params);

/// The parameters measured in Section 4 of the paper:
/// lambda_d = (1.08, 1.86) tasks/s, mean failure time 20 s for both nodes,
/// mean recovery 10 s (node 0) / 20 s (node 1), per-task delay 0.02 s.
[[nodiscard]] TwoNodeParams ipdps2006_params();

/// Same nodes with failures switched off (the paper's "no failure case").
[[nodiscard]] TwoNodeParams without_failures(TwoNodeParams params);

/// Multi-node generalisation used by the extension solvers and simulators.
struct MultiNodeParams {
  std::vector<NodeParams> nodes;
  double per_task_delay_mean = 0.02;
};

void validate(const MultiNodeParams& params);

}  // namespace lbsim::markov
