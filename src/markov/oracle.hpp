#pragma once
/// \file
/// Closed-form expected completion times for degenerate configurations, used
/// as independent oracles when testing the regeneration solvers.

#include <cstddef>

#include "markov/params.hpp"

namespace lbsim::markov {

/// One reliable node, m tasks at rate lambda_d: E[T] = m / lambda_d.
[[nodiscard]] double single_node_mean(std::size_t m, double lambda_d);

/// One failing/recovering node: each task costs (1 + lambda_f/lambda_r)/lambda_d
/// in expectation (regeneration argument), so E[T] = m times that. Assumes the
/// node starts up.
[[nodiscard]] double single_node_churn_mean(std::size_t m, const NodeParams& node);

/// E[min(Erlang(m1, r1), Erlang(m2, r2))] via the Poisson race formula:
/// sum over j1 < m1, j2 < m2 of C(j1+j2, j1) p^j1 q^j2 / (r1 + r2), p = r1/(r1+r2).
[[nodiscard]] double erlang_race_mean_min(std::size_t m1, double r1, std::size_t m2,
                                          double r2);

/// E[max] = m1/r1 + m2/r2 - E[min]: the exact mean completion time of two
/// reliable nodes with no transfer (each node grinds through its own queue).
[[nodiscard]] double erlang_race_mean_max(std::size_t m1, double r1, std::size_t m2,
                                          double r2);

}  // namespace lbsim::markov
