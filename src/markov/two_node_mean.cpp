#include "markov/two_node_mean.hpp"

#include <algorithm>
#include <cmath>

#include "markov/linsolve.hpp"
#include "util/error.hpp"

namespace lbsim::markov {
namespace {

bool node_up(unsigned w, int i) noexcept { return (w >> i) & 1u; }

}  // namespace

TwoNodeMeanSolver::TwoNodeMeanSolver(TwoNodeParams params) : params_(params) {
  validate(params_);
}

std::size_t TwoNodeMeanSolver::lbp1_transfer_count(std::size_t m_sender, double gain) {
  // Tolerate float-accumulated sweep values like 1.0000000000000002.
  constexpr double kEps = 1e-9;
  LBSIM_REQUIRE(gain >= -kEps && gain <= 1.0 + kEps, "gain=" << gain);
  const double clamped = std::clamp(gain, 0.0, 1.0);
  return static_cast<std::size_t>(
      std::llround(clamped * static_cast<double>(m_sender)));
}

void TwoNodeMeanSolver::solve_lattice(std::size_t A, std::size_t B, double arrival_rate,
                                      int dest, std::size_t L,
                                      const std::vector<double>* hat,
                                      std::size_t hat_b_extent,
                                      std::vector<double>& out) const {
  const NodeParams& n0 = params_.nodes[0];
  const NodeParams& n1 = params_.nodes[1];
  out.assign((A + 1) * (B + 1) * 4, 0.0);

  std::vector<double> mat(16);
  std::vector<double> rhs(4);

  for (std::size_t a = 0; a <= A; ++a) {
    for (std::size_t b = 0; b <= B; ++b) {
      if (a == 0 && b == 0 && arrival_rate == 0.0) {
        // All work done: completion time zero in every work state.
        continue;  // out already zero
      }
      mat.assign(16, 0.0);
      for (unsigned w = 0; w < 4; ++w) {
        const bool up0 = node_up(w, 0);
        const bool up1 = node_up(w, 1);
        const double svc0 = (up0 && a > 0) ? n0.lambda_d : 0.0;
        const double svc1 = (up1 && b > 0) ? n1.lambda_d : 0.0;
        const double churn0 = up0 ? n0.lambda_f : n0.lambda_r;
        const double churn1 = up1 ? n1.lambda_f : n1.lambda_r;
        const double total = svc0 + svc1 + churn0 + churn1 + arrival_rate;

        // A work state showing a never-failing node as "down" is unreachable;
        // pin its unknown to zero so the coupled system stays nonsingular (no
        // reachable state transitions into it).
        const bool unreachable = (!up0 && n0.lambda_f == 0.0) ||
                                 (!up1 && n1.lambda_f == 0.0) || total <= 0.0;
        if (unreachable) {
          mat[w * 4 + w] = 1.0;
          rhs[w] = 0.0;
          continue;
        }

        mat[w * 4 + w] = 1.0;
        double known = 1.0;  // the E[tau] = 1/total term, scaled below
        if (svc0 > 0.0) known += svc0 * out[idx(a - 1, b, w, B)];
        if (svc1 > 0.0) known += svc1 * out[idx(a, b - 1, w, B)];
        if (arrival_rate > 0.0) {
          const std::size_t ha = a + (dest == 0 ? L : 0);
          const std::size_t hb = b + (dest == 1 ? L : 0);
          known += arrival_rate * (*hat)[idx(ha, hb, w, hat_b_extent)];
        }
        if (churn0 > 0.0) mat[w * 4 + (w ^ 0b01u)] -= churn0 / total;
        if (churn1 > 0.0) mat[w * 4 + (w ^ 0b10u)] -= churn1 / total;
        rhs[w] = known / total;
      }
      const std::vector<double> mu = solve_dense(mat, rhs);
      for (unsigned w = 0; w < 4; ++w) out[idx(a, b, w, B)] = mu[w];
    }
  }
}

void TwoNodeMeanSolver::ensure_hat(std::size_t A, std::size_t B) {
  if (hat_ready_ && A <= hat_a_ && B <= hat_b_) return;
  hat_a_ = std::max(A, hat_ready_ ? hat_a_ : A);
  hat_b_ = std::max(B, hat_ready_ ? hat_b_ : B);
  solve_lattice(hat_a_, hat_b_, 0.0, 0, 0, nullptr, 0, hat_);
  hat_ready_ = true;
}

double TwoNodeMeanSolver::mean_no_transit(std::size_t q0, std::size_t q1, unsigned state) {
  LBSIM_REQUIRE(state < 4, "state=" << state);
  for (const int i : {0, 1}) {
    LBSIM_REQUIRE(node_up(state, i) || params_.nodes[i].lambda_f > 0.0,
                  "initial state marks never-failing node " << i << " as down");
  }
  ensure_hat(q0, q1);
  return hat_[idx(q0, q1, state, hat_b_)];
}

double TwoNodeMeanSolver::mean_with_transit(std::size_t q0, std::size_t q1, std::size_t L,
                                            int dest, unsigned state) {
  LBSIM_REQUIRE(state < 4, "state=" << state);
  LBSIM_REQUIRE(dest == 0 || dest == 1, "dest=" << dest);
  if (L == 0) return mean_no_transit(q0, q1, state);

  const std::size_t hat_a = q0 + (dest == 0 ? L : 0);
  const std::size_t hat_b = q1 + (dest == 1 ? L : 0);
  ensure_hat(hat_a, hat_b);

  const double arrival_rate =
      1.0 / (params_.per_task_delay_mean * static_cast<double>(L));
  std::vector<double> lattice;
  solve_lattice(q0, q1, arrival_rate, dest, L, &hat_, hat_b_, lattice);
  return lattice[idx(q0, q1, state, q1)];
}

double TwoNodeMeanSolver::lbp1_mean(std::size_t m0, std::size_t m1, int sender, double gain,
                                    unsigned state) {
  LBSIM_REQUIRE(sender == 0 || sender == 1, "sender=" << sender);
  const std::size_t m_sender = (sender == 0) ? m0 : m1;
  const std::size_t L = lbp1_transfer_count(m_sender, gain);
  const int dest = 1 - sender;
  const std::size_t q0 = (sender == 0) ? m0 - L : m0;
  const std::size_t q1 = (sender == 1) ? m1 - L : m1;
  return mean_with_transit(q0, q1, L, dest, state);
}

}  // namespace lbsim::markov
