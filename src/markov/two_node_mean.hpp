#pragma once
/// \file
/// Exact expected overall completion time for the two-node system of Section 2,
/// via the regeneration-theory difference equations (paper eq. (4)).
///
/// The system state is (work state w, queue lengths (q0, q1), transit): w is a
/// bitmask (bit i set = node i up); `transit` is either empty ("hatted"
/// quantities, mu-hat) or one bundle of L tasks in flight toward a destination
/// node, delayed Exp(1/(d*L)). At every lattice point the four work states are
/// coupled by failure/recovery events, giving one 4x4 linear solve; service
/// events reference already-solved lower lattice points, and the bundle-arrival
/// event references the hatted lattice at (q_dest + L).
///
/// Boundary behaviour matches the paper: mu-hat(0,0) = 0 in every work state
/// (the work is done, whatever the nodes do afterwards), and rows/columns with
/// an empty queue simply lose the corresponding service event.

#include <cstddef>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::markov {

class TwoNodeMeanSolver {
 public:
  explicit TwoNodeMeanSolver(TwoNodeParams params);

  [[nodiscard]] const TwoNodeParams& params() const noexcept { return params_; }

  /// E[T-hat]: mean completion time with q0/q1 tasks queued, nothing in transit,
  /// starting in work state `state` (default both up).
  [[nodiscard]] double mean_no_transit(std::size_t q0, std::size_t q1,
                                       unsigned state = kBothUp);

  /// E[T]: q0/q1 queued (already net of the departed bundle) plus L tasks in
  /// flight toward node `dest`. L = 0 degenerates to mean_no_transit.
  [[nodiscard]] double mean_with_transit(std::size_t q0, std::size_t q1, std::size_t L,
                                         int dest, unsigned state = kBothUp);

  /// LBP-1 entry point: initial workloads (m0, m1); `sender` ships
  /// L = round(K * m_sender) tasks to the other node at t = 0.
  [[nodiscard]] double lbp1_mean(std::size_t m0, std::size_t m1, int sender, double gain,
                                 unsigned state = kBothUp);

  /// Number of tasks LBP-1 transfers for a given gain (paper eq. (1), rounded
  /// to the nearest whole task).
  [[nodiscard]] static std::size_t lbp1_transfer_count(std::size_t m_sender, double gain);

 private:
  /// Solves a full lattice [0..A] x [0..B]. When `arrival_rate` > 0, each point
  /// additionally references `hat` at (q0 + L*[dest==0], q1 + L*[dest==1]);
  /// `hat_b_extent` is the row stride of the hat lattice.
  void solve_lattice(std::size_t A, std::size_t B, double arrival_rate, int dest,
                     std::size_t L, const std::vector<double>* hat,
                     std::size_t hat_b_extent, std::vector<double>& out) const;

  /// Recomputes the cached hat lattice if the requested extent exceeds it.
  void ensure_hat(std::size_t A, std::size_t B);

  static std::size_t idx(std::size_t a, std::size_t b, unsigned w,
                         std::size_t b_extent) noexcept {
    return (a * (b_extent + 1) + b) * 4 + w;
  }

  TwoNodeParams params_;
  std::vector<double> hat_;
  std::size_t hat_a_ = 0;
  std::size_t hat_b_ = 0;
  bool hat_ready_ = false;
};

}  // namespace lbsim::markov
