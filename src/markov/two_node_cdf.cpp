#include "markov/two_node_cdf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "markov/two_node_mean.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace lbsim::markov {
namespace {

bool node_up(unsigned w, int i) noexcept { return (w >> i) & 1u; }

/// Per-work-state constants of one lattice point's ODE system.
struct PointSystem {
  double total[4];   // Lambda(w); < 0 marks an unreachable work state
  double churn0[4];  // rate of the node-0 churn event from w (toward w^1)
  double churn1[4];  // rate of the node-1 churn event from w (toward w^2)
  double svc0[4];
  double svc1[4];
  double arrival;
};

PointSystem build_point(const TwoNodeParams& p, std::size_t a, std::size_t b,
                        double arrival_rate) {
  PointSystem s{};
  s.arrival = arrival_rate;
  for (unsigned w = 0; w < 4; ++w) {
    const bool up0 = node_up(w, 0);
    const bool up1 = node_up(w, 1);
    s.svc0[w] = (up0 && a > 0) ? p.nodes[0].lambda_d : 0.0;
    s.svc1[w] = (up1 && b > 0) ? p.nodes[1].lambda_d : 0.0;
    s.churn0[w] = up0 ? p.nodes[0].lambda_f : p.nodes[0].lambda_r;
    s.churn1[w] = up1 ? p.nodes[1].lambda_f : p.nodes[1].lambda_r;
    s.total[w] = s.svc0[w] + s.svc1[w] + s.churn0[w] + s.churn1[w] + arrival_rate;
    const bool unreachable = !up0 && p.nodes[0].lambda_f == 0.0;
    const bool unreachable1 = !up1 && p.nodes[1].lambda_f == 0.0;
    if (unreachable || unreachable1) s.total[w] = -1.0;  // pin curve to zero
  }
  return s;
}

}  // namespace

double CdfCurve::tail_mass() const {
  LBSIM_REQUIRE(!values.empty(), "empty curve");
  return 1.0 - values.back();
}

double CdfCurve::mean_estimate() const {
  LBSIM_REQUIRE(grid.size() == values.size() && grid.size() >= 2, "malformed curve");
  std::vector<double> survival(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) survival[i] = 1.0 - values[i];
  return util::trapezoid(survival, grid[1] - grid[0]);
}

double CdfCurve::quantile(double q) const {
  LBSIM_REQUIRE(q > 0.0 && q <= 1.0, "q=" << q);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= q) return grid[i];
  }
  // Tail-aware sentinel: the requested mass lies beyond the integration
  // horizon. +infinity is the honest order statistic of "later than every
  // grid time" and keeps sweep/validation callers total — they can test
  // std::isinf (or compare tail_mass()) instead of catching a hard failure;
  // re-solve with a longer Config::horizon for a finite answer.
  return std::numeric_limits<double>::infinity();
}

TwoNodeParams swap_nodes(const TwoNodeParams& params) {
  TwoNodeParams out = params;
  std::swap(out.nodes[0], out.nodes[1]);
  return out;
}

unsigned swap_state_bits(unsigned state) {
  return ((state & 0b01u) << 1) | ((state & 0b10u) >> 1);
}

TwoNodeCdfSolver::TwoNodeCdfSolver(TwoNodeParams params, Config config)
    : params_(params), config_(config) {
  validate(params_);
  LBSIM_REQUIRE(config_.horizon > 0.0, "horizon=" << config_.horizon);
  LBSIM_REQUIRE(config_.dt > 0.0 && config_.dt <= config_.horizon, "dt=" << config_.dt);
  LBSIM_REQUIRE(config_.stability_factor > 0.0 && config_.stability_factor <= 1.0,
                "stability_factor=" << config_.stability_factor);
}

CdfCurve TwoNodeCdfSolver::cdf_no_transit(std::size_t q0, std::size_t q1,
                                          unsigned state) const {
  LBSIM_REQUIRE(state < 4, "state=" << state);
  return solve_toward_node1(params_, q0, q1, 0, state);
}

CdfCurve TwoNodeCdfSolver::cdf_with_transit(std::size_t q0, std::size_t q1, std::size_t L,
                                            int dest, unsigned state) const {
  LBSIM_REQUIRE(state < 4, "state=" << state);
  LBSIM_REQUIRE(dest == 0 || dest == 1, "dest=" << dest);
  if (L == 0) return cdf_no_transit(q0, q1, state);
  if (dest == 1) return solve_toward_node1(params_, q0, q1, L, state);
  return solve_toward_node1(swap_nodes(params_), q1, q0, L, swap_state_bits(state));
}

CdfCurve TwoNodeCdfSolver::lbp1_cdf(std::size_t m0, std::size_t m1, int sender, double gain,
                                    unsigned state) const {
  LBSIM_REQUIRE(sender == 0 || sender == 1, "sender=" << sender);
  const std::size_t m_sender = (sender == 0) ? m0 : m1;
  const std::size_t L = TwoNodeMeanSolver::lbp1_transfer_count(m_sender, gain);
  const std::size_t q0 = (sender == 0) ? m0 - L : m0;
  const std::size_t q1 = (sender == 1) ? m1 - L : m1;
  return cdf_with_transit(q0, q1, L, 1 - sender, state);
}

CdfCurve TwoNodeCdfSolver::solve_toward_node1(const TwoNodeParams& params, std::size_t q0,
                                              std::size_t q1, std::size_t L,
                                              unsigned state) const {
  const std::size_t n_steps =
      static_cast<std::size_t>(std::ceil(config_.horizon / config_.dt));
  const double dt = config_.dt;
  const std::size_t n_grid = n_steps + 1;
  const std::size_t b_hat = q1 + L;     // hat lattice column extent
  const std::size_t row_curves = (b_hat + 1) * 4;

  // Row buffers: curve (b, w) occupies [((b*4)+w) * n_grid, ...).
  const auto curve_of = [n_grid](std::vector<double>& row, std::size_t b,
                                 unsigned w) -> double* {
    return row.data() + ((b * 4) + w) * n_grid;
  };
  const auto curve_of_const = [n_grid](const std::vector<double>& row, std::size_t b,
                                       unsigned w) -> const double* {
    return row.data() + ((b * 4) + w) * n_grid;
  };

  std::vector<double> hat_prev(row_curves * n_grid, 0.0);
  std::vector<double> hat_cur(row_curves * n_grid, 0.0);
  std::vector<double> main_prev;
  std::vector<double> main_cur;
  if (L > 0) {
    main_prev.assign(row_curves * n_grid, 0.0);
    main_cur.assign(row_curves * n_grid, 0.0);
  }

  const double arrival_rate =
      (L > 0) ? 1.0 / (params.per_task_delay_mean * static_cast<double>(L)) : 0.0;

  // Integrates the 4-state system at one lattice point, writing 4 curves.
  const auto integrate_point = [&](const PointSystem& sys, std::vector<double>& row,
                                   std::size_t b, const std::vector<double>* lower_row,
                                   std::size_t lower_b_valid,
                                   const std::vector<double>* same_row_lower,
                                   const std::vector<double>* hat_row, std::size_t hat_b) {
    double y[4] = {0.0, 0.0, 0.0, 0.0};
    // Unreachable states keep p = 0 throughout (already zero-initialised).
    double u0[4];
    double u1[4];
    const auto gather_u = [&](std::size_t k, double* u) {
      for (unsigned w = 0; w < 4; ++w) {
        double acc = 0.0;
        if (sys.svc0[w] > 0.0 && lower_row != nullptr && lower_b_valid) {
          acc += sys.svc0[w] * curve_of_const(*lower_row, b, w)[k];
        }
        if (sys.svc1[w] > 0.0 && same_row_lower != nullptr) {
          acc += sys.svc1[w] * curve_of_const(*same_row_lower, b - 1, w)[k];
        }
        if (sys.arrival > 0.0 && hat_row != nullptr) {
          acc += sys.arrival * curve_of_const(*hat_row, hat_b, w)[k];
        }
        u[w] = acc;
      }
    };
    double lambda_max = 0.0;
    for (unsigned w = 0; w < 4; ++w) lambda_max = std::max(lambda_max, sys.total[w]);
    const std::size_t n_sub = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(dt * lambda_max / config_.stability_factor)));
    const double h = dt / static_cast<double>(n_sub);

    for (unsigned w = 0; w < 4; ++w) curve_of(row, b, w)[0] = 0.0;

    const auto deriv = [&sys](const double* y_in, const double* u, double* dy) {
      for (unsigned w = 0; w < 4; ++w) {
        if (sys.total[w] < 0.0) {  // unreachable state pinned at zero
          dy[w] = 0.0;
          continue;
        }
        double v = -sys.total[w] * y_in[w] + u[w];
        v += sys.churn0[w] * y_in[w ^ 0b01u];
        v += sys.churn1[w] * y_in[w ^ 0b10u];
        dy[w] = v;
      }
    };

    for (std::size_t k = 0; k < n_steps; ++k) {
      gather_u(k, u0);
      gather_u(k + 1, u1);
      for (std::size_t s = 0; s < n_sub; ++s) {
        // u linearly interpolated across the output step
        const double f0 = static_cast<double>(s) / static_cast<double>(n_sub);
        const double f1 = static_cast<double>(s + 1) / static_cast<double>(n_sub);
        const double fm = 0.5 * (f0 + f1);
        double ua[4], um[4], ub[4];
        for (unsigned w = 0; w < 4; ++w) {
          ua[w] = u0[w] + (u1[w] - u0[w]) * f0;
          um[w] = u0[w] + (u1[w] - u0[w]) * fm;
          ub[w] = u0[w] + (u1[w] - u0[w]) * f1;
        }
        double k1[4], k2[4], k3[4], k4[4], tmp[4];
        deriv(y, ua, k1);
        for (unsigned w = 0; w < 4; ++w) tmp[w] = y[w] + 0.5 * h * k1[w];
        deriv(tmp, um, k2);
        for (unsigned w = 0; w < 4; ++w) tmp[w] = y[w] + 0.5 * h * k2[w];
        deriv(tmp, um, k3);
        for (unsigned w = 0; w < 4; ++w) tmp[w] = y[w] + h * k3[w];
        deriv(tmp, ub, k4);
        for (unsigned w = 0; w < 4; ++w) {
          y[w] += h / 6.0 * (k1[w] + 2.0 * k2[w] + 2.0 * k3[w] + k4[w]);
          y[w] = std::clamp(y[w], 0.0, 1.0);
        }
      }
      for (unsigned w = 0; w < 4; ++w) curve_of(row, b, w)[k + 1] = y[w];
    }
  };

  for (std::size_t a = 0; a <= q0; ++a) {
    // --- hatted row a over b in [0, b_hat] ---
    std::fill(hat_cur.begin(), hat_cur.end(), 0.0);
    for (std::size_t b = 0; b <= b_hat; ++b) {
      if (a == 0 && b == 0) {
        // No work anywhere and nothing in transit: done at t = 0.
        for (unsigned w = 0; w < 4; ++w) {
          double* c = curve_of(hat_cur, 0, w);
          std::fill(c, c + n_grid, 1.0);
        }
        continue;
      }
      const PointSystem sys = build_point(params, a, b, 0.0);
      integrate_point(sys, hat_cur, b, a > 0 ? &hat_prev : nullptr, a > 0,
                      b > 0 ? &hat_cur : nullptr, nullptr, 0);
    }

    // --- transit row a over b in [0, q1] ---
    if (L > 0) {
      std::fill(main_cur.begin(), main_cur.end(), 0.0);
      for (std::size_t b = 0; b <= q1; ++b) {
        const PointSystem sys = build_point(params, a, b, arrival_rate);
        integrate_point(sys, main_cur, b, a > 0 ? &main_prev : nullptr, a > 0,
                        b > 0 ? &main_cur : nullptr, &hat_cur, b + L);
      }
    }

    if (a < q0) {
      std::swap(hat_prev, hat_cur);
      if (L > 0) std::swap(main_prev, main_cur);
    }
  }

  CdfCurve out;
  out.grid.resize(n_grid);
  for (std::size_t k = 0; k < n_grid; ++k) out.grid[k] = static_cast<double>(k) * dt;
  const std::vector<double>& final_row = (L > 0) ? main_cur : hat_cur;
  const double* curve = curve_of_const(final_row, q1, state);
  out.values.assign(curve, curve + n_grid);
  return out;
}

}  // namespace lbsim::markov
