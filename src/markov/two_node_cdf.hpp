#pragma once
/// \file
/// Completion-time distribution P{T <= t} for the two-node system, by
/// integrating the linear ODE system of paper eq. (5) over the task lattice.
///
/// For each lattice point (q0, q1) the four work-state curves satisfy
///   p-dot_w(t) = -Lambda(w) p_w(t) + sum_churn rate(w->w') p_w'(t) + u_w(t),
/// where u_w collects the service events (lower lattice points) and the
/// bundle-arrival event (hatted lattice). We integrate with classic RK4 and
/// per-point substepping (so stiff arrival rates for small bundles stay
/// stable), sweeping the lattice row by row to keep memory at
/// O(rows x time-grid) instead of O(lattice x time-grid).
///
/// Note: the printed matrix A1 in the paper carries a sign typo (+lambda_C on
/// the third diagonal); we implement the sign dictated by the regeneration
/// derivation, i.e. every diagonal entry is -Lambda of that work state.

#include <cstddef>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::markov {

/// A completion-time CDF sampled on a uniform grid.
struct CdfCurve {
  std::vector<double> grid;    ///< t_k = k * dt, k = 0..n
  std::vector<double> values;  ///< P{T <= t_k}

  /// P{T > horizon}: mass beyond the last grid point.
  [[nodiscard]] double tail_mass() const;

  /// E[T] estimated as the trapezoidal integral of (1 - p); an underestimate
  /// by at most tail_mass() * (true tail length).
  [[nodiscard]] double mean_estimate() const;

  /// Smallest grid time with p >= q (q in (0,1]). When the accumulated mass
  /// never reaches q within the horizon, returns +infinity (a tail-aware
  /// sentinel; check tail_mass() or extend Config::horizon for a finite value).
  [[nodiscard]] double quantile(double q) const;
};

class TwoNodeCdfSolver {
 public:
  struct Config {
    double horizon = 300.0;  ///< integrate t in [0, horizon]
    double dt = 0.05;        ///< output grid spacing (seconds)
    /// Internal substeps keep h * max-event-rate below this bound.
    double stability_factor = 0.5;
  };

  TwoNodeCdfSolver(TwoNodeParams params, Config config);

  /// CDF with q0/q1 tasks queued and nothing in transit, from work state `state`.
  [[nodiscard]] CdfCurve cdf_no_transit(std::size_t q0, std::size_t q1,
                                        unsigned state = kBothUp) const;

  /// CDF with L tasks in flight toward `dest` (queues already net of the bundle).
  [[nodiscard]] CdfCurve cdf_with_transit(std::size_t q0, std::size_t q1, std::size_t L,
                                          int dest, unsigned state = kBothUp) const;

  /// LBP-1: initial workloads (m0, m1), `sender` ships round(gain * m_sender).
  [[nodiscard]] CdfCurve lbp1_cdf(std::size_t m0, std::size_t m1, int sender, double gain,
                                  unsigned state = kBothUp) const;

 private:
  /// Core sweep with the bundle (if any) moving toward node 1; callers swap
  /// node labels to express transfers toward node 0.
  [[nodiscard]] CdfCurve solve_toward_node1(const TwoNodeParams& params, std::size_t q0,
                                            std::size_t q1, std::size_t L,
                                            unsigned state) const;

  TwoNodeParams params_;
  Config config_;
};

/// Returns `params` with the two node labels exchanged.
[[nodiscard]] TwoNodeParams swap_nodes(const TwoNodeParams& params);

/// Work-state mask after exchanging the node labels (bit 0 <-> bit 1).
[[nodiscard]] unsigned swap_state_bits(unsigned state);

}  // namespace lbsim::markov
