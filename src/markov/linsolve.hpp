#pragma once
/// \file
/// Small dense linear solver for the per-lattice-point work-state systems
/// (4x4 for two nodes, 2^n x 2^n for the multi-node extension).

#include <cstddef>
#include <vector>

namespace lbsim::markov {

/// Solves A x = b for square A (row-major, n*n entries) by Gaussian elimination
/// with partial pivoting. A and b are consumed (modified in place); the result
/// is returned. Throws std::logic_error on a (numerically) singular matrix.
[[nodiscard]] std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b);

}  // namespace lbsim::markov
