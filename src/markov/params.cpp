#include "markov/params.hpp"

#include "util/error.hpp"

namespace lbsim::markov {

void validate(const NodeParams& node) {
  LBSIM_REQUIRE(node.lambda_d > 0.0, "lambda_d=" << node.lambda_d);
  LBSIM_REQUIRE(node.lambda_f >= 0.0, "lambda_f=" << node.lambda_f);
  LBSIM_REQUIRE(node.lambda_r >= 0.0, "lambda_r=" << node.lambda_r);
  LBSIM_REQUIRE(node.lambda_f == 0.0 || node.lambda_r > 0.0,
                "a node that can fail (lambda_f=" << node.lambda_f
                                                  << ") needs lambda_r > 0");
}

double availability(const NodeParams& node) {
  validate(node);
  if (node.lambda_f == 0.0) return 1.0;
  return node.lambda_r / (node.lambda_f + node.lambda_r);
}

void validate(const TwoNodeParams& params) {
  validate(params.nodes[0]);
  validate(params.nodes[1]);
  LBSIM_REQUIRE(params.per_task_delay_mean > 0.0,
                "per_task_delay_mean=" << params.per_task_delay_mean);
}

TwoNodeParams ipdps2006_params() {
  TwoNodeParams p;
  p.nodes[0] = NodeParams{1.08, 1.0 / 20.0, 1.0 / 10.0};
  p.nodes[1] = NodeParams{1.86, 1.0 / 20.0, 1.0 / 20.0};
  p.per_task_delay_mean = 0.02;
  return p;
}

TwoNodeParams without_failures(TwoNodeParams params) {
  for (auto& node : params.nodes) {
    node.lambda_f = 0.0;
    node.lambda_r = 0.0;
  }
  return params;
}

void validate(const MultiNodeParams& params) {
  LBSIM_REQUIRE(!params.nodes.empty(), "no nodes");
  for (const auto& node : params.nodes) validate(node);
  LBSIM_REQUIRE(params.per_task_delay_mean > 0.0,
                "per_task_delay_mean=" << params.per_task_delay_mean);
}

}  // namespace lbsim::markov
