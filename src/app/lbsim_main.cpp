/// \file
/// Entry point of the `lbsim` binary. All behaviour lives in cli::run_lbsim so
/// the test suites can exercise every subcommand in-process.

#include <iostream>

#include "cli/lbsim.hpp"

int main(int argc, char** argv) {
  return lbsim::cli::run_lbsim(argc, argv, std::cout, std::cerr);
}
