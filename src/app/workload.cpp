#include "app/workload.hpp"

#include "util/error.hpp"

namespace lbsim::app {

WorkloadGenerator::WorkloadGenerator(stoch::DistributionPtr size_law)
    : size_law_(size_law ? std::move(size_law)
                         : std::make_unique<stoch::Exponential>(1.0)) {}

node::TaskBatch WorkloadGenerator::generate(std::size_t count, int origin,
                                            stoch::RngStream& rng) {
  node::TaskBatch batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    node::Task task;
    task.id = next_id_++;
    task.size = size_law_->sample(rng);
    task.origin = origin;
    batch.push_back(task);
  }
  return batch;
}

double size_based_service_time(const node::Task& task, double processing_rate) {
  LBSIM_REQUIRE(processing_rate > 0.0, "processing_rate=" << processing_rate);
  return task.size / processing_rate;
}

std::function<double(const node::Task&, stoch::RngStream&)> exponential_service(
    double processing_rate) {
  LBSIM_REQUIRE(processing_rate > 0.0, "processing_rate=" << processing_rate);
  return [processing_rate](const node::Task&, stoch::RngStream& rng) {
    return rng.exponential(processing_rate);
  };
}

std::function<double(const node::Task&, stoch::RngStream&)> calibrated_service(
    double processing_rate) {
  LBSIM_REQUIRE(processing_rate > 0.0, "processing_rate=" << processing_rate);
  return [processing_rate](const node::Task& task, stoch::RngStream&) {
    return size_based_service_time(task, processing_rate);
  };
}

}  // namespace lbsim::app
