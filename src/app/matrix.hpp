#pragma once
/// \file
/// Minimal dense matrix and row kernel. The paper's application defines one
/// task as the multiplication of one row by a static matrix duplicated on all
/// nodes; this kernel is used by the examples to do real work and by tests to
/// validate the workload model.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbsim::app {

/// Row-major dense matrix of doubles. Regular value type.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] const double& at(std::size_t r, std::size_t c) const;

  /// Builds a deterministic pseudo-random matrix (for examples/tests).
  [[nodiscard]] static Matrix seeded(std::size_t rows, std::size_t cols, std::uint64_t seed);

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// One "task" of the paper's application: row (1 x n) times matrix (n x m).
/// Returns the 1 x m product row. row.size() must equal matrix.rows().
[[nodiscard]] std::vector<double> multiply_row(const std::vector<double>& row,
                                               const Matrix& matrix);

}  // namespace lbsim::app
