#pragma once
/// \file
/// Workload generation calibrated to the paper's measurements.
///
/// The experiments randomise "the arithmetic precision of each element in a
/// row", which randomises the task sizes and hence yields iid, approximately
/// exponential execution times (Fig. 1): node 1 processes 1.08 tasks/s and
/// node 2 processes 1.86 tasks/s. We model a task's size as Exp(1) and a node
/// of processing rate lambda_d as serving a size-s task in s/lambda_d seconds,
/// which reproduces exactly an Exp(lambda_d) per-task execution time.

#include <functional>

#include "node/task.hpp"
#include "stochastic/distributions.hpp"
#include "stochastic/rng.hpp"

namespace lbsim::app {

/// Generates tasks with iid sizes from a configurable law (default Exp(1)).
class WorkloadGenerator {
 public:
  /// `size_law` must have mean ~> 0; defaults to Exp(1) when null.
  explicit WorkloadGenerator(stoch::DistributionPtr size_law = nullptr);

  /// `count` tasks originating at node `origin`, ids continuing from the last call.
  [[nodiscard]] node::TaskBatch generate(std::size_t count, int origin, stoch::RngStream& rng);

  [[nodiscard]] std::uint64_t tasks_generated() const noexcept { return next_id_ - 1; }

 private:
  stoch::DistributionPtr size_law_;
  std::uint64_t next_id_ = 1;
};

/// Service time of `task` on a node that completes unit-size tasks at
/// `processing_rate` tasks per second: task.size / processing_rate.
[[nodiscard]] double size_based_service_time(const node::Task& task, double processing_rate);

/// A ComputeElement::ServiceTimeFn for the *abstract model*: ignores the task
/// and draws Exp(processing_rate), exactly the law assumed by Section 2.
[[nodiscard]] std::function<double(const node::Task&, stoch::RngStream&)>
exponential_service(double processing_rate);

/// A ComputeElement::ServiceTimeFn for the *testbed*: deterministic given the
/// task size (randomness lives in the sizes), service = size / rate.
[[nodiscard]] std::function<double(const node::Task&, stoch::RngStream&)>
calibrated_service(double processing_rate);

}  // namespace lbsim::app
