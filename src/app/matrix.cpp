#include "app/matrix.hpp"

#include "stochastic/rng.hpp"
#include "util/error.hpp"

namespace lbsim::app {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  LBSIM_REQUIRE(rows >= 1 && cols >= 1, "matrix " << rows << "x" << cols);
}

double& Matrix::at(std::size_t r, std::size_t c) {
  LBSIM_REQUIRE(r < rows_ && c < cols_, "index (" << r << "," << c << ")");
  return data_[r * cols_ + c];
}

const double& Matrix::at(std::size_t r, std::size_t c) const {
  LBSIM_REQUIRE(r < rows_ && c < cols_, "index (" << r << "," << c << ")");
  return data_[r * cols_ + c];
}

Matrix Matrix::seeded(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  stoch::RngStream rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = rng.uniform(-1.0, 1.0);
    }
  }
  return m;
}

std::vector<double> multiply_row(const std::vector<double>& row, const Matrix& matrix) {
  LBSIM_REQUIRE(row.size() == matrix.rows(),
                "row length " << row.size() << " vs matrix rows " << matrix.rows());
  std::vector<double> out(matrix.cols(), 0.0);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const double scale = row[r];
    if (scale == 0.0) continue;
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      out[c] += scale * matrix.at(r, c);
    }
  }
  return out;
}

}  // namespace lbsim::app
