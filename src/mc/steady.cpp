#include "mc/steady.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "mc/engine.hpp"
#include "sim/simulator.hpp"
#include "stochastic/quantile_sketch.hpp"
#include "util/error.hpp"

namespace lbsim::mc {

SteadyResult run_steady(const ScenarioConfig& config, const SteadyConfig& sc) {
  LBSIM_REQUIRE(sc.replications >= 1, "replications=" << sc.replications);
  LBSIM_REQUIRE(config.arrivals.active() && config.arrivals.unbounded,
                "run_steady needs an active unbounded arrival stream");
  const SteadySpec& spec = config.steady;
  LBSIM_REQUIRE(spec.tasks >= 100, "steady window of " << spec.tasks << " tasks is too "
                                                          "short to analyse (need >= 100)");
  LBSIM_REQUIRE(spec.batches >= 2 && spec.batches <= 1024,
                "steady batch count " << spec.batches << " outside [2, 1024]");
  LBSIM_REQUIRE(spec.tasks >= 10 * spec.batches,
                "steady window of " << spec.tasks << " tasks cannot fill " << spec.batches
                                    << " batches with >= 10 observations each");
  LBSIM_REQUIRE(spec.warmup_cap >= 0.0 && spec.warmup_cap <= 0.9,
                "steady warm-up cap " << spec.warmup_cap << " outside [0, 0.9]");

  unsigned threads = sc.threads == 0 ? std::thread::hardware_concurrency() : sc.threads;
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(sc.replications)));

  // Post-warm-up pool size is bounded by replications * window, so the exact
  // quantile buffer is kept under the same cap as the finite engine.
  const bool keep_samples =
      sc.collect_samples || sc.replications * spec.tasks <= kExactQuantileCap;

  using ProfileClock = std::chrono::steady_clock;
  const ProfileClock::time_point wall_begin = ProfileClock::now();

  // Indexed by replication (not worker), so every fold below runs in
  // replication order and the result is independent of the thread count.
  struct Per {
    stoch::BatchMeans bm;
    RunResult run;
    std::size_t warmup = 0;
    std::vector<double> post;  // post-warm-up sojourns (keep_samples only)
    stoch::P2Quantile p50{0.5};
    stoch::P2Quantile p90{0.9};
    stoch::P2Quantile p99{0.99};
    RunTrace trace;  // events only; used when sc.obs.trace is attached
  };
  std::vector<Per> per(sc.replications);
  for (Per& p : per) p.trace.record_queues = false;

  // Per-worker observability state, folded in worker-id order after the join
  // (all merges commute, so the dump is thread-count-independent).
  std::vector<obs::Registry> worker_metrics(threads);
  std::vector<obs::PhaseProfile> worker_profiles(threads);

  const auto worker = [&](unsigned tid) {
    const ScenarioConfig local = config.clone();
    des::Simulator sim;
    std::vector<double> log;
    obs::Registry* metrics = sc.obs.metrics != nullptr ? &worker_metrics[tid] : nullptr;
    RunControls controls;
    if (sc.obs.profile != nullptr) controls.profile = &worker_profiles[tid];
    for (std::size_t rep = tid; rep < sc.replications; rep += threads) {
      log.clear();
      log.reserve(spec.tasks);
      SteadyProbe probe;
      probe.target_completions = spec.tasks;
      probe.sojourn_log = &log;
      Per& out = per[rep];
      RunTrace* trace = sc.obs.trace != nullptr ? &out.trace : nullptr;
      out.run = run_scenario(local, sc.seed, rep, trace, sim, probe, controls);
      ProfileClock::time_point fold_begin{};
      if (controls.profile != nullptr) fold_begin = ProfileClock::now();
      out.warmup = stoch::mser5_truncation(log, spec.warmup_cap);
      out.bm = stoch::batch_means(log, out.warmup, spec.batches);
      if (keep_samples) {
        out.post.assign(log.begin() + static_cast<std::ptrdiff_t>(out.warmup), log.end());
      } else {
        for (std::size_t i = out.warmup; i < log.size(); ++i) {
          out.p50.add(log[i]);
          out.p90.add(log[i]);
          out.p99.add(log[i]);
        }
      }
      if (metrics != nullptr) {
        metrics->counter("steady.replications").add(1);
        metrics->counter("steady.failures").add(out.run.failures);
        metrics->counter("steady.recoveries").add(out.run.recoveries);
        metrics->counter("steady.tasks_completed").add(out.run.tasks_completed);
        metrics->counter("steady.warmup_discarded").add(out.warmup);
        metrics->counter("net.tasks_moved").add(out.run.tasks_moved);
        metrics->counter("net.bundles_sent").add(out.run.bundles_sent);
        obs::Histogram& sojourn = metrics->histogram("steady.sojourn");
        for (std::size_t i = out.warmup; i < log.size(); ++i) sojourn.observe(log[i]);
      }
      if (controls.profile != nullptr) {
        controls.profile->fold_s +=
            std::chrono::duration<double>(ProfileClock::now() - fold_begin).count();
      }
    }
    if (metrics != nullptr) {
      const des::EventQueue::Stats& qs = sim.queue_stats();
      metrics->counter("des.events.scheduled").add(qs.scheduled);
      metrics->counter("des.events.popped").add(qs.popped);
      metrics->counter("des.events.cancelled").add(qs.cancelled);
      metrics->counter("des.slab.compactions").add(qs.compactions);
      metrics->gauge("des.queue.max_depth").max_of(static_cast<double>(qs.max_depth));
      metrics->gauge("des.queue.max_shard_depth")
          .max_of(static_cast<double>(qs.max_shard_depth));
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  SteadyResult result;
  // Pool the batch means across replications (replication order).
  std::vector<double> pooled;
  pooled.reserve(sc.replications * spec.batches);
  std::size_t observations = 0;
  double task_seconds = 0.0;
  double failures = 0.0;
  double moved = 0.0;
  for (const Per& p : per) {
    pooled.insert(pooled.end(), p.bm.means.begin(), p.bm.means.end());
    observations += p.bm.observations;
    result.warmup += p.warmup;
    result.horizon_time += p.run.completion_time;
    task_seconds += static_cast<double>(p.run.sojourn.count()) * p.run.sojourn.mean();
    failures += static_cast<double>(p.run.failures);
    moved += static_cast<double>(p.run.tasks_moved);
  }
  result.batch = stoch::summarize_batch_means(std::move(pooled), per[0].bm.batch_size);
  result.batch.observations = observations;  // per-rep batch sizes may differ by 1
  if (sc.obs.trace != nullptr) {
    for (std::size_t rep = 0; rep < sc.replications; ++rep) {
      sc.obs.trace->emit(0.0, obs::Kind::kRepBegin, -1, -1, 0, rep);
      sc.obs.trace->absorb(std::move(per[rep].trace.events));
    }
  }
  if (sc.obs.metrics != nullptr) {
    for (const obs::Registry& r : worker_metrics) sc.obs.metrics->merge(r);
    const double wall_s =
        std::chrono::duration<double>(ProfileClock::now() - wall_begin).count();
    if (wall_s > 0.0) {
      sc.obs.metrics->gauge("steady.reps_per_s")
          .set(static_cast<double>(sc.replications) / wall_s);
    }
  }
  if (sc.obs.profile != nullptr) {
    for (const obs::PhaseProfile& p : worker_profiles) sc.obs.profile->merge(p);
  }
  result.mean_queue_length =
      result.horizon_time > 0.0 ? task_seconds / result.horizon_time : 0.0;
  const double reps = static_cast<double>(sc.replications);
  result.mean_failures = failures / reps;
  result.mean_tasks_moved = moved / reps;

  if (keep_samples) {
    std::vector<double> all;
    all.reserve(observations);
    for (Per& p : per) all.insert(all.end(), p.post.begin(), p.post.end());
    if (sc.collect_samples) result.series = all;  // completion order, pre-sort
    std::sort(all.begin(), all.end());
    result.p50 = stoch::quantile_sorted(all, 0.5);
    result.p90 = stoch::quantile_sorted(all, 0.9);
    result.p99 = stoch::quantile_sorted(all, 0.99);
    if (sc.collect_samples) result.samples = std::move(all);
  } else {
    const auto combine = [&per](stoch::P2Quantile Per::* sketch) {
      std::vector<std::pair<std::size_t, double>> parts;
      parts.reserve(per.size());
      for (const Per& p : per) {
        if ((p.*sketch).count() > 0) {
          parts.emplace_back((p.*sketch).count(), (p.*sketch).estimate());
        }
      }
      return stoch::combine_estimates(parts);
    };
    result.p50 = combine(&Per::p50);
    result.p90 = combine(&Per::p90);
    result.p99 = combine(&Per::p99);
  }
  return result;
}

namespace {

OpenTheory decline(std::string reason) {
  OpenTheory out;
  out.reason = std::move(reason);
  return out;
}

}  // namespace

OpenTheory map_to_open_theory(const ScenarioConfig& config) {
  const env::ArrivalSpec& a = config.arrivals;
  if (a.process == env::ArrivalSpec::Process::kNone || !a.unbounded) {
    return decline("closed system (finite arrival stream)");
  }
  if (a.process == env::ArrivalSpec::Process::kMmpp) {
    return decline("environment-modulated arrivals (no stationary closed form)");
  }
  if (config.environment.enabled()) {
    return decline("environment-modulated dynamics (no stationary closed form)");
  }
  const std::size_t n = config.params.nodes.size();
  bool churns = false;
  if (config.churn_enabled) {
    for (const markov::NodeParams& np : config.params.nodes) {
      if (np.lambda_f > 0.0) churns = true;
    }
  }
  if (churns) return decline("node churn (no stationary closed form)");
  if (config.initially_down != 0) {
    return decline("initially-down nodes (transient initial condition)");
  }
  if (!config.schedule.empty()) {
    return decline("deterministic schedule (no stationary closed form)");
  }
  if (a.batch > 1) return decline("batch arrivals (no M/M/1 mapping)");
  if (a.rebalance) return decline("per-arrival rebalancing (no product form)");
  if (config.rebalance_period > 0.0) return decline("periodic rebalancing (no product form)");
  for (const std::size_t m : config.workloads) {
    if (m > 0) return decline("initial backlog (transient initial condition)");
  }

  // With no churn, no timers, no per-arrival episodes, and empty initial
  // queues, the policy never moves a task: every node is an independent
  // M/M/1 queue fed by its share of the Poisson stream.
  OpenTheory out;
  if (a.target >= 0) {
    const double mu = config.params.nodes[static_cast<std::size_t>(a.target)].lambda_d;
    const double lambda = a.rate;
    out.rho = lambda / mu;
    if (out.rho >= 1.0) return decline("unstable offered load (rho >= 1)");
    out.ok = true;
    out.has_law = true;
    out.rate = mu - lambda;
    out.mean = 1.0 / out.rate;
    return out;
  }
  // Uniform random split: Poisson thinning makes each node an independent
  // M/M/1(lambda/n, mu_i).
  const double lambda_node = a.rate / static_cast<double>(n);
  bool homogeneous = true;
  double mean = 0.0;
  double rho_max = 0.0;
  const double mu0 = config.params.nodes[0].lambda_d;
  for (const markov::NodeParams& np : config.params.nodes) {
    if (np.lambda_d != mu0) homogeneous = false;
    const double rho = lambda_node / np.lambda_d;
    rho_max = std::max(rho_max, rho);
    if (rho >= 1.0) return decline("unstable offered load (rho >= 1)");
    mean += 1.0 / (np.lambda_d - lambda_node);
  }
  out.ok = true;
  out.rho = rho_max;
  out.mean = mean / static_cast<double>(n);
  if (homogeneous) {
    // The mixture collapses: sojourn ~ Exp(mu - lambda/n) exactly.
    out.has_law = true;
    out.rate = mu0 - lambda_node;
  }
  return out;
}

}  // namespace lbsim::mc
