#pragma once
/// \file
/// Bridge from a runnable mc::ScenarioConfig to a markov::TheoryQuery: decides
/// whether the scenario's semantics stay inside the regeneration solvers'
/// model (start-only policy, exponential load-dependent bundle delays, no
/// periodic timer) and, when they do, replays the policy's t = 0 action
/// against the initial workloads to produce the solver-neutral initial
/// condition the theory oracle consumes.

#include <string>

#include "markov/theory_oracle.hpp"
#include "mc/scenario.hpp"

namespace lbsim::mc {

/// The bridge's answer: either a query the oracle can dispatch, or the exact
/// scenario semantics that put the run outside every closed form.
struct TheoryMapping {
  bool ok = false;
  markov::TheoryQuery query;  ///< valid iff ok
  std::string reason;         ///< valid iff !ok
};

/// Maps `config` onto the solvers' model. Pure: does not run the simulation,
/// only the policy's deterministic t = 0 decision. Note `ok` means "the MC
/// run and the query describe the same stochastic law"; whether an exact
/// solver is tractable for the query (n <= 8, ...) is the oracle's verdict.
[[nodiscard]] TheoryMapping map_to_theory(const ScenarioConfig& config);

}  // namespace lbsim::mc
