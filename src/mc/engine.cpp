#include "mc/engine.hpp"

#include <algorithm>
#include <thread>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace lbsim::mc {

double McResult::ci95() const noexcept { return stoch::ci_half_width(completion); }

McResult run_monte_carlo(const ScenarioConfig& config, const McConfig& mc) {
  LBSIM_REQUIRE(mc.replications >= 1, "replications=" << mc.replications);
  unsigned threads = mc.threads == 0 ? std::thread::hardware_concurrency() : mc.threads;
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(mc.replications)));

  struct Partial {
    stoch::RunningStats completion;
    double failures = 0.0;
    double tasks_moved = 0.0;
    double bundles = 0.0;
    std::vector<double> samples;
  };
  std::vector<Partial> partials(threads);

  const auto worker = [&](unsigned tid) {
    // Each worker clones the scenario once; per-replication state is rebuilt
    // inside run_scenario, and RNG streams are keyed by replication index.
    // One simulator per worker: its pooled event slab and heap capacity are
    // recycled across the whole replication loop.
    const ScenarioConfig local = config.clone();
    des::Simulator sim;
    Partial& out = partials[tid];
    if (mc.collect_samples) out.samples.reserve(mc.replications / threads + 1);
    for (std::size_t rep = tid; rep < mc.replications; rep += threads) {
      const RunResult run = run_scenario(local, mc.seed, rep, nullptr, sim);
      out.completion.add(run.completion_time);
      out.failures += static_cast<double>(run.failures);
      out.tasks_moved += static_cast<double>(run.tasks_moved);
      out.bundles += static_cast<double>(run.bundles_sent);
      if (mc.collect_samples) out.samples.push_back(run.completion_time);
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  McResult result;
  double failures = 0.0;
  double moved = 0.0;
  double bundles = 0.0;
  for (Partial& p : partials) {
    result.completion.merge(p.completion);
    failures += p.failures;
    moved += p.tasks_moved;
    bundles += p.bundles;
    result.samples.insert(result.samples.end(), p.samples.begin(), p.samples.end());
  }
  const double n = static_cast<double>(mc.replications);
  result.mean_failures = failures / n;
  result.mean_tasks_moved = moved / n;
  result.mean_bundles = bundles / n;
  if (mc.collect_samples) std::sort(result.samples.begin(), result.samples.end());
  return result;
}

}  // namespace lbsim::mc
