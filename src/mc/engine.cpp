#include "mc/engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "markov/theory_oracle.hpp"
#include "mc/theory.hpp"
#include "sim/simulator.hpp"
#include "stochastic/estimate.hpp"
#include "stochastic/quantile_sketch.hpp"
#include "util/error.hpp"

namespace lbsim::mc {

const char* vr_mode_name(VrMode mode) noexcept {
  switch (mode) {
    case VrMode::kNone: return "none";
    case VrMode::kAntithetic: return "antithetic";
    case VrMode::kControlVariate: return "cv";
    case VrMode::kBoth: return "both";
  }
  return "none";
}

bool parse_vr_mode(std::string_view text, VrMode& mode) noexcept {
  if (text == "none") {
    mode = VrMode::kNone;
  } else if (text == "antithetic") {
    mode = VrMode::kAntithetic;
  } else if (text == "cv") {
    mode = VrMode::kControlVariate;
  } else if (text == "both") {
    mode = VrMode::kBoth;
  } else {
    return false;
  }
  return true;
}

double McResult::ci95() const noexcept { return stoch::ci_half_width(completion); }

double McResult::sample_quantile(double q) const {
  LBSIM_REQUIRE(!samples.empty(), "sample_quantile needs collect_samples");
  return stoch::quantile_sorted(samples, q);
}

namespace {

using ProfileClock = std::chrono::steady_clock;

/// Folds one replication's result counters into a worker-local registry.
/// Called from worker threads on their own registry — no synchronisation.
void fold_run_metrics(obs::Registry& metrics, const RunResult& run) {
  metrics.counter("mc.replications").add(1);
  metrics.counter("mc.failures").add(run.failures);
  metrics.counter("mc.recoveries").add(run.recoveries);
  metrics.counter("mc.tasks_completed").add(run.tasks_completed);
  metrics.counter("mc.tasks_arrived").add(run.tasks_arrived);
  metrics.counter("env.transitions").add(run.env_transitions);
  metrics.counter("net.tasks_moved").add(run.tasks_moved);
  metrics.counter("net.bundles_sent").add(run.bundles_sent);
  metrics.histogram("mc.completion_time").observe(run.completion_time);
}

/// Folds the worker simulator's cumulative DES-core stats (the simulator is
/// reused across the worker's whole replication loop).
void fold_queue_metrics(obs::Registry& metrics, const des::Simulator& sim) {
  const des::EventQueue::Stats& qs = sim.queue_stats();
  metrics.counter("des.events.scheduled").add(qs.scheduled);
  metrics.counter("des.events.popped").add(qs.popped);
  metrics.counter("des.events.cancelled").add(qs.cancelled);
  metrics.counter("des.slab.compactions").add(qs.compactions);
  metrics.gauge("des.queue.max_depth").max_of(static_cast<double>(qs.max_depth));
  metrics.gauge("des.queue.max_shard_depth")
      .max_of(static_cast<double>(qs.max_shard_depth));
}

/// Stitches per-replication trace buffers into the sink in replication order,
/// each behind a kRepBegin marker — the merged trace is thread-count-
/// independent because workers wrote disjoint buffers.
void fold_traces(obs::TraceBuffer& sink, std::vector<RunTrace>& rep_traces) {
  for (std::size_t rep = 0; rep < rep_traces.size(); ++rep) {
    sink.emit(0.0, obs::Kind::kRepBegin, -1, -1, 0, rep);
    sink.absorb(std::move(rep_traces[rep].events));
  }
}

/// The control-variate plan: the control Y is the completion time of the
/// scenario's *churn-free surrogate* (same workloads, policy, delay law;
/// churn stripped) replayed under common random numbers, with E[Y] exact from
/// the theory oracle. Admissible iff the scenario is churn-affected (else Y
/// coincides with T and there is nothing to adjust) and the surrogate maps
/// onto a tractable solver.
struct ControlPlan {
  bool ok = false;
  std::string reason;        ///< fallback marker, valid iff !ok
  ScenarioConfig surrogate;  ///< valid iff ok
  double mean = 0.0;         ///< exact E[Y]
  std::string method;        ///< oracle solver behind `mean`
};

ControlPlan plan_control(const ScenarioConfig& config) {
  ControlPlan plan;
  bool churn_affected = config.initially_down != 0 || !config.schedule.empty();
  if (!churn_affected && config.churn_enabled) {
    for (const markov::NodeParams& node : config.params.nodes) {
      if (node.lambda_f > 0.0) {
        churn_affected = true;
        break;
      }
    }
  }
  if (!churn_affected) {
    plan.reason =
        "control variate unavailable: scenario is churn-free, so the control "
        "would coincide with the target";
    return plan;
  }
  ScenarioConfig surrogate = config.clone();
  surrogate.churn_enabled = false;
  surrogate.initially_down = 0;
  surrogate.schedule = env::Schedule{};
  const TheoryMapping mapping = map_to_theory(surrogate);
  if (!mapping.ok) {
    plan.reason = "control variate unavailable: " + mapping.reason;
    return plan;
  }
  const markov::TheoryPrediction prediction = markov::TheoryOracle{}.mean(mapping.query);
  if (!prediction.applicable) {
    plan.reason = "control variate unavailable: " + prediction.reason;
    return plan;
  }
  plan.ok = true;
  plan.surrogate = std::move(surrogate);
  plan.mean = prediction.mean;
  plan.method = prediction.method;
  return plan;
}

/// The VR replication loop. Kept apart from the plain loop so the historical
/// (vr = none) path stays byte-for-byte identical; this path always stores
/// the per-replication values (they are what the adjustment consumes), so its
/// quantile summary is exact at any replication count.
McResult run_variance_reduced(const ScenarioConfig& config, const McConfig& mc) {
  const bool antithetic = mc.vr == VrMode::kAntithetic || mc.vr == VrMode::kBoth;
  const bool want_control = mc.vr == VrMode::kControlVariate || mc.vr == VrMode::kBoth;
  LBSIM_REQUIRE(!antithetic || mc.replications % 2 == 0,
                "antithetic pairing needs an even replication count, got "
                    << mc.replications);

  McResult result;
  result.vr.requested = mc.vr;
  result.vr.antithetic = antithetic;

  const ProfileClock::time_point wall_begin = ProfileClock::now();

  ControlPlan plan;
  if (want_control) {
    plan = plan_control(config);
    if (!plan.ok) {
      result.vr.fallback = plan.reason;
      if (mc.obs.metrics != nullptr) mc.obs.metrics->counter("mc.vr.fallbacks").add(1);
    }
  }
  const bool use_control = want_control && plan.ok;

  const std::size_t reps = mc.replications;
  unsigned threads = mc.threads == 0 ? std::thread::hardware_concurrency() : mc.threads;
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(reps)));

  // Per-replication values, indexed by replication id: workers write disjoint
  // entries, so the arrays need no synchronisation and every statistic below
  // is independent of the thread count.
  std::vector<double> target(reps, 0.0);
  std::vector<double> control(use_control ? reps : 0, 0.0);

  // Per-replication trace buffers, also indexed by replication id (the
  // control surrogate runs are never traced — they are estimator internals,
  // not model events).
  std::vector<RunTrace> rep_traces;
  if (mc.obs.trace != nullptr) {
    rep_traces.resize(reps);
    for (RunTrace& t : rep_traces) t.record_queues = false;
  }

  struct Partial {
    stoch::RunningStats sojourn;
    double failures = 0.0;
    double tasks_moved = 0.0;
    double bundles = 0.0;
    obs::Registry metrics;
    obs::PhaseProfile profile;
  };
  std::vector<Partial> partials(threads);

  const auto worker = [&](unsigned tid) {
    const ScenarioConfig local = config.clone();
    ScenarioConfig local_surrogate;
    if (use_control) local_surrogate = plan.surrogate.clone();
    des::Simulator sim;
    sim.set_shard_count(mc.shards);
    Partial& out = partials[tid];
    obs::Registry* metrics = mc.obs.metrics != nullptr ? &out.metrics : nullptr;
    for (std::size_t rep = tid; rep < reps; rep += threads) {
      RunControls controls;
      // Only the target run is profiled; the surrogate's cost shows up in
      // measured reps/s and the mc.vr.surrogate_runs counter instead, so
      // profile.reps keeps meaning "replications".
      if (mc.obs.profile != nullptr) controls.profile = &out.profile;
      std::uint64_t stream_rep = rep;
      if (antithetic) {
        // Pair (2k, 2k+1): one stream id used twice, the odd member mirrored.
        controls.antithetic = rep % 2 == 1;
        stream_rep = rep / 2;
      }
      RunTrace* trace = mc.obs.trace != nullptr ? &rep_traces[rep] : nullptr;
      const RunResult run =
          run_scenario(local, mc.seed, stream_rep, trace, sim, SteadyProbe{}, controls);
      ProfileClock::time_point fold_begin{};
      if (controls.profile != nullptr) fold_begin = ProfileClock::now();
      target[rep] = run.completion_time;
      out.sojourn.merge(run.sojourn);
      out.failures += static_cast<double>(run.failures);
      out.tasks_moved += static_cast<double>(run.tasks_moved);
      out.bundles += static_cast<double>(run.bundles_sent);
      if (metrics != nullptr) fold_run_metrics(*metrics, run);
      if (controls.profile != nullptr) {
        controls.profile->fold_s +=
            std::chrono::duration<double>(ProfileClock::now() - fold_begin).count();
      }
      if (use_control) {
        // Common random numbers: stripping churn leaves the stream layout
        // unchanged, so the surrogate replays the same draws and Y stays
        // tightly coupled to T.
        RunControls ctrl_controls;
        ctrl_controls.antithetic = controls.antithetic;
        const RunResult ctrl = run_scenario(local_surrogate, mc.seed, stream_rep, nullptr,
                                            sim, SteadyProbe{}, ctrl_controls);
        control[rep] = ctrl.completion_time;
        if (metrics != nullptr) metrics->counter("mc.vr.surrogate_runs").add(1);
      }
    }
    if (metrics != nullptr) fold_queue_metrics(*metrics, sim);
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  // Raw (plain-estimator) statistics, accumulated in replication order.
  for (const double t : target) result.completion.add(t);
  double failures = 0.0;
  double moved = 0.0;
  double bundles = 0.0;
  for (Partial& p : partials) {
    result.sojourn.merge(p.sojourn);
    failures += p.failures;
    moved += p.tasks_moved;
    bundles += p.bundles;
    if (mc.obs.metrics != nullptr) mc.obs.metrics->merge(p.metrics);
    if (mc.obs.profile != nullptr) mc.obs.profile->merge(p.profile);
  }
  if (mc.obs.trace != nullptr) fold_traces(*mc.obs.trace, rep_traces);
  if (mc.obs.metrics != nullptr) {
    const double wall_s =
        std::chrono::duration<double>(ProfileClock::now() - wall_begin).count();
    if (wall_s > 0.0) {
      mc.obs.metrics->gauge("mc.reps_per_s").set(static_cast<double>(reps) / wall_s);
    }
  }
  const double n = static_cast<double>(reps);
  result.mean_failures = failures / n;
  result.mean_tasks_moved = moved / n;
  result.mean_bundles = bundles / n;
  std::vector<double> sorted = target;
  std::sort(sorted.begin(), sorted.end());
  result.p50 = stoch::quantile_sorted(sorted, 0.5);
  result.p90 = stoch::quantile_sorted(sorted, 0.9);
  result.p99 = stoch::quantile_sorted(sorted, 0.99);
  if (mc.collect_samples) result.samples = std::move(sorted);

  // Adjusted estimator: pair means under antithetic pairing, then an optional
  // control-variate regression on what remains.
  std::vector<double> t_obs;
  std::vector<double> y_obs;
  if (antithetic) {
    t_obs.reserve(reps / 2);
    for (std::size_t k = 0; k < reps / 2; ++k) {
      t_obs.push_back(0.5 * (target[2 * k] + target[2 * k + 1]));
    }
    if (use_control) {
      y_obs.reserve(reps / 2);
      for (std::size_t k = 0; k < reps / 2; ++k) {
        y_obs.push_back(0.5 * (control[2 * k] + control[2 * k + 1]));
      }
    }
  } else {
    t_obs = target;
    y_obs = control;
  }

  bool control_active = use_control;
  double adj_mean = 0.0;
  double adj_se = 0.0;
  double adj_var = 0.0;
  std::size_t adj_obs = 0;
  if (control_active) {
    const std::size_t pilot = mc.cv_pilot != 0
                                  ? mc.cv_pilot
                                  : std::clamp<std::size_t>(t_obs.size() / 10, 4, 64);
    LBSIM_REQUIRE(t_obs.size() >= pilot + 2,
                  "control variate needs at least pilot + 2 = "
                      << pilot + 2 << " observations, have " << t_obs.size()
                      << " (raise replications or lower the pilot)");
    const stoch::ControlVariateEstimate cv =
        stoch::control_variate_adjust(t_obs, y_obs, plan.mean, pilot);
    if (cv.ok) {
      result.vr.control = true;
      result.vr.beta = cv.beta;
      result.vr.pilot = cv.pilot;
      result.vr.control_mean = plan.mean;
      result.vr.control_method = plan.method;
      adj_mean = cv.mean;
      adj_se = cv.std_error;
      adj_var = cv.variance;
      adj_obs = cv.evaluated;
    } else {
      control_active = false;
      result.vr.fallback =
          "control variate unavailable: the control shows no variance in the pilot block";
      if (mc.obs.metrics != nullptr) mc.obs.metrics->counter("mc.vr.fallbacks").add(1);
    }
  }
  if (!control_active) {
    if (antithetic) {
      stoch::RunningStats pair_stats;
      for (const double z : t_obs) pair_stats.add(z);
      adj_mean = pair_stats.mean();
      adj_se = pair_stats.std_error();
      adj_var = pair_stats.variance();
      adj_obs = pair_stats.count();
    } else {
      // Everything fell back: the adjusted estimate is the raw one.
      adj_mean = result.completion.mean();
      adj_se = result.completion.std_error();
      adj_var = result.completion.variance();
      adj_obs = reps;
    }
  }
  result.vr.mean = adj_mean;
  result.vr.std_error = adj_se;
  result.vr.observations = adj_obs;

  // Per-replication variance of each estimator (a pair-mean observation costs
  // two replications); degenerate zero-variance runs report a neutral ratio.
  const double per_rep_adjusted = (antithetic ? 2.0 : 1.0) * adj_var;
  const double per_rep_raw = result.completion.variance();
  result.vr.variance_ratio =
      per_rep_adjusted > 0.0 ? per_rep_raw / per_rep_adjusted : 1.0;
  return result;
}

}  // namespace

McResult run_monte_carlo(const ScenarioConfig& config, const McConfig& mc) {
  LBSIM_REQUIRE(mc.replications >= 1, "replications=" << mc.replications);
  LBSIM_REQUIRE(mc.shards >= 1, "shards=" << mc.shards);
  if (mc.vr != VrMode::kNone) return run_variance_reduced(config, mc);
  unsigned threads = mc.threads == 0 ? std::thread::hardware_concurrency() : mc.threads;
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(mc.replications)));

  const ProfileClock::time_point wall_begin = ProfileClock::now();

  // Per-replication trace buffers, indexed by replication id: workers write
  // disjoint entries, and the post-join fold stitches them in replication
  // order, so the merged trace is thread-count-independent.
  std::vector<RunTrace> rep_traces;
  if (mc.obs.trace != nullptr) {
    rep_traces.resize(mc.replications);
    for (RunTrace& t : rep_traces) t.record_queues = false;
  }

  struct Partial {
    stoch::RunningStats completion;
    stoch::RunningStats sojourn;
    double failures = 0.0;
    double tasks_moved = 0.0;
    double bundles = 0.0;
    std::vector<double> samples;
    // Streaming quantile sketches (used when raw samples are not kept).
    stoch::P2Quantile p50{0.5};
    stoch::P2Quantile p90{0.9};
    stoch::P2Quantile p99{0.99};
    obs::Registry metrics;      // folded into the sink in worker-id order
    obs::PhaseProfile profile;  // folded by summation
  };
  std::vector<Partial> partials(threads);

  // Exact (thread-count-independent) quantiles are kept whenever the sample
  // buffer stays bounded: always under collect_samples, and transiently up to
  // kExactQuantileCap replications. Only past the cap does the per-worker P²
  // streaming path take over.
  const bool keep_samples = mc.collect_samples || mc.replications <= kExactQuantileCap;

  const auto worker = [&](unsigned tid) {
    // Each worker clones the scenario once; per-replication state is rebuilt
    // inside run_scenario, and RNG streams are keyed by replication index.
    // One simulator per worker: its pooled event slab and heap capacity are
    // recycled across the whole replication loop.
    const ScenarioConfig local = config.clone();
    des::Simulator sim;
    sim.set_shard_count(mc.shards);
    Partial& out = partials[tid];
    obs::Registry* metrics = mc.obs.metrics != nullptr ? &out.metrics : nullptr;
    RunControls controls;
    if (mc.obs.profile != nullptr) controls.profile = &out.profile;
    if (keep_samples) out.samples.reserve(mc.replications / threads + 1);
    for (std::size_t rep = tid; rep < mc.replications; rep += threads) {
      RunTrace* trace = mc.obs.trace != nullptr ? &rep_traces[rep] : nullptr;
      const RunResult run =
          run_scenario(local, mc.seed, rep, trace, sim, SteadyProbe{}, controls);
      ProfileClock::time_point fold_begin{};
      if (controls.profile != nullptr) fold_begin = ProfileClock::now();
      out.completion.add(run.completion_time);
      out.sojourn.merge(run.sojourn);
      out.failures += static_cast<double>(run.failures);
      out.tasks_moved += static_cast<double>(run.tasks_moved);
      out.bundles += static_cast<double>(run.bundles_sent);
      if (keep_samples) {
        out.samples.push_back(run.completion_time);
      } else {
        out.p50.add(run.completion_time);
        out.p90.add(run.completion_time);
        out.p99.add(run.completion_time);
      }
      if (metrics != nullptr) fold_run_metrics(*metrics, run);
      if (controls.profile != nullptr) {
        controls.profile->fold_s +=
            std::chrono::duration<double>(ProfileClock::now() - fold_begin).count();
      }
    }
    if (metrics != nullptr) fold_queue_metrics(*metrics, sim);
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  McResult result;
  double failures = 0.0;
  double moved = 0.0;
  double bundles = 0.0;
  for (Partial& p : partials) {
    result.completion.merge(p.completion);
    result.sojourn.merge(p.sojourn);
    failures += p.failures;
    moved += p.tasks_moved;
    bundles += p.bundles;
    result.samples.insert(result.samples.end(), p.samples.begin(), p.samples.end());
    if (mc.obs.metrics != nullptr) mc.obs.metrics->merge(p.metrics);
    if (mc.obs.profile != nullptr) mc.obs.profile->merge(p.profile);
  }
  if (mc.obs.trace != nullptr) fold_traces(*mc.obs.trace, rep_traces);
  if (mc.obs.metrics != nullptr) {
    const double wall_s =
        std::chrono::duration<double>(ProfileClock::now() - wall_begin).count();
    if (wall_s > 0.0) {
      mc.obs.metrics->gauge("mc.reps_per_s")
          .set(static_cast<double>(mc.replications) / wall_s);
    }
  }
  const double n = static_cast<double>(mc.replications);
  result.mean_failures = failures / n;
  result.mean_tasks_moved = moved / n;
  result.mean_bundles = bundles / n;
  if (keep_samples) {
    std::sort(result.samples.begin(), result.samples.end());
    result.p50 = stoch::quantile_sorted(result.samples, 0.5);
    result.p90 = stoch::quantile_sorted(result.samples, 0.9);
    result.p99 = stoch::quantile_sorted(result.samples, 0.99);
    // The transient buffer was only for the exact quantiles; the caller did
    // not ask for samples.
    if (!mc.collect_samples) {
      result.samples.clear();
      result.samples.shrink_to_fit();
    }
  } else {
    const auto combine = [&partials](stoch::P2Quantile Partial::* sketch) {
      std::vector<std::pair<std::size_t, double>> parts;
      parts.reserve(partials.size());
      for (const Partial& p : partials) {
        if ((p.*sketch).count() > 0) {
          parts.emplace_back((p.*sketch).count(), (p.*sketch).estimate());
        }
      }
      return stoch::combine_estimates(parts);
    };
    result.p50 = combine(&Partial::p50);
    result.p90 = combine(&Partial::p90);
    result.p99 = combine(&Partial::p99);
  }
  return result;
}

}  // namespace lbsim::mc
