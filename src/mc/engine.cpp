#include "mc/engine.hpp"

#include <algorithm>
#include <thread>

#include "sim/simulator.hpp"
#include "stochastic/quantile_sketch.hpp"
#include "util/error.hpp"

namespace lbsim::mc {

double McResult::ci95() const noexcept { return stoch::ci_half_width(completion); }

double McResult::sample_quantile(double q) const {
  LBSIM_REQUIRE(!samples.empty(), "sample_quantile needs collect_samples");
  return stoch::quantile_sorted(samples, q);
}

McResult run_monte_carlo(const ScenarioConfig& config, const McConfig& mc) {
  LBSIM_REQUIRE(mc.replications >= 1, "replications=" << mc.replications);
  unsigned threads = mc.threads == 0 ? std::thread::hardware_concurrency() : mc.threads;
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(mc.replications)));

  struct Partial {
    stoch::RunningStats completion;
    stoch::RunningStats sojourn;
    double failures = 0.0;
    double tasks_moved = 0.0;
    double bundles = 0.0;
    std::vector<double> samples;
    // Streaming quantile sketches (used when raw samples are not kept).
    stoch::P2Quantile p50{0.5};
    stoch::P2Quantile p90{0.9};
    stoch::P2Quantile p99{0.99};
  };
  std::vector<Partial> partials(threads);

  // Exact (thread-count-independent) quantiles are kept whenever the sample
  // buffer stays bounded: always under collect_samples, and transiently up to
  // kExactQuantileCap replications. Only past the cap does the per-worker P²
  // streaming path take over.
  const bool keep_samples = mc.collect_samples || mc.replications <= kExactQuantileCap;

  const auto worker = [&](unsigned tid) {
    // Each worker clones the scenario once; per-replication state is rebuilt
    // inside run_scenario, and RNG streams are keyed by replication index.
    // One simulator per worker: its pooled event slab and heap capacity are
    // recycled across the whole replication loop.
    const ScenarioConfig local = config.clone();
    des::Simulator sim;
    Partial& out = partials[tid];
    if (keep_samples) out.samples.reserve(mc.replications / threads + 1);
    for (std::size_t rep = tid; rep < mc.replications; rep += threads) {
      const RunResult run = run_scenario(local, mc.seed, rep, nullptr, sim);
      out.completion.add(run.completion_time);
      out.sojourn.merge(run.sojourn);
      out.failures += static_cast<double>(run.failures);
      out.tasks_moved += static_cast<double>(run.tasks_moved);
      out.bundles += static_cast<double>(run.bundles_sent);
      if (keep_samples) {
        out.samples.push_back(run.completion_time);
      } else {
        out.p50.add(run.completion_time);
        out.p90.add(run.completion_time);
        out.p99.add(run.completion_time);
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  McResult result;
  double failures = 0.0;
  double moved = 0.0;
  double bundles = 0.0;
  for (Partial& p : partials) {
    result.completion.merge(p.completion);
    result.sojourn.merge(p.sojourn);
    failures += p.failures;
    moved += p.tasks_moved;
    bundles += p.bundles;
    result.samples.insert(result.samples.end(), p.samples.begin(), p.samples.end());
  }
  const double n = static_cast<double>(mc.replications);
  result.mean_failures = failures / n;
  result.mean_tasks_moved = moved / n;
  result.mean_bundles = bundles / n;
  if (keep_samples) {
    std::sort(result.samples.begin(), result.samples.end());
    result.p50 = stoch::quantile_sorted(result.samples, 0.5);
    result.p90 = stoch::quantile_sorted(result.samples, 0.9);
    result.p99 = stoch::quantile_sorted(result.samples, 0.99);
    // The transient buffer was only for the exact quantiles; the caller did
    // not ask for samples.
    if (!mc.collect_samples) {
      result.samples.clear();
      result.samples.shrink_to_fit();
    }
  } else {
    const auto combine = [&partials](stoch::P2Quantile Partial::* sketch) {
      std::vector<std::pair<std::size_t, double>> parts;
      parts.reserve(partials.size());
      for (const Partial& p : partials) {
        if ((p.*sketch).count() > 0) {
          parts.emplace_back((p.*sketch).count(), (p.*sketch).estimate());
        }
      }
      return stoch::combine_estimates(parts);
    };
    result.p50 = combine(&Partial::p50);
    result.p90 = combine(&Partial::p90);
    result.p99 = combine(&Partial::p99);
  }
  return result;
}

}  // namespace lbsim::mc
