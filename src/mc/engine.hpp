#pragma once
/// \file
/// Parallel Monte-Carlo driver: runs N independent replications of a scenario
/// (disjoint RNG streams, so the estimate is identical for any thread count)
/// and aggregates completion-time statistics.

#include <cstdint>
#include <vector>

#include "mc/scenario.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::mc {

struct McConfig {
  std::size_t replications = 500;  ///< the paper uses 500 for its MC columns
  std::uint64_t seed = 0x5eed2006;
  unsigned threads = 0;            ///< 0 = std::thread::hardware_concurrency()
  bool collect_samples = false;    ///< keep raw completion times (ECDF/quantiles)
};

/// Largest replication count for which the engine computes its quantile
/// summary exactly even without collect_samples (a transient, bounded sample
/// buffer — ~512 KiB — merged across workers and discarded). Past this the
/// streaming P² path takes over so unbounded sweeps stay O(1) memory.
inline constexpr std::size_t kExactQuantileCap = 65536;

struct McResult {
  stoch::RunningStats completion;   ///< completion-time statistics
  stoch::RunningStats sojourn;      ///< per-task time-in-system, pooled over runs
  double mean_failures = 0.0;       ///< average churn events per run
  double mean_tasks_moved = 0.0;    ///< average migrated tasks per run
  double mean_bundles = 0.0;        ///< average transfers per run
  std::vector<double> samples;      ///< raw times, sorted (empty unless collect_samples)
  /// Completion-time quantiles, always populated. Exact type-7 values (and
  /// thread-count independent, like every other statistic) when
  /// collect_samples is on or replications <= kExactQuantileCap; beyond the
  /// cap they are count-weighted P² streaming estimates — O(1) memory, good
  /// to roughly a percent at the cap's per-worker sample sizes, and the one
  /// statistic that may vary slightly with the thread count.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const noexcept { return completion.mean(); }
  [[nodiscard]] double std_error() const noexcept { return completion.std_error(); }
  /// 95% normal-approximation half width.
  [[nodiscard]] double ci95() const noexcept;

  /// Exact type-7 quantile of the collected samples; requires collect_samples.
  [[nodiscard]] double sample_quantile(double q) const;
};

/// Runs the experiment. Deterministic in (config, mc.seed, mc.replications) —
/// except the p50/p90/p99 summary above kExactQuantileCap replications, which
/// is a streaming estimate (see McResult).
[[nodiscard]] McResult run_monte_carlo(const ScenarioConfig& config, const McConfig& mc);

}  // namespace lbsim::mc
