#pragma once
/// \file
/// Parallel Monte-Carlo driver: runs N independent replications of a scenario
/// (disjoint RNG streams, so the estimate is identical for any thread count)
/// and aggregates completion-time statistics.

#include <cstdint>
#include <vector>

#include "mc/scenario.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::mc {

struct McConfig {
  std::size_t replications = 500;  ///< the paper uses 500 for its MC columns
  std::uint64_t seed = 0x5eed2006;
  unsigned threads = 0;            ///< 0 = std::thread::hardware_concurrency()
  bool collect_samples = false;    ///< keep raw completion times (ECDF/quantiles)
};

struct McResult {
  stoch::RunningStats completion;   ///< completion-time statistics
  double mean_failures = 0.0;       ///< average churn events per run
  double mean_tasks_moved = 0.0;    ///< average migrated tasks per run
  double mean_bundles = 0.0;        ///< average transfers per run
  std::vector<double> samples;      ///< raw times (empty unless collect_samples)

  [[nodiscard]] double mean() const noexcept { return completion.mean(); }
  [[nodiscard]] double std_error() const noexcept { return completion.std_error(); }
  /// 95% normal-approximation half width.
  [[nodiscard]] double ci95() const noexcept;
};

/// Runs the experiment. Deterministic in (config, mc.seed, mc.replications).
[[nodiscard]] McResult run_monte_carlo(const ScenarioConfig& config, const McConfig& mc);

}  // namespace lbsim::mc
