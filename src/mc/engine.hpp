#pragma once
/// \file
/// Parallel Monte-Carlo driver: runs N independent replications of a scenario
/// (disjoint RNG streams, so the estimate is identical for any thread count)
/// and aggregates completion-time statistics.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mc/scenario.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::mc {

/// Variance-reduction mode of the replication loop (the estimator layer; see
/// docs/ARCHITECTURE.md).
enum class VrMode {
  kNone,            ///< plain independent replications (the historical estimator)
  kAntithetic,      ///< mirrored-stream replication pairs
  kControlVariate,  ///< churn-free surrogate under common random numbers,
                    ///< exact control mean from the theory oracle
  kBoth,            ///< antithetic pairs, control-variate-adjusted pair means
};

/// CLI-facing name of a mode: none|antithetic|cv|both.
[[nodiscard]] const char* vr_mode_name(VrMode mode) noexcept;

/// Parses a vr_mode_name() string; false (and `mode` untouched) on anything else.
[[nodiscard]] bool parse_vr_mode(std::string_view text, VrMode& mode) noexcept;

struct McConfig {
  std::size_t replications = 500;  ///< the paper uses 500 for its MC columns
  std::uint64_t seed = 0x5eed2006;
  unsigned threads = 0;            ///< 0 = std::thread::hardware_concurrency()
  bool collect_samples = false;    ///< keep raw completion times (ECDF/quantiles)
  /// Variance reduction. Antithetic modes need an even replication count; the
  /// control variate needs a churn-affected scenario whose churn-free
  /// surrogate maps to theory, and falls back (with McVrReport.fallback set)
  /// when it does not.
  VrMode vr = VrMode::kNone;
  /// Control-variate pilot observations (used to fit beta only); 0 = auto
  /// (roughly 10% of the observations, clamped to [4, 64]).
  std::size_t cv_pilot = 0;
  /// Event-queue shards per replication (>= 1). Bit-neutral at every value;
  /// 1 keeps the historical single-heap layout.
  std::size_t shards = 1;
  /// Observability sinks (trace / metrics / profile), all optional. Attaching
  /// any of them consumes zero RNG draws and leaves every statistic
  /// bit-identical to an unobserved run.
  ObsSinks obs;
};

/// Largest replication count for which the engine computes its quantile
/// summary exactly even without collect_samples (a transient, bounded sample
/// buffer — ~512 KiB — merged across workers and discarded). Past this the
/// streaming P² path takes over so unbounded sweeps stay O(1) memory.
inline constexpr std::size_t kExactQuantileCap = 65536;

/// Report of the variance-reduced estimator (McResult.vr). `mean`/`std_error`
/// are the *adjusted* estimate; the raw (plain) statistics stay in
/// McResult.completion, so callers always see both. A requested component
/// that is inadmissible for the scenario is dropped, not fatal: `fallback`
/// carries the reason and the remaining components (possibly none) stay
/// active.
struct McVrReport {
  VrMode requested = VrMode::kNone;
  bool antithetic = false;  ///< pair-mean estimator active
  bool control = false;     ///< control-variate adjustment active
  std::string fallback;     ///< why a requested component is inactive; "" = all active
  double mean = 0.0;        ///< adjusted estimate (== raw when nothing is active)
  double std_error = 0.0;
  std::size_t observations = 0;  ///< adjusted observations behind the estimate
  double beta = 0.0;             ///< fitted control coefficient (control only)
  double control_mean = 0.0;     ///< exact E[control] from the oracle
  std::string control_method;    ///< oracle solver behind control_mean
  std::size_t pilot = 0;         ///< observations spent calibrating beta
  /// Equal-replication-budget variance ratio Var(plain) / Var(adjusted): the
  /// factor by which the adjusted estimator multiplies effective throughput
  /// at a fixed replication count. Extra per-replication cost (the control's
  /// surrogate run) is *not* folded in — it shows up in measured reps/s.
  double variance_ratio = 1.0;

  /// 95% normal-approximation half width of the adjusted estimate.
  [[nodiscard]] double ci95() const noexcept { return 1.96 * std_error; }
};

struct McResult {
  stoch::RunningStats completion;   ///< completion-time statistics
  stoch::RunningStats sojourn;      ///< per-task time-in-system, pooled over runs
  double mean_failures = 0.0;       ///< average churn events per run
  double mean_tasks_moved = 0.0;    ///< average migrated tasks per run
  double mean_bundles = 0.0;        ///< average transfers per run
  std::vector<double> samples;      ///< raw times, sorted (empty unless collect_samples)
  /// Completion-time quantiles, always populated. Exact type-7 values (and
  /// thread-count independent, like every other statistic) when
  /// collect_samples is on or replications <= kExactQuantileCap; beyond the
  /// cap they are count-weighted P² streaming estimates — O(1) memory, good
  /// to roughly a percent at the cap's per-worker sample sizes, and the one
  /// statistic that may vary slightly with the thread count.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Variance-reduction report; requested == VrMode::kNone outside VR runs.
  /// VR runs always store all per-replication values transiently, so their
  /// quantile summary is exact at any replication count.
  McVrReport vr;

  [[nodiscard]] double mean() const noexcept { return completion.mean(); }
  [[nodiscard]] double std_error() const noexcept { return completion.std_error(); }
  /// 95% normal-approximation half width.
  [[nodiscard]] double ci95() const noexcept;

  /// Exact type-7 quantile of the collected samples; requires collect_samples.
  [[nodiscard]] double sample_quantile(double q) const;
};

/// Runs the experiment. Deterministic in (config, mc.seed, mc.replications) —
/// except the p50/p90/p99 summary above kExactQuantileCap replications, which
/// is a streaming estimate (see McResult).
[[nodiscard]] McResult run_monte_carlo(const ScenarioConfig& config, const McConfig& mc);

}  // namespace lbsim::mc
