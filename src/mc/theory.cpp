#include "mc/theory.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lbsim::mc {
namespace {

/// SystemView over the scenario's initial condition (t = 0, nothing has run):
/// queue lengths are the configured workloads and up/down follows the
/// initially_down mask. This is exactly what the live engine shows a policy
/// at its on_start call, so the replayed directives are identical.
class InitialView final : public core::SystemView {
 public:
  explicit InitialView(const ScenarioConfig& config) : config_(config) {}

  [[nodiscard]] std::size_t node_count() const override {
    return config_.workloads.size();
  }
  [[nodiscard]] std::size_t queue_length(int node) const override {
    return config_.workloads.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] bool is_up(int node) const override {
    return !config_.starts_down(static_cast<std::size_t>(node));
  }
  [[nodiscard]] markov::NodeParams node_params(int node) const override {
    return config_.params.nodes.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] double per_task_delay_mean() const override {
    return config_.params.per_task_delay_mean;
  }

 private:
  const ScenarioConfig& config_;
};

}  // namespace

TheoryMapping map_to_theory(const ScenarioConfig& config) {
  TheoryMapping mapping;
  LBSIM_REQUIRE(config.policy != nullptr, "scenario needs a policy");
  const std::size_t n = config.params.nodes.size();
  LBSIM_REQUIRE(config.workloads.size() == n, "workload/params size mismatch");

  // The env subsystem's driving processes are all outside the regeneration
  // solvers' iid-exponential world; decline each with its pinned marker (the
  // `lbsim validate` boundary points and validation_test rely on these exact
  // strings). An environment that cannot touch anything (churn off / all
  // lambda_f = 0, no MMPP) is vacuous and falls through.
  const bool any_failures =
      config.churn_enabled &&
      std::any_of(config.params.nodes.begin(), config.params.nodes.end(),
                  [](const markov::NodeParams& node) { return node.lambda_f > 0.0; });
  // Unit multipliers in every state are vacuous for churn: re-arming an
  // exponential TTF at its own rate is distributionally a no-op (that exact
  // reduction is pinned statistically in env_test), so only a state that
  // actually scales the hazard leaves the solvers' model.
  const bool modulates_hazard =
      config.environment.enabled() &&
      std::any_of(config.environment.failure_mult.begin(),
                  config.environment.failure_mult.end(),
                  [](double mult) { return mult != 1.0; });
  // A restricted exchange graph changes what every policy can see and ship;
  // the regeneration solvers assume the complete graph, so this decline comes
  // before any other (a graph-* scenario may also carry env/arrival extras).
  if (!config.topology.complete()) {
    mapping.reason = "neighbourhood-restricted topology";
    return mapping;
  }
  if (modulates_hazard && any_failures) {
    mapping.reason = "environment-modulated churn";
    return mapping;
  }
  if (config.arrivals.active()) {
    mapping.reason = "open arrivals";
    return mapping;
  }
  if (!config.schedule.empty()) {
    mapping.reason = "deterministic schedule";
    return mapping;
  }

  if (config.rebalance_period > 0.0) {
    mapping.reason = "periodic rebalancing timers are outside the regeneration model";
    return mapping;
  }

  // An event-driven policy only leaves the solvers' model if its hooks can
  // actually fire: failures need live churn, recoveries need live churn or an
  // initially-down node.
  const bool hooks_can_fire = any_failures || config.initially_down != 0;
  if (hooks_can_fire && !config.policy->start_only()) {
    mapping.reason = "policy '" + config.policy->name() +
                     "' reacts to failure/recovery events (no closed form)";
    return mapping;
  }

  // Replay the policy's deterministic t = 0 action, capping each directive by
  // what the sender still holds — byte-for-byte the engine's execute() rule.
  InitialView view(config);
  std::vector<std::size_t> queues = config.workloads;
  for (const core::TransferDirective& d : config.policy->on_start(view)) {
    LBSIM_REQUIRE(d.from >= 0 && static_cast<std::size_t>(d.from) < n, "from=" << d.from);
    LBSIM_REQUIRE(d.to >= 0 && static_cast<std::size_t>(d.to) < n && d.to != d.from,
                  "to=" << d.to);
    const std::size_t take = std::min(d.count, queues[static_cast<std::size_t>(d.from)]);
    if (take == 0) continue;
    queues[static_cast<std::size_t>(d.from)] -= take;
    mapping.query.transfers.push_back(
        {.from = d.from, .to = d.to, .count = take});
  }

  // The analytical law is Exp(1/(d * L)) bundle delay; a configured override
  // (Erlang, deterministic, setup shift) only matters if something is in
  // flight.
  if (!mapping.query.transfers.empty() && config.delay_model != nullptr) {
    mapping.reason = "bundle delays follow '" + config.delay_model->describe() +
                     "', not the analytical Exp(1/(d*L)) law";
    return mapping;
  }

  mapping.query.params = config.params;
  if (!config.churn_enabled) {
    // churn=false freezes the failure processes; the solvers see the same
    // system through lambda_f = 0.
    for (markov::NodeParams& node : mapping.query.params.nodes) node.lambda_f = 0.0;
  }
  mapping.query.queues = std::move(queues);
  if (n <= 32) {
    mapping.query.initial_state =
        markov::all_up_state(n) & static_cast<unsigned>(~config.initially_down);
  }
  mapping.ok = true;
  return mapping;
}

}  // namespace lbsim::mc
