#pragma once
/// \file
/// Infinite-horizon (open-system) Monte-Carlo driver: each replication opens
/// an unbounded arrival stream, observes a fixed number of task completions,
/// truncates the initial transient with MSER-5, and summarises the stationary
/// sojourn time with batch-means confidence intervals and quantiles. Also the
/// open-system analogue of mc::map_to_theory: an exact M/M/1 stationary law
/// at the no-churn points.

#include <cstdint>
#include <string>
#include <vector>

#include "mc/scenario.hpp"
#include "stochastic/steady_state.hpp"

namespace lbsim::mc {

struct SteadyConfig {
  /// Independent observation windows. One long window is usually the better
  /// spend (batch means already give a CI), so the default is 1; extra
  /// replications multiply the batch-means pool.
  std::size_t replications = 1;
  std::uint64_t seed = 0x5eed2006;
  unsigned threads = 0;         ///< 0 = std::thread::hardware_concurrency()
  bool collect_samples = false; ///< keep post-warm-up sojourns (ECDF/KS use)
  /// Observability sinks (trace / metrics / profile), all optional and
  /// bit-identity-neutral (zero RNG draws).
  ObsSinks obs;
};

/// Everything the steady engine reports. Deterministic in (config, seed,
/// replications) for every field including the quantiles whenever the
/// post-warm-up pool fits the exact buffer (kExactQuantileCap, shared with
/// the finite engine); past it the quantiles are count-weighted P² estimates.
struct SteadyResult {
  /// Pooled batch-means summary of the stationary sojourn time: grand mean,
  /// between-batch standard error, lag-1 autocorrelation diagnostic. Batch
  /// means are pooled across replications in replication order, so the
  /// estimate is independent of the thread count.
  stoch::BatchMeans batch;
  /// Stationary sojourn-time quantiles over the post-warm-up pool.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Observations MSER-5 truncated as warm-up, summed over replications.
  std::size_t warmup = 0;
  /// Simulated seconds, summed over replications.
  double horizon_time = 0.0;
  /// Time-averaged number of tasks in system (Little's law over the full
  /// windows: completed task-seconds / simulated time).
  double mean_queue_length = 0.0;
  double mean_failures = 0.0;     ///< churn events per replication
  double mean_tasks_moved = 0.0;  ///< migrated tasks per replication
  /// Post-warm-up sojourns, sorted (empty unless collect_samples).
  std::vector<double> samples;
  /// Post-warm-up sojourns in completion order, replications concatenated
  /// (empty unless collect_samples). Within-run samples are autocorrelated;
  /// consumers that need quasi-independent draws (the validate KS gate) thin
  /// this series by a stride, which sorting would make impossible.
  std::vector<double> series;

  [[nodiscard]] double mean() const noexcept { return batch.mean; }
  [[nodiscard]] double std_error() const noexcept { return batch.std_error; }
  [[nodiscard]] double ci95() const noexcept { return batch.ci95(); }
};

/// Runs the steady-state experiment. `config.steady.enabled` need not be set
/// (the caller already routed here) but the arrival stream must be active and
/// unbounded, and config.steady's window parameters must be coherent.
[[nodiscard]] SteadyResult run_steady(const ScenarioConfig& config, const SteadyConfig& sc);

/// Open-system stationary theory: either the exact M/M/1 answer or the exact
/// scenario semantics that leave stationary sojourn time without a closed
/// form. Valid mappings are uniform-random (or single-target) Poisson unit
/// arrivals into churn-free exponential servers, where each node is an
/// independent M/M/1 queue.
struct OpenTheory {
  bool ok = false;
  std::string reason;    ///< valid iff !ok — pinned, grep-able decline strings
  double mean = 0.0;     ///< stationary E[sojourn]
  /// True when the sojourn law is exactly Exp(rate) (single target, or a
  /// homogeneous uniform split); a heterogeneous split is an exponential
  /// mixture, for which only the mean is reported.
  bool has_law = false;
  double rate = 0.0;     ///< Exp parameter mu - lambda_node, valid iff has_law
  double rho = 0.0;      ///< max per-node utilisation (the stability margin)
};

/// Maps `config` onto the M/M/1 stationary law. Pure (runs nothing).
[[nodiscard]] OpenTheory map_to_open_theory(const ScenarioConfig& config);

}  // namespace lbsim::mc
