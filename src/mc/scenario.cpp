#include "mc/scenario.hpp"

#include <functional>
#include <sstream>

#include "app/workload.hpp"
#include "node/compute_element.hpp"
#include "node/failure_process.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace lbsim::mc {
namespace {

/// SystemView over the live CEs.
class LiveView final : public core::SystemView {
 public:
  LiveView(const markov::MultiNodeParams& params,
           const std::vector<std::unique_ptr<node::ComputeElement>>& ces)
      : params_(params), ces_(ces) {}

  [[nodiscard]] std::size_t node_count() const override { return ces_.size(); }
  [[nodiscard]] std::size_t queue_length(int n) const override {
    return ces_.at(static_cast<std::size_t>(n))->queue_length();
  }
  [[nodiscard]] bool is_up(int n) const override {
    return ces_.at(static_cast<std::size_t>(n))->is_up();
  }
  [[nodiscard]] markov::NodeParams node_params(int n) const override {
    return params_.nodes.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] double per_task_delay_mean() const override {
    return params_.per_task_delay_mean;
  }

 private:
  const markov::MultiNodeParams& params_;
  const std::vector<std::unique_ptr<node::ComputeElement>>& ces_;
};

void validate_config(const ScenarioConfig& config) {
  markov::validate(config.params);
  const std::size_t n = config.params.nodes.size();
  LBSIM_REQUIRE(n >= 2, "scenario needs >= 2 nodes");
  LBSIM_REQUIRE(config.workloads.size() == n,
                "workloads has " << config.workloads.size() << " entries for " << n
                                 << " nodes");
  LBSIM_REQUIRE(config.policy != nullptr, "scenario needs a policy");
  LBSIM_REQUIRE(config.initially_down < (1u << n), "initially_down mask");
}

}  // namespace

ScenarioConfig ScenarioConfig::clone() const {
  ScenarioConfig copy;
  copy.params = params;
  copy.workloads = workloads;
  copy.policy = policy ? policy->clone() : nullptr;
  copy.delay_model = delay_model ? delay_model->clone() : nullptr;
  copy.churn_enabled = churn_enabled;
  copy.initially_down = initially_down;
  copy.rebalance_period = rebalance_period;
  return copy;
}

ScenarioConfig make_two_node_scenario(const markov::TwoNodeParams& params, std::size_t m0,
                                      std::size_t m1, core::PolicyPtr policy) {
  ScenarioConfig config;
  config.params.nodes = {params.nodes[0], params.nodes[1]};
  config.params.per_task_delay_mean = params.per_task_delay_mean;
  config.workloads = {m0, m1};
  config.policy = std::move(policy);
  return config;
}

RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                       std::uint64_t replication, RunTrace* trace) {
  validate_config(config);
  const std::size_t n = config.params.nodes.size();

  // Disjoint, deterministic RNG streams per (replication, role, node):
  // results do not depend on thread scheduling.
  const std::uint64_t streams_per_run = 2 * static_cast<std::uint64_t>(n) + 1;
  const std::uint64_t base = replication * streams_per_run;
  std::vector<stoch::RngStream> service_rngs;
  std::vector<stoch::RngStream> churn_rngs;
  service_rngs.reserve(n);
  churn_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    service_rngs.emplace_back(seed, base + i);
    churn_rngs.emplace_back(seed, base + n + i);
  }
  stoch::RngStream net_rng(seed, base + 2 * n);

  des::Simulator sim;

  // --- nodes ---
  std::vector<std::unique_ptr<node::ComputeElement>> ces;
  ces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ces.push_back(std::make_unique<node::ComputeElement>(
        sim, static_cast<int>(i),
        app::exponential_service(config.params.nodes[i].lambda_d), service_rngs[i]));
  }

  if (trace != nullptr) {
    trace->queue_lengths.assign(n, des::TimeSeries{});
    for (std::size_t i = 0; i < n; ++i) {
      ces[i]->set_queue_trace(&trace->queue_lengths[i]);
    }
  }

  // --- links (full mesh, delay model cloned per directed pair) ---
  const net::ExponentialBundleDelay default_delay(config.params.per_task_delay_mean);
  const net::TransferDelayModel& delay_proto =
      config.delay_model ? *config.delay_model
                         : static_cast<const net::TransferDelayModel&>(default_delay);
  std::vector<std::unique_ptr<net::Link>> links(n * n);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      links[from * n + to] = std::make_unique<net::Link>(
          sim, static_cast<int>(from), static_cast<int>(to), delay_proto.clone(), net_rng);
    }
  }

  // --- completion tracking ---
  std::size_t remaining = 0;
  for (const std::size_t m : config.workloads) remaining += m;
  double completion_time = 0.0;
  bool done = remaining == 0;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->set_completion_handler([&, i](const node::Task&) {
      (void)i;
      LBSIM_CHECK(remaining > 0, "completed more tasks than injected");
      if (--remaining == 0) {
        done = true;
        completion_time = sim.now();
      }
    });
  }

  // --- initial workloads (unit tasks; the abstract model draws service times
  //     from Exp(lambda_d) regardless of size) ---
  std::uint64_t next_id = 1;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->enqueue_batch(
        node::make_unit_tasks(config.workloads[i], static_cast<int>(i), next_id));
    next_id += config.workloads[i];
  }

  // --- transfer plumbing ---
  LiveView view(config.params, ces);
  RunResult result;
  const auto execute = [&](const std::vector<core::TransferDirective>& directives) {
    for (const core::TransferDirective& d : directives) {
      LBSIM_REQUIRE(d.from >= 0 && static_cast<std::size_t>(d.from) < n, "from=" << d.from);
      LBSIM_REQUIRE(d.to >= 0 && static_cast<std::size_t>(d.to) < n && d.to != d.from,
                    "to=" << d.to);
      if (d.count == 0) continue;
      node::TaskBatch batch = ces[static_cast<std::size_t>(d.from)]->extract_tasks(d.count);
      if (batch.empty()) continue;
      result.bundles_sent += 1;
      result.tasks_moved += batch.size();
      if (trace != nullptr) {
        std::ostringstream os;
        os << d.from << "->" << d.to << " x" << batch.size();
        trace->events.log(sim.now(), "transfer", os.str());
      }
      const std::size_t batch_size = batch.size();
      links[static_cast<std::size_t>(d.from) * n + static_cast<std::size_t>(d.to)]->send(
          std::move(batch), [&, batch_size](net::DataTransfer&& xfer) {
            if (trace != nullptr) {
              std::ostringstream os;
              os << xfer.from << "->" << xfer.to << " x" << batch_size;
              trace->events.log(sim.now(), "arrival", os.str());
            }
            ces[static_cast<std::size_t>(xfer.to)]->enqueue_batch(std::move(xfer.tasks));
          });
    }
  };

  // --- churn ---
  std::vector<std::unique_ptr<node::FailureProcess>> churn;
  churn.reserve(n);
  core::LoadBalancingPolicy& policy = *config.policy;
  for (std::size_t i = 0; i < n; ++i) {
    const markov::NodeParams& np = config.params.nodes[i];
    stoch::DistributionPtr ttf;
    stoch::DistributionPtr ttr;
    if (config.churn_enabled && np.lambda_f > 0.0) {
      ttf = std::make_unique<stoch::Exponential>(np.lambda_f);
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    } else if ((config.initially_down >> i) & 1u) {
      LBSIM_REQUIRE(np.lambda_r > 0.0, "initially-down node " << i << " cannot recover");
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    }
    auto process = std::make_unique<node::FailureProcess>(sim, *ces[i], std::move(ttf),
                                                          std::move(ttr), churn_rngs[i]);
    process->set_failure_handler([&](int node_id) {
      ++result.failures;
      if (trace != nullptr) trace->events.log(sim.now(), "fail", std::to_string(node_id));
      execute(policy.on_failure(node_id, view));
    });
    process->set_recovery_handler([&](int node_id) {
      ++result.recoveries;
      if (trace != nullptr) trace->events.log(sim.now(), "recover", std::to_string(node_id));
      execute(policy.on_recovery(node_id, view));
    });
    churn.push_back(std::move(process));
  }

  // --- t = 0: policy's initial action, then churn starts ---
  execute(policy.on_start(view));
  std::function<void()> tick;
  if (config.rebalance_period > 0.0) {
    // Recurring timer for periodic policies; stops mattering once done.
    // `tick` outlives the whole run (the simulation drains inside this
    // scope), so the rescheduling lambda can reference it directly — a
    // self-captured shared_ptr here leaks one cycle per replication.
    tick = [&] {
      if (done) return;
      execute(policy.on_periodic(view));
      sim.schedule_in(config.rebalance_period, tick);
    };
    sim.schedule_in(config.rebalance_period, tick);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool can_churn = config.churn_enabled && config.params.nodes[i].lambda_f > 0.0;
    const bool starts_down = (config.initially_down >> i) & 1u;
    if (can_churn || starts_down) churn[i]->start(starts_down);
  }

  sim.run_while_pending([&] { return done; });
  LBSIM_CHECK(done, "simulation drained its event queue before completing "
                        << remaining << " tasks");

  result.completion_time = completion_time;
  for (const auto& ce : ces) result.tasks_completed += ce->stats().tasks_completed;
  return result;
}

}  // namespace lbsim::mc
