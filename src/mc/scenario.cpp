#include "mc/scenario.hpp"

#include <chrono>
#include <functional>
#include <optional>

#include "app/workload.hpp"
#include "node/compute_element.hpp"
#include "node/failure_process.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace lbsim::mc {
namespace {

/// SystemView over the live CEs' structure-of-arrays hot state: queue lengths
/// and up flags are read from two packed arrays the CEs mirror on every
/// transition, so a policy scan over n nodes walks contiguous memory instead
/// of chasing one heap allocation per node. When a (non-complete) topology is
/// active the view restricts each node's visible peers to its current
/// adjacency; the pointer is swapped on environment transitions under edge
/// churn.
class LiveView final : public core::SystemView {
 public:
  LiveView(const markov::MultiNodeParams& params,
           const std::vector<std::uint32_t>& queue_len, const std::vector<std::uint8_t>& up)
      : params_(params), queue_len_(queue_len), up_(up) {}

  [[nodiscard]] std::size_t node_count() const override { return queue_len_.size(); }
  [[nodiscard]] std::size_t queue_length(int n) const override {
    return queue_len_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] bool is_up(int n) const override {
    return up_.at(static_cast<std::size_t>(n)) != 0;
  }
  [[nodiscard]] markov::NodeParams node_params(int n) const override {
    return params_.nodes.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] double per_task_delay_mean() const override {
    return params_.per_task_delay_mean;
  }
  [[nodiscard]] std::size_t neighbor_count(int n) const override {
    if (topology_ == nullptr) return core::SystemView::neighbor_count(n);
    return topology_->degree(static_cast<std::size_t>(n));
  }
  [[nodiscard]] int neighbor(int n, std::size_t k) const override {
    if (topology_ == nullptr) return core::SystemView::neighbor(n, k);
    return static_cast<int>(topology_->neighbor(static_cast<std::size_t>(n), k));
  }

  void set_topology(const net::Topology* topology) noexcept { topology_ = topology; }
  [[nodiscard]] const net::Topology* topology() const noexcept { return topology_; }

 private:
  const markov::MultiNodeParams& params_;
  const std::vector<std::uint32_t>& queue_len_;
  const std::vector<std::uint8_t>& up_;
  const net::Topology* topology_ = nullptr;  // null = complete (historical path)
};

void validate_config(const ScenarioConfig& config, bool allow_unbounded) {
  markov::validate(config.params);
  const std::size_t n = config.params.nodes.size();
  LBSIM_REQUIRE(n >= 2, "scenario needs >= 2 nodes");
  LBSIM_REQUIRE(!config.arrivals.unbounded || allow_unbounded,
                "unbounded arrival streams leave completion time undefined; they are "
                "admitted only through the steady-state engine (mc::run_steady)");
  LBSIM_REQUIRE(config.workloads.size() == n,
                "workloads has " << config.workloads.size() << " entries for " << n
                                 << " nodes");
  LBSIM_REQUIRE(config.policy != nullptr, "scenario needs a policy");
  LBSIM_REQUIRE(n >= 64 || config.initially_down < (std::uint64_t{1} << n),
                "initially_down mask");
  env::validate(config.environment);
  env::validate(config.arrivals, n,
                config.environment.enabled() ? &config.environment : nullptr);
  env::validate(config.schedule, n);
  LBSIM_REQUIRE(!config.topology.dynamic() ||
                    (!config.topology.complete() && config.environment.enabled()),
                "topology edge churn (churn_drop > 0) needs a non-complete topology and "
                "a configured environment CTMC to drive it");
  for (std::size_t i = 0; i < n; ++i) {
    LBSIM_REQUIRE(!config.schedule.scheduled(i) || !config.starts_down(i),
                  "node " << i << " has both a schedule clause and an initially_down bit; "
                             "use down@0-... in the schedule instead");
  }
}

/// Completion bookkeeping shared by all per-node handlers: the handlers
/// capture one pointer to this, so their std::functions stay inside the
/// small-object buffer (no heap allocation per node per replication). Every
/// completion carries its per-task record (arrival / first service start), so
/// the tracker also accumulates the run's latency observations.
struct CompletionTracker {
  des::Simulator* sim = nullptr;
  RunResult* result = nullptr;
  std::size_t remaining = 0;
  /// False while an arrival stream still owes epochs: the run is complete
  /// only once everything injected so far is processed AND nothing more will
  /// arrive.
  bool injection_done = true;
  bool done = false;
  double completion_time = 0.0;
  /// Steady-state mode: stop at this many completions instead of draining.
  std::size_t target_completions = 0;
  std::uint64_t completed = 0;
  std::vector<double>* sojourn_log = nullptr;

  void maybe_finish() {
    if (remaining == 0 && injection_done) {
      done = true;
      completion_time = sim->now();
    }
  }
  void on_complete(const node::Task& task) {
    LBSIM_CHECK(remaining > 0, "completed more tasks than injected");
    --remaining;
    ++completed;
    const double now = sim->now();
    const double sojourn = now - task.arrival_time;
    result->sojourn.add(sojourn);
    if (task.first_service_start >= 0.0) {
      result->queue_delay.add(task.first_service_start - task.arrival_time);
    }
    if (sojourn_log != nullptr) sojourn_log->push_back(sojourn);
    if (target_completions > 0 && completed >= target_completions) {
      done = true;
      completion_time = now;
      return;
    }
    maybe_finish();
  }
};

}  // namespace

ScenarioConfig ScenarioConfig::clone() const {
  ScenarioConfig copy;
  copy.params = params;
  copy.workloads = workloads;
  copy.policy = policy ? policy->clone() : nullptr;
  copy.delay_model = delay_model ? delay_model->clone() : nullptr;
  copy.churn_enabled = churn_enabled;
  copy.initially_down = initially_down;
  copy.rebalance_period = rebalance_period;
  copy.environment = environment;
  copy.arrivals = arrivals;
  copy.schedule = schedule;
  copy.steady = steady;
  copy.topology = topology;
  copy.exchange_period = exchange_period;
  copy.exchange_latency = exchange_latency;
  copy.exchange_loss = exchange_loss;
  copy.state_channel = state_channel;
  return copy;
}

ScenarioConfig make_two_node_scenario(const markov::TwoNodeParams& params, std::size_t m0,
                                      std::size_t m1, core::PolicyPtr policy) {
  ScenarioConfig config;
  config.params.nodes = {params.nodes[0], params.nodes[1]};
  config.params.per_task_delay_mean = params.per_task_delay_mean;
  config.workloads = {m0, m1};
  config.policy = std::move(policy);
  return config;
}

RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                       std::uint64_t replication, RunTrace* trace) {
  des::Simulator sim;
  return run_scenario(config, seed, replication, trace, sim);
}

RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                       std::uint64_t replication, RunTrace* trace, des::Simulator& sim) {
  return run_scenario(config, seed, replication, trace, sim, SteadyProbe{});
}

RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                       std::uint64_t replication, RunTrace* trace, des::Simulator& sim,
                       const SteadyProbe& probe) {
  return run_scenario(config, seed, replication, trace, sim, probe, RunControls{});
}

RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                       std::uint64_t replication, RunTrace* trace, des::Simulator& sim,
                       const SteadyProbe& probe, const RunControls& controls) {
  // Phase profiling reads the monotonic clock only (never the RNG streams):
  // everything before the event loop is "setup", the loop itself is "loop".
  using ProfileClock = std::chrono::steady_clock;
  ProfileClock::time_point profile_begin{};
  if (controls.profile != nullptr) profile_begin = ProfileClock::now();

  validate_config(config, /*allow_unbounded=*/probe.target_completions > 0);
  const std::size_t n = config.params.nodes.size();
  sim.reset();  // recycles the pooled event slab when the caller reuses `sim`

  // Disjoint, deterministic RNG streams per (replication, role, node):
  // results do not depend on thread scheduling. Stream ids keep the
  // historical layout ([0, n) service, [n, 2n) churn, 2n network); the
  // environment and arrival streams are appended only when configured, so
  // scenarios without them stay bit-for-bit identical to earlier releases.
  const bool has_environment = config.environment.enabled();
  const bool has_arrivals = config.arrivals.active();
  const bool has_policy_rng = config.policy->needs_rng();
  const std::uint64_t streams_per_run = 2 * static_cast<std::uint64_t>(n) + 1 +
                                        (has_environment ? 1 : 0) + (has_arrivals ? 1 : 0) +
                                        (has_policy_rng ? 1 : 0);
  const std::uint64_t base = replication * streams_per_run;
  // One backing vector: entries [0, n) are the service streams, [n, 2n) the
  // churn streams (same stream ids as always).
  std::vector<stoch::RngStream> rngs;
  rngs.reserve(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) rngs.emplace_back(seed, base + i);
  stoch::RngStream net_rng(seed, base + 2 * n);
  // Stream construction is not free (long-jump decorrelation), so the env and
  // arrival streams exist only when their process does.
  std::optional<stoch::RngStream> env_rng;
  if (has_environment) env_rng.emplace(seed, base + 2 * n + 1);
  std::optional<stoch::RngStream> arrival_rng;
  if (has_arrivals) {
    arrival_rng.emplace(seed, base + 2 * n + 1 + (has_environment ? 1 : 0));
  }
  // Randomised policies (RandomProbePolicy) draw from their own appended
  // stream, re-bound every replication; deterministic policies leave the
  // stream layout — and therefore every historical result — untouched.
  std::optional<stoch::RngStream> policy_rng;
  if (has_policy_rng) {
    policy_rng.emplace(seed, base + 2 * n + 1 + (has_environment ? 1 : 0) +
                                 (has_arrivals ? 1 : 0));
    config.policy->bind_rng(&*policy_rng);
  }
  if (controls.antithetic) {
    // The twin run: identical stream ids and draw counts, every
    // uniform01-derived variate mirrored. Applied uniformly so the coupling
    // covers service, churn, network, environment and arrival randomness.
    for (stoch::RngStream& rng : rngs) rng.set_antithetic(true);
    net_rng.set_antithetic(true);
    if (env_rng) env_rng->set_antithetic(true);
    if (arrival_rng) arrival_rng->set_antithetic(true);
    if (policy_rng) policy_rng->set_antithetic(true);
  }

  // --- nodes ---
  std::vector<std::unique_ptr<node::ComputeElement>> ces;
  ces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ces.push_back(std::make_unique<node::ComputeElement>(
        sim, static_cast<int>(i),
        app::exponential_service(config.params.nodes[i].lambda_d), rngs[i]));
  }

  // --- structure-of-arrays hot state: the per-node queue lengths and up
  //     flags every policy scan touches live in two packed arrays owned here
  //     and mirrored by each CE on every transition (LiveView reads these) ---
  std::vector<std::uint32_t> hot_queue_len(n, 0);
  std::vector<std::uint8_t> hot_up(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->bind_hot_cells(&hot_queue_len[i], &hot_up[i]);
  }

  if (trace != nullptr) {
    if (trace->record_queues) {
      trace->queue_lengths.assign(n, des::TimeSeries{});
      for (std::size_t i = 0; i < n; ++i) {
        ces[i]->set_queue_trace(&trace->queue_lengths[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) ces[i]->set_event_trace(&trace->events);
  }

  // --- links (full mesh, built lazily: an n-node replication only pays for
  //     the directed pairs the policy actually uses, which matters once
  //     n*n outgrows the handful of transfers a run performs) ---
  const net::ExponentialBundleDelay default_delay(config.params.per_task_delay_mean);
  const net::TransferDelayModel& delay_proto =
      config.delay_model ? *config.delay_model
                         : static_cast<const net::TransferDelayModel&>(default_delay);
  std::vector<std::unique_ptr<net::Link>> links(n * n);
  const auto link_for = [&](std::size_t from, std::size_t to) -> net::Link& {
    std::unique_ptr<net::Link>& link = links[from * n + to];
    if (!link) {
      link = std::make_unique<net::Link>(sim, static_cast<int>(from), static_cast<int>(to),
                                         delay_proto.clone(), net_rng);
    }
    return *link;
  };

  // --- completion tracking ---
  RunResult result;
  CompletionTracker tracker;
  tracker.sim = &sim;
  tracker.result = &result;
  tracker.target_completions = probe.target_completions;
  tracker.sojourn_log = probe.sojourn_log;
  for (const std::size_t m : config.workloads) tracker.remaining += m;
  tracker.injection_done = !has_arrivals;
  tracker.maybe_finish();
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->set_completion_handler(
        [&tracker](const node::Task& task) { tracker.on_complete(task); });
  }

  // --- initial workloads (unit tasks; the abstract model draws service times
  //     from Exp(lambda_d) regardless of size) ---
  std::uint64_t next_id = 1;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->enqueue_units(config.workloads[i], next_id);
    next_id += config.workloads[i];
  }

  // --- topology (non-complete graphs restrict every policy's neighbourhood;
  //     under edge churn one graph per environment state is prebuilt here and
  //     the transition listener swaps the active pointer) ---
  std::vector<net::Topology> topo_states;
  if (!config.topology.complete()) {
    net::Topology base_topo = net::Topology::build(config.topology, n);
    if (config.topology.dynamic()) {
      const std::size_t k_states = config.environment.states;
      topo_states.reserve(k_states);
      for (std::size_t s = 0; s < k_states; ++s) {
        const double drop = k_states > 1
                                ? config.topology.churn_drop * static_cast<double>(s) /
                                      static_cast<double>(k_states - 1)
                                : 0.0;
        topo_states.push_back(base_topo.with_edge_churn(drop, config.topology.churn_spare,
                                                        config.topology.seed, s));
      }
    } else {
      topo_states.push_back(std::move(base_topo));
    }
  }

  // --- transfer plumbing ---
  LiveView view(config.params, hot_queue_len, hot_up);
  if (!topo_states.empty()) {
    const std::size_t s0 =
        config.topology.dynamic() ? config.environment.initial_state : 0;
    view.set_topology(&topo_states[s0]);
  }
  // The delivery handler captures one pointer to this per-run context so the
  // std::function stays in its small-object buffer (bundle size for the trace
  // is recovered from the transfer itself).
  struct DeliveryCtx {
    std::vector<std::unique_ptr<node::ComputeElement>>* ces;
    RunTrace* trace;
    des::Simulator* sim;
  };
  DeliveryCtx delivery{&ces, trace, &sim};
  const auto execute = [&](const std::vector<core::TransferDirective>& directives) {
    for (const core::TransferDirective& d : directives) {
      LBSIM_REQUIRE(d.from >= 0 && static_cast<std::size_t>(d.from) < n, "from=" << d.from);
      LBSIM_REQUIRE(d.to >= 0 && static_cast<std::size_t>(d.to) < n && d.to != d.from,
                    "to=" << d.to);
      LBSIM_REQUIRE(view.topology() == nullptr ||
                        view.topology()->adjacent(static_cast<std::size_t>(d.from),
                                                  static_cast<std::size_t>(d.to)),
                    "directive " << d.from << "->" << d.to
                                 << " crosses a non-edge of the active topology");
      if (d.count == 0) continue;
      node::TaskBatch batch = ces[static_cast<std::size_t>(d.from)]->extract_tasks(d.count);
      if (batch.empty()) continue;
      result.bundles_sent += 1;
      result.tasks_moved += batch.size();
      if (trace != nullptr) {
        trace->events.emit(sim.now(), obs::Kind::kTransferSend, d.from, d.to,
                           static_cast<std::uint32_t>(batch.size()));
      }
      link_for(static_cast<std::size_t>(d.from), static_cast<std::size_t>(d.to))
          .send(std::move(batch), [ctx = &delivery](net::DataTransfer&& xfer) {
            if (ctx->trace != nullptr) {
              ctx->trace->events.emit(ctx->sim->now(), obs::Kind::kTransferDeliver,
                                      xfer.from, xfer.to,
                                      static_cast<std::uint32_t>(xfer.tasks.size()));
            }
            (*ctx->ces)[static_cast<std::size_t>(xfer.to)]->enqueue_batch(
                std::move(xfer.tasks));
          });
    }
  };

  // --- churn ---
  std::vector<std::unique_ptr<node::FailureProcess>> churn;
  churn.reserve(n);
  core::LoadBalancingPolicy& policy = *config.policy;
  /// Shared churn-hook context: per-node handlers capture one pointer, so
  /// their std::functions also stay inside the small-object buffer.
  struct ChurnHooks {
    RunResult* result;
    RunTrace* trace;
    des::Simulator* sim;
    core::LoadBalancingPolicy* policy;
    LiveView* view;
    const decltype(execute)* execute_directives;

    void on_failure(int node_id) const {
      ++result->failures;
      if (trace != nullptr) trace->events.emit(sim->now(), obs::Kind::kFail, node_id);
      const std::vector<core::TransferDirective> directives =
          policy->on_failure(node_id, *view);
      if (trace != nullptr) {
        trace->events.emit(sim->now(), obs::Kind::kPolicyDecision, node_id, -1,
                           static_cast<std::uint32_t>(directives.size()));
      }
      (*execute_directives)(directives);
    }
    void on_recovery(int node_id) const {
      ++result->recoveries;
      if (trace != nullptr) trace->events.emit(sim->now(), obs::Kind::kRecover, node_id);
      const std::vector<core::TransferDirective> directives =
          policy->on_recovery(node_id, *view);
      if (trace != nullptr) {
        trace->events.emit(sim->now(), obs::Kind::kPolicyDecision, node_id, -1,
                           static_cast<std::uint32_t>(directives.size()));
      }
      (*execute_directives)(directives);
    }
  };
  ChurnHooks hooks{&result, trace, &sim, &policy, &view, &execute};
  // Scheduled nodes swap the alternating-renewal driver for their
  // deterministic timeline; both feed the same churn hooks, so policies see
  // an identical event interface. (Sized lazily: unscheduled scenarios skip
  // the allocation on the per-replication path.)
  std::vector<std::unique_ptr<env::ScheduleDriver>> schedules;
  if (!config.schedule.empty()) schedules.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (config.schedule.scheduled(i)) {
      auto driver = std::make_unique<env::ScheduleDriver>(sim, config.schedule.per_node[i]);
      driver->set_handler([ce = ces[i].get(), hooks_ptr = &hooks](bool down) {
        if (down) {
          ce->fail();
          hooks_ptr->on_failure(ce->id());
        } else {
          ce->recover();
          hooks_ptr->on_recovery(ce->id());
        }
      });
      schedules[i] = std::move(driver);
      churn.push_back(nullptr);
      continue;
    }
    const markov::NodeParams& np = config.params.nodes[i];
    stoch::DistributionPtr ttf;
    stoch::DistributionPtr ttr;
    if (config.churn_enabled && np.lambda_f > 0.0) {
      ttf = std::make_unique<stoch::Exponential>(np.lambda_f);
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    } else if (config.starts_down(i)) {
      LBSIM_REQUIRE(np.lambda_r > 0.0, "initially-down node " << i << " cannot recover");
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    }
    auto process = std::make_unique<node::FailureProcess>(sim, *ces[i], std::move(ttf),
                                                          std::move(ttr), rngs[n + i]);
    process->set_failure_handler([&hooks](int node_id) { hooks.on_failure(node_id); });
    process->set_recovery_handler([&hooks](int node_id) { hooks.on_recovery(node_id); });
    churn.push_back(std::move(process));
  }

  // --- environment (common-shock CTMC modulating every failure hazard) ---
  std::optional<env::Environment> environment;
  if (has_environment) {
    environment.emplace(sim, config.environment, *env_rng);
    if (trace != nullptr) environment->set_event_trace(&trace->events);
  }

  // --- external arrivals (open-system task injection) ---
  std::optional<env::ArrivalProcess> arrivals;
  struct ArrivalCtx {
    std::vector<std::unique_ptr<node::ComputeElement>>* ces;
    CompletionTracker* tracker;
    RunResult* result;
    RunTrace* trace;
    des::Simulator* sim;
    core::LoadBalancingPolicy* policy;
    LiveView* view;
    const decltype(execute)* execute_directives;
    std::uint64_t* next_id;
    bool rebalance;
  };
  ArrivalCtx arrival_ctx{&ces,  &tracker, &result,  trace,   &sim,
                         &policy, &view,  &execute, &next_id, config.arrivals.rebalance};
  if (has_arrivals) {
    arrivals.emplace(sim, config.arrivals, n, environment ? &*environment : nullptr,
                     *arrival_rng);
    arrivals->set_sink([ctx = &arrival_ctx](std::size_t node, std::size_t tasks, bool last) {
      ctx->tracker->remaining += tasks;
      ctx->result->tasks_arrived += tasks;
      (*ctx->ces)[node]->enqueue_units(tasks, *ctx->next_id);
      *ctx->next_id += tasks;
      if (ctx->trace != nullptr) {
        ctx->trace->events.emit(ctx->sim->now(), obs::Kind::kInject,
                                static_cast<std::int32_t>(node), -1,
                                static_cast<std::uint32_t>(tasks));
      }
      if (ctx->rebalance) {
        // Section 5's "LB episode at every external arrival": replay the
        // policy's initial balancing decision against the live queues.
        const std::vector<core::TransferDirective> directives =
            ctx->policy->on_start(*ctx->view);
        if (ctx->trace != nullptr) {
          ctx->trace->events.emit(ctx->sim->now(), obs::Kind::kPolicyDecision,
                                  static_cast<std::int32_t>(node), -1,
                                  static_cast<std::uint32_t>(directives.size()));
        }
        (*ctx->execute_directives)(directives);
      }
      if (last) {
        ctx->tracker->injection_done = true;
        ctx->tracker->maybe_finish();
      }
    });
  }

  // Wire the environment's listener once its consumers exist: re-arm every
  // stochastic failure process at the new state's hazard and re-draw the MMPP
  // gap. Listener fires per transition (rare), so the std::function is off
  // the per-event hot path.
  if (environment) {
    struct EnvCtx {
      std::vector<std::unique_ptr<node::FailureProcess>>* churn;
      env::Environment* environment;
      env::ArrivalProcess* arrivals;
      LiveView* view;
      const std::vector<net::Topology>* topo_states;  // null unless edge churn
    };
    // (The kEnvTransition trace record is emitted by the Environment itself,
    // before this listener runs.)
    environment->set_transition_listener(
        [ctx = EnvCtx{&churn, &*environment, arrivals ? &*arrivals : nullptr, &view,
                      config.topology.dynamic() ? &topo_states : nullptr}](
            std::size_t /*from*/, std::size_t to) {
          const double mult = ctx.environment->spec().failure_mult[to];
          for (const auto& process : *ctx.churn) {
            if (process) process->set_hazard_multiplier(mult);
          }
          if (ctx.arrivals != nullptr) ctx.arrivals->on_environment_transition();
          if (ctx.topo_states != nullptr) {
            ctx.view->set_topology(&(*ctx.topo_states)[to]);
          }
        });
    // The initial state's multiplier applies to the very first TTF draws.
    const double mult = environment->failure_multiplier();
    for (const auto& process : churn) {
      if (process) process->set_hazard_multiplier(mult);
    }
  }

  // --- t = 0: policy's initial action, then churn starts ---
  {
    const std::vector<core::TransferDirective> initial = policy.on_start(view);
    if (trace != nullptr) {
      trace->events.emit(sim.now(), obs::Kind::kPolicyDecision, -1, -1,
                         static_cast<std::uint32_t>(initial.size()));
    }
    execute(initial);
  }
  std::function<void()> tick;
  if (config.rebalance_period > 0.0) {
    // Recurring timer for periodic policies; stops mattering once done.
    // `tick` outlives the whole run (the simulation drains inside this
    // scope), so the rescheduling lambda can reference it directly — a
    // self-captured shared_ptr here leaks one cycle per replication.
    tick = [&] {
      if (tracker.done) return;
      const std::vector<core::TransferDirective> directives = policy.on_periodic(view);
      if (trace != nullptr) {
        trace->events.emit(sim.now(), obs::Kind::kPolicyDecision, -1, -1,
                           static_cast<std::uint32_t>(directives.size()));
      }
      execute(directives);
      sim.schedule_in(config.rebalance_period, tick);
    };
    sim.schedule_in(config.rebalance_period, tick);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!schedules.empty() && schedules[i] != nullptr) {
      schedules[i]->start();  // fires a down@0 synchronously, like initially_down
      continue;
    }
    const bool can_churn = config.churn_enabled && config.params.nodes[i].lambda_f > 0.0;
    const bool starts_down = config.starts_down(i);
    if (can_churn || starts_down) churn[i]->start(starts_down);
  }
  if (environment) environment->start();
  if (arrivals) arrivals->start();

  ProfileClock::time_point profile_loop{};
  if (controls.profile != nullptr) {
    profile_loop = ProfileClock::now();
    controls.profile->setup_s +=
        std::chrono::duration<double>(profile_loop - profile_begin).count();
  }
  sim.run_while_pending([&] { return tracker.done; });
  if (controls.profile != nullptr) {
    controls.profile->loop_s +=
        std::chrono::duration<double>(ProfileClock::now() - profile_loop).count();
    controls.profile->reps += 1;
  }
  LBSIM_CHECK(tracker.done, "simulation drained its event queue before completing "
                                << tracker.remaining << " tasks"
                                << (tracker.injection_done
                                        ? ""
                                        : " (arrival stream starved: an MMPP state with "
                                          "rate 0 and no environment transitions?)"));

  result.completion_time = tracker.completion_time;
  if (environment) result.env_transitions = environment->transitions();
  for (const auto& ce : ces) result.tasks_completed += ce->stats().tasks_completed;
  return result;
}

}  // namespace lbsim::mc
