#pragma once
/// \file
/// One Monte-Carlo replication of the abstract model of Section 2: exponential
/// service per task, alternating exponential failure/recovery per node, and
/// exponential load-dependent bundle delays — exactly the laws the
/// regeneration analysis assumes, so MC means must converge to the solver's.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "env/arrivals.hpp"
#include "env/environment.hpp"
#include "env/schedule.hpp"
#include "markov/params.hpp"
#include "net/delay_model.hpp"
#include "sim/trace.hpp"

namespace lbsim::des {
class Simulator;
}

namespace lbsim::mc {

/// A complete experiment description. Move-only (owns prototypes that are
/// cloned per replication).
struct ScenarioConfig {
  markov::MultiNodeParams params;
  std::vector<std::size_t> workloads;
  core::PolicyPtr policy;
  /// Bundle-delay law; when null, ExponentialBundleDelay(params.per_task_delay_mean)
  /// — the analytical model — is used.
  net::TransferDelayModelPtr delay_model;
  /// Master switch for churn (false reproduces the paper's no-failure runs
  /// without touching the per-node rates).
  bool churn_enabled = true;
  /// Bitmask of nodes that start down (bit i); all-up by default. 64 bits so
  /// every node of the largest (n = 64) registry scenarios is addressable.
  std::uint64_t initially_down = 0;
  /// When > 0, the policy's on_periodic() hook fires every this many seconds
  /// (for PeriodicRebalancePolicy and similar extensions).
  double rebalance_period = 0.0;
  /// Optional environment CTMC (states == 0 disables): its state multiplies
  /// every node's failure hazard and selects MMPP arrival rates.
  env::EnvironmentSpec environment;
  /// Optional external arrival stream (process == kNone disables).
  env::ArrivalSpec arrivals;
  /// Optional deterministic up/down timelines. A scheduled node's churn is
  /// driven by the schedule alone (its stochastic FailureProcess is not
  /// created, and it must not appear in initially_down).
  env::Schedule schedule;

  /// Deep copy (clones policy and delay model).
  [[nodiscard]] ScenarioConfig clone() const;
};

/// Builds the common two-node config from TwoNodeParams.
[[nodiscard]] ScenarioConfig make_two_node_scenario(const markov::TwoNodeParams& params,
                                                    std::size_t m0, std::size_t m1,
                                                    core::PolicyPtr policy);

/// Everything observed in one replication.
struct RunResult {
  double completion_time = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t bundles_sent = 0;
  std::uint64_t tasks_moved = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_arrived = 0;     ///< externally injected tasks (open arrivals)
  std::uint64_t env_transitions = 0;   ///< environment CTMC jumps during the run
};

/// Optional per-run observability (Fig. 4): queue traces and a churn/transfer log.
struct RunTrace {
  std::vector<des::TimeSeries> queue_lengths;  // one per node
  /// Tags: fail, recover, transfer, arrival (bundle delivery), inject
  /// (external arrival epoch), env (environment transition).
  des::EventLog events;
};

/// Runs one replication. `seed` is the experiment master seed; `replication`
/// selects disjoint RNG streams, so results are independent across
/// replications and identical regardless of threading.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                                     std::uint64_t replication, RunTrace* trace = nullptr);

/// Workspace-reusing form: `sim` is reset and driven in place, so its pooled
/// event slab (and heap capacity) is recycled across a replication loop.
/// Results are bit-identical to the fresh-simulator overload.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                                     std::uint64_t replication, RunTrace* trace,
                                     des::Simulator& sim);

}  // namespace lbsim::mc
