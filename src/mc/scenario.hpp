#pragma once
/// \file
/// One Monte-Carlo replication of the abstract model of Section 2: exponential
/// service per task, alternating exponential failure/recovery per node, and
/// exponential load-dependent bundle delays — exactly the laws the
/// regeneration analysis assumes, so MC means must converge to the solver's.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "env/arrivals.hpp"
#include "env/environment.hpp"
#include "env/schedule.hpp"
#include "markov/params.hpp"
#include "net/channel.hpp"
#include "net/delay_model.hpp"
#include "net/topology.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/trace.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::des {
class Simulator;
}

namespace lbsim::mc {

/// Knobs for the steady-state engine (mc::run_steady). Inert on the finite
/// path; `enabled` is what routes a CLI scenario to the steady engine.
struct SteadySpec {
  bool enabled = false;
  /// Completed tasks observed per replication (the observation window).
  std::size_t tasks = 20000;
  /// Non-overlapping batch count for the batch-means CI.
  std::size_t batches = 32;
  /// MSER-5 may truncate at most this fraction of the window as warm-up.
  double warmup_cap = 0.5;
};

/// A complete experiment description. Move-only (owns prototypes that are
/// cloned per replication).
struct ScenarioConfig {
  markov::MultiNodeParams params;
  std::vector<std::size_t> workloads;
  core::PolicyPtr policy;
  /// Bundle-delay law; when null, ExponentialBundleDelay(params.per_task_delay_mean)
  /// — the analytical model — is used.
  net::TransferDelayModelPtr delay_model;
  /// Master switch for churn (false reproduces the paper's no-failure runs
  /// without touching the per-node rates).
  bool churn_enabled = true;
  /// Bitmask of nodes that start down (bit i); all-up by default. The mask
  /// addresses nodes 0..63; on larger systems (the sharded-queue scaling
  /// regime) every node past bit 63 starts up — use `schedule` to take one
  /// of those down. Query through starts_down(), which encodes that rule.
  std::uint64_t initially_down = 0;

  /// Whether node `i` starts down under initially_down (false for i >= 64:
  /// the mask cannot address those nodes, and a raw shift would be UB).
  [[nodiscard]] bool starts_down(std::size_t i) const noexcept {
    return i < 64 && ((initially_down >> i) & 1u) != 0;
  }
  /// When > 0, the policy's on_periodic() hook fires every this many seconds
  /// (for PeriodicRebalancePolicy and similar extensions).
  double rebalance_period = 0.0;
  /// Optional environment CTMC (states == 0 disables): its state multiplies
  /// every node's failure hazard and selects MMPP arrival rates.
  env::EnvironmentSpec environment;
  /// Optional external arrival stream (process == kNone disables).
  env::ArrivalSpec arrivals;
  /// Optional deterministic up/down timelines. A scheduled node's churn is
  /// driven by the schedule alone (its stochastic FailureProcess is not
  /// created, and it must not appear in initially_down).
  env::Schedule schedule;
  /// Exchange-graph restriction. The default (complete) takes the historical
  /// full-mesh path untouched; any other kind restricts every policy's
  /// SystemView — and its transfer directives — to each node's neighbourhood,
  /// and topology.churn_drop > 0 swaps the active edge set on every
  /// environment transition (requires a configured environment).
  net::TopologySpec topology;
  /// Steady-state window parameters (consumed by mc::run_steady only).
  SteadySpec steady;
  /// State-exchange plane emulation (consumed by the testbed engine only; the
  /// abstract MC's policies see exact state, so these are inert there).
  double exchange_period = 1.0;    ///< UDP sync period (s)
  double exchange_latency = 1e-3;  ///< one-way state-packet latency (s)
  double exchange_loss = 0.0;      ///< i.i.d. state-packet loss (1 = blackout)
  /// Optional bursty k-state Markov channel for the state plane (states == 0
  /// keeps the i.i.d. exchange_loss above); testbed engine only.
  net::ChannelSpec state_channel;

  /// Deep copy (clones policy and delay model).
  [[nodiscard]] ScenarioConfig clone() const;
};

/// Builds the common two-node config from TwoNodeParams.
[[nodiscard]] ScenarioConfig make_two_node_scenario(const markov::TwoNodeParams& params,
                                                    std::size_t m0, std::size_t m1,
                                                    core::PolicyPtr policy);

/// Everything observed in one replication. Since the per-task-record refactor
/// the result carries per-task latency observations, not only the scalar
/// completion time: every completed task contributes its sojourn (completion -
/// system arrival) and queueing delay (first service start - arrival).
struct RunResult {
  double completion_time = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t bundles_sent = 0;
  std::uint64_t tasks_moved = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_arrived = 0;     ///< externally injected tasks (open arrivals)
  std::uint64_t env_transitions = 0;   ///< environment CTMC jumps during the run
  std::uint64_t state_packets_lost = 0;  ///< state-plane drops (testbed engine)
  stoch::RunningStats sojourn;         ///< per-task time in system (all completed tasks)
  stoch::RunningStats queue_delay;     ///< per-task wait before first service
  /// Age (now - peer packet timestamp) of every peer entry consulted at every
  /// policy decision instant — the staleness the state plane imposes on
  /// distributed decisions (testbed engine; empty on the abstract MC path).
  stoch::RunningStats state_age;

  /// Time-averaged number of tasks in system over the run, by Little's law
  /// (total completed task-seconds / horizon); 0 for an empty run.
  [[nodiscard]] double mean_queue_length() const noexcept {
    return completion_time > 0.0
               ? static_cast<double>(sojourn.count()) * sojourn.mean() / completion_time
               : 0.0;
  }
};

/// Optional per-run observability: queue traces (Fig. 4) and the structured
/// event log. Recording consumes zero RNG draws and leaves every statistic
/// bit-identical to an untraced run.
struct RunTrace {
  std::vector<des::TimeSeries> queue_lengths;  // one per node (record_queues only)
  /// Whether the per-node queue-length TimeSeries above are recorded. The
  /// Fig-4 artifact wants them; engine-level tracing of large runs turns them
  /// off and keeps only the fixed-width `events` records.
  bool record_queues = true;
  /// Typed 32-byte records: task arrive/service-start/complete, transfer
  /// send/deliver, fail/recover, env transitions, channel-state changes,
  /// state-packet loss, policy decisions, external injections (see obs::Kind).
  obs::TraceBuffer events;
};

/// Non-owning observability sinks threaded through the engines (all three
/// layers optional and mutually independent). Everything reached through
/// these pointers consumes zero RNG draws and is bit-identity-neutral.
struct ObsSinks {
  /// Merged structured trace: engines record each replication into its own
  /// buffer and fold them in replication order behind a kRepBegin marker
  /// (payload = replication index), so the file is thread-count-independent.
  obs::TraceBuffer* trace = nullptr;
  /// Merged metrics: per-worker registries folded in worker-id order plus
  /// driver-level counters/gauges (see docs/ARCHITECTURE.md).
  obs::Registry* metrics = nullptr;
  /// Aggregated per-phase wall-time breakdown across all replications.
  obs::PhaseProfile* profile = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return trace != nullptr || metrics != nullptr || profile != nullptr;
  }
};

/// Runs one replication. `seed` is the experiment master seed; `replication`
/// selects disjoint RNG streams, so results are independent across
/// replications and identical regardless of threading.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                                     std::uint64_t replication, RunTrace* trace = nullptr);

/// Workspace-reusing form: `sim` is reset and driven in place, so its pooled
/// event slab (and heap capacity) is recycled across a replication loop.
/// Results are bit-identical to the fresh-simulator overload.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                                     std::uint64_t replication, RunTrace* trace,
                                     des::Simulator& sim);

/// Steady-state extension hooks threaded through the replication wiring
/// (consumed by mc::run_steady; everything else leaves this defaulted). With
/// target_completions > 0 the run is an infinite-horizon observation window:
/// unbounded arrival streams are admitted and the replication stops at the
/// target instead of draining the queue.
struct SteadyProbe {
  /// Stop once this many tasks have completed (0 = finite drain-the-queue run).
  std::size_t target_completions = 0;
  /// When non-null, receives every completed task's sojourn time in
  /// completion order — the within-run series the warm-up detector and
  /// batch-means estimator consume.
  std::vector<double>* sojourn_log = nullptr;
};

/// Probe-carrying form of run_scenario. With a default probe this is exactly
/// the workspace-reusing overload; a probe with target_completions > 0 is the
/// only path that accepts an unbounded arrival stream.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                                     std::uint64_t replication, RunTrace* trace,
                                     des::Simulator& sim, const SteadyProbe& probe);

/// Estimator-layer knobs threaded into the replication wiring (consumed by
/// the MC engine's variance-reduction modes; the defaults reproduce the
/// historical run bit-for-bit).
struct RunControls {
  /// Runs the antithetic twin: the same (seed, replication) stream layout,
  /// with every uniform01-derived draw of every stream mirrored to 1 - U (see
  /// stoch::RngStream::set_antithetic). Pairing (replication r plain,
  /// replication r mirrored) yields negatively correlated twins.
  bool antithetic = false;
  /// When non-null, the replication's setup and event-loop wall times are
  /// accumulated here (the stats fold is timed by the engine). Reads the
  /// monotonic clock only — no RNG draws, no behavioural change.
  obs::PhaseProfile* profile = nullptr;
};

/// Controls-carrying form of run_scenario; the most general overload, which
/// every other form forwards to.
[[nodiscard]] RunResult run_scenario(const ScenarioConfig& config, std::uint64_t seed,
                                     std::uint64_t replication, RunTrace* trace,
                                     des::Simulator& sim, const SteadyProbe& probe,
                                     const RunControls& controls);

}  // namespace lbsim::mc
