#pragma once
/// \file
/// Configuration of the emulated wireless-LAN testbed (paper Section 3).
///
/// The real experiments ran matrix-multiplication on two laptops over IEEE
/// 802.11b/g; we reproduce the system at the level the paper itself models it:
/// task sizes are random (exponential), service time is size / node-speed
/// (hence Exp(lambda_d) per task, Fig. 1), data bundles suffer a per-task
/// exponential delay plus a small connection-setup shift (Fig. 2), and state
/// information is exchanged in small UDP packets that can be lost.

#include <cstdint>

#include "core/policy.hpp"
#include "markov/params.hpp"

namespace lbsim::testbed {

struct TestbedConfig {
  markov::MultiNodeParams params;        ///< calibrated rates (Fig. 1 fits)
  std::vector<std::size_t> workloads;    ///< initial tasks per node
  core::PolicyPtr policy;

  /// Communication layer.
  double transfer_setup_shift = 0.005;   ///< TCP setup; the Fig. 2 pdf shift (s)
  double state_broadcast_period = 1.0;   ///< UDP sync period (s)
  double state_latency = 1e-3;           ///< one-way state-packet latency (s)
  double state_loss_probability = 0.0;   ///< UDP loss

  /// When true, churn is injected (failure injector of Section 3).
  bool churn_enabled = true;

  [[nodiscard]] TestbedConfig clone() const;
};

/// Two-node testbed preset with the paper's measured parameters and the given
/// initial workloads; the policy is supplied by the caller.
[[nodiscard]] TestbedConfig paper_testbed(std::size_t m0, std::size_t m1,
                                          core::PolicyPtr policy);

void validate(const TestbedConfig& config);

}  // namespace lbsim::testbed
