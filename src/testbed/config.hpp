#pragma once
/// \file
/// Configuration of the emulated wireless-LAN testbed (paper Section 3).
///
/// The real experiments ran matrix-multiplication on two laptops over IEEE
/// 802.11b/g; we reproduce the system at the level the paper itself models it:
/// task sizes are random (exponential), service time is size / node-speed
/// (hence Exp(lambda_d) per task, Fig. 1), data bundles suffer a per-task
/// exponential delay plus a small connection-setup shift (Fig. 2), and state
/// information is exchanged in small UDP packets that can be lost.

#include <cstdint>

#include "core/policy.hpp"
#include "env/environment.hpp"
#include "markov/params.hpp"
#include "net/channel.hpp"

namespace lbsim::testbed {

struct TestbedConfig {
  markov::MultiNodeParams params;        ///< calibrated rates (Fig. 1 fits)
  std::vector<std::size_t> workloads;    ///< initial tasks per node
  core::PolicyPtr policy;

  /// Communication layer.
  double transfer_setup_shift = 0.005;   ///< TCP setup; the Fig. 2 pdf shift (s)
  double state_broadcast_period = 1.0;   ///< UDP sync period (s)
  double state_latency = 1e-3;           ///< one-way state-packet latency (s)
  double state_loss_probability = 0.0;   ///< UDP loss (i.i.d.; 1 = blackout)

  /// Optional bursty k-state Markov channel for the state plane; when
  /// disabled (states == 0) the i.i.d. loss above applies unchanged.
  net::ChannelSpec channel;
  /// Optional environment CTMC: modulates every node's failure hazard and,
  /// when channel.env_coupled, floors the channel state during storms.
  env::EnvironmentSpec environment;

  /// When true, churn is injected (failure injector of Section 3).
  bool churn_enabled = true;
  /// Bitmask of nodes that start down (bit i); same addressing rule as
  /// mc::ScenarioConfig::initially_down.
  std::uint64_t initially_down = 0;

  [[nodiscard]] bool starts_down(std::size_t i) const noexcept {
    return i < 64 && ((initially_down >> i) & 1u) != 0;
  }

  [[nodiscard]] TestbedConfig clone() const;
};

/// Two-node testbed preset with the paper's measured parameters and the given
/// initial workloads; the policy is supplied by the caller.
[[nodiscard]] TestbedConfig paper_testbed(std::size_t m0, std::size_t m1,
                                          core::PolicyPtr policy);

void validate(const TestbedConfig& config);

}  // namespace lbsim::testbed

namespace lbsim::mc {
struct ScenarioConfig;
}

namespace lbsim::testbed {

/// Converts a registry-built mc::ScenarioConfig into a testbed config — the
/// single mapping shared by `lbsim run --engine=testbed`, the sweep driver,
/// and the validation harness. Consumes the scenario (moves its policy).
[[nodiscard]] TestbedConfig from_scenario(mc::ScenarioConfig&& scenario);

}  // namespace lbsim::testbed
