#include "testbed/state_exchange.hpp"

#include "util/error.hpp"

namespace lbsim::testbed {

StateBoard::StateBoard(std::size_t node_count) : n_(node_count), board_(node_count * node_count) {
  LBSIM_REQUIRE(node_count >= 2, "state board needs >= 2 nodes");
}

void StateBoard::store(int observer, const net::StateInfoPacket& packet) {
  LBSIM_REQUIRE(observer >= 0 && static_cast<std::size_t>(observer) < n_,
                "observer=" << observer);
  LBSIM_REQUIRE(packet.sender >= 0 && static_cast<std::size_t>(packet.sender) < n_,
                "sender=" << packet.sender);
  board_[static_cast<std::size_t>(observer) * n_ + static_cast<std::size_t>(packet.sender)] =
      packet;
}

const net::StateInfoPacket& StateBoard::last_heard(int observer, int peer) const {
  LBSIM_REQUIRE(observer >= 0 && static_cast<std::size_t>(observer) < n_,
                "observer=" << observer);
  LBSIM_REQUIRE(peer >= 0 && static_cast<std::size_t>(peer) < n_ && peer != observer,
                "peer=" << peer);
  return board_[static_cast<std::size_t>(observer) * n_ + static_cast<std::size_t>(peer)];
}

NodeLocalView::NodeLocalView(int self, const markov::MultiNodeParams& params,
                             const std::vector<std::unique_ptr<node::ComputeElement>>& ces,
                             const StateBoard& board)
    : self_(self), params_(params), ces_(ces), board_(board) {}

std::size_t NodeLocalView::node_count() const { return ces_.size(); }

std::size_t NodeLocalView::queue_length(int node) const {
  if (node == self_) return ces_.at(static_cast<std::size_t>(node))->queue_length();
  return board_.last_heard(self_, node).queue_size;
}

bool NodeLocalView::is_up(int node) const {
  if (node == self_) return ces_.at(static_cast<std::size_t>(node))->is_up();
  return board_.last_heard(self_, node).node_up;
}

markov::NodeParams NodeLocalView::node_params(int node) const {
  return params_.nodes.at(static_cast<std::size_t>(node));
}

double NodeLocalView::per_task_delay_mean() const { return params_.per_task_delay_mean; }

StateBroadcaster::StateBroadcaster(des::Simulator& sim, net::Network& network,
                                   StateBoard& board,
                                   const std::vector<std::unique_ptr<node::ComputeElement>>& ces,
                                   const markov::MultiNodeParams& params, double period)
    : sim_(sim), network_(network), board_(board), ces_(ces), params_(params),
      period_(period) {
  LBSIM_REQUIRE(period > 0.0, "period=" << period);
}

void StateBroadcaster::start() {
  LBSIM_REQUIRE(!running_, "broadcaster already running");
  running_ = true;
  sim_.schedule_in(period_, [this] { broadcast_round(); });
}

void StateBroadcaster::broadcast_round() {
  if (!running_) return;
  ++rounds_;
  for (std::size_t i = 0; i < ces_.size(); ++i) {
    net::StateInfoPacket packet;
    packet.sender = static_cast<int>(i);
    packet.timestamp = sim_.now();
    packet.queue_size = static_cast<std::uint32_t>(ces_[i]->queue_length());
    packet.processing_rate = params_.nodes[i].lambda_d;
    packet.node_up = ces_[i]->is_up();
    network_.broadcast_state(packet, [this](int receiver, const net::StateInfoPacket& pkt) {
      board_.store(receiver, pkt);
    });
  }
  sim_.schedule_in(period_, [this] { broadcast_round(); });
}

}  // namespace lbsim::testbed
