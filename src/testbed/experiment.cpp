#include "testbed/experiment.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "app/workload.hpp"
#include "node/failure_process.hpp"
#include "testbed/state_exchange.hpp"
#include "util/error.hpp"

namespace lbsim::testbed {

mc::RunResult run_realization(const TestbedConfig& config, std::uint64_t seed,
                              std::uint64_t replication, mc::RunTrace* trace) {
  validate(config);
  const std::size_t n = config.params.nodes.size();

  // Streams: sizes per node, churn per node, network data, state plane.
  const std::uint64_t streams_per_run = 2 * static_cast<std::uint64_t>(n) + 2;
  const std::uint64_t base = replication * streams_per_run;
  std::vector<stoch::RngStream> size_rngs;
  std::vector<stoch::RngStream> churn_rngs;
  for (std::size_t i = 0; i < n; ++i) {
    size_rngs.emplace_back(seed, base + i);
    churn_rngs.emplace_back(seed, base + n + i);
  }
  stoch::RngStream net_rng(seed, base + 2 * n);

  des::Simulator sim;

  // --- application layer: CEs with size-proportional service ---
  std::vector<std::unique_ptr<node::ComputeElement>> ces;
  ces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ces.push_back(std::make_unique<node::ComputeElement>(
        sim, static_cast<int>(i),
        app::calibrated_service(config.params.nodes[i].lambda_d), size_rngs[i]));
  }
  if (trace != nullptr) {
    trace->queue_lengths.assign(n, des::TimeSeries{});
    for (std::size_t i = 0; i < n; ++i) ces[i]->set_queue_trace(&trace->queue_lengths[i]);
  }

  // --- communication layer ---
  net::Network::Config net_config;
  net_config.data_delay = std::make_unique<net::ErlangPerTaskDelay>(
      config.params.per_task_delay_mean, config.transfer_setup_shift);
  net_config.state_latency = config.state_latency;
  net_config.state_loss_probability = config.state_loss_probability;
  net::Network network(sim, n, std::move(net_config), net_rng);

  StateBoard board(n);
  StateBroadcaster broadcaster(sim, network, board, ces, config.params,
                               config.state_broadcast_period);

  // --- workload injection (random task sizes -> Exp service times, Fig. 1) ---
  std::size_t remaining = 0;
  double completion_time = 0.0;
  bool done = true;
  for (const std::size_t m : config.workloads) remaining += m;
  done = remaining == 0;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->set_completion_handler([&](const node::Task&) {
      LBSIM_CHECK(remaining > 0, "completed more tasks than injected");
      if (--remaining == 0) {
        done = true;
        completion_time = sim.now();
      }
    });
  }
  app::WorkloadGenerator generator;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->enqueue_batch(
        generator.generate(config.workloads[i], static_cast<int>(i), size_rngs[i]));
  }

  // --- LB / failure layer ---
  mc::RunResult result;
  core::LoadBalancingPolicy& policy = *config.policy;
  const auto execute = [&](const std::vector<core::TransferDirective>& directives,
                           int acting_node) {
    for (const core::TransferDirective& d : directives) {
      // A node-local decision may only ship that node's own tasks.
      LBSIM_REQUIRE(acting_node < 0 || d.from == acting_node,
                    "node " << acting_node << " directed a transfer from " << d.from);
      if (d.count == 0) continue;
      node::TaskBatch batch = ces.at(static_cast<std::size_t>(d.from))
                                  ->extract_tasks(d.count);
      if (batch.empty()) continue;
      result.bundles_sent += 1;
      result.tasks_moved += batch.size();
      if (trace != nullptr) {
        std::ostringstream os;
        os << d.from << "->" << d.to << " x" << batch.size();
        trace->events.log(sim.now(), "transfer", os.str());
      }
      network.transfer(d.from, d.to, std::move(batch), [&](net::DataTransfer&& xfer) {
        if (trace != nullptr) {
          std::ostringstream os;
          os << xfer.from << "->" << xfer.to << " x" << xfer.tasks.size();
          trace->events.log(sim.now(), "arrival", os.str());
        }
        ces.at(static_cast<std::size_t>(xfer.to))->enqueue_batch(std::move(xfer.tasks));
      });
    }
  };

  // t = 0: each node runs the policy against its local (here: exact) view and
  // executes only its own outgoing transfers — the distributed decision of
  // Section 3 where every node computes the same schedule from synced state.
  std::vector<NodeLocalView> views;
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    views.emplace_back(static_cast<int>(i), config.params, ces, board);
  }
  {
    // All nodes know the exact initial workloads (paper assumption): seed the
    // state board with true t = 0 packets before any decision runs.
    for (std::size_t sender = 0; sender < n; ++sender) {
      net::StateInfoPacket packet;
      packet.sender = static_cast<int>(sender);
      packet.timestamp = 0.0;
      packet.queue_size = static_cast<std::uint32_t>(ces[sender]->queue_length());
      packet.processing_rate = config.params.nodes[sender].lambda_d;
      packet.node_up = true;
      for (std::size_t observer = 0; observer < n; ++observer) {
        if (observer == sender) continue;
        board.store(static_cast<int>(observer), packet);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<core::TransferDirective> mine;
      for (const core::TransferDirective& d : policy.on_start(views[i])) {
        if (d.from == static_cast<int>(i)) mine.push_back(d);
      }
      execute(mine, static_cast<int>(i));
    }
  }

  // Failure injector + backup agent.
  std::vector<std::unique_ptr<node::FailureProcess>> churn;
  churn.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const markov::NodeParams& np = config.params.nodes[i];
    stoch::DistributionPtr ttf;
    stoch::DistributionPtr ttr;
    if (config.churn_enabled && np.lambda_f > 0.0) {
      ttf = std::make_unique<stoch::Exponential>(np.lambda_f);
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    }
    auto process = std::make_unique<node::FailureProcess>(sim, *ces[i], std::move(ttf),
                                                          std::move(ttr), churn_rngs[i]);
    process->set_failure_handler([&, i](int node_id) {
      ++result.failures;
      if (trace != nullptr) trace->events.log(sim.now(), "fail", std::to_string(node_id));
      // The backup agent of the failing node reacts with its local view.
      execute(policy.on_failure(node_id, views[i]), node_id);
    });
    process->set_recovery_handler([&, i](int node_id) {
      ++result.recoveries;
      if (trace != nullptr) {
        trace->events.log(sim.now(), "recover", std::to_string(node_id));
      }
      execute(policy.on_recovery(node_id, views[i]), node_id);
    });
    churn.push_back(std::move(process));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (config.churn_enabled && config.params.nodes[i].lambda_f > 0.0) churn[i]->start();
  }
  broadcaster.start();

  sim.run_while_pending([&] { return done; });
  LBSIM_CHECK(done, "testbed drained its event queue with " << remaining
                                                            << " tasks outstanding");
  broadcaster.stop();

  result.completion_time = completion_time;
  for (const auto& ce : ces) result.tasks_completed += ce->stats().tasks_completed;
  return result;
}

ExperimentSummary run_experiment(const TestbedConfig& config, std::size_t realizations,
                                 std::uint64_t seed, unsigned threads) {
  LBSIM_REQUIRE(realizations >= 1, "realizations=" << realizations);
  unsigned workers = threads == 0 ? std::thread::hardware_concurrency() : threads;
  workers = std::max(1u, std::min<unsigned>(workers, static_cast<unsigned>(realizations)));

  struct Partial {
    stoch::RunningStats completion;
    double failures = 0.0;
    double moved = 0.0;
    std::vector<double> samples;
  };
  std::vector<Partial> partials(workers);

  const auto worker = [&](unsigned tid) {
    const TestbedConfig local = config.clone();
    Partial& out = partials[tid];
    for (std::size_t rep = tid; rep < realizations; rep += workers) {
      const mc::RunResult run = run_realization(local, seed, rep);
      out.completion.add(run.completion_time);
      out.failures += static_cast<double>(run.failures);
      out.moved += static_cast<double>(run.tasks_moved);
      out.samples.push_back(run.completion_time);
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  ExperimentSummary summary;
  double failures = 0.0;
  double moved = 0.0;
  for (Partial& p : partials) {
    summary.completion.merge(p.completion);
    failures += p.failures;
    moved += p.moved;
    summary.samples.insert(summary.samples.end(), p.samples.begin(), p.samples.end());
  }
  summary.mean_failures = failures / static_cast<double>(realizations);
  summary.mean_tasks_moved = moved / static_cast<double>(realizations);
  std::sort(summary.samples.begin(), summary.samples.end());
  return summary;
}

}  // namespace lbsim::testbed
