#include "testbed/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "app/workload.hpp"
#include "env/environment.hpp"
#include "node/failure_process.hpp"
#include "testbed/state_exchange.hpp"
#include "util/error.hpp"

namespace lbsim::testbed {

mc::RunResult run_realization(const TestbedConfig& config, std::uint64_t seed,
                              std::uint64_t replication, mc::RunTrace* trace,
                              obs::PhaseProfile* profile, obs::Registry* metrics) {
  // Profiling reads the monotonic clock only (never the RNG streams).
  using ProfileClock = std::chrono::steady_clock;
  ProfileClock::time_point profile_begin{};
  if (profile != nullptr) profile_begin = ProfileClock::now();

  validate(config);
  const std::size_t n = config.params.nodes.size();

  // Streams: sizes per node, churn per node, network data, state plane; the
  // environment stream is appended only when one is configured, so every
  // environment-free scenario keeps the historical layout bit-identically.
  const bool env_enabled = config.environment.enabled();
  const std::uint64_t streams_per_run =
      2 * static_cast<std::uint64_t>(n) + 2 + (env_enabled ? 1 : 0);
  const std::uint64_t base = replication * streams_per_run;
  std::vector<stoch::RngStream> size_rngs;
  std::vector<stoch::RngStream> churn_rngs;
  for (std::size_t i = 0; i < n; ++i) {
    size_rngs.emplace_back(seed, base + i);
    churn_rngs.emplace_back(seed, base + n + i);
  }
  stoch::RngStream net_rng(seed, base + 2 * n);
  // The state-plane slot has been reserved in streams_per_run since the
  // beginning; drawing from it now changes no other stream's seeding.
  stoch::RngStream state_rng(seed, base + 2 * n + 1);
  std::optional<stoch::RngStream> env_rng;
  if (env_enabled) env_rng.emplace(seed, base + 2 * n + 2);

  des::Simulator sim;

  // --- application layer: CEs with size-proportional service ---
  std::vector<std::unique_ptr<node::ComputeElement>> ces;
  ces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ces.push_back(std::make_unique<node::ComputeElement>(
        sim, static_cast<int>(i),
        app::calibrated_service(config.params.nodes[i].lambda_d), size_rngs[i]));
  }
  if (trace != nullptr) {
    if (trace->record_queues) {
      trace->queue_lengths.assign(n, des::TimeSeries{});
      for (std::size_t i = 0; i < n; ++i) {
        ces[i]->set_queue_trace(&trace->queue_lengths[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) ces[i]->set_event_trace(&trace->events);
  }

  // --- communication layer ---
  net::Network::Config net_config;
  net_config.data_delay = std::make_unique<net::ErlangPerTaskDelay>(
      config.params.per_task_delay_mean, config.transfer_setup_shift);
  net_config.state_latency = config.state_latency;
  net_config.state_loss_probability = config.state_loss_probability;
  net_config.channel = config.channel;
  net::Network network(sim, n, std::move(net_config), net_rng, state_rng);
  if (trace != nullptr) network.set_event_trace(&trace->events);

  StateBoard board(n);
  StateBroadcaster broadcaster(sim, network, board, ces, config.params,
                               config.state_broadcast_period);

  // --- workload injection (random task sizes -> Exp service times, Fig. 1) ---
  std::size_t remaining = 0;
  double completion_time = 0.0;
  bool done = true;
  for (const std::size_t m : config.workloads) remaining += m;
  done = remaining == 0;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->set_completion_handler([&](const node::Task&) {
      LBSIM_CHECK(remaining > 0, "completed more tasks than injected");
      if (--remaining == 0) {
        done = true;
        completion_time = sim.now();
      }
    });
  }
  app::WorkloadGenerator generator;
  for (std::size_t i = 0; i < n; ++i) {
    ces[i]->enqueue_batch(
        generator.generate(config.workloads[i], static_cast<int>(i), size_rngs[i]));
  }

  // --- LB / failure layer ---
  mc::RunResult result;
  core::LoadBalancingPolicy& policy = *config.policy;
  const auto execute = [&](const std::vector<core::TransferDirective>& directives,
                           int acting_node) {
    for (const core::TransferDirective& d : directives) {
      // A node-local decision may only ship that node's own tasks.
      LBSIM_REQUIRE(acting_node < 0 || d.from == acting_node,
                    "node " << acting_node << " directed a transfer from " << d.from);
      if (d.count == 0) continue;
      node::TaskBatch batch = ces.at(static_cast<std::size_t>(d.from))
                                  ->extract_tasks(d.count);
      if (batch.empty()) continue;
      result.bundles_sent += 1;
      result.tasks_moved += batch.size();
      if (trace != nullptr) {
        trace->events.emit(sim.now(), obs::Kind::kTransferSend, d.from, d.to,
                           static_cast<std::uint32_t>(batch.size()));
      }
      network.transfer(d.from, d.to, std::move(batch), [&](net::DataTransfer&& xfer) {
        if (trace != nullptr) {
          trace->events.emit(sim.now(), obs::Kind::kTransferDeliver, xfer.from, xfer.to,
                             static_cast<std::uint32_t>(xfer.tasks.size()));
        }
        ces.at(static_cast<std::size_t>(xfer.to))->enqueue_batch(std::move(xfer.tasks));
      });
    }
  };

  // Failure injector + backup agent. Processes are created — and initially-
  // down nodes failed — before the t = 0 decisions, so the state board can be
  // seeded with the exact initial state; churn handlers are attached after
  // that, so starting down is an initial condition (visible to every t = 0
  // decision), not a t = 0 failure event.
  std::vector<std::unique_ptr<node::FailureProcess>> churn;
  churn.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const markov::NodeParams& np = config.params.nodes[i];
    stoch::DistributionPtr ttf;
    stoch::DistributionPtr ttr;
    if (config.churn_enabled && np.lambda_f > 0.0) {
      ttf = std::make_unique<stoch::Exponential>(np.lambda_f);
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    } else if (config.starts_down(i)) {
      // No stochastic churn, but the node must still recover once.
      ttr = std::make_unique<stoch::Exponential>(np.lambda_r);
    }
    churn.push_back(std::make_unique<node::FailureProcess>(sim, *ces[i], std::move(ttf),
                                                           std::move(ttr), churn_rngs[i]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (config.starts_down(i)) churn[i]->start(/*initially_down=*/true);
  }

  // t = 0: each node runs the policy against its local view and executes only
  // its own outgoing transfers — the distributed decision of Section 3 where
  // every node computes the same schedule from synced state.
  std::vector<NodeLocalView> views;
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    views.emplace_back(static_cast<int>(i), config.params, ces, board);
  }

  // Staleness accounting: the age of every peer entry a decision consults.
  const auto sample_staleness = [&](int acting_node) {
    for (std::size_t peer = 0; peer < n; ++peer) {
      if (static_cast<int>(peer) == acting_node) continue;
      result.state_age.add(sim.now() - board.last_heard(acting_node, peer).timestamp);
    }
  };

  {
    // All nodes know the exact initial state (paper assumption): seed the
    // state board with true t = 0 packets — including each node's actual
    // up/down status, so an initially-down peer never masquerades as
    // up-and-empty for the first broadcast period.
    for (std::size_t sender = 0; sender < n; ++sender) {
      net::StateInfoPacket packet;
      packet.sender = static_cast<int>(sender);
      packet.timestamp = 0.0;
      packet.queue_size = static_cast<std::uint32_t>(ces[sender]->queue_length());
      packet.processing_rate = config.params.nodes[sender].lambda_d;
      packet.node_up = ces[sender]->is_up();
      for (std::size_t observer = 0; observer < n; ++observer) {
        if (observer == sender) continue;
        board.store(static_cast<int>(observer), packet);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<core::TransferDirective> mine;
      sample_staleness(static_cast<int>(i));
      for (const core::TransferDirective& d : policy.on_start(views[i])) {
        if (d.from == static_cast<int>(i)) mine.push_back(d);
      }
      if (trace != nullptr) {
        trace->events.emit(sim.now(), obs::Kind::kPolicyDecision, static_cast<int>(i), -1,
                           static_cast<std::uint32_t>(mine.size()));
      }
      execute(mine, static_cast<int>(i));
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    churn[i]->set_failure_handler([&, i](int node_id) {
      ++result.failures;
      if (trace != nullptr) trace->events.emit(sim.now(), obs::Kind::kFail, node_id);
      // The backup agent of the failing node reacts with its local view.
      sample_staleness(node_id);
      const std::vector<core::TransferDirective> directives =
          policy.on_failure(node_id, views[i]);
      if (trace != nullptr) {
        trace->events.emit(sim.now(), obs::Kind::kPolicyDecision, node_id, -1,
                           static_cast<std::uint32_t>(directives.size()));
      }
      execute(directives, node_id);
    });
    churn[i]->set_recovery_handler([&, i](int node_id) {
      ++result.recoveries;
      if (trace != nullptr) trace->events.emit(sim.now(), obs::Kind::kRecover, node_id);
      sample_staleness(node_id);
      const std::vector<core::TransferDirective> directives =
          policy.on_recovery(node_id, views[i]);
      if (trace != nullptr) {
        trace->events.emit(sim.now(), obs::Kind::kPolicyDecision, node_id, -1,
                           static_cast<std::uint32_t>(directives.size()));
      }
      execute(directives, node_id);
    });
  }

  // Environment coupling: storms raise every node's failure hazard and, when
  // the channel is env-coupled, floor the channel state (channel storms then
  // correlate with failure storms). Applied before the up-node churn starts so
  // the first time-to-failure draws already see the initial multiplier.
  std::unique_ptr<env::Environment> environment;
  if (env_enabled) {
    environment = std::make_unique<env::Environment>(sim, config.environment, *env_rng);
    if (trace != nullptr) environment->set_event_trace(&trace->events);
    const auto apply_env = [&](std::size_t state) {
      const double mult = config.environment.failure_mult[state];
      for (const auto& process : churn) process->set_hazard_multiplier(mult);
      if (config.channel.env_coupled) {
        const std::size_t k_env = config.environment.states;
        const std::size_t k_ch = config.channel.states;
        const double frac =
            k_env > 1 ? static_cast<double>(state) / static_cast<double>(k_env - 1) : 0.0;
        network.set_channel_floor(
            static_cast<std::size_t>(std::lround(frac * static_cast<double>(k_ch - 1))));
      }
    };
    environment->set_transition_listener(
        [&, apply_env](std::size_t, std::size_t to) { apply_env(to); });
    apply_env(environment->state());
    environment->start();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (config.churn_enabled && config.params.nodes[i].lambda_f > 0.0 &&
        !config.starts_down(i)) {
      churn[i]->start();
    }
  }
  broadcaster.start();

  ProfileClock::time_point profile_loop{};
  if (profile != nullptr) {
    profile_loop = ProfileClock::now();
    profile->setup_s += std::chrono::duration<double>(profile_loop - profile_begin).count();
  }
  sim.run_while_pending([&] { return done; });
  if (profile != nullptr) {
    profile->loop_s +=
        std::chrono::duration<double>(ProfileClock::now() - profile_loop).count();
    profile->reps += 1;
  }
  LBSIM_CHECK(done, "testbed drained its event queue with " << remaining
                                                            << " tasks outstanding");
  broadcaster.stop();

  result.completion_time = completion_time;
  for (const auto& ce : ces) result.tasks_completed += ce->stats().tasks_completed;
  result.state_packets_lost = network.state_packets_lost();
  if (environment != nullptr) result.env_transitions = environment->transitions();
  if (metrics != nullptr) {
    // DES-core instruments; the realization owns its simulator, so the queue
    // stats here cover exactly this run.
    const des::EventQueue::Stats& qs = sim.queue_stats();
    metrics->counter("des.events.scheduled").add(qs.scheduled);
    metrics->counter("des.events.popped").add(qs.popped);
    metrics->counter("des.events.cancelled").add(qs.cancelled);
    metrics->counter("des.slab.compactions").add(qs.compactions);
    metrics->gauge("des.queue.max_depth").max_of(static_cast<double>(qs.max_depth));
    metrics->gauge("des.queue.max_shard_depth")
        .max_of(static_cast<double>(qs.max_shard_depth));
  }
  return result;
}

ExperimentSummary run_experiment(const TestbedConfig& config, std::size_t realizations,
                                 std::uint64_t seed, unsigned threads,
                                 const mc::ObsSinks& sinks) {
  LBSIM_REQUIRE(realizations >= 1, "realizations=" << realizations);
  unsigned workers = threads == 0 ? std::thread::hardware_concurrency() : threads;
  workers = std::max(1u, std::min<unsigned>(workers, static_cast<unsigned>(realizations)));

  using ProfileClock = std::chrono::steady_clock;
  const ProfileClock::time_point wall_begin = ProfileClock::now();

  // Each realization traces into its own buffer; the fold below stitches them
  // in replication order, so the merged trace is thread-count-independent.
  std::vector<mc::RunTrace> rep_traces;
  if (sinks.trace != nullptr) {
    rep_traces.resize(realizations);
    for (mc::RunTrace& t : rep_traces) t.record_queues = false;
  }

  struct Partial {
    stoch::RunningStats completion;
    stoch::RunningStats state_age;
    double failures = 0.0;
    double moved = 0.0;
    double state_lost = 0.0;
    std::vector<double> samples;
    obs::Registry metrics;      // folded in worker-id order (commutative merges)
    obs::PhaseProfile profile;  // folded by summation
  };
  std::vector<Partial> partials(workers);

  const auto worker = [&](unsigned tid) {
    const TestbedConfig local = config.clone();
    Partial& out = partials[tid];
    obs::Registry* metrics = sinks.metrics != nullptr ? &out.metrics : nullptr;
    obs::PhaseProfile* profile = sinks.profile != nullptr ? &out.profile : nullptr;
    for (std::size_t rep = tid; rep < realizations; rep += workers) {
      mc::RunTrace* trace = sinks.trace != nullptr ? &rep_traces[rep] : nullptr;
      const mc::RunResult run = run_realization(local, seed, rep, trace, profile, metrics);
      ProfileClock::time_point fold_begin{};
      if (profile != nullptr) fold_begin = ProfileClock::now();
      out.completion.add(run.completion_time);
      out.state_age.merge(run.state_age);
      out.failures += static_cast<double>(run.failures);
      out.moved += static_cast<double>(run.tasks_moved);
      out.state_lost += static_cast<double>(run.state_packets_lost);
      out.samples.push_back(run.completion_time);
      if (metrics != nullptr) {
        metrics->counter("testbed.realizations").add(1);
        metrics->counter("testbed.failures").add(run.failures);
        metrics->counter("testbed.recoveries").add(run.recoveries);
        metrics->counter("testbed.tasks_completed").add(run.tasks_completed);
        metrics->counter("net.tasks_moved").add(run.tasks_moved);
        metrics->counter("net.bundles_sent").add(run.bundles_sent);
        metrics->counter("net.state_packets_lost").add(run.state_packets_lost);
        metrics->histogram("testbed.completion_time").observe(run.completion_time);
      }
      if (profile != nullptr) {
        profile->fold_s +=
            std::chrono::duration<double>(ProfileClock::now() - fold_begin).count();
      }
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  ExperimentSummary summary;
  double failures = 0.0;
  double moved = 0.0;
  double state_lost = 0.0;
  for (Partial& p : partials) {
    summary.completion.merge(p.completion);
    summary.state_age.merge(p.state_age);
    failures += p.failures;
    moved += p.moved;
    state_lost += p.state_lost;
    summary.samples.insert(summary.samples.end(), p.samples.begin(), p.samples.end());
    if (sinks.metrics != nullptr) sinks.metrics->merge(p.metrics);
    if (sinks.profile != nullptr) sinks.profile->merge(p.profile);
  }
  summary.mean_failures = failures / static_cast<double>(realizations);
  summary.mean_tasks_moved = moved / static_cast<double>(realizations);
  summary.mean_state_lost = state_lost / static_cast<double>(realizations);
  std::sort(summary.samples.begin(), summary.samples.end());

  if (sinks.trace != nullptr) {
    for (std::size_t rep = 0; rep < realizations; ++rep) {
      sinks.trace->emit(0.0, obs::Kind::kRepBegin, -1, -1, 0, rep);
      sinks.trace->absorb(std::move(rep_traces[rep].events));
    }
  }
  if (sinks.metrics != nullptr) {
    const double wall_s =
        std::chrono::duration<double>(ProfileClock::now() - wall_begin).count();
    if (wall_s > 0.0) {
      sinks.metrics->gauge("testbed.reps_per_s")
          .set(static_cast<double>(realizations) / wall_s);
    }
  }
  return summary;
}

}  // namespace lbsim::testbed
