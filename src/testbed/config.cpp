#include "testbed/config.hpp"

#include <utility>

#include "mc/scenario.hpp"
#include "util/error.hpp"

namespace lbsim::testbed {

TestbedConfig TestbedConfig::clone() const {
  TestbedConfig copy;
  copy.params = params;
  copy.workloads = workloads;
  copy.policy = policy ? policy->clone() : nullptr;
  copy.transfer_setup_shift = transfer_setup_shift;
  copy.state_broadcast_period = state_broadcast_period;
  copy.state_latency = state_latency;
  copy.state_loss_probability = state_loss_probability;
  copy.channel = channel;
  copy.environment = environment;
  copy.churn_enabled = churn_enabled;
  copy.initially_down = initially_down;
  return copy;
}

TestbedConfig paper_testbed(std::size_t m0, std::size_t m1, core::PolicyPtr policy) {
  const markov::TwoNodeParams two = markov::ipdps2006_params();
  TestbedConfig config;
  config.params.nodes = {two.nodes[0], two.nodes[1]};
  config.params.per_task_delay_mean = two.per_task_delay_mean;
  config.workloads = {m0, m1};
  config.policy = std::move(policy);
  return config;
}

void validate(const TestbedConfig& config) {
  markov::validate(config.params);
  const std::size_t n = config.params.nodes.size();
  LBSIM_REQUIRE(n >= 2, "testbed needs >= 2 nodes");
  LBSIM_REQUIRE(config.workloads.size() == n, "workloads/nodes size mismatch");
  LBSIM_REQUIRE(config.policy != nullptr, "testbed needs a policy");
  LBSIM_REQUIRE(config.transfer_setup_shift >= 0.0, "setup shift");
  LBSIM_REQUIRE(config.state_broadcast_period > 0.0, "broadcast period");
  LBSIM_REQUIRE(config.state_latency >= 0.0, "state latency");
  // Loss 1.0 is the legitimate total-blackout boundary; only > 1 is an error.
  LBSIM_REQUIRE(config.state_loss_probability >= 0.0 && config.state_loss_probability <= 1.0,
                "state loss");
  net::validate(config.channel);
  env::validate(config.environment);
  LBSIM_REQUIRE(!config.channel.env_coupled || config.environment.enabled(),
                "channel env coupling needs a configured environment");
  if (n < 64) {
    LBSIM_REQUIRE(config.initially_down < (std::uint64_t{1} << n),
                  "initially_down mask addresses nodes >= " << n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (config.starts_down(i)) {
      LBSIM_REQUIRE(config.params.nodes[i].lambda_r > 0.0,
                    "initially-down node " << i << " cannot recover (lambda_r == 0)");
    }
  }
}

TestbedConfig from_scenario(mc::ScenarioConfig&& scenario) {
  TestbedConfig config;
  config.params = scenario.params;
  config.workloads = scenario.workloads;
  config.policy = std::move(scenario.policy);
  config.state_broadcast_period = scenario.exchange_period;
  config.state_latency = scenario.exchange_latency;
  config.state_loss_probability = scenario.exchange_loss;
  config.channel = scenario.state_channel;
  config.environment = scenario.environment;
  config.churn_enabled = scenario.churn_enabled;
  config.initially_down = scenario.initially_down;
  return config;
}

}  // namespace lbsim::testbed
