#include "testbed/config.hpp"

#include "util/error.hpp"

namespace lbsim::testbed {

TestbedConfig TestbedConfig::clone() const {
  TestbedConfig copy;
  copy.params = params;
  copy.workloads = workloads;
  copy.policy = policy ? policy->clone() : nullptr;
  copy.transfer_setup_shift = transfer_setup_shift;
  copy.state_broadcast_period = state_broadcast_period;
  copy.state_latency = state_latency;
  copy.state_loss_probability = state_loss_probability;
  copy.churn_enabled = churn_enabled;
  return copy;
}

TestbedConfig paper_testbed(std::size_t m0, std::size_t m1, core::PolicyPtr policy) {
  const markov::TwoNodeParams two = markov::ipdps2006_params();
  TestbedConfig config;
  config.params.nodes = {two.nodes[0], two.nodes[1]};
  config.params.per_task_delay_mean = two.per_task_delay_mean;
  config.workloads = {m0, m1};
  config.policy = std::move(policy);
  return config;
}

void validate(const TestbedConfig& config) {
  markov::validate(config.params);
  LBSIM_REQUIRE(config.params.nodes.size() >= 2, "testbed needs >= 2 nodes");
  LBSIM_REQUIRE(config.workloads.size() == config.params.nodes.size(),
                "workloads/nodes size mismatch");
  LBSIM_REQUIRE(config.policy != nullptr, "testbed needs a policy");
  LBSIM_REQUIRE(config.transfer_setup_shift >= 0.0, "setup shift");
  LBSIM_REQUIRE(config.state_broadcast_period > 0.0, "broadcast period");
  LBSIM_REQUIRE(config.state_latency >= 0.0, "state latency");
  LBSIM_REQUIRE(config.state_loss_probability >= 0.0 && config.state_loss_probability < 1.0,
                "state loss");
}

}  // namespace lbsim::testbed
