#pragma once
/// \file
/// The UDP state-information plane: every node periodically broadcasts its
/// queue size and capability; every node keeps the last packet heard from each
/// peer. Policies running *at* a node observe that node's true state and the
/// possibly stale advertised state of peers — exactly the distributed-decision
/// structure of Section 3.

#include <vector>

#include "core/policy.hpp"
#include "net/network.hpp"
#include "node/compute_element.hpp"
#include "sim/simulator.hpp"

namespace lbsim::testbed {

/// Last-heard state per (observer, peer) pair.
class StateBoard {
 public:
  explicit StateBoard(std::size_t node_count);

  void store(int observer, const net::StateInfoPacket& packet);

  /// Packet last heard by `observer` from `peer` (observer != peer). Before
  /// any store this is the default-constructed packet (timestamp 0, queue 0,
  /// node up) — which is why the experiment seeds the board with the exact
  /// t = 0 state before any decision runs (see run_realization).
  [[nodiscard]] const net::StateInfoPacket& last_heard(int observer, int peer) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::vector<net::StateInfoPacket> board_;  // row-major [observer][peer]
};

/// SystemView as seen from one node: own queue read live from the CE, peers
/// read from the state board.
class NodeLocalView final : public core::SystemView {
 public:
  NodeLocalView(int self, const markov::MultiNodeParams& params,
                const std::vector<std::unique_ptr<node::ComputeElement>>& ces,
                const StateBoard& board);

  [[nodiscard]] std::size_t node_count() const override;
  [[nodiscard]] std::size_t queue_length(int node) const override;
  [[nodiscard]] bool is_up(int node) const override;
  [[nodiscard]] markov::NodeParams node_params(int node) const override;
  [[nodiscard]] double per_task_delay_mean() const override;

 private:
  int self_;
  const markov::MultiNodeParams& params_;
  const std::vector<std::unique_ptr<node::ComputeElement>>& ces_;
  const StateBoard& board_;
};

/// Periodically broadcasts every node's state packet over the network and
/// feeds arrivals into the board.
class StateBroadcaster {
 public:
  StateBroadcaster(des::Simulator& sim, net::Network& network, StateBoard& board,
                   const std::vector<std::unique_ptr<node::ComputeElement>>& ces,
                   const markov::MultiNodeParams& params, double period);

  /// Schedules the first broadcast round at t = now + period (t = 0 state is
  /// known exactly by assumption) and keeps going until stop().
  void start();
  void stop() noexcept { running_ = false; }

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  void broadcast_round();

  des::Simulator& sim_;
  net::Network& network_;
  StateBoard& board_;
  const std::vector<std::unique_ptr<node::ComputeElement>>& ces_;
  const markov::MultiNodeParams& params_;
  double period_;
  bool running_ = false;
  std::uint64_t rounds_ = 0;
};

}  // namespace lbsim::testbed
