#pragma once
/// \file
/// The emulated end-to-end experiment: application layer (random-size
/// matrix-row tasks, size-proportional execution), communication layer
/// (Erlang per-task bundle delays with setup shift; periodic lossy UDP state
/// exchange), and LB/failure layer (policy + failure injector + backup agent).
/// This produces the "Experimental Result" columns of Tables 1-2 and the
/// queue realisations of Fig. 4.

#include <cstdint>

#include "mc/scenario.hpp"
#include "stochastic/stats.hpp"
#include "testbed/config.hpp"

namespace lbsim::testbed {

/// One emulated realisation; same result/trace types as the abstract MC so
/// that benches can tabulate them side by side. `profile` (optional)
/// accumulates the setup / event-loop wall-time split; `metrics` (optional)
/// receives the realisation's DES-core and net-layer instrument updates.
/// Neither consumes RNG draws or changes any simulated quantity.
[[nodiscard]] mc::RunResult run_realization(const TestbedConfig& config, std::uint64_t seed,
                                            std::uint64_t replication,
                                            mc::RunTrace* trace = nullptr,
                                            obs::PhaseProfile* profile = nullptr,
                                            obs::Registry* metrics = nullptr);

struct ExperimentSummary {
  stoch::RunningStats completion;
  double mean_failures = 0.0;
  double mean_tasks_moved = 0.0;
  /// Per-decision peer state age pooled over all realizations (see
  /// mc::RunResult::state_age).
  stoch::RunningStats state_age;
  /// State-plane packets dropped per realization, averaged.
  double mean_state_lost = 0.0;
  std::vector<double> samples;

  [[nodiscard]] double mean() const noexcept { return completion.mean(); }
  [[nodiscard]] double ci95() const noexcept { return stoch::ci_half_width(completion); }
};

/// Runs `realizations` independent emulated experiments (the paper uses
/// 20-60 per configuration) on `threads` threads (0 = hardware concurrency).
/// `sinks` optionally attaches the observability layer: a merged structured
/// trace (replication order), a merged metrics registry (worker-id order plus
/// driver-level gauges), and the aggregated phase profile.
[[nodiscard]] ExperimentSummary run_experiment(const TestbedConfig& config,
                                               std::size_t realizations,
                                               std::uint64_t seed = 0xbed2006,
                                               unsigned threads = 0,
                                               const mc::ObsSinks& sinks = {});

}  // namespace lbsim::testbed
