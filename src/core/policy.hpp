#pragma once
/// \file
/// The load-balancing policy abstraction. A policy observes the system through
/// a read-only SystemView and answers three questions with transfer directives:
/// what to do at t = 0, at a node-failure instant, and at a recovery instant.
/// The simulation engines (mc/, testbed/) execute the directives — capping them
/// by what the sender actually holds — and charge the network delays.

#include <memory>
#include <string>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::stoch {
class RngStream;
}

namespace lbsim::core {

/// "Move `count` tasks from node `from` to node `to`."
struct TransferDirective {
  int from = 0;
  int to = 0;
  std::size_t count = 0;
};

/// Read-only system snapshot offered to policies. Implemented by the engines.
class SystemView {
 public:
  virtual ~SystemView() = default;
  [[nodiscard]] virtual std::size_t node_count() const = 0;
  [[nodiscard]] virtual std::size_t queue_length(int node) const = 0;
  [[nodiscard]] virtual bool is_up(int node) const = 0;
  /// The stochastic parameters the policy is allowed to know (the paper's
  /// policies know rates, not realisations).
  [[nodiscard]] virtual markov::NodeParams node_params(int node) const = 0;
  [[nodiscard]] virtual double per_task_delay_mean() const = 0;

  /// Neighbourhood restriction. The default is the complete exchange graph
  /// (every other node is a neighbour), which is what every pre-topology
  /// engine exposes; a topology-aware engine overrides both methods to
  /// restrict a policy's horizon — and its transfers — to the node's
  /// adjacency. Neighbour indices are stable within one policy invocation.
  [[nodiscard]] virtual std::size_t neighbor_count(int node) const {
    (void)node;
    return node_count() - 1;
  }
  /// k-th neighbour of `node`, k < neighbor_count(node) (ascending node id).
  [[nodiscard]] virtual int neighbor(int node, std::size_t k) const {
    const int peer = static_cast<int>(k);
    return peer < node ? peer : peer + 1;
  }
};

class LoadBalancingPolicy {
 public:
  virtual ~LoadBalancingPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Balancing action at t = 0 (all policies act here, possibly with nothing).
  [[nodiscard]] virtual std::vector<TransferDirective> on_start(const SystemView& view) = 0;

  /// True when the policy's entire action is its t = 0 directives (the
  /// failure/recovery/periodic hooks never move a task). Start-only policies
  /// stay inside the regeneration solvers' model, so the theory oracle can
  /// predict them exactly; event-driven ones (LBP-2, periodic) cannot be
  /// expressed there. Conservative default: false.
  [[nodiscard]] virtual bool start_only() const noexcept { return false; }

  /// Balancing action at the instant node `node` fails (default: none).
  [[nodiscard]] virtual std::vector<TransferDirective> on_failure(int node,
                                                                  const SystemView& view);

  /// Balancing action at the instant node `node` recovers (default: none).
  [[nodiscard]] virtual std::vector<TransferDirective> on_recovery(int node,
                                                                   const SystemView& view);

  /// Balancing action on a periodic timer tick (default: none). Engines fire
  /// this only when configured with a rebalance period.
  [[nodiscard]] virtual std::vector<TransferDirective> on_periodic(const SystemView& view);

  /// True when the policy draws randomness (e.g. random neighbour probes).
  /// The engine then appends a dedicated per-replication RNG stream and hands
  /// it over through bind_rng before on_start; RNG-free policies keep the
  /// historical stream layout bit-for-bit. Conservative default: false.
  [[nodiscard]] virtual bool needs_rng() const noexcept { return false; }

  /// Receives the per-replication stream (valid for the whole replication).
  /// Only called when needs_rng() is true; clones do not inherit the binding.
  virtual void bind_rng(stoch::RngStream* rng) { (void)rng; }

  /// Deep copy, so each Monte-Carlo replication can own an instance.
  [[nodiscard]] virtual std::unique_ptr<LoadBalancingPolicy> clone() const = 0;
};

using PolicyPtr = std::unique_ptr<LoadBalancingPolicy>;

}  // namespace lbsim::core
