#pragma once
/// \file
/// Baseline policies the paper's proposals are compared against (and two
/// generic baselines every LB study wants): do nothing, and a speed-
/// proportional one-shot balance that ignores both delays and failures
/// (i.e. the excess-load split with K = 1, the "conventional" policy the
/// authors' earlier work shows is delay-fragile).

#include "core/policy.hpp"

namespace lbsim::core {

/// Never moves a task.
class NoBalancingPolicy final : public LoadBalancingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "NoBalancing"; }
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;
  [[nodiscard]] bool start_only() const noexcept override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;
};

/// One-shot excess-load balance with fixed K = 1 and no on-failure action.
class ProportionalOncePolicy final : public LoadBalancingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "ProportionalOnce"; }
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;
  [[nodiscard]] bool start_only() const noexcept override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;
};

}  // namespace lbsim::core
