#include "core/policy.hpp"

namespace lbsim::core {

std::vector<TransferDirective> LoadBalancingPolicy::on_failure(int /*node*/,
                                                               const SystemView& /*view*/) {
  return {};
}

std::vector<TransferDirective> LoadBalancingPolicy::on_recovery(int /*node*/,
                                                                const SystemView& /*view*/) {
  return {};
}

std::vector<TransferDirective> LoadBalancingPolicy::on_periodic(const SystemView& /*view*/) {
  return {};
}

}  // namespace lbsim::core
