#pragma once
/// \file
/// Gain and sender/receiver optimisation against the analytical model.
///
/// Because tasks are indivisible, the objective is piecewise constant in K:
/// only the integer transfer count L = round(K * m_sender) matters. The exact
/// optimiser therefore enumerates L (for both candidate senders) and reports
/// K* = L*/m_sender; a paper-style grid search over K is also provided for
/// reproducing the published sweeps.

#include <cstddef>

#include "markov/params.hpp"
#include "markov/two_node_mean.hpp"

namespace lbsim::core {

struct Lbp1Optimum {
  int sender = 0;             ///< which node ships tasks
  double gain = 0.0;          ///< K*
  std::size_t transfer = 0;   ///< L = round(K* x m_sender)
  double expected_completion = 0.0;
};

/// Exact optimum of LBP-1 over both senders and every integer transfer size.
[[nodiscard]] Lbp1Optimum optimize_lbp1_exact(const markov::TwoNodeParams& params,
                                              std::size_t m0, std::size_t m1);

/// Paper-style optimisation over a K grid {0, step, 2*step, ..., 1} for both
/// senders (the paper uses step = 0.05).
[[nodiscard]] Lbp1Optimum optimize_lbp1_grid(const markov::TwoNodeParams& params,
                                             std::size_t m0, std::size_t m1,
                                             double step = 0.05);

struct Lbp2InitialGain {
  double gain = 0.0;
  std::size_t transfer = 0;         ///< tasks leaving the overloaded node
  int sender = 0;                   ///< the overloaded node (excess > 0), or -1 if none
  double expected_completion = 0.0; ///< under the no-failure model
};

/// LBP-2's initial gain: the K minimising the *no-failure* mean completion
/// time when the overloaded node ships round(K * excess) tasks (this is the
/// optimisation the authors solved in their earlier delay papers and reuse
/// in Table 2). Failure rates in `params` are ignored.
[[nodiscard]] Lbp2InitialGain optimize_lbp2_initial_gain(const markov::TwoNodeParams& params,
                                                         std::size_t m0, std::size_t m1);

}  // namespace lbsim::core
