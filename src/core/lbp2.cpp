#include "core/lbp2.hpp"

#include <sstream>

#include "core/excess.hpp"
#include "util/error.hpp"

namespace lbsim::core {

Lbp2Policy::Lbp2Policy(double gain, bool state_aware)
    : gain_(gain), state_aware_(state_aware) {
  LBSIM_REQUIRE(gain >= 0.0 && gain <= 1.0 + 1e-9, "gain=" << gain);
}

std::string Lbp2Policy::name() const {
  std::ostringstream os;
  os << "LBP-2(K=" << gain_;
  if (state_aware_) os << ", aware";
  os << ")";
  return os.str();
}

std::vector<TransferDirective> Lbp2Policy::on_start(const SystemView& view) {
  const std::size_t n = view.node_count();
  std::vector<double> rates(n);
  std::vector<std::size_t> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = view.node_params(static_cast<int>(i)).lambda_d;
    loads[i] = view.queue_length(static_cast<int>(i));
  }
  std::vector<TransferDirective> directives;
  for (const InitialTransfer& t : initial_balance_transfers(rates, loads, gain_)) {
    directives.push_back(TransferDirective{static_cast<int>(t.from),
                                           static_cast<int>(t.to), t.count});
  }
  return directives;
}

std::vector<TransferDirective> Lbp2Policy::on_failure(int node, const SystemView& view) {
  const std::size_t n = view.node_count();
  LBSIM_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < n, "node=" << node);
  std::vector<markov::NodeParams> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = view.node_params(static_cast<int>(i));

  std::vector<TransferDirective> directives;
  std::size_t available = view.queue_length(node);
  for (std::size_t i = 0; i < n && available > 0; ++i) {
    if (static_cast<int>(i) == node) continue;
    // State-aware mode: don't ship to a peer believed down. The belief may be
    // stale (testbed state board) — wrong in either direction it costs gain.
    if (state_aware_ && !view.is_up(static_cast<int>(i))) continue;
    const std::size_t lf = lbp2_failure_transfer(nodes, i, static_cast<std::size_t>(node));
    if (lf == 0) continue;
    const std::size_t count = std::min(lf, available);
    available -= count;
    directives.push_back(TransferDirective{node, static_cast<int>(i), count});
  }
  return directives;
}

PolicyPtr Lbp2Policy::clone() const { return std::make_unique<Lbp2Policy>(*this); }

}  // namespace lbsim::core
