#include "core/lbp1.hpp"

#include <cmath>
#include <sstream>

#include "core/excess.hpp"
#include "util/error.hpp"

namespace lbsim::core {

Lbp1Policy::Lbp1Policy(int sender, double gain) : sender_(sender), gain_(gain) {
  LBSIM_REQUIRE(sender == 0 || sender == 1, "two-node LBP-1 sender=" << sender);
  LBSIM_REQUIRE(gain >= 0.0 && gain <= 1.0 + 1e-9, "gain=" << gain);
}

Lbp1Policy::Lbp1Policy(double gain) : gain_(gain) {
  LBSIM_REQUIRE(gain >= 0.0 && gain <= 1.0 + 1e-9, "gain=" << gain);
}

std::string Lbp1Policy::name() const {
  std::ostringstream os;
  os << "LBP-1(K=" << gain_;
  if (sender_) os << ", sender=" << *sender_;
  os << ")";
  return os.str();
}

std::vector<TransferDirective> Lbp1Policy::on_start(const SystemView& view) {
  const std::size_t n = view.node_count();
  if (sender_) {
    LBSIM_REQUIRE(n == 2, "explicit-sender LBP-1 is a two-node policy, got " << n);
    const int from = *sender_;
    const int to = 1 - from;
    const auto m_sender = view.queue_length(from);
    const auto count = static_cast<std::size_t>(
        std::llround(gain_ * static_cast<double>(m_sender)));
    if (count == 0) return {};
    return {TransferDirective{from, to, count}};
  }

  // Multi-node extension: one preemptive excess-load balance.
  std::vector<double> rates(n);
  std::vector<std::size_t> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = view.node_params(static_cast<int>(i)).lambda_d;
    loads[i] = view.queue_length(static_cast<int>(i));
  }
  std::vector<TransferDirective> directives;
  for (const InitialTransfer& t : initial_balance_transfers(rates, loads, gain_)) {
    directives.push_back(TransferDirective{static_cast<int>(t.from),
                                           static_cast<int>(t.to), t.count});
  }
  return directives;
}

PolicyPtr Lbp1Policy::clone() const { return std::make_unique<Lbp1Policy>(*this); }

}  // namespace lbsim::core
