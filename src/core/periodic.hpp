#pragma once
/// \file
/// Periodic re-balancing: a natural extension the paper's Section 5 hints at.
/// Every `period` seconds the policy re-runs the excess-load partition
/// (eqs. (6)-(7)) against the current queues, optionally stacking LBP-2's
/// on-failure compensation on top. Engines drive the timer via on_periodic()
/// (see ScenarioConfig::rebalance_period).

#include "core/policy.hpp"

namespace lbsim::core {

class PeriodicRebalancePolicy final : public LoadBalancingPolicy {
 public:
  /// `gain` scales every balancing episode; `compensate_failures` additionally
  /// issues LBP-2's eq. (8) transfers at failure instants.
  PeriodicRebalancePolicy(double period, double gain, bool compensate_failures = false);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;
  [[nodiscard]] std::vector<TransferDirective> on_failure(int node,
                                                          const SystemView& view) override;
  [[nodiscard]] std::vector<TransferDirective> on_periodic(const SystemView& view) override;
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] double period() const noexcept { return period_; }

 private:
  [[nodiscard]] std::vector<TransferDirective> balance(const SystemView& view) const;

  double period_;
  double gain_;
  bool compensate_failures_;
};

}  // namespace lbsim::core
