#pragma once
/// \file
/// Neighbourhood-local balancing policies: each node acts on its graph
/// neighbourhood only (SystemView::neighbor_count / neighbor), never on global
/// state, so they stay well-defined on the sparse graph-* topologies.
///
/// Two classics are provided:
///  * DiffusionPolicy — first-order diffusion (Cybenko; Cai & Sauerwald with
///    stochastic inputs): each round every edge (i, j) moves
///    floor(alpha * w_ij * (q_i - q_j)) tasks from the fuller endpoint, with
///    Metropolis weights w_ij = 1 / (1 + max(deg_i, deg_j)). On a static
///    connected graph the real-valued iteration contracts the imbalance by at
///    least the Laplacian spectral gap per round (pinned in
///    net_topology_test).
///  * RandomProbePolicy — random local resampling (Ganesh et al. style): each
///    round every node probes d random neighbours and steals from the fullest
///    or sheds to the emptiest probed neighbour, halving the difference.
///
/// Both act on the engine's periodic round timer (rebalance_period); diffusion
/// additionally runs one deterministic round at t = 0, mirroring the global
/// policies' initial balance.

#include <cstddef>

#include "core/policy.hpp"

namespace lbsim::core {

/// Metropolis edge weight 1 / (1 + max(deg_i, deg_j)): symmetric, and row sums
/// stay < 1, so the diffusion matrix I - alpha * W L is doubly stochastic for
/// alpha in (0, 1]. Exposed for the spectral-gap theory tests.
[[nodiscard]] double metropolis_weight(std::size_t deg_i, std::size_t deg_j);

/// First-order diffusion with step scale alpha in (0, 1].
class DiffusionPolicy final : public LoadBalancingPolicy {
 public:
  explicit DiffusionPolicy(double alpha);

  [[nodiscard]] std::string name() const override;
  /// One diffusion round at t = 0 (the initial balance).
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;
  /// One diffusion round per engine round timer tick.
  [[nodiscard]] std::vector<TransferDirective> on_periodic(const SystemView& view) override;
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  [[nodiscard]] std::vector<TransferDirective> round(const SystemView& view) const;

  double alpha_;
};

/// Random local resampling: probe `probes` random neighbours per round.
class RandomProbePolicy final : public LoadBalancingPolicy {
 public:
  explicit RandomProbePolicy(std::size_t probes);

  [[nodiscard]] std::string name() const override;
  /// No t = 0 action: probing is random and rounds begin at the first tick,
  /// so the initial condition stays exactly the configured workloads.
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;
  [[nodiscard]] std::vector<TransferDirective> on_periodic(const SystemView& view) override;
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] bool needs_rng() const noexcept override { return true; }
  void bind_rng(stoch::RngStream* rng) override { rng_ = rng; }

  [[nodiscard]] std::size_t probes() const noexcept { return probes_; }

 private:
  std::size_t probes_;
  stoch::RngStream* rng_ = nullptr;  // engine-owned, rebound every replication
};

}  // namespace lbsim::core
