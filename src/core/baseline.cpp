#include "core/baseline.hpp"

#include "core/excess.hpp"

namespace lbsim::core {

std::vector<TransferDirective> NoBalancingPolicy::on_start(const SystemView& /*view*/) {
  return {};
}

PolicyPtr NoBalancingPolicy::clone() const {
  return std::make_unique<NoBalancingPolicy>(*this);
}

std::vector<TransferDirective> ProportionalOncePolicy::on_start(const SystemView& view) {
  const std::size_t n = view.node_count();
  std::vector<double> rates(n);
  std::vector<std::size_t> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = view.node_params(static_cast<int>(i)).lambda_d;
    loads[i] = view.queue_length(static_cast<int>(i));
  }
  std::vector<TransferDirective> directives;
  for (const InitialTransfer& t : initial_balance_transfers(rates, loads, 1.0)) {
    directives.push_back(TransferDirective{static_cast<int>(t.from),
                                           static_cast<int>(t.to), t.count});
  }
  return directives;
}

PolicyPtr ProportionalOncePolicy::clone() const {
  return std::make_unique<ProportionalOncePolicy>(*this);
}

}  // namespace lbsim::core
