#pragma once
/// \file
/// LBP-2 (paper Section 2.2): a failure-agnostic initial balance at t = 0 —
/// each node sends K * p_ij * excess_j tasks (eqs. (6)-(7)), with K chosen
/// against the *no-failure* delay theory — followed by a compensating action at
/// every failure instant: the failing node's backup ships LF_ij tasks (eq. (8))
/// to each peer i.

#include "core/policy.hpp"

namespace lbsim::core {

class Lbp2Policy final : public LoadBalancingPolicy {
 public:
  /// `gain` is the initial-balance gain K (optimised under the no-failure
  /// theory; see core/optimizer.hpp, or take the paper's Table 2 values).
  /// With `state_aware`, the failure compensation additionally consults the
  /// view's peer up/down state and withholds eq. (8) shipments to peers it
  /// believes are down. Under an exact view this only avoids dead letters; on
  /// the testbed the belief comes from the (possibly stale) state board, which
  /// is precisely how outdated information erodes the policy's gain. Default
  /// off: the historical failure response stays bit-identical.
  explicit Lbp2Policy(double gain, bool state_aware = false);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;

  /// At every failure of node j: send LF_ij tasks to each peer i (eq. (8)).
  /// The engine caps the directives by node j's actual queue content.
  [[nodiscard]] std::vector<TransferDirective> on_failure(int node,
                                                          const SystemView& view) override;

  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] double gain() const noexcept { return gain_; }
  [[nodiscard]] bool state_aware() const noexcept { return state_aware_; }

 private:
  double gain_;
  bool state_aware_;
};

}  // namespace lbsim::core
