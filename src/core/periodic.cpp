#include "core/periodic.hpp"

#include <sstream>

#include "core/excess.hpp"
#include "util/error.hpp"

namespace lbsim::core {

PeriodicRebalancePolicy::PeriodicRebalancePolicy(double period, double gain,
                                                 bool compensate_failures)
    : period_(period), gain_(gain), compensate_failures_(compensate_failures) {
  LBSIM_REQUIRE(period > 0.0, "period=" << period);
  LBSIM_REQUIRE(gain >= 0.0 && gain <= 1.0 + 1e-9, "gain=" << gain);
}

std::string PeriodicRebalancePolicy::name() const {
  std::ostringstream os;
  os << "PeriodicRebalance(T=" << period_ << ", K=" << gain_
     << (compensate_failures_ ? ", +LF" : "") << ")";
  return os.str();
}

std::vector<TransferDirective> PeriodicRebalancePolicy::balance(
    const SystemView& view) const {
  const std::size_t n = view.node_count();
  std::vector<double> rates(n);
  std::vector<std::size_t> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = view.node_params(static_cast<int>(i)).lambda_d;
    loads[i] = view.queue_length(static_cast<int>(i));
  }
  std::vector<TransferDirective> directives;
  for (const InitialTransfer& t : initial_balance_transfers(rates, loads, gain_)) {
    // Do not strip a down node of its queue mid-outage; its backup acts only
    // at failure instants (LBP-2 semantics), not on the periodic tick.
    if (!view.is_up(static_cast<int>(t.from))) continue;
    directives.push_back(TransferDirective{static_cast<int>(t.from),
                                           static_cast<int>(t.to), t.count});
  }
  return directives;
}

std::vector<TransferDirective> PeriodicRebalancePolicy::on_start(const SystemView& view) {
  return balance(view);
}

std::vector<TransferDirective> PeriodicRebalancePolicy::on_periodic(const SystemView& view) {
  return balance(view);
}

std::vector<TransferDirective> PeriodicRebalancePolicy::on_failure(int node,
                                                                   const SystemView& view) {
  if (!compensate_failures_) return {};
  const std::size_t n = view.node_count();
  std::vector<markov::NodeParams> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = view.node_params(static_cast<int>(i));
  std::vector<TransferDirective> directives;
  std::size_t available = view.queue_length(node);
  for (std::size_t i = 0; i < n && available > 0; ++i) {
    if (static_cast<int>(i) == node) continue;
    const std::size_t lf = lbp2_failure_transfer(nodes, i, static_cast<std::size_t>(node));
    if (lf == 0) continue;
    const std::size_t count = std::min(lf, available);
    available -= count;
    directives.push_back(TransferDirective{node, static_cast<int>(i), count});
  }
  return directives;
}

PolicyPtr PeriodicRebalancePolicy::clone() const {
  return std::make_unique<PeriodicRebalancePolicy>(*this);
}

}  // namespace lbsim::core
