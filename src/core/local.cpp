#include "core/local.hpp"

#include <algorithm>
#include <sstream>

#include "stochastic/rng.hpp"
#include "util/error.hpp"

namespace lbsim::core {
namespace {

/// Snapshot of what a round sees: queue lengths and up/down flags are read
/// once, so every directive of the round is computed against the same state
/// (the engine executes directives only after the hook returns).
struct RoundState {
  std::vector<std::size_t> queue;
  std::vector<bool> up;

  explicit RoundState(const SystemView& view) {
    const std::size_t n = view.node_count();
    queue.resize(n);
    up.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      queue[i] = view.queue_length(static_cast<int>(i));
      up[i] = view.is_up(static_cast<int>(i));
    }
  }
};

}  // namespace

double metropolis_weight(std::size_t deg_i, std::size_t deg_j) {
  return 1.0 / (1.0 + static_cast<double>(std::max(deg_i, deg_j)));
}

DiffusionPolicy::DiffusionPolicy(double alpha) : alpha_(alpha) {
  LBSIM_REQUIRE(alpha > 0.0 && alpha <= 1.0, "diffusion alpha=" << alpha);
}

std::string DiffusionPolicy::name() const {
  std::ostringstream os;
  os << "Diffusion(alpha=" << alpha_ << ")";
  return os.str();
}

std::vector<TransferDirective> DiffusionPolicy::round(const SystemView& view) const {
  const RoundState state(view);
  const std::size_t n = view.node_count();
  std::vector<TransferDirective> directives;
  for (std::size_t i = 0; i < n; ++i) {
    if (!state.up[i]) continue;
    const std::size_t deg_i = view.neighbor_count(static_cast<int>(i));
    for (std::size_t k = 0; k < deg_i; ++k) {
      const auto j = static_cast<std::size_t>(view.neighbor(static_cast<int>(i), k));
      if (j <= i || !state.up[j]) continue;  // each live edge once
      const double w =
          metropolis_weight(deg_i, view.neighbor_count(static_cast<int>(j)));
      const double imbalance = static_cast<double>(state.queue[i]) -
                               static_cast<double>(state.queue[j]);
      const auto count = static_cast<std::size_t>(alpha_ * w *
                                                  (imbalance < 0 ? -imbalance : imbalance));
      if (count == 0) continue;
      if (imbalance > 0) {
        directives.push_back({static_cast<int>(i), static_cast<int>(j), count});
      } else {
        directives.push_back({static_cast<int>(j), static_cast<int>(i), count});
      }
    }
  }
  return directives;
}

std::vector<TransferDirective> DiffusionPolicy::on_start(const SystemView& view) {
  return round(view);
}

std::vector<TransferDirective> DiffusionPolicy::on_periodic(const SystemView& view) {
  return round(view);
}

PolicyPtr DiffusionPolicy::clone() const { return std::make_unique<DiffusionPolicy>(*this); }

RandomProbePolicy::RandomProbePolicy(std::size_t probes) : probes_(probes) {
  LBSIM_REQUIRE(probes >= 1, "probes=" << probes);
}

std::string RandomProbePolicy::name() const {
  std::ostringstream os;
  os << "RandomProbe(d=" << probes_ << ")";
  return os.str();
}

std::vector<TransferDirective> RandomProbePolicy::on_start(const SystemView& view) {
  (void)view;
  return {};
}

std::vector<TransferDirective> RandomProbePolicy::on_periodic(const SystemView& view) {
  LBSIM_CHECK(rng_ != nullptr, "RandomProbePolicy needs an engine-bound RNG stream");
  const RoundState state(view);
  const std::size_t n = view.node_count();
  std::vector<TransferDirective> directives;
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < n; ++i) {
    if (!state.up[i]) continue;  // a down node cannot run its local protocol
    const std::size_t deg = view.neighbor_count(static_cast<int>(i));
    if (deg == 0) continue;
    // Probe min(d, deg) distinct neighbours: partial Fisher-Yates over the
    // neighbour slots, one uniform draw per probe (deterministic draw count,
    // so replications stay reproducible for any outcome).
    const std::size_t d = std::min(probes_, deg);
    slots.resize(deg);
    for (std::size_t k = 0; k < deg; ++k) slots[k] = k;
    // Fullest probed neighbour (steal candidate; a down neighbour's stranded
    // queue may be rescued) and emptiest probed up neighbour (shed target).
    std::size_t steal_from = n;  // sentinel: none
    std::size_t shed_to = n;
    for (std::size_t p = 0; p < d; ++p) {
      const std::size_t pick = p + rng_->uniform_index(deg - p);
      std::swap(slots[p], slots[pick]);
      const auto j =
          static_cast<std::size_t>(view.neighbor(static_cast<int>(i), slots[p]));
      if (steal_from == n || state.queue[j] > state.queue[steal_from]) steal_from = j;
      if (state.up[j] && (shed_to == n || state.queue[j] < state.queue[shed_to])) {
        shed_to = j;
      }
    }
    const std::size_t steal_gap =
        steal_from != n && state.queue[steal_from] > state.queue[i]
            ? state.queue[steal_from] - state.queue[i]
            : 0;
    const std::size_t shed_gap = shed_to != n && state.queue[i] > state.queue[shed_to]
                                     ? state.queue[i] - state.queue[shed_to]
                                     : 0;
    // Halve the larger gap (ties steal: pulling work towards a live node).
    if (steal_gap >= 2 && steal_gap >= shed_gap) {
      directives.push_back(
          {static_cast<int>(steal_from), static_cast<int>(i), steal_gap / 2});
    } else if (shed_gap >= 2) {
      directives.push_back({static_cast<int>(i), static_cast<int>(shed_to), shed_gap / 2});
    }
  }
  return directives;
}

PolicyPtr RandomProbePolicy::clone() const {
  auto copy = std::make_unique<RandomProbePolicy>(probes_);
  return copy;  // the RNG binding is per-replication and engine-owned
}

}  // namespace lbsim::core
