#pragma once
/// \file
/// The arithmetic of LBP-2's balancing actions (paper eqs. (6)-(8)) as pure,
/// separately-testable functions.

#include <cstddef>
#include <vector>

#include "markov/params.hpp"

namespace lbsim::core {

/// Excess load of node j: (m_j - (lambda_dj / sum_k lambda_dk) * sum_l m_l)^+ .
/// A node's fair share is proportional to its processing speed; only the part
/// above the fair share is eligible to leave.
[[nodiscard]] double excess_load(const std::vector<double>& lambda_d,
                                 const std::vector<std::size_t>& workloads, std::size_t j);

/// Partition fraction p_ij (paper eq. (6)): the share of node j's excess that
/// is sent to node i. For n = 2 the peer receives everything; for n >= 3
///   p_ij = 1/(n-2) * (1 - (m_i/lambda_di) / sum_{l != j} (m_l/lambda_dl)),
/// so nodes with smaller *normalised* load (drain time) receive more.
/// p_jj = 0; the fractions over i != j sum to 1.
[[nodiscard]] double partition_fraction(const std::vector<double>& lambda_d,
                                        const std::vector<std::size_t>& workloads,
                                        std::size_t i, std::size_t j);

/// LBP-2's on-failure transfer size LF_ij (paper eq. (8)): when node j fails,
/// its backup sends to node i
///   floor( availability_i * (lambda_di / sum_k lambda_dk) * lambda_dj / lambda_rj )
/// tasks — the expected backlog lambda_dj/lambda_rj accumulated during the
/// mean recovery time, split by processing speed and discounted by the
/// receiver's steady-state availability.
[[nodiscard]] std::size_t lbp2_failure_transfer(const std::vector<markov::NodeParams>& nodes,
                                                std::size_t i, std::size_t j);

/// All transfers LBP-2 issues at t = 0 for gain K: node j sends
/// round(K * p_ij * excess_j) tasks to each node i (paper eq. (7)). Entries
/// with zero tasks are omitted.
struct InitialTransfer {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t count = 0;
};
[[nodiscard]] std::vector<InitialTransfer> initial_balance_transfers(
    const std::vector<double>& lambda_d, const std::vector<std::size_t>& workloads,
    double gain);

}  // namespace lbsim::core
