#pragma once
/// \file
/// LBP-1 (paper Section 2.1): a single preemptive, one-way transfer at t = 0 of
/// L = round(K * m_sender) tasks; no further balancing. The gain K and the
/// sender are chosen against the failure-aware analytical model (use
/// core/optimizer.hpp, or pass them explicitly to reproduce a paper row).
///
/// For n > 2 nodes the paper's single (sender, receiver, K m_i) action
/// generalises to the one-shot excess-load partition of eqs. (6)-(7) executed
/// once at t = 0; this extension is what Lbp1Policy does when node_count > 2.

#include <optional>

#include "core/policy.hpp"

namespace lbsim::core {

class Lbp1Policy final : public LoadBalancingPolicy {
 public:
  /// Two-node form: `sender` ships round(gain * m_sender) to the other node.
  Lbp1Policy(int sender, double gain);

  /// Multi-node form: one-shot excess-load balance with gain K at t = 0.
  explicit Lbp1Policy(double gain);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<TransferDirective> on_start(const SystemView& view) override;
  [[nodiscard]] bool start_only() const noexcept override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] double gain() const noexcept { return gain_; }
  [[nodiscard]] std::optional<int> sender() const noexcept { return sender_; }

 private:
  std::optional<int> sender_;
  double gain_;
};

}  // namespace lbsim::core
