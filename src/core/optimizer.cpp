#include "core/optimizer.hpp"

#include <cmath>

#include "core/excess.hpp"
#include "util/error.hpp"

namespace lbsim::core {
namespace {

/// Mean completion when `sender` ships exactly L tasks.
double mean_for_transfer(markov::TwoNodeMeanSolver& solver, std::size_t m0, std::size_t m1,
                         int sender, std::size_t L) {
  const std::size_t q0 = (sender == 0) ? m0 - L : m0;
  const std::size_t q1 = (sender == 1) ? m1 - L : m1;
  return solver.mean_with_transit(q0, q1, L, 1 - sender);
}

}  // namespace

Lbp1Optimum optimize_lbp1_exact(const markov::TwoNodeParams& params, std::size_t m0,
                                std::size_t m1) {
  markov::TwoNodeMeanSolver solver(params);
  Lbp1Optimum best;
  bool first = true;
  for (const int sender : {0, 1}) {
    const std::size_t m_sender = (sender == 0) ? m0 : m1;
    for (std::size_t L = 0; L <= m_sender; ++L) {
      const double mean = mean_for_transfer(solver, m0, m1, sender, L);
      if (first || mean < best.expected_completion) {
        first = false;
        best.sender = sender;
        best.transfer = L;
        best.gain = (m_sender == 0)
                        ? 0.0
                        : static_cast<double>(L) / static_cast<double>(m_sender);
        best.expected_completion = mean;
      }
    }
  }
  return best;
}

Lbp1Optimum optimize_lbp1_grid(const markov::TwoNodeParams& params, std::size_t m0,
                               std::size_t m1, double step) {
  LBSIM_REQUIRE(step > 0.0 && step <= 1.0, "step=" << step);
  markov::TwoNodeMeanSolver solver(params);
  Lbp1Optimum best;
  bool first = true;
  const auto n_steps = static_cast<std::size_t>(std::llround(1.0 / step));
  for (const int sender : {0, 1}) {
    const std::size_t m_sender = (sender == 0) ? m0 : m1;
    for (std::size_t k = 0; k <= n_steps; ++k) {
      const double gain = std::min(1.0, static_cast<double>(k) * step);
      const std::size_t L = markov::TwoNodeMeanSolver::lbp1_transfer_count(m_sender, gain);
      const double mean = mean_for_transfer(solver, m0, m1, sender, L);
      if (first || mean < best.expected_completion) {
        first = false;
        best.sender = sender;
        best.gain = gain;
        best.transfer = L;
        best.expected_completion = mean;
      }
    }
  }
  return best;
}

Lbp2InitialGain optimize_lbp2_initial_gain(const markov::TwoNodeParams& params,
                                           std::size_t m0, std::size_t m1) {
  const markov::TwoNodeParams reliable = markov::without_failures(params);
  markov::TwoNodeMeanSolver solver(reliable);

  const std::vector<double> rates = {reliable.nodes[0].lambda_d, reliable.nodes[1].lambda_d};
  const std::vector<std::size_t> loads = {m0, m1};
  // At most one node carries excess in a two-node system.
  int sender = -1;
  double excess = 0.0;
  for (const std::size_t j : {std::size_t{0}, std::size_t{1}}) {
    const double e = excess_load(rates, loads, j);
    if (e > excess) {
      excess = e;
      sender = static_cast<int>(j);
    }
  }

  Lbp2InitialGain best;
  if (sender < 0) {
    // Already balanced: no transfer; K conventionally 1 (nothing to attenuate).
    best.gain = 1.0;
    best.sender = -1;
    best.transfer = 0;
    best.expected_completion = solver.mean_no_transit(m0, m1);
    return best;
  }

  const auto max_transfer = static_cast<std::size_t>(std::llround(excess));
  bool first = true;
  for (std::size_t L = 0; L <= max_transfer; ++L) {
    const double mean = mean_for_transfer(solver, m0, m1, sender, L);
    if (first || mean < best.expected_completion) {
      first = false;
      best.sender = sender;
      best.transfer = L;
      best.gain = excess > 0.0 ? static_cast<double>(L) / excess : 0.0;
      best.expected_completion = mean;
    }
  }
  best.gain = std::min(best.gain, 1.0);
  return best;
}

}  // namespace lbsim::core
