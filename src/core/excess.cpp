#include "core/excess.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lbsim::core {
namespace {

void validate_inputs(const std::vector<double>& lambda_d,
                     const std::vector<std::size_t>& workloads) {
  LBSIM_REQUIRE(lambda_d.size() == workloads.size(),
                "rates/workloads size mismatch: " << lambda_d.size() << " vs "
                                                  << workloads.size());
  LBSIM_REQUIRE(lambda_d.size() >= 2, "need at least two nodes");
  for (const double rate : lambda_d) LBSIM_REQUIRE(rate > 0.0, "lambda_d=" << rate);
}

}  // namespace

double excess_load(const std::vector<double>& lambda_d,
                   const std::vector<std::size_t>& workloads, std::size_t j) {
  validate_inputs(lambda_d, workloads);
  LBSIM_REQUIRE(j < workloads.size(), "node " << j);
  double rate_sum = 0.0;
  double load_sum = 0.0;
  for (std::size_t k = 0; k < lambda_d.size(); ++k) {
    rate_sum += lambda_d[k];
    load_sum += static_cast<double>(workloads[k]);
  }
  const double fair_share = (lambda_d[j] / rate_sum) * load_sum;
  const double excess = static_cast<double>(workloads[j]) - fair_share;
  return excess > 0.0 ? excess : 0.0;
}

double partition_fraction(const std::vector<double>& lambda_d,
                          const std::vector<std::size_t>& workloads, std::size_t i,
                          std::size_t j) {
  validate_inputs(lambda_d, workloads);
  const std::size_t n = lambda_d.size();
  LBSIM_REQUIRE(i < n && j < n, "nodes " << i << "," << j);
  if (i == j) return 0.0;
  if (n == 2) return 1.0;
  double normalised_sum = 0.0;  // sum over l != j of m_l / lambda_dl
  for (std::size_t l = 0; l < n; ++l) {
    if (l == j) continue;
    normalised_sum += static_cast<double>(workloads[l]) / lambda_d[l];
  }
  const double mine = static_cast<double>(workloads[i]) / lambda_d[i];
  if (normalised_sum <= 0.0) {
    // All candidate receivers are empty: split the excess evenly.
    return 1.0 / static_cast<double>(n - 1);
  }
  return (1.0 - mine / normalised_sum) / static_cast<double>(n - 2);
}

std::size_t lbp2_failure_transfer(const std::vector<markov::NodeParams>& nodes,
                                  std::size_t i, std::size_t j) {
  LBSIM_REQUIRE(nodes.size() >= 2, "need at least two nodes");
  LBSIM_REQUIRE(i < nodes.size() && j < nodes.size() && i != j, "nodes " << i << "," << j);
  const markov::NodeParams& failed = nodes[j];
  LBSIM_REQUIRE(failed.lambda_r > 0.0,
                "node " << j << " has no recovery law; LF is undefined");
  double rate_sum = 0.0;
  for (const auto& node : nodes) rate_sum += node.lambda_d;
  const double receiver_share = nodes[i].lambda_d / rate_sum;
  const double expected_backlog = failed.lambda_d / failed.lambda_r;
  const double amount =
      markov::availability(nodes[i]) * receiver_share * expected_backlog;
  return static_cast<std::size_t>(std::floor(amount));
}

std::vector<InitialTransfer> initial_balance_transfers(
    const std::vector<double>& lambda_d, const std::vector<std::size_t>& workloads,
    double gain) {
  validate_inputs(lambda_d, workloads);
  LBSIM_REQUIRE(gain >= 0.0 && gain <= 1.0 + 1e-9, "gain=" << gain);
  const std::size_t n = lambda_d.size();
  std::vector<InitialTransfer> out;
  for (std::size_t j = 0; j < n; ++j) {
    const double excess = excess_load(lambda_d, workloads, j);
    if (excess <= 0.0) continue;
    std::size_t remaining = workloads[j];
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      const double fraction = partition_fraction(lambda_d, workloads, i, j);
      const auto count = static_cast<std::size_t>(std::llround(gain * fraction * excess));
      if (count == 0) continue;
      const std::size_t sendable = std::min(count, remaining);
      if (sendable == 0) continue;
      remaining -= sendable;
      out.push_back(InitialTransfer{j, i, sendable});
    }
  }
  return out;
}

}  // namespace lbsim::core
