#include "obs/registry.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace lbsim::obs {

namespace {

/// Shortest round-trip decimal for a double (JSON value position).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

/// Metric names are identifiers we mint ([a-z0-9._]), but escape defensively.
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xffu);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp, m in [0.5, 1)
  int octave = exp - 1;                         // v in [2^octave, 2^(octave+1))
  std::size_t sub =
      static_cast<std::size_t>((mantissa * 2.0 - 1.0) * static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  if (octave < kMinExp) {
    octave = kMinExp;
    sub = 0;  // underflow clamps to the very first grid bucket
  } else if (octave >= kMaxExp) {
    octave = kMaxExp - 1;
    sub = kSubBuckets - 1;  // overflow clamps to the very last grid bucket
  }
  return 1 + static_cast<std::size_t>(octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  const std::size_t grid = i - 1;
  const int octave = kMinExp + static_cast<int>(grid / kSubBuckets);
  const std::size_t sub = grid % kSubBuckets;
  const double base = std::ldexp(1.0, octave);
  return base * (1.0 + static_cast<double>(sub) / static_cast<double>(kSubBuckets));
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

void Registry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  os << "{\n";

  os << pad1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << pad2 << json_string(name) << ": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "},\n";

  os << pad1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << pad2 << json_string(name) << ": "
       << json_double(g.value());
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "},\n";

  os << pad1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << pad2 << json_string(name) << ": {\"count\": "
       << h.count() << ", \"sum\": " << json_double(h.sum())
       << ", \"min\": " << json_double(h.count() ? h.min() : 0.0)
       << ", \"max\": " << json_double(h.count() ? h.max() : 0.0) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (h.bucket(i) == 0) continue;
      if (!first_bucket) os << ", ";
      os << "{\"lo\": " << json_double(Histogram::bucket_lower(i))
         << ", \"n\": " << h.bucket(i) << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "}\n";

  os << pad << "}";
}

}  // namespace lbsim::obs
