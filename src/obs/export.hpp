#pragma once
/// \file
/// Trace exporters: JSONL (one record per line, lossless u64 payloads,
/// parse-back supported for round-trip tests) and the Chrome trace-event
/// JSON array consumed by Perfetto / chrome://tracing.

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace lbsim::obs {

/// Optional header line for JSONL exports, written as a `{"meta": {...}}`
/// object before the records so a trace file is self-describing.
struct TraceMeta {
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t replications = 0;
  std::string git_revision;
};

/// Writes one JSON object per line:
/// `{"t":..,"kind":"fail","node":0,"peer":-1,"count":0,"payload":0}`.
/// `payload` is the raw u64 bit pattern, so doubles round-trip exactly.
void write_jsonl(std::ostream& os, const TraceBuffer& trace,
                 const TraceMeta* meta = nullptr);

/// Parses a JSONL trace (skipping any leading meta line) back into records.
/// Throws util::Error on malformed input.
[[nodiscard]] std::vector<Record> read_jsonl(std::istream& is);

/// Writes the Chrome trace-event format: every record becomes an instant
/// event (`"ph":"i"`) with ts in microseconds, pid = replication (tracked
/// from kRepBegin markers) and tid = node, so Perfetto lays replications out
/// as processes and nodes as threads.
void write_chrome(std::ostream& os, const TraceBuffer& trace);

}  // namespace lbsim::obs
