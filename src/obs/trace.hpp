#pragma once
/// \file
/// Structured binary tracing: fixed 32-byte POD records appended into a
/// chunked arena. The sink is allocation-free per event (a new chunk is
/// amortised over thousands of appends), consumes zero RNG draws, and is
/// bit-identity-neutral — recording must never change what a run computes.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

namespace lbsim::obs {

/// Event taxonomy. Values are stable (they appear in exported traces);
/// append only.
enum class Kind : std::uint32_t {
  kRepBegin = 0,       ///< replication boundary marker (payload = replication index)
  kTaskArrive = 1,     ///< task enqueued on a node (count = tasks added)
  kServiceStart = 2,   ///< node began serving a task
  kTaskComplete = 3,   ///< task finished service
  kTransferSend = 4,   ///< bundle handed to a link (node -> peer, count = tasks)
  kTransferDeliver = 5,///< bundle arrived at its destination (node -> peer, count = tasks)
  kFail = 6,           ///< node went down
  kRecover = 7,        ///< node came back up
  kEnvTransition = 8,  ///< environment CTMC jump (node = from state, peer = to state)
  kChannelState = 9,   ///< state-plane channel changed state (node = link owner, count = new state)
  kStatePacketLost = 10, ///< state packet dropped on the exchange plane
  kPolicyDecision = 11,///< a policy hook emitted directives (count = directives)
  kInject = 12,        ///< external arrival epoch (count = tasks injected)
};

/// Number of distinct kinds (for per-kind count arrays).
inline constexpr std::size_t kKindCount = 13;

/// Stable lowercase name for a kind (exported to JSONL / Chrome traces).
[[nodiscard]] std::string_view kind_name(Kind kind) noexcept;

/// Inverse of kind_name; returns false if `name` is not a known kind.
[[nodiscard]] bool parse_kind(std::string_view name, Kind& out) noexcept;

/// One trace event. Exactly 32 bytes, trivially copyable: a buffer of these
/// is a flat binary log. `payload` is a u64 bit-pattern; use payload_f64()
/// when the producer stored a double.
struct Record {
  double time = 0.0;          ///< simulation time of the event
  std::uint32_t kind = 0;     ///< Kind, stored raw so the struct stays POD
  std::int32_t node = -1;     ///< primary node id (-1 = not applicable)
  std::int32_t peer = -1;     ///< secondary node / destination / to-state
  std::uint32_t count = 0;    ///< cardinality (tasks in a bundle, directives, ...)
  std::uint64_t payload = 0;  ///< kind-specific extra datum (bit pattern)

  [[nodiscard]] Kind kind_enum() const noexcept { return static_cast<Kind>(kind); }
  [[nodiscard]] double payload_f64() const noexcept {
    double d;
    std::memcpy(&d, &payload, sizeof d);
    return d;
  }
  static std::uint64_t pack_f64(double d) noexcept {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof u);
    return u;
  }

  friend bool operator==(const Record& a, const Record& b) noexcept {
    return a.time == b.time && a.kind == b.kind && a.node == b.node && a.peer == b.peer &&
           a.count == b.count && a.payload == b.payload;
  }
};

static_assert(sizeof(Record) == 32, "trace records are fixed 32-byte PODs");
static_assert(std::is_trivially_copyable_v<Record>);

/// Append-only arena of Records. Storage is a list of fixed-capacity chunks:
/// the hot path is a pointer bump; a chunk allocation happens once per
/// kChunkRecords events (first chunk is small so an untraced-feeling run —
/// e.g. one replication of a two-node scenario — costs one 8 KiB block).
class TraceBuffer {
 public:
  static constexpr std::size_t kFirstChunkRecords = 256;
  /// 2048 records = 64 KiB per chunk — deliberately under glibc's 128 KiB
  /// mmap threshold, so steady-state chunk turnover is served from the
  /// (reused) heap instead of mmap/munmap round-trips with fresh pages.
  static constexpr std::size_t kChunkRecords = 2048;

  TraceBuffer() = default;
  ~TraceBuffer();
  TraceBuffer(TraceBuffer&&) noexcept = default;
  TraceBuffer& operator=(TraceBuffer&& other) noexcept;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends one record. O(1), allocation-free except on chunk boundaries.
  void append(const Record& r) {
    if (cursor_ == end_) grow();
    *cursor_++ = r;
    ++size_;
  }

  /// Convenience append from fields.
  void emit(double time, Kind kind, std::int32_t node = -1, std::int32_t peer = -1,
            std::uint32_t count = 0, std::uint64_t payload = 0) {
    append(Record{time, static_cast<std::uint32_t>(kind), node, peer, count, payload});
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Number of records of the given kind (linear scan).
  [[nodiscard]] std::size_t count(Kind kind) const noexcept;

  /// Visits every record in append order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      const Record* begin = chunks_[c].data.get();
      const Record* end =
          (c + 1 == chunks_.size()) ? cursor_ : begin + chunks_[c].used;
      for (const Record* r = begin; r != end; ++r) fn(*r);
    }
  }

  /// Flat copy of all records (tests, exporters that need random access).
  [[nodiscard]] std::vector<Record> to_vector() const;

  /// Copies every record of `other` onto the end of this buffer. This is the
  /// replication-order merge: engines fold per-replication buffers in
  /// replication order, so the merged trace is thread-count-independent.
  void append_all(const TraceBuffer& other);

  /// Splices `other`'s chunks onto the end of this buffer, leaving `other`
  /// empty. O(chunks), no record copies — the allocation-free way for engines
  /// to fold per-replication buffers into the merged sink. Record order is
  /// identical to append_all (partially filled chunks keep their fill mark).
  void absorb(TraceBuffer&& other);

  /// Drops all records but keeps the allocated chunks for reuse.
  void clear() noexcept;

 private:
  /// Returns every chunk to the process-wide recycler (see trace.cpp). Reused
  /// chunks come back with warm pages, so steady-state tracing never churns
  /// through the allocator's mmap/trim path — that churn, not record
  /// emission, dominates recording overhead when arenas are freed cold.
  void release_chunks() noexcept;

  struct Chunk {
    std::unique_ptr<Record[]> data;
    std::size_t capacity = 0;
    /// Records actually written. Kept current for every chunk except the
    /// live last one, whose fill is `cursor_` (grow/absorb finalize it).
    std::size_t used = 0;
  };

  void grow();

  std::vector<Chunk> chunks_;
  Record* cursor_ = nullptr;  ///< next write slot in the last chunk
  Record* end_ = nullptr;     ///< one past the last chunk's capacity
  std::size_t size_ = 0;
};

}  // namespace lbsim::obs
