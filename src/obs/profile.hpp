#pragma once
/// \file
/// Engine self-profiling: per-phase wall-time breakdown of a replication
/// (setup / event loop / stats fold). Engines accumulate one of these per
/// worker and merge — sums commute, so the aggregate is thread-count-
/// independent. Timing reads the wall clock only; it never touches RNG
/// state, so profiling preserves bit-identity of every simulated quantity.

#include <cstdint>

namespace lbsim::obs {

struct PhaseProfile {
  double setup_s = 0.0;  ///< config clone, RNG stream construction, node wiring
  double loop_s = 0.0;   ///< the DES event loop (sim.run_while_pending)
  double fold_s = 0.0;   ///< per-replication stats folding into the aggregate
  std::uint64_t reps = 0;

  void merge(const PhaseProfile& other) noexcept {
    setup_s += other.setup_s;
    loop_s += other.loop_s;
    fold_s += other.fold_s;
    reps += other.reps;
  }

  [[nodiscard]] double total_s() const noexcept { return setup_s + loop_s + fold_s; }
};

}  // namespace lbsim::obs
