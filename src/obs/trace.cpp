#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

namespace lbsim::obs {

namespace {

/// Process-wide recycler for trace chunks. glibc returns freed 64 KiB blocks
/// to the OS (heap trim / mmap), so naively freeing arenas between
/// replications makes every later chunk arrive on cold pages — page-fault
/// churn that costs more than record emission itself. Recycling keeps the
/// pages warm; the pool is bounded so one huge trace cannot pin its
/// high-water mark forever.
class ChunkPool {
 public:
  static ChunkPool& instance() {
    static ChunkPool pool;
    return pool;
  }

  std::unique_ptr<Record[]> acquire(std::size_t capacity) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      std::vector<std::unique_ptr<Record[]>>* shelf = shelf_for(capacity);
      if (shelf != nullptr && !shelf->empty()) {
        std::unique_ptr<Record[]> data = std::move(shelf->back());
        shelf->pop_back();
        return data;
      }
    }
    return std::make_unique<Record[]>(capacity);
  }

  void release(std::unique_ptr<Record[]> data, std::size_t capacity) noexcept {
    if (data == nullptr) return;
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::unique_ptr<Record[]>>* shelf = shelf_for(capacity);
    const std::size_t cap_chunks =
        capacity == TraceBuffer::kFirstChunkRecords ? kMaxFirstChunks : kMaxFullChunks;
    if (shelf != nullptr && shelf->size() < cap_chunks) shelf->push_back(std::move(data));
    // Otherwise the unique_ptr frees it: odd sizes and overflow are not kept.
  }

 private:
  /// Bounds: 512 full chunks = 32 MiB retained at most.
  static constexpr std::size_t kMaxFirstChunks = 64;
  static constexpr std::size_t kMaxFullChunks = 512;

  std::vector<std::unique_ptr<Record[]>>* shelf_for(std::size_t capacity) noexcept {
    if (capacity == TraceBuffer::kFirstChunkRecords) return &first_;
    if (capacity == TraceBuffer::kChunkRecords) return &full_;
    return nullptr;
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<Record[]>> first_;
  std::vector<std::unique_ptr<Record[]>> full_;
};

constexpr std::string_view kKindNames[kKindCount] = {
    "rep_begin",       "task_arrive",     "service_start", "task_complete",
    "transfer_send",   "transfer_deliver", "fail",          "recover",
    "env_transition",  "channel_state",   "state_packet_lost",
    "policy_decision", "inject",
};
}  // namespace

std::string_view kind_name(Kind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return i < kKindCount ? kKindNames[i] : std::string_view{"unknown"};
}

bool parse_kind(std::string_view name, Kind& out) noexcept {
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (kKindNames[i] == name) {
      out = static_cast<Kind>(i);
      return true;
    }
  }
  return false;
}

TraceBuffer::~TraceBuffer() { release_chunks(); }

TraceBuffer& TraceBuffer::operator=(TraceBuffer&& other) noexcept {
  if (this != &other) {
    release_chunks();
    chunks_ = std::move(other.chunks_);
    cursor_ = other.cursor_;
    end_ = other.end_;
    size_ = other.size_;
    other.chunks_.clear();
    other.cursor_ = other.end_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void TraceBuffer::release_chunks() noexcept {
  for (Chunk& chunk : chunks_) {
    ChunkPool::instance().release(std::move(chunk.data), chunk.capacity);
  }
  chunks_.clear();
  cursor_ = end_ = nullptr;
  size_ = 0;
}

std::size_t TraceBuffer::count(Kind kind) const noexcept {
  std::size_t n = 0;
  const auto want = static_cast<std::uint32_t>(kind);
  for_each([&](const Record& r) { n += (r.kind == want) ? 1 : 0; });
  return n;
}

std::vector<Record> TraceBuffer::to_vector() const {
  std::vector<Record> out;
  out.reserve(size_);
  for_each([&](const Record& r) { out.push_back(r); });
  return out;
}

void TraceBuffer::append_all(const TraceBuffer& other) {
  // Chunk-wise bulk copy: one capacity check and one memcpy per span instead
  // of per record, so folding a replication buffer moves at memcpy speed.
  for (std::size_t c = 0; c < other.chunks_.size(); ++c) {
    const Record* src = other.chunks_[c].data.get();
    const Record* src_end = (c + 1 == other.chunks_.size())
                                ? other.cursor_
                                : src + other.chunks_[c].used;
    while (src != src_end) {
      if (cursor_ == end_) grow();
      const std::size_t span =
          std::min(static_cast<std::size_t>(src_end - src),
                   static_cast<std::size_t>(end_ - cursor_));
      std::memcpy(cursor_, src, span * sizeof(Record));
      cursor_ += span;
      src += span;
      size_ += span;
    }
  }
}

void TraceBuffer::absorb(TraceBuffer&& other) {
  if (other.size_ == 0) {
    other.clear();
    return;
  }
  // Finalize both live chunks' fill marks, then steal other's chunk list.
  if (!chunks_.empty()) {
    chunks_.back().used = static_cast<std::size_t>(cursor_ - chunks_.back().data.get());
  }
  other.chunks_.back().used =
      static_cast<std::size_t>(other.cursor_ - other.chunks_.back().data.get());
  for (Chunk& chunk : other.chunks_) chunks_.push_back(std::move(chunk));
  cursor_ = other.cursor_;
  end_ = other.end_;
  size_ += other.size_;
  other.chunks_.clear();
  other.cursor_ = other.end_ = nullptr;
  other.size_ = 0;
}

void TraceBuffer::clear() noexcept {
  // Keep only the first chunk so a reused buffer stays cheap but does not
  // pin a long tail of arena memory from an earlier, larger run; the tail
  // goes back to the pool, not to the allocator.
  while (chunks_.size() > 1) {
    ChunkPool::instance().release(std::move(chunks_.back().data), chunks_.back().capacity);
    chunks_.pop_back();
  }
  if (!chunks_.empty()) {
    cursor_ = chunks_.front().data.get();
    end_ = cursor_ + chunks_.front().capacity;
  } else {
    cursor_ = end_ = nullptr;
  }
  size_ = 0;
}

void TraceBuffer::grow() {
  // A full live chunk retires with its fill mark set before a new one opens.
  if (!chunks_.empty()) chunks_.back().used = chunks_.back().capacity;
  const std::size_t cap = chunks_.empty() ? kFirstChunkRecords : kChunkRecords;
  Chunk chunk;
  chunk.data = ChunkPool::instance().acquire(cap);
  chunk.capacity = cap;
  cursor_ = chunk.data.get();
  end_ = cursor_ + cap;
  chunks_.push_back(std::move(chunk));
}

}  // namespace lbsim::obs
