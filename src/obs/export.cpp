#include "obs/export.hpp"

#include <charconv>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>

#include "util/error.hpp"

namespace lbsim::obs {

namespace {

void write_double(std::ostream& os, double v) {
  const auto prec = os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(prec);
}

/// Pulls the raw token following `"key":` out of a JSONL line. Only the flat
/// one-level objects this module writes are supported — which is exactly what
/// the round-trip contract needs.
std::string_view field(std::string_view line, std::string_view key) {
  std::string quoted;
  quoted.reserve(key.size() + 3);
  quoted.push_back('"');
  quoted.append(key);
  quoted.append("\":");
  const std::size_t at = line.find(quoted);
  LBSIM_REQUIRE(at != std::string_view::npos,
                "trace line missing field '" << key << "': " << line);
  std::size_t begin = at + quoted.size();
  while (begin < line.size() && line[begin] == ' ') ++begin;
  std::size_t end = begin;
  if (end < line.size() && line[end] == '"') {
    ++end;
    while (end < line.size() && line[end] != '"') ++end;
    return line.substr(begin + 1, end - begin - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

template <typename T>
T parse_int(std::string_view token, std::string_view what) {
  T value{};
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  LBSIM_REQUIRE(ec == std::errc{} && ptr == token.data() + token.size(),
                "bad " << what << " in trace line: '" << token << "'");
  return value;
}

double parse_double(std::string_view token, std::string_view what) {
  // std::from_chars for doubles is missing on some libstdc++ versions this
  // project still supports, so go through strtod with an explicit bound.
  const std::string owned(token);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  LBSIM_REQUIRE(end == owned.c_str() + owned.size(),
                "bad " << what << " in trace line: '" << token << "'");
  return value;
}

}  // namespace

void write_jsonl(std::ostream& os, const TraceBuffer& trace, const TraceMeta* meta) {
  if (meta != nullptr) {
    os << "{\"meta\": {\"scenario\": \"" << meta->scenario << "\", \"seed\": " << meta->seed
       << ", \"replications\": " << meta->replications << ", \"git_revision\": \""
       << meta->git_revision << "\", \"record_bytes\": " << sizeof(Record) << "}}\n";
  }
  trace.for_each([&](const Record& r) {
    os << "{\"t\":";
    write_double(os, r.time);
    os << ",\"kind\":\"" << kind_name(r.kind_enum()) << "\",\"node\":" << r.node
       << ",\"peer\":" << r.peer << ",\"count\":" << r.count
       << ",\"payload\":" << r.payload << "}\n";
  });
}

std::vector<Record> read_jsonl(std::istream& is) {
  std::vector<Record> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.find("\"meta\"") != std::string::npos && out.empty() &&
        line.find("\"kind\"") == std::string::npos) {
      continue;  // header line
    }
    Record r;
    r.time = parse_double(field(line, "t"), "time");
    Kind kind{};
    const std::string_view kind_token = field(line, "kind");
    LBSIM_REQUIRE(parse_kind(kind_token, kind), "unknown trace kind '" << kind_token << "'");
    r.kind = static_cast<std::uint32_t>(kind);
    r.node = parse_int<std::int32_t>(field(line, "node"), "node");
    r.peer = parse_int<std::int32_t>(field(line, "peer"), "peer");
    r.count = parse_int<std::uint32_t>(field(line, "count"), "count");
    r.payload = parse_int<std::uint64_t>(field(line, "payload"), "payload");
    out.push_back(r);
  }
  return out;
}

void write_chrome(std::ostream& os, const TraceBuffer& trace) {
  os << "{\"traceEvents\": [";
  bool first = true;
  std::uint64_t pid = 0;  // replication index, advanced by kRepBegin markers
  trace.for_each([&](const Record& r) {
    if (r.kind_enum() == Kind::kRepBegin) pid = r.payload;
    os << (first ? "\n" : ",\n");
    first = false;
    os << " {\"name\": \"" << kind_name(r.kind_enum()) << "\", \"ph\": \"i\", \"ts\": ";
    write_double(os, r.time * 1e6);  // trace-event timestamps are microseconds
    os << ", \"pid\": " << pid << ", \"tid\": " << (r.node >= 0 ? r.node : 0)
       << ", \"s\": \"p\", \"args\": {\"peer\": " << r.peer << ", \"count\": " << r.count
       << ", \"payload\": " << r.payload << "}}";
  });
  os << (first ? "" : "\n") << "]}\n";
}

}  // namespace lbsim::obs
