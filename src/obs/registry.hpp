#pragma once
/// \file
/// Mergeable metrics registry: named counters, gauges, and fixed-bucket
/// log-linear histograms. Instances are single-threaded; engines keep one
/// registry per worker (or per replication) and fold them deterministically
/// — counters in any order (sums commute), gauges/histograms by max /
/// element-wise add — mirroring the fold-in-replication-order discipline of
/// McResult so dumped metrics are thread-count-independent.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace lbsim::obs {

/// Monotonic event count. Merge = sum.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time double with high-water merge discipline: merge keeps the
/// max, which is the only order-independent fold for per-worker peaks (queue
/// depth high-water marks) and is harmless for set-once driver gauges
/// (reps/s) that exist in a single registry.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void max_of(double v) noexcept {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  void merge(const Gauge& other) noexcept { max_of(other.value_); }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log-linear histogram (HDR-style): each power-of-two octave
/// is split into kSubBuckets linear sub-buckets, so relative resolution is
/// bounded (~12.5%) across the whole range with a fixed memory footprint.
/// Values at or below zero land in a dedicated bucket; values outside
/// [2^kMinExp, 2^kMaxExp) clamp to the first/last octave. Merge is
/// element-wise bucket addition plus sum/count/min/max combination, which
/// commutes — per-worker histograms fold to the same result in any order.
class Histogram {
 public:
  static constexpr int kMinExp = -20;  ///< smallest octave: [2^-20, 2^-19)
  static constexpr int kMaxExp = 44;   ///< one past the largest octave
  static constexpr std::size_t kSubBuckets = 8;
  /// Bucket 0 holds v <= 0; buckets 1.. hold the log-linear grid.
  static constexpr std::size_t kBucketCount =
      1 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

  void observe(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return buckets_[i]; }

  /// Inclusive lower edge of bucket `i` (0 for the v<=0 bucket).
  [[nodiscard]] static double bucket_lower(std::size_t i) noexcept;

  /// Index of the bucket `v` falls into.
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;

  void merge(const Histogram& other) noexcept;

 private:
  std::uint64_t buckets_[kBucketCount] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed collection of the three instrument types. Lookup is by string
/// (std::map keeps JSON emission sorted and deterministic); hot paths fetch
/// the instrument reference once and retain it.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Folds `other` into this registry (see class comment for the discipline).
  void merge(const Registry& other);

  /// Emits the metrics object `{"counters":{...},"gauges":{...},
  /// "histograms":{...}}` at the given indentation depth (spaces).
  void write_json(std::ostream& os, int indent = 0) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lbsim::obs
