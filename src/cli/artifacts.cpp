#include "cli/artifacts.hpp"

#include <chrono>
#include <cmath>
#include <iostream>
#include <stdexcept>

#include "app/workload.hpp"
#include "cli/output.hpp"
#include "cli/report.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "net/delay_model.hpp"
#include "stochastic/fit.hpp"
#include "stochastic/histogram.hpp"
#include "stochastic/stats.hpp"
#include "testbed/experiment.hpp"
#include "util/error.hpp"

namespace lbsim::cli {
namespace {

// The pinned operating point of tests/markov_golden_test.cpp.
constexpr std::size_t kGoldenM0 = 100;
constexpr std::size_t kGoldenM1 = 60;
constexpr double kGoldenGain = 0.35;

/// Formats a CDF quantile for an artefact, failing fast with an actionable
/// message when the integration horizon left the requested mass unreached
/// (CdfCurve::quantile returns a +inf tail sentinel there; an artefact must
/// not silently print "inf" into a golden/report table).
std::string format_quantile(const markov::CdfCurve& curve, double q, int digits) {
  const double value = curve.quantile(q);
  LBSIM_REQUIRE(std::isfinite(value), "quantile " << q << " beyond the CDF horizon (tail="
                                                  << curve.tail_mass()
                                                  << "); extend Config::horizon");
  return util::format_double(value, digits);
}

std::size_t pick(std::size_t requested, std::size_t quick_default, std::size_t full_default,
                 bool quick) {
  if (requested != 0) return requested;
  return quick ? quick_default : full_default;
}

// ---------------------------------------------------------------- Table 1 --

util::TextTable run_table1(ArtifactOptions& options, std::ostream& os) {
  print_banner(os, "Table 1", "LBP-1 at the theoretically optimal gain");
  if (options.golden_only) {
    util::TextTable golden = table1_golden_block();
    os << "\nGolden operating point (tests/markov_golden_test.cpp pins):\n";
    golden.print(os);
    return golden;
  }
  const std::size_t realizations = pick(options.realizations, 10, 60, options.quick);
  options.realizations = realizations;  // echoed into run metadata

  const markov::TwoNodeParams params = markov::ipdps2006_params();
  struct PaperRow {
    std::size_t m0, m1;
    double paper_gain, paper_theory, paper_exp, paper_no_failure;
  };
  const PaperRow paper_rows[] = {
      {200, 200, 0.15, 274.95, 264.72, 141.94}, {200, 100, 0.35, 210.13, 207.32, 106.93},
      {100, 200, 0.15, 210.13, 229.19, 106.93}, {200, 50, 0.50, 177.09, 172.56, 89.32},
      {50, 200, 0.25, 177.09, 215.66, 89.32},
  };

  util::TextTable table({"workload", "K* (paper)", "sender", "theory (s)", "paper theory",
                         "testbed (s)", "paper exp.", "no-fail theory", "paper no-fail"});
  for (const PaperRow& row : paper_rows) {
    const core::Lbp1Optimum opt = core::optimize_lbp1_grid(params, row.m0, row.m1, 0.05);
    const core::Lbp1Optimum opt_nf =
        core::optimize_lbp1_grid(markov::without_failures(params), row.m0, row.m1, 0.05);

    testbed::TestbedConfig tb = testbed::paper_testbed(
        row.m0, row.m1, std::make_unique<core::Lbp1Policy>(opt.sender, opt.gain));
    const testbed::ExperimentSummary summary = testbed::run_experiment(tb, realizations);

    table.add_row({workload_label(row.m0, row.m1),
                   util::format_double(opt.gain, 2) + " (" +
                       util::format_double(row.paper_gain, 2) + ")",
                   "node " + std::to_string(opt.sender + 1),
                   util::format_double(opt.expected_completion, 2),
                   util::format_double(row.paper_theory, 2),
                   util::format_double(summary.mean(), 2),
                   util::format_double(row.paper_exp, 2),
                   util::format_double(opt_nf.expected_completion, 2),
                   util::format_double(row.paper_no_failure, 2)});
  }
  table.print(os);

  os << "\nGolden operating point (tests/markov_golden_test.cpp pins):\n";
  table1_golden_block().print(os);
  os << "\nShape checks: the sender is always the more-loaded node; symmetric\n"
        "workload pairs share a theory value; failures roughly double the\n"
        "no-failure completion times (availabilities 0.67 / 0.50).\n";
  return table;
}

// ---------------------------------------------------------------- Table 2 --

util::TextTable run_table2(ArtifactOptions& options, std::ostream& os) {
  print_banner(os, "Table 2", "LBP-2 with the no-failure-optimal initial gain");
  if (options.golden_only) {
    util::TextTable golden = table2_golden_block();
    os << "\nGolden operating point (tests/markov_golden_test.cpp pins):\n";
    golden.print(os);
    return golden;
  }
  const std::size_t mc_reps = pick(options.mc_reps, 100, 500, options.quick);
  const std::size_t realizations = pick(options.realizations, 10, 60, options.quick);
  options.mc_reps = mc_reps;
  options.realizations = realizations;

  const markov::TwoNodeParams params = markov::ipdps2006_params();
  struct PaperRow {
    std::size_t m0, m1;
    double paper_gain, paper_mc, paper_exp;
  };
  const PaperRow paper_rows[] = {
      {200, 200, 1.00, 277.90, 263.40}, {200, 100, 1.00, 202.40, 188.80},
      {100, 200, 0.80, 203.07, 212.90}, {200, 50, 1.00, 170.81, 171.42},
      {50, 200, 0.95, 189.72, 177.60},
  };

  util::TextTable table({"workload", "K (ours)", "K (paper)", "MC sim (s)", "paper MC",
                         "testbed (s)", "paper exp."});
  for (const PaperRow& row : paper_rows) {
    const core::Lbp2InitialGain fitted =
        core::optimize_lbp2_initial_gain(params, row.m0, row.m1);
    const double gain = row.paper_gain;

    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, row.m0, row.m1, std::make_unique<core::Lbp2Policy>(gain));
    mc::McConfig mc_cfg;
    mc_cfg.replications = mc_reps;
    const mc::McResult mc_result = mc::run_monte_carlo(scenario, mc_cfg);

    testbed::TestbedConfig tb =
        testbed::paper_testbed(row.m0, row.m1, std::make_unique<core::Lbp2Policy>(gain));
    const testbed::ExperimentSummary summary = testbed::run_experiment(tb, realizations);

    table.add_row({workload_label(row.m0, row.m1), util::format_double(fitted.gain, 2),
                   util::format_double(row.paper_gain, 2),
                   util::format_double(mc_result.mean(), 2),
                   util::format_double(row.paper_mc, 2),
                   util::format_double(summary.mean(), 2),
                   util::format_double(row.paper_exp, 2)});
  }
  table.print(os);

  os << "\nGolden operating point (tests/markov_golden_test.cpp pins):\n";
  table2_golden_block().print(os);
  os << "\nShape check vs Table 1: LBP-2 beats LBP-1 on every workload at the\n"
        "paper's small per-task delay (0.02 s) -- compare with table1 output.\n";
  return table;
}

// ---------------------------------------------------------------- Table 3 --

util::TextTable run_table3(ArtifactOptions& options, std::ostream& os) {
  const std::size_t mc_reps = pick(options.mc_reps, 150, 800, options.quick);
  options.mc_reps = mc_reps;
  const std::size_t m0 = 100, m1 = 60;

  print_banner(os, "Table 3", "LBP-1 vs LBP-2 under different network delays");

  struct PaperRow {
    double delay, paper_lbp1, paper_lbp2;
  };
  const PaperRow paper_rows[] = {
      {0.01, 116.82, 112.43}, {0.5, 117.76, 115.94}, {1.0, 120.99, 122.25},
      {2.0, 127.62, 133.02},  {3.0, 131.64, 142.86},
  };

  util::TextTable table({"delay/task (s)", "LBP-1 K*", "LBP-1 (s)", "paper", "LBP-2 (s)",
                         "+-95%", "paper", "winner"});
  double crossover_lo = -1.0, crossover_hi = -1.0, prev_gap = 0.0, prev_delay = 0.0;
  for (const PaperRow& row : paper_rows) {
    markov::TwoNodeParams params = markov::ipdps2006_params();
    params.per_task_delay_mean = row.delay;

    const core::Lbp1Optimum lbp1 = core::optimize_lbp1_grid(params, m0, m1, 0.05);
    const core::Lbp2InitialGain gain = core::optimize_lbp2_initial_gain(params, m0, m1);
    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, m0, m1, std::make_unique<core::Lbp2Policy>(gain.gain));
    mc::McConfig mc_cfg;
    mc_cfg.replications = mc_reps;
    const mc::McResult lbp2 = mc::run_monte_carlo(scenario, mc_cfg);

    const double gap = lbp2.mean() - lbp1.expected_completion;
    if (prev_gap < 0.0 && gap >= 0.0 && crossover_lo < 0.0) {
      crossover_lo = prev_delay;
      crossover_hi = row.delay;
    }
    prev_gap = gap;
    prev_delay = row.delay;

    table.add_row({util::format_double(row.delay, 2), util::format_double(lbp1.gain, 2),
                   util::format_double(lbp1.expected_completion, 2),
                   util::format_double(row.paper_lbp1, 2),
                   util::format_double(lbp2.mean(), 2), util::format_double(lbp2.ci95(), 2),
                   util::format_double(row.paper_lbp2, 2), gap < 0.0 ? "LBP-2" : "LBP-1"});
  }
  table.print(os);

  if (crossover_lo >= 0.0) {
    os << "\nCrossover: LBP-1 overtakes LBP-2 between " << util::format_double(crossover_lo, 2)
       << " and " << util::format_double(crossover_hi, 2)
       << " s/task (paper: between 0.5 and 1 s/task).\n";
  } else {
    os << "\nNo crossover observed in the sweep (paper expects one in [0.5, 1]).\n";
  }
  os << "Shape check: LBP-2 wins at small delays, LBP-1 at large delays;\n"
        "both columns increase monotonically with the delay.\n";
  return table;
}

// ---------------------------------------------------------------- Figure 1 --

void fig1_fit_and_print(std::ostream& os, util::TextTable& all, const std::string& node,
                        double rate, std::size_t samples, std::uint64_t seed, double hist_hi) {
  app::WorkloadGenerator generator;
  stoch::RngStream rng(seed);
  const node::TaskBatch batch = generator.generate(samples, 0, rng);
  const auto service = app::calibrated_service(rate);
  std::vector<double> times;
  times.reserve(batch.size());
  stoch::RngStream unused(0);
  for (const auto& task : batch) times.push_back(service(task, unused));

  const stoch::ExponentialFit fit = stoch::fit_exponential(times);
  stoch::Histogram hist(0.0, hist_hi, 12);
  hist.add_all(times);

  os << "\n" << node << " (calibrated rate " << rate << " tasks/s)\n";
  util::TextTable table({"bin center (s)", "empirical pdf", "exp fit pdf"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double t = hist.bin_center(b);
    table.add_row({util::format_double(t, 2), util::format_double(hist.density(b), 3),
                   util::format_double(fit.rate * std::exp(-fit.rate * t), 3)});
    all.add_row({node, util::format_double(t, 2), util::format_double(hist.density(b), 3),
                 util::format_double(fit.rate * std::exp(-fit.rate * t), 3)});
  }
  table.print(os);
  os << "MLE rate: " << util::format_double(fit.rate, 3) << " tasks/s  (target " << rate
     << ")\n";
  print_comparison(os, node + " fitted rate", rate, fit.rate);
}

util::TextTable run_fig1(ArtifactOptions& options, std::ostream& os) {
  const std::size_t samples = pick(options.mc_reps, 2000, 20000, options.quick);
  const std::uint64_t seed = options.seed != 0 ? options.seed : 1;
  options.mc_reps = samples;
  options.seed = seed;

  print_banner(os, "Figure 1", "per-task processing-time pdfs + exponential fits");
  util::TextTable all({"node", "bin center (s)", "empirical pdf", "exp fit pdf"});
  fig1_fit_and_print(os, all, "node 1 (Crusoe)", 1.08, samples, seed, 6.0);
  fig1_fit_and_print(os, all, "node 2 (P4)", 1.86, samples, seed + 1, 3.5);
  os << "\nExpected shape: both empirical pdfs decay exponentially and the\n"
        "MLE rates land on the calibrated 1.08 / 1.86 tasks/s of the paper.\n";
  return all;
}

// ---------------------------------------------------------------- Figure 2 --

util::TextTable run_fig2(ArtifactOptions& options, std::ostream& os) {
  const double per_task = 0.02;
  const double shift = 0.005;
  const int realizations =
      options.realizations != 0 ? static_cast<int>(options.realizations) : 30;
  const std::uint64_t seed = options.seed != 0 ? options.seed : 2;
  options.realizations = static_cast<std::size_t>(realizations);
  options.seed = seed;

  print_banner(os, "Figure 2", "transfer-delay pdf and mean bundle delay vs tasks");

  // --- top: per-task delay pdf (single-task transfers, many samples) ---
  const net::ErlangPerTaskDelay testbed_model(per_task, shift);
  stoch::RngStream rng(seed);
  std::vector<double> single;
  const int pdf_samples = options.quick ? 2000 : 20000;
  for (int i = 0; i < pdf_samples; ++i) single.push_back(testbed_model.sample(1, rng));
  double fitted_shift = 0.0;
  const stoch::ExponentialFit fit = stoch::fit_shifted_exponential(single, &fitted_shift);
  stoch::Histogram hist(0.0, 0.12, 12);
  hist.add_all(single);

  os << "\nPer-task delay pdf (testbed model: " << testbed_model.describe() << ")\n";
  util::TextTable pdf_table({"bin center (s)", "empirical pdf", "shifted-exp fit"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double t = hist.bin_center(b);
    const double fit_pdf =
        t < fitted_shift ? 0.0 : fit.rate * std::exp(-fit.rate * (t - fitted_shift));
    pdf_table.add_row({util::format_double(t, 3), util::format_double(hist.density(b), 2),
                       util::format_double(fit_pdf, 2)});
  }
  pdf_table.print(os);
  os << "fitted shift " << util::format_double(fitted_shift, 4) << " s, fitted mean "
     << util::format_double(fit.mean, 4) << " s";
  print_comparison(os, "\n  mean per-task delay (s)", per_task + shift, fit.mean);

  // --- bottom: mean delay vs number of tasks, linear fit ---
  os << "\nMean bundle delay vs task count (" << realizations << " realisations per point)\n";
  util::TextTable delay_table({"tasks L", "mean delay (s)", "stderr"});
  std::vector<double> xs, ys;
  for (std::size_t L = 10; L <= 100; L += 10) {
    stoch::RunningStats stats;
    for (int r = 0; r < realizations; ++r) stats.add(testbed_model.sample(L, rng));
    delay_table.add_row({std::to_string(L), util::format_double(stats.mean(), 3),
                         util::format_double(stats.std_error(), 3)});
    xs.push_back(static_cast<double>(L));
    ys.push_back(stats.mean());
  }
  delay_table.print(os);
  const stoch::LinearFit line = stoch::fit_linear(xs, ys);
  os << "linear fit: mean_delay = " << util::format_double(line.slope, 4) << " * L + "
     << util::format_double(line.intercept, 4) << "   (R^2 = "
     << util::format_double(line.r_squared, 4) << ")\n";
  print_comparison(os, "slope = per-task delay (s)", per_task, line.slope);
  os << "\nExpected shape: pdf decays exponentially after a small setup shift;\n"
        "mean delay grows linearly in L with slope ~0.02 s/task (paper Fig. 2).\n";
  return delay_table;
}

// ---------------------------------------------------------------- Figure 3 --

util::TextTable run_fig3(ArtifactOptions& options, std::ostream& os) {
  const std::size_t m0 = 100, m1 = 60;
  const std::size_t mc_reps = pick(options.mc_reps, 100, 500, options.quick);
  const std::size_t tb_reps = pick(options.realizations, 20, 60, options.quick);
  options.mc_reps = mc_reps;
  options.realizations = tb_reps;

  print_banner(os, "Figure 3", "LBP-1 mean completion time vs gain K, workload " +
                                   workload_label(m0, m1));

  const markov::TwoNodeParams params = markov::ipdps2006_params();
  markov::TwoNodeMeanSolver theory(params);
  markov::TwoNodeMeanSolver theory_nf(markov::without_failures(params));

  util::TextTable table({"K", "theory (s)", "MC sim (s)", "+-95%", "testbed (s)", "+-95%",
                         "no-failure theory (s)"});
  std::vector<double> ks;
  std::vector<double> theory_curve, mc_curve, tb_curve, nf_curve;

  double best_k = 0.0, best_mean = 1e18, best_k_nf = 0.0, best_mean_nf = 1e18;
  for (int step = 0; step <= 20; ++step) {
    const double gain = 0.05 * step;
    const double mu = theory.lbp1_mean(m0, m1, 0, gain);
    const double mu_nf = theory_nf.lbp1_mean(m0, m1, 0, gain);

    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, m0, m1, std::make_unique<core::Lbp1Policy>(0, gain));
    mc::McConfig mc_cfg;
    mc_cfg.replications = mc_reps;
    const mc::McResult mc_result = mc::run_monte_carlo(scenario, mc_cfg);

    testbed::TestbedConfig tb =
        testbed::paper_testbed(m0, m1, std::make_unique<core::Lbp1Policy>(0, gain));
    const testbed::ExperimentSummary tb_result = testbed::run_experiment(tb, tb_reps);

    table.add_row({util::format_double(gain, 2), util::format_double(mu, 2),
                   util::format_double(mc_result.mean(), 2),
                   util::format_double(mc_result.ci95(), 2),
                   util::format_double(tb_result.mean(), 2),
                   util::format_double(tb_result.ci95(), 2),
                   util::format_double(mu_nf, 2)});
    ks.push_back(gain);
    theory_curve.push_back(mu);
    mc_curve.push_back(mc_result.mean());
    tb_curve.push_back(tb_result.mean());
    nf_curve.push_back(mu_nf);
    if (mu < best_mean) {
      best_mean = mu;
      best_k = gain;
    }
    if (mu_nf < best_mean_nf) {
      best_mean_nf = mu_nf;
      best_k_nf = gain;
    }
  }
  table.print(os);

  os << "\n";
  print_ascii_curve(os, ks, {theory_curve, mc_curve, tb_curve, nf_curve},
                    {"theory (failure)", "MC simulation", "testbed experiment",
                     "theory (no failure)"});

  os << "\nOptimal gain with failures:    K* = " << util::format_double(best_k, 2)
     << "  mean " << util::format_double(best_mean, 2) << " s  (paper: 0.35, ~117 s)\n";
  os << "Optimal gain without failures: K* = " << util::format_double(best_k_nf, 2)
     << "  mean " << util::format_double(best_mean_nf, 2) << " s  (paper: 0.45)\n";
  print_comparison(os, "min mean completion (s)", 117.0, best_mean);
  os << "Shape check: K*(failure) < K*(no failure) -> "
     << (best_k < best_k_nf ? "HOLDS" : "VIOLATED") << "\n";
  return table;
}

// ---------------------------------------------------------------- Figure 4 --

void fig4_show_realization(std::ostream& os, util::TextTable& all, const std::string& label,
                           core::PolicyPtr policy, std::uint64_t seed, std::size_t m0,
                           std::size_t m1) {
  testbed::TestbedConfig config = testbed::paper_testbed(m0, m1, std::move(policy));
  mc::RunTrace trace;
  const mc::RunResult run = testbed::run_realization(config, seed, 0, &trace);

  os << "\n--- " << label << " (completion " << util::format_double(run.completion_time, 1)
     << " s, " << run.failures << " failures, " << run.tasks_moved << " tasks moved) ---\n";

  const std::size_t columns = 90;
  std::vector<double> xs;
  std::vector<double> q0, q1;
  for (const auto& point :
       trace.queue_lengths[0].resample(0.0, run.completion_time, columns)) {
    xs.push_back(point.time);
    q0.push_back(point.value);
  }
  for (const auto& point :
       trace.queue_lengths[1].resample(0.0, run.completion_time, columns)) {
    q1.push_back(point.value);
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add_row({label, util::format_double(xs[i], 2), util::format_double(q0[i], 0),
                 util::format_double(q1[i], 0)});
  }
  print_ascii_curve(os, xs, {q0, q1}, {"node 1 queue (Crusoe)", "node 2 queue (P4)"}, 14);

  os << "churn/transfer log (first 12 records):\n";
  // Render the historical string-log lines from the typed records: only the
  // kinds the old churn/transfer log carried, with identical formatting, so
  // the artefact stays byte-identical across the tracing refactor.
  std::size_t shown = 0;
  trace.events.for_each([&](const obs::Record& record) {
    if (shown >= 12) return;
    std::string line;
    switch (record.kind_enum()) {
      case obs::Kind::kTransferSend:
        line = "transfer " + std::to_string(record.node) + "->" +
               std::to_string(record.peer) + " x" + std::to_string(record.count);
        break;
      case obs::Kind::kTransferDeliver:
        line = "arrival " + std::to_string(record.node) + "->" +
               std::to_string(record.peer) + " x" + std::to_string(record.count);
        break;
      case obs::Kind::kFail:
        line = "fail " + std::to_string(record.node);
        break;
      case obs::Kind::kRecover:
        line = "recover " + std::to_string(record.node);
        break;
      case obs::Kind::kEnvTransition:
        line = "env " + std::to_string(record.peer);
        break;
      default:
        return;  // task/service/policy/channel records were never in this log
    }
    ++shown;
    os << "  t=" << util::format_double(record.time, 2) << "  " << line << "\n";
  });
}

util::TextTable run_fig4(ArtifactOptions& options, std::ostream& os) {
  const std::uint64_t seed = options.seed != 0 ? options.seed : 2006;
  const std::size_t m0 = 100, m1 = 60;
  options.seed = seed;

  print_banner(os, "Figure 4", "one realisation of the queues under LBP-1 and LBP-2");
  util::TextTable all({"policy", "t (s)", "queue 0", "queue 1"});
  fig4_show_realization(os, all, "LBP-1 (K = 0.35)",
                        std::make_unique<core::Lbp1Policy>(0, 0.35), seed, m0, m1);
  fig4_show_realization(os, all, "LBP-2 (K = 1.0)", std::make_unique<core::Lbp2Policy>(1.0),
                        seed, m0, m1);
  os << "\nExpected shape: long flat segments while a node is down; LBP-2 shows\n"
        "downward (sender) and upward (receiver) jumps at failure instants.\n";
  return all;
}

// ---------------------------------------------------------------- Figure 5 --

void fig5_show_workload(std::ostream& os, util::TextTable& all, std::size_t m0, std::size_t m1,
                        double horizon, double dt) {
  const markov::TwoNodeParams params = markov::ipdps2006_params();
  const markov::TwoNodeParams reliable = markov::without_failures(params);

  const core::Lbp1Optimum opt = core::optimize_lbp1_grid(params, m0, m1, 0.05);
  os << "\nWorkload (" << m0 << "," << m1 << "): sender node " << opt.sender + 1
     << ", K* = " << util::format_double(opt.gain, 2) << " (L = " << opt.transfer
     << "), predicted mean " << util::format_double(opt.expected_completion, 1) << " s\n";

  markov::TwoNodeCdfSolver::Config config;
  config.horizon = horizon;
  config.dt = dt;
  const markov::TwoNodeCdfSolver churny(params, config);
  const markov::TwoNodeCdfSolver clean(reliable, config);
  const markov::CdfCurve with_fail = churny.lbp1_cdf(m0, m1, opt.sender, opt.gain);
  const markov::CdfCurve no_fail = clean.lbp1_cdf(m0, m1, opt.sender, opt.gain);

  util::TextTable table({"t (s)", "P{T<=t} failure", "P{T<=t} no failure"});
  const std::size_t stride = with_fail.grid.size() / 25;
  for (std::size_t k = 0; k < with_fail.grid.size(); k += stride) {
    table.add_row({util::format_double(with_fail.grid[k], 0),
                   util::format_double(with_fail.values[k], 3),
                   util::format_double(no_fail.values[k], 3)});
    all.add_row({workload_label(m0, m1), util::format_double(with_fail.grid[k], 0),
                 util::format_double(with_fail.values[k], 3),
                 util::format_double(no_fail.values[k], 3)});
  }
  table.print(os);
  os << "median: failure " << format_quantile(with_fail, 0.5, 1) << " s, no-failure "
     << format_quantile(no_fail, 0.5, 1) << " s\n"
     << "mean from CDF: failure " << util::format_double(with_fail.mean_estimate(), 1)
     << " s, no-failure " << util::format_double(no_fail.mean_estimate(), 1) << " s\n";

  // Dominance check (the paper's visual: the failure CDF lies to the right).
  bool dominated = true;
  for (std::size_t k = 0; k < with_fail.values.size(); ++k) {
    if (with_fail.values[k] > no_fail.values[k] + 1e-6) {
      dominated = false;
      break;
    }
  }
  os << "Shape check: failure CDF stochastically dominated by no-failure CDF -> "
     << (dominated ? "HOLDS" : "VIOLATED") << "\n";
}

util::TextTable run_fig5(ArtifactOptions& options, std::ostream& os) {
  const double horizon = 250.0;
  const double dt = options.quick ? 0.1 : 0.05;

  print_banner(os, "Figure 5", "completion-time CDF under LBP-1, failure vs no-failure");
  util::TextTable all({"workload", "t (s)", "P{T<=t} failure", "P{T<=t} no failure"});
  fig5_show_workload(os, all, 50, 0, horizon, dt);
  fig5_show_workload(os, all, 25, 50, horizon, dt);
  return all;
}

// ----------------------------------------------------------------- table ---

using Runner = util::TextTable (*)(ArtifactOptions&, std::ostream&);

struct Artifact {
  const char* name;
  const char* summary;
  Runner run;
};

constexpr Artifact kArtifacts[] = {
    {"table1", "Table 1: LBP-1 at the theoretically optimal gain", run_table1},
    {"table2", "Table 2: LBP-2 with the no-failure-optimal initial gain", run_table2},
    {"table3", "Table 3: LBP-1 vs LBP-2 crossover in the per-task delay", run_table3},
    {"fig1", "Fig. 1: per-task processing-time pdfs + exponential fits", run_fig1},
    {"fig2", "Fig. 2: transfer-delay pdf and mean bundle delay vs tasks", run_fig2},
    {"fig3", "Fig. 3: LBP-1 mean completion time vs gain K", run_fig3},
    {"fig4", "Fig. 4: one realisation of the queues under LBP-1 / LBP-2", run_fig4},
    {"fig5", "Fig. 5: completion-time CDF under LBP-1, failure vs no-failure", run_fig5},
};

const Artifact& find_artifact(const std::string& name) {
  for (const Artifact& artifact : kArtifacts) {
    if (name == artifact.name) return artifact;
  }
  std::string known;
  for (const Artifact& artifact : kArtifacts) {
    known += (known.empty() ? "" : ", ") + std::string(artifact.name);
  }
  throw std::invalid_argument("unknown artefact '" + name + "' (known: " + known + ")");
}

/// Discards everything written to it (used to suppress the human narration
/// when the caller asked for CSV/JSON).
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};

}  // namespace

const std::vector<std::string>& artifact_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Artifact& artifact : kArtifacts) out.emplace_back(artifact.name);
    return out;
  }();
  return names;
}

std::string artifact_summary(const std::string& name) { return find_artifact(name).summary; }

util::TextTable reproduce_artifact(const std::string& name, const ArtifactOptions& options,
                                   std::ostream& os) {
  const Artifact& artifact = find_artifact(name);
  if (options.golden_only && name != "table1" && name != "table2") {
    throw std::invalid_argument("--golden-only is only meaningful for table1 and table2");
  }

  // Runners resolve their quick-aware defaults into this copy, so the
  // metadata below records the values actually used, not the 0 sentinels.
  ArtifactOptions resolved = options;
  const auto start = std::chrono::steady_clock::now();
  if (options.format == "table") {
    return artifact.run(resolved, os);
  }

  // CSV/JSON: run silently, then emit the primary table with metadata.
  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  util::TextTable table = artifact.run(resolved, null_stream);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunMetadata meta;
  meta.command = "lbsim reproduce " + name;
  meta.scenario = name;
  meta.seed = resolved.seed;
  meta.replications = resolved.mc_reps != 0 ? resolved.mc_reps : resolved.realizations;
  meta.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  if (options.format == "json") {
    write_json(os, meta, table);
  } else {
    write_csv(os, meta, table);
  }
  return table;
}

util::TextTable table1_golden_block() {
  markov::TwoNodeMeanSolver solver(markov::ipdps2006_params());
  util::TextTable table({"metric", "value_s"});
  table.add_row({"mean_no_transit(m0=100,m1=60)",
                 util::format_double(solver.mean_no_transit(kGoldenM0, kGoldenM1), 9)});
  table.add_row({"lbp1_mean(m0=100,m1=60,K=0.35)",
                 util::format_double(
                     solver.lbp1_mean(kGoldenM0, kGoldenM1, 0, kGoldenGain), 9)});
  return table;
}

util::TextTable table2_golden_block() {
  const markov::TwoNodeParams params = markov::ipdps2006_params();
  const markov::TwoNodeCdfSolver cdf_solver(params, markov::TwoNodeCdfSolver::Config{});
  const markov::CdfCurve curve =
      cdf_solver.lbp1_cdf(kGoldenM0, kGoldenM1, 0, kGoldenGain);
  util::TextTable table({"metric", "value_s"});
  table.add_row({"lbp1_cdf_median(m0=100,m1=60,K=0.35)", format_quantile(curve, 0.5, 9)});
  table.add_row({"lbp1_cdf_p90(m0=100,m1=60,K=0.35)", format_quantile(curve, 0.9, 9)});
  return table;
}

}  // namespace lbsim::cli
