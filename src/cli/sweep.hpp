#pragma once
/// \file
/// Cartesian parameter sweeps over registered scenarios.
///
/// An axis is written `key=v1,v2,v3` (explicit list) or `key=lo:hi:step`
/// (inclusive range). `lbsim sweep` expands the cartesian product of every
/// axis, overrides each point's keys onto the scenario's base config, and runs
/// the parallel Monte-Carlo engine per point. Axes may target any scenario key
/// (gain, workloads, failure scales, delay parameters, ...) as well as the
/// engine keys `mc.reps`, `mc.threads`, and `mc.seed`.

#include <cstdint>
#include <string>
#include <vector>

#include "cli/config.hpp"
#include "cli/output.hpp"
#include "cli/registry.hpp"
#include "mc/engine.hpp"

namespace lbsim::cli {

/// One sweep dimension: a key and its ordered list of textual values.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses `key=v1,v2` or `key=lo:hi:step` (inclusive, step > 0). Throws
/// ConfigError on malformed specs or empty axes.
[[nodiscard]] SweepAxis parse_axis(const std::string& spec);

/// Expands the cartesian product, first axis slowest (row-major). Each point
/// is the list of (key, value) assignments in axis order.
[[nodiscard]] std::vector<std::vector<std::pair<std::string, std::string>>> expand_grid(
    const std::vector<SweepAxis>& axes);

/// Engine knobs for one sweep (defaults mirror mc::McConfig).
struct SweepOptions {
  std::size_t replications = 500;
  /// True when the user supplied a replication count (mc.reps or --reps).
  /// Steady-state families default to 1 window per point — each window is
  /// already tens of thousands of tasks and carries its own batch-means CI —
  /// so the finite default of 500 applies only when asked for explicitly.
  bool replications_explicit = false;
  unsigned threads = 0;
  std::uint64_t seed = 0x5eed2006;
  bool dry_run = false;  ///< list the points, run nothing
  /// Append p50_s/p90_s/p99_s columns: exact type-7 values up to
  /// mc::kExactQuantileCap replications per point, P² streaming estimates
  /// (O(1) memory) beyond.
  bool quantiles = false;
  /// When K > 0, collect raw samples and append K+1 empirical-quantile
  /// columns q0_s..q100_s at q = i/K — the point's ECDF at resolution K.
  std::size_t ecdf_points = 0;
  /// Append theory_mean/abs_err/sigma_err columns by dispatching each grid
  /// point to the matching exact solver (markov::TheoryOracle); points past
  /// the tractability boundary carry the "-" no-solver marker.
  bool compare_theory = false;
  /// Variance reduction per grid point (mc.vr / --vr); sweeping the mc.vr key
  /// as an axis compares estimators side by side. Any non-none value (base or
  /// axis) appends the vr/adj_mean_s/adj_ci95_s/vr_ratio columns.
  mc::VrMode vr = mc::VrMode::kNone;
  std::size_t cv_pilot = 0;  ///< control-variate pilot block (0 = engine auto)
  std::size_t shards = 1;    ///< event-queue shards per replication
  /// Observability sinks attached to every grid point (`--metrics`): the
  /// engines merge into the same registry, so the dump covers the whole grid.
  /// Attaching them never perturbs the swept statistics.
  mc::ObsSinks obs;
};

/// Result table of a sweep: one row per grid point (axis columns first, then
/// MC statistics), plus the metadata block for the writers.
struct SweepResult {
  util::TextTable table;
  RunMetadata metadata;
};

/// Runs the sweep of `axes` over `scenario` starting from `base` overrides.
/// Throws ConfigError on invalid axes/keys before any point runs.
[[nodiscard]] SweepResult run_sweep(const ScenarioSpec& scenario, const RawConfig& base,
                                    const std::vector<SweepAxis>& axes,
                                    const SweepOptions& options);

}  // namespace lbsim::cli
