#pragma once
/// \file
/// Regeneration of the paper's artefacts (Tables 1-3, Figures 1-5) behind one
/// entry point, shared by `lbsim reproduce` and the thin bench/ wrappers.
///
/// Each artefact runner prints the same banner/table/shape-check output the
/// original bench binaries produced, and returns its primary result table so
/// the CLI can re-emit it as CSV/JSON with run metadata. Table 1 and Table 2
/// additionally expose a cheap "golden block" — the exact-solver values at the
/// pinned operating point (m0,m1) = (100,60), gain 0.35 of
/// tests/markov_golden_test.cpp — used by the golden-output CTest entry.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/format.hpp"

namespace lbsim::cli {

/// Options shared by every artefact runner.
struct ArtifactOptions {
  bool quick = false;           ///< fewer replications, coarser grids
  bool golden_only = false;     ///< table1/table2: print only the golden block
  std::size_t mc_reps = 0;      ///< 0 = artefact default (quick-aware)
  std::size_t realizations = 0; ///< testbed realisations; 0 = default
  std::uint64_t seed = 0;       ///< 0 = artefact default
  std::string format = "table"; ///< table | csv | json
};

/// Names accepted by `lbsim reproduce`, in presentation order.
[[nodiscard]] const std::vector<std::string>& artifact_names();

/// One-line description of an artefact (for `lbsim list`); throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::string artifact_summary(const std::string& name);

/// Runs one artefact, writing human output (or CSV/JSON when
/// options.format != "table") to `os`. Returns the primary result table.
/// Throws std::invalid_argument for unknown names.
util::TextTable reproduce_artifact(const std::string& name, const ArtifactOptions& options,
                                   std::ostream& os);

/// The Table 1 / Table 2 golden blocks: metric/value rows for the pinned
/// operating point. Exposed separately so tests can compare values directly.
[[nodiscard]] util::TextTable table1_golden_block();
[[nodiscard]] util::TextTable table2_golden_block();

}  // namespace lbsim::cli
