#include "cli/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "util/math.hpp"

namespace lbsim::cli {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Levenshtein distance, for did-you-mean suggestions on unknown keys.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

void check_range(double value, const OptionSpec& spec, const std::string& text) {
  if (value < spec.min_value || value > spec.max_value) {
    std::ostringstream msg;
    msg << "value '" << text << "' for key '" << spec.key << "' is out of range ["
        << spec.min_value << ", " << spec.max_value << "]";
    throw ConfigError(ConfigError::Kind::kOutOfRange, spec.key, msg.str());
  }
}

/// Parses and range-checks one value against its spec (list elements included).
void validate_value(const std::string& text, const OptionSpec& spec) {
  switch (spec.type) {
    case OptionType::kString:
      if (!spec.choices.empty() &&
          std::find(spec.choices.begin(), spec.choices.end(), text) == spec.choices.end()) {
        std::ostringstream msg;
        msg << "value '" << text << "' for key '" << spec.key << "' is not one of {";
        for (std::size_t i = 0; i < spec.choices.size(); ++i) {
          msg << (i != 0 ? ", " : "") << spec.choices[i];
        }
        msg << "}";
        throw ConfigError(ConfigError::Kind::kOutOfRange, spec.key, msg.str());
      }
      break;
    case OptionType::kBool:
      (void)parse_bool(text, spec.key);
      break;
    case OptionType::kInt:
      check_range(static_cast<double>(parse_int(text, spec.key)), spec, text);
      break;
    case OptionType::kSize: {
      const long long v = parse_int(text, spec.key);
      if (v < 0) {
        throw ConfigError(ConfigError::Kind::kOutOfRange, spec.key,
                          "value '" + text + "' for key '" + spec.key + "' must be >= 0");
      }
      check_range(static_cast<double>(v), spec, text);
      break;
    }
    case OptionType::kDouble:
      check_range(parse_double(text, spec.key), spec, text);
      break;
    case OptionType::kSizeList:
    case OptionType::kDoubleList:
      for (const std::string& item : split_list(text)) {
        OptionSpec element = spec;
        element.type =
            spec.type == OptionType::kSizeList ? OptionType::kSize : OptionType::kDouble;
        validate_value(trim(item), element);
      }
      break;
  }
}

}  // namespace

ConfigError::ConfigError(Kind kind, std::string key, const std::string& message)
    : std::runtime_error(message), kind_(kind), key_(std::move(key)) {}

RawConfig parse_ini(const std::string& text) {
  RawConfig raw;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == ';') continue;
    if (stripped.front() == '[') {
      if (stripped.back() != ']' || stripped.size() < 3) {
        throw ConfigError(ConfigError::Kind::kSyntax, "",
                          "line " + std::to_string(lineno) + ": malformed section header '" +
                              stripped + "'");
      }
      section = trim(stripped.substr(1, stripped.size() - 2));
      if (section.empty()) {
        throw ConfigError(ConfigError::Kind::kSyntax, "",
                          "line " + std::to_string(lineno) + ": empty section name");
      }
      continue;
    }
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError(ConfigError::Kind::kSyntax, "",
                        "line " + std::to_string(lineno) + ": expected 'key = value', got '" +
                            stripped + "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    raw.set(section.empty() ? key : section + "." + key, value);
  }
  return raw;
}

RawConfig parse_ini_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read config file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_ini(text.str());
}

void apply_override(RawConfig& raw, const std::string& assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ConfigError(ConfigError::Kind::kSyntax, assignment,
                      "override '" + assignment + "' is not of the form key=value");
  }
  raw.set(trim(assignment.substr(0, eq)), trim(assignment.substr(eq + 1)));
}

std::string to_string(OptionType type) {
  switch (type) {
    case OptionType::kString: return "string";
    case OptionType::kBool: return "bool";
    case OptionType::kInt: return "int";
    case OptionType::kSize: return "size";
    case OptionType::kDouble: return "double";
    case OptionType::kSizeList: return "size-list";
    case OptionType::kDoubleList: return "double-list";
  }
  return "?";
}

Schema& Schema::add(OptionSpec spec) {
  if (find(spec.key) != nullptr) {
    throw std::logic_error("schema already declares key '" + spec.key + "'");
  }
  options_.push_back(std::move(spec));
  return *this;
}

Schema& Schema::merge(const Schema& other) {
  for (const OptionSpec& spec : other.options_) add(spec);
  return *this;
}

const OptionSpec* Schema::find(const std::string& key) const {
  const auto it = std::find_if(options_.begin(), options_.end(),
                               [&](const OptionSpec& spec) { return spec.key == key; });
  return it == options_.end() ? nullptr : &*it;
}

std::string Schema::suggest(const std::string& key) const {
  std::string best;
  std::size_t best_distance = 3;  // suggest only close matches
  for (const OptionSpec& candidate : options_) {
    const std::size_t d = edit_distance(key, candidate.key);
    if (d < best_distance) {
      best_distance = d;
      best = candidate.key;
    }
  }
  return best;
}

Config Schema::resolve(const RawConfig& raw) const {
  for (const auto& [key, value] : raw.values) {
    const OptionSpec* spec = find(key);
    if (spec == nullptr) {
      std::string msg = "unknown key '" + key + "'";
      if (const std::string best = suggest(key); !best.empty()) {
        msg += " (did you mean '" + best + "'?)";
      }
      throw ConfigError(ConfigError::Kind::kUnknownKey, key, msg);
    }
    validate_value(value, *spec);
  }

  Config config;
  for (const OptionSpec& spec : options_) {
    const auto it = raw.values.find(spec.key);
    const bool supplied = it != raw.values.end();
    config.values_[spec.key] = supplied ? it->second : spec.default_value;
    config.types_[spec.key] = spec.type;
    config.supplied_[spec.key] = supplied;
  }
  return config;
}

const std::string& Config::checked(const std::string& key, OptionType type) const {
  const auto type_it = types_.find(key);
  if (type_it == types_.end()) {
    throw std::logic_error("config key '" + key + "' was never declared in the schema");
  }
  if (type_it->second != type) {
    throw std::logic_error("config key '" + key + "' is of type " + to_string(type_it->second) +
                           ", requested as " + to_string(type));
  }
  return values_.at(key);
}

std::string Config::get_string(const std::string& key) const {
  return checked(key, OptionType::kString);
}

bool Config::get_bool(const std::string& key) const {
  return parse_bool(checked(key, OptionType::kBool), key);
}

long long Config::get_int(const std::string& key) const {
  return parse_int(checked(key, OptionType::kInt), key);
}

std::size_t Config::get_size(const std::string& key) const {
  return static_cast<std::size_t>(parse_int(checked(key, OptionType::kSize), key));
}

double Config::get_double(const std::string& key) const {
  return parse_double(checked(key, OptionType::kDouble), key);
}

std::vector<std::size_t> Config::get_size_list(const std::string& key) const {
  std::vector<std::size_t> out;
  for (const std::string& item : split_list(checked(key, OptionType::kSizeList))) {
    out.push_back(static_cast<std::size_t>(parse_int(trim(item), key)));
  }
  return out;
}

std::vector<double> Config::get_double_list(const std::string& key) const {
  std::vector<double> out;
  for (const std::string& item : split_list(checked(key, OptionType::kDoubleList))) {
    out.push_back(parse_double(trim(item), key));
  }
  return out;
}

bool Config::supplied(const std::string& key) const {
  const auto it = supplied_.find(key);
  return it != supplied_.end() && it->second;
}

bool parse_bool(const std::string& text, const std::string& key) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") return false;
  throw ConfigError(ConfigError::Kind::kBadValue, key,
                    "value '" + text + "' for key '" + key + "' is not a bool");
}

long long parse_int(const std::string& text, const std::string& key) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    throw ConfigError(ConfigError::Kind::kBadValue, key,
                      "value '" + text + "' for key '" + key + "' is not an integer");
  }
  return value;
}

double parse_double(const std::string& text, const std::string& key) {
  const std::optional<double> value = util::try_parse_double(text);
  if (!value) {
    throw ConfigError(ConfigError::Kind::kBadValue, key,
                      "value '" + text + "' for key '" + key + "' is not a number");
  }
  return *value;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  if (trim(text).empty()) return out;
  std::string::size_type start = 0;
  while (true) {
    const std::string::size_type comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace lbsim::cli
