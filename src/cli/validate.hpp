#pragma once
/// \file
/// The `lbsim validate` statistical gate: every registry family is run at
/// fixed seeds against the theory oracle wherever an exact solver exists, and
/// the MC estimates must pass a z-score gate on the mean (|sigma_err| below a
/// threshold) plus a Kolmogorov–Smirnov gate on the completion-time ECDF for
/// two-node points. Points past the tractability boundary are reported with
/// the "skip" marker (they demonstrate where theory ends, not a failure).
/// This is the same dispatch `lbsim sweep --compare=theory` uses, promoted to
/// a pass/fail command CI and users run to trust the reproduction.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cli/output.hpp"
#include "util/format.hpp"

namespace lbsim::cli {

struct ValidationOptions {
  /// Restrict to one registry family ("" = all).
  std::string family;
  /// Strict mode: more replications and the tight gates (CI's configuration).
  bool strict = false;
  /// 0 = mode default (400 replications, 1500 under --strict).
  std::size_t replications = 0;
  std::uint64_t seed = 0x5eed2006;
  unsigned threads = 0;
  /// |mc_mean - theory| / stderr gate; 0 = mode default (5.0, 4.0 strict).
  double sigma_gate = 0.0;
  /// Extra absolute slack added to the KS acceptance threshold on top of the
  /// alpha = 0.01 Kolmogorov critical value (covers the solver's dt-grid
  /// discretisation); negative tightens the gate.
  double ks_slack = 0.01;
};

struct ValidationReport {
  util::TextTable table;
  RunMetadata metadata;
  std::size_t checked = 0;   ///< points an exact solver covered
  std::size_t skipped = 0;   ///< points past the solver boundary (not failures)
  std::size_t failures = 0;  ///< gate violations

  [[nodiscard]] bool passed() const noexcept { return failures == 0; }
};

/// Runs the validation suite. Throws ConfigError for an unknown family. A
/// registry family with no registered validation points is itself reported as
/// a failure row — "validate passed" is never vacuous.
[[nodiscard]] ValidationReport run_validation(const ValidationOptions& options);

/// Distinct family names carrying at least one validation point, in
/// registration order (exposed so tests can assert full registry coverage).
[[nodiscard]] std::vector<std::string> validation_families();

/// Kolmogorov critical KS distance at significance alpha for n samples:
/// sqrt(-ln(alpha/2) / (2n)). Exposed for the tests and the report column.
[[nodiscard]] double ks_critical(std::size_t n, double alpha);

}  // namespace lbsim::cli
