#include "cli/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "mc/engine.hpp"

namespace lbsim::cli {
namespace {

/// Formats range-generated values compactly ("0.1", not "0.100000").
std::string format_axis_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

/// Applies one assignment either to the engine options (mc.*) or the raw
/// scenario config.
void assign(const std::string& key, const std::string& value, RawConfig& raw,
            SweepOptions& options) {
  if (key == "mc.reps") {
    const long long reps = parse_int(value, key);
    if (reps < 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key, "mc.reps must be >= 1");
    }
    options.replications = static_cast<std::size_t>(reps);
  } else if (key == "mc.threads") {
    const long long threads = parse_int(value, key);
    if (threads < 0) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key, "mc.threads must be >= 0");
    }
    options.threads = static_cast<unsigned>(threads);
  } else if (key == "mc.seed") {
    options.seed = static_cast<std::uint64_t>(parse_int(value, key));
  } else {
    raw.set(key, value);
  }
}

}  // namespace

SweepAxis parse_axis(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
    throw ConfigError(ConfigError::Kind::kSyntax, spec,
                      "sweep axis '" + spec + "' is not of the form key=values");
  }
  SweepAxis axis;
  axis.key = spec.substr(0, eq);
  const std::string body = spec.substr(eq + 1);

  // lo:hi:step range? (two colons, all numeric)
  const std::size_t c1 = body.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos : body.find(':', c1 + 1);
  if (c2 != std::string::npos && body.find(':', c2 + 1) == std::string::npos) {
    const double lo = parse_double(body.substr(0, c1), axis.key);
    const double hi = parse_double(body.substr(c1 + 1, c2 - c1 - 1), axis.key);
    const double step = parse_double(body.substr(c2 + 1), axis.key);
    if (step <= 0.0 || hi < lo) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, axis.key,
                        "range '" + body + "' needs step > 0 and hi >= lo");
    }
    // Half-step slack keeps hi inclusive under floating-point accumulation.
    for (double v = lo; v <= hi + step * 0.5; v += step) {
      axis.values.push_back(format_axis_value(std::min(v, hi)));
    }
  } else {
    for (const std::string& item : split_list(body)) {
      if (!item.empty()) axis.values.push_back(item);
    }
  }
  if (axis.values.empty()) {
    throw ConfigError(ConfigError::Kind::kSyntax, axis.key,
                      "sweep axis '" + spec + "' has no values");
  }
  return axis;
}

std::vector<std::vector<std::pair<std::string, std::string>>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::pair<std::string, std::string>>> grid;
  std::size_t points = 1;
  for (const SweepAxis& axis : axes) points *= axis.values.size();
  grid.reserve(points);

  std::vector<std::size_t> index(axes.size(), 0);
  for (std::size_t p = 0; p < points; ++p) {
    std::vector<std::pair<std::string, std::string>> assignment;
    assignment.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      assignment.emplace_back(axes[a].key, axes[a].values[index[a]]);
    }
    grid.push_back(std::move(assignment));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return grid;
}

SweepResult run_sweep(const ScenarioSpec& scenario, const RawConfig& base,
                      const std::vector<SweepAxis>& axes, const SweepOptions& options) {
  const auto grid = expand_grid(axes);

  std::vector<std::string> header;
  for (const SweepAxis& axis : axes) header.push_back(axis.key);
  if (options.dry_run) {
    header.insert(header.end(), {"policy", "reps"});
  } else {
    header.insert(header.end(), {"mean_s", "ci95_s", "stderr_s", "reps", "mean_failures",
                                 "mean_tasks_moved", "mean_bundles"});
  }
  SweepResult result{util::TextTable(header), {}};

  const auto start = std::chrono::steady_clock::now();
  for (const auto& assignment : grid) {
    RawConfig raw = base;
    SweepOptions point_options = options;
    for (const auto& [key, value] : assignment) {
      assign(key, value, raw, point_options);
    }
    const Config config = scenario.schema.resolve(raw);

    std::vector<std::string> row;
    for (const auto& [key, value] : assignment) {
      (void)key;
      row.push_back(value);
    }
    if (options.dry_run) {
      // Build (but do not run) the scenario so every point is validated.
      const mc::ScenarioConfig built = scenario.build(config);
      row.push_back(built.policy->name());
      row.push_back(std::to_string(point_options.replications));
    } else {
      mc::McConfig mc_config;
      mc_config.replications = point_options.replications;
      mc_config.threads = point_options.threads;
      mc_config.seed = point_options.seed;
      const mc::McResult mc_result = mc::run_monte_carlo(scenario.build(config), mc_config);
      row.push_back(util::format_double(mc_result.mean(), 3));
      row.push_back(util::format_double(mc_result.ci95(), 3));
      row.push_back(util::format_double(mc_result.std_error(), 3));
      row.push_back(std::to_string(mc_config.replications));
      row.push_back(util::format_double(mc_result.mean_failures, 2));
      row.push_back(util::format_double(mc_result.mean_tasks_moved, 2));
      row.push_back(util::format_double(mc_result.mean_bundles, 2));
    }
    result.table.add_row(std::move(row));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  result.metadata.scenario = scenario.name;
  result.metadata.seed = options.seed;
  result.metadata.replications = options.replications;
  result.metadata.threads = options.threads;
  result.metadata.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  return result;
}

}  // namespace lbsim::cli
