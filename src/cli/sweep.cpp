#include "cli/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>

#include "markov/theory_oracle.hpp"
#include "mc/engine.hpp"
#include "mc/steady.hpp"
#include "mc/theory.hpp"
#include "stochastic/stats.hpp"
#include "testbed/config.hpp"
#include "testbed/experiment.hpp"
#include "util/math.hpp"

namespace lbsim::cli {
namespace {

/// Formats range-generated values compactly ("0.1", not "0.100000").
std::string format_axis_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

/// Applies one assignment either to the engine options (mc.*) or the raw
/// scenario config.
void assign(const std::string& key, const std::string& value, RawConfig& raw,
            SweepOptions& options) {
  if (key == "mc.reps") {
    const long long reps = parse_int(value, key);
    if (reps < 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key, "mc.reps must be >= 1");
    }
    options.replications = static_cast<std::size_t>(reps);
    options.replications_explicit = true;
  } else if (key == "mc.threads") {
    const long long threads = parse_int(value, key);
    if (threads < 0) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key, "mc.threads must be >= 0");
    }
    options.threads = static_cast<unsigned>(threads);
  } else if (key == "mc.seed") {
    options.seed = static_cast<std::uint64_t>(parse_int(value, key));
  } else if (key == "mc.vr") {
    if (!mc::parse_vr_mode(value, options.vr)) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key,
                        "mc.vr must be none, antithetic, cv, or both (got '" + value + "')");
    }
  } else if (key == "mc.cv-pilot") {
    const long long pilot = parse_int(value, key);
    if (pilot < 0) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key,
                        "mc.cv-pilot must be >= 0 (0 = auto)");
    }
    options.cv_pilot = static_cast<std::size_t>(pilot);
  } else if (key == "mc.shards") {
    const long long shards = parse_int(value, key);
    if (shards < 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, key, "mc.shards must be >= 1");
    }
    options.shards = static_cast<std::size_t>(shards);
  } else {
    raw.set(key, value);
  }
}

/// Joins the exact-solver prediction onto one MC row: theory_mean, abs_err,
/// and sigma_err (error in MC standard errors). Grid points the oracle
/// declines — no closed form for the policy/delay semantics, or past the
/// n <= 8 tractability boundary — carry the "-" no-solver marker instead.
void append_theory_cells(const mc::ScenarioConfig& built, const mc::McResult& mc_result,
                         std::vector<std::string>& row) {
  const mc::TheoryMapping mapping = mc::map_to_theory(built);
  markov::TheoryPrediction prediction;
  if (mapping.ok) prediction = markov::TheoryOracle{}.mean(mapping.query);
  if (!mapping.ok || !prediction.applicable) {
    row.insert(row.end(), {"-", "-", "-"});
    return;
  }
  const double abs_err = std::fabs(mc_result.mean() - prediction.mean);
  row.push_back(util::format_double(prediction.mean, 3));
  row.push_back(util::format_double(abs_err, 3));
  const double std_error = mc_result.std_error();
  row.push_back(std_error > 0.0 ? util::format_double(abs_err / std_error, 2) : "-");
}

/// Steady-state analogue: the theory column is the exact M/M/1 stationary
/// mean (mc::map_to_open_theory), "-" where no closed form applies.
void append_open_theory_cells(const mc::ScenarioConfig& built,
                              const mc::SteadyResult& steady,
                              std::vector<std::string>& row) {
  const mc::OpenTheory theory = mc::map_to_open_theory(built);
  if (!theory.ok) {
    row.insert(row.end(), {"-", "-", "-"});
    return;
  }
  const double abs_err = std::fabs(steady.mean() - theory.mean);
  row.push_back(util::format_double(theory.mean, 3));
  row.push_back(util::format_double(abs_err, 3));
  const double std_error = steady.std_error();
  row.push_back(std_error > 0.0 ? util::format_double(abs_err / std_error, 2) : "-");
}

}  // namespace

SweepAxis parse_axis(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
    throw ConfigError(ConfigError::Kind::kSyntax, spec,
                      "sweep axis '" + spec + "' is not of the form key=values");
  }
  SweepAxis axis;
  axis.key = spec.substr(0, eq);
  const std::string body = spec.substr(eq + 1);

  // lo:hi:step range? (two colons, all numeric). Non-numeric segments fall
  // back to the value-list grammar — schedule timelines ("0:down@10-20")
  // carry colons of their own and must not be mistaken for ranges.
  const std::size_t c1 = body.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos : body.find(':', c1 + 1);
  std::optional<double> lo, hi, step;
  if (c2 != std::string::npos && body.find(':', c2 + 1) == std::string::npos) {
    lo = util::try_parse_double(body.substr(0, c1));
    hi = util::try_parse_double(body.substr(c1 + 1, c2 - c1 - 1));
    step = util::try_parse_double(body.substr(c2 + 1));
  }
  if (lo && hi && step) {
    if (*step <= 0.0 || *hi < *lo) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, axis.key,
                        "range '" + body + "' needs step > 0 and hi >= lo");
    }
    // Half-step slack keeps hi inclusive under floating-point accumulation.
    for (double v = *lo; v <= *hi + *step * 0.5; v += *step) {
      axis.values.push_back(format_axis_value(std::min(v, *hi)));
    }
  } else {
    for (const std::string& item : split_list(body)) {
      if (!item.empty()) axis.values.push_back(item);
    }
  }
  if (axis.values.empty()) {
    throw ConfigError(ConfigError::Kind::kSyntax, axis.key,
                      "sweep axis '" + spec + "' has no values");
  }
  return axis;
}

std::vector<std::vector<std::pair<std::string, std::string>>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::pair<std::string, std::string>>> grid;
  std::size_t points = 1;
  for (const SweepAxis& axis : axes) points *= axis.values.size();
  grid.reserve(points);

  std::vector<std::size_t> index(axes.size(), 0);
  for (std::size_t p = 0; p < points; ++p) {
    std::vector<std::pair<std::string, std::string>> assignment;
    assignment.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      assignment.emplace_back(axes[a].key, axes[a].values[index[a]]);
    }
    grid.push_back(std::move(assignment));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return grid;
}

SweepResult run_sweep(const ScenarioSpec& scenario, const RawConfig& base,
                      const std::vector<SweepAxis>& axes, const SweepOptions& options) {
  // Fail fast on axis keys the family does not declare — before any grid
  // point runs, and naming the family (a sweep error surfacing after hours of
  // grid points, or as a bare key name, is miserable to attribute).
  for (const SweepAxis& axis : axes) {
    if (axis.key.rfind("mc.", 0) == 0) continue;  // reserved engine keys
    if (scenario.schema.find(axis.key) == nullptr) {
      std::string msg = "scenario '" + scenario.name + "' has no sweep key '" + axis.key + "'";
      if (const std::string best = scenario.schema.suggest(axis.key); !best.empty()) {
        msg += " (did you mean '" + best + "'?)";
      }
      throw ConfigError(ConfigError::Kind::kUnknownKey, axis.key, msg);
    }
  }
  // Any non-none VR (base option or an mc.vr axis value) appends the VR
  // columns to every row, so a mixed-estimator sweep keeps a rectangular table.
  const bool vr_axis = std::any_of(axes.begin(), axes.end(), [](const SweepAxis& axis) {
    return axis.key == "mc.vr" || axis.key == "mc.shards";
  });
  const bool vr_active =
      options.vr != mc::VrMode::kNone ||
      std::any_of(axes.begin(), axes.end(),
                  [](const SweepAxis& axis) { return axis.key == "mc.vr"; });
  if (scenario.steady && (vr_active || vr_axis || options.shards != 1)) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "mc.vr",
                      "mc.vr/mc.shards apply to finite-horizon replications; scenario '" +
                          scenario.name + "' is infinite-horizon");
  }
  if (scenario.testbed) {
    if (vr_active || vr_axis || options.shards != 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "mc.vr",
                        "mc.vr/mc.shards belong to the abstract MC engine; scenario '" +
                            scenario.name + "' runs on the testbed engine");
    }
    if (options.compare_theory) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "compare",
                        "--compare joins the exact-solver oracle, which models the abstract MC "
                        "semantics only; scenario '" +
                            scenario.name + "' runs on the testbed engine");
    }
  }
  const auto grid = expand_grid(axes);

  // Validate-and-build the whole grid before a single replication runs: a
  // bad point (out-of-range value, malformed schedule — e.g. a comma-split
  // timeline whose tail value is not a clause) must fail here with its
  // precise ConfigError, not abort a half-finished sweep. Builds are
  // microseconds next to an MC point, and the dry-run path builds anyway.
  if (!options.dry_run) {
    for (const auto& assignment : grid) {
      RawConfig raw = base;
      SweepOptions point_options = options;
      for (const auto& [key, value] : assignment) {
        assign(key, value, raw, point_options);
      }
      (void)scenario.build(scenario.schema.resolve(raw));
    }
  }

  std::vector<std::string> header;
  for (const SweepAxis& axis : axes) header.push_back(axis.key);
  if (options.dry_run) {
    header.insert(header.end(), {"policy", "reps"});
  } else if (scenario.steady) {
    // Steady-state families report the stationary sojourn time, not a
    // completion time: the CI is the batch-means CI, `warmup` the MSER-5
    // truncation, `lag1` the batch-means autocorrelation diagnostic.
    header.insert(header.end(), {"mean_sojourn_s", "ci95_s", "stderr_s", "reps", "tasks",
                                 "warmup", "lag1", "mean_queue"});
    if (options.quantiles) {
      header.insert(header.end(), {"p50_s", "p90_s", "p99_s"});
    }
    if (options.ecdf_points > 0) {
      for (std::size_t i = 0; i <= options.ecdf_points; ++i) {
        std::string name = "q";
        name += format_axis_value(100.0 * static_cast<double>(i) /
                                  static_cast<double>(options.ecdf_points));
        name += "_s";
        header.push_back(std::move(name));
      }
    }
    if (options.compare_theory) {
      header.insert(header.end(), {"theory_mean", "abs_err", "sigma_err"});
    }
  } else if (scenario.testbed) {
    // Testbed families swap the bundle column for the state-plane staleness
    // diagnostics: mean/max peer state age observed at decision points, and
    // state packets lost per realization.
    header.insert(header.end(), {"mean_s", "ci95_s", "stderr_s", "reps", "mean_failures",
                                 "mean_tasks_moved", "state_age_mean_s", "state_age_max_s",
                                 "state_lost"});
    if (options.quantiles) {
      header.insert(header.end(), {"p50_s", "p90_s", "p99_s"});
    }
    if (options.ecdf_points > 0) {
      for (std::size_t i = 0; i <= options.ecdf_points; ++i) {
        std::string name = "q";
        name += format_axis_value(100.0 * static_cast<double>(i) /
                                  static_cast<double>(options.ecdf_points));
        name += "_s";
        header.push_back(std::move(name));
      }
    }
  } else {
    header.insert(header.end(), {"mean_s", "ci95_s", "stderr_s", "reps", "mean_failures",
                                 "mean_tasks_moved", "mean_bundles"});
    if (options.quantiles) {
      header.insert(header.end(), {"p50_s", "p90_s", "p99_s"});
    }
    if (options.ecdf_points > 0) {
      // Quantile-function columns on a uniform grid: together they ARE the
      // point's ECDF at resolution K (q0_s = min, q100_s = max).
      for (std::size_t i = 0; i <= options.ecdf_points; ++i) {
        // Built with += (not operator+ chains): gcc-12's -Wrestrict trips on
        // the inlined concatenation otherwise.
        std::string name = "q";
        name += format_axis_value(100.0 * static_cast<double>(i) /
                                  static_cast<double>(options.ecdf_points));
        name += "_s";
        header.push_back(std::move(name));
      }
    }
    if (options.compare_theory) {
      header.insert(header.end(), {"theory_mean", "abs_err", "sigma_err"});
    }
    if (vr_active) {
      header.insert(header.end(), vr_columns().begin(), vr_columns().end());
    }
  }
  SweepResult result{util::TextTable(header), {}};

  const auto start = std::chrono::steady_clock::now();
  for (const auto& assignment : grid) {
    RawConfig raw = base;
    SweepOptions point_options = options;
    for (const auto& [key, value] : assignment) {
      assign(key, value, raw, point_options);
    }
    const Config config = scenario.schema.resolve(raw);

    std::vector<std::string> row;
    for (const auto& [key, value] : assignment) {
      (void)key;
      row.push_back(value);
    }
    if (options.dry_run) {
      // Build (but do not run) the scenario so every point is validated.
      const mc::ScenarioConfig built = scenario.build(config);
      row.push_back(built.policy->name());
      std::size_t shown = point_options.replications;
      if (!point_options.replications_explicit) {
        if (scenario.steady) shown = 1;          // one batch-means window
        if (scenario.testbed) shown = 60;        // paper's realization count
      }
      row.push_back(std::to_string(shown));
    } else if (scenario.steady) {
      mc::SteadyConfig steady_config;
      steady_config.replications =
          point_options.replications_explicit ? point_options.replications : 1;
      steady_config.threads = point_options.threads;
      steady_config.seed = point_options.seed;
      steady_config.collect_samples = options.ecdf_points > 0;
      steady_config.obs = options.obs;
      const mc::ScenarioConfig built = scenario.build(config);
      const mc::SteadyResult steady = mc::run_steady(built, steady_config);
      row.push_back(util::format_double(steady.mean(), 3));
      row.push_back(util::format_double(steady.ci95(), 3));
      row.push_back(util::format_double(steady.std_error(), 3));
      row.push_back(std::to_string(steady_config.replications));
      row.push_back(std::to_string(steady.batch.observations));
      row.push_back(std::to_string(steady.warmup));
      row.push_back(util::format_double(steady.batch.lag1, 3));
      row.push_back(util::format_double(steady.mean_queue_length, 3));
      if (options.quantiles) {
        row.push_back(util::format_double(steady.p50, 3));
        row.push_back(util::format_double(steady.p90, 3));
        row.push_back(util::format_double(steady.p99, 3));
      }
      if (options.ecdf_points > 0) {
        for (std::size_t i = 0; i <= options.ecdf_points; ++i) {
          const double q = static_cast<double>(i) / static_cast<double>(options.ecdf_points);
          row.push_back(util::format_double(stoch::quantile_sorted(steady.samples, q), 3));
        }
      }
      if (options.compare_theory) {
        append_open_theory_cells(built, steady, row);
      }
    } else if (scenario.testbed) {
      const std::size_t reps =
          point_options.replications_explicit ? point_options.replications : 60;
      testbed::TestbedConfig tb = testbed::from_scenario(scenario.build(config));
      const testbed::ExperimentSummary summary = testbed::run_experiment(
          tb, reps, point_options.seed, point_options.threads, options.obs);
      row.push_back(util::format_double(summary.mean(), 3));
      row.push_back(util::format_double(summary.ci95(), 3));
      row.push_back(util::format_double(summary.completion.std_error(), 3));
      row.push_back(std::to_string(reps));
      row.push_back(util::format_double(summary.mean_failures, 2));
      row.push_back(util::format_double(summary.mean_tasks_moved, 2));
      row.push_back(util::format_double(summary.state_age.mean(), 3));
      row.push_back(util::format_double(summary.state_age.max(), 3));
      row.push_back(util::format_double(summary.mean_state_lost, 1));
      if (options.quantiles) {
        row.push_back(util::format_double(stoch::quantile_sorted(summary.samples, 0.50), 3));
        row.push_back(util::format_double(stoch::quantile_sorted(summary.samples, 0.90), 3));
        row.push_back(util::format_double(stoch::quantile_sorted(summary.samples, 0.99), 3));
      }
      if (options.ecdf_points > 0) {
        for (std::size_t i = 0; i <= options.ecdf_points; ++i) {
          const double q = static_cast<double>(i) / static_cast<double>(options.ecdf_points);
          row.push_back(util::format_double(stoch::quantile_sorted(summary.samples, q), 3));
        }
      }
    } else {
      mc::McConfig mc_config;
      mc_config.replications = point_options.replications;
      mc_config.threads = point_options.threads;
      mc_config.seed = point_options.seed;
      mc_config.collect_samples = options.ecdf_points > 0;
      mc_config.vr = point_options.vr;
      mc_config.cv_pilot = point_options.cv_pilot;
      mc_config.shards = point_options.shards;
      mc_config.obs = options.obs;
      const mc::ScenarioConfig built = scenario.build(config);
      const mc::McResult mc_result = mc::run_monte_carlo(built, mc_config);
      row.push_back(util::format_double(mc_result.mean(), 3));
      row.push_back(util::format_double(mc_result.ci95(), 3));
      row.push_back(util::format_double(mc_result.std_error(), 3));
      row.push_back(std::to_string(mc_config.replications));
      row.push_back(util::format_double(mc_result.mean_failures, 2));
      row.push_back(util::format_double(mc_result.mean_tasks_moved, 2));
      row.push_back(util::format_double(mc_result.mean_bundles, 2));
      if (options.quantiles) {
        row.push_back(util::format_double(mc_result.p50, 3));
        row.push_back(util::format_double(mc_result.p90, 3));
        row.push_back(util::format_double(mc_result.p99, 3));
      }
      if (options.ecdf_points > 0) {
        for (std::size_t i = 0; i <= options.ecdf_points; ++i) {
          const double q = static_cast<double>(i) / static_cast<double>(options.ecdf_points);
          row.push_back(util::format_double(mc_result.sample_quantile(q), 3));
        }
      }
      if (options.compare_theory) {
        append_theory_cells(built, mc_result, row);
      }
      if (vr_active) {
        append_vr_cells(mc_result, row);
      }
    }
    result.table.add_row(std::move(row));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  result.metadata.scenario = scenario.name;
  result.metadata.seed = options.seed;
  result.metadata.replications = options.replications;
  result.metadata.threads = options.threads;
  result.metadata.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  return result;
}

}  // namespace lbsim::cli
