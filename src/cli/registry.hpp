#pragma once
/// \file
/// The scenario registry: named, self-describing experiment families that the
/// `lbsim run` / `lbsim sweep` subcommands (and future workload PRs) build
/// mc::ScenarioConfig instances from.
///
/// Every family declares a typed Schema (shared policy/delay/churn keys plus
/// its own), so `lbsim list <scenario>` is generated documentation and every
/// key is validated before a single replication runs. New families register by
/// appending a ScenarioSpec in registry.cpp — no new binaries required.

#include <functional>
#include <string>
#include <vector>

#include "cli/config.hpp"
#include "mc/scenario.hpp"

namespace lbsim::cli {

/// One named scenario family.
struct ScenarioSpec {
  std::string name;
  std::string summary;
  Schema schema;
  /// Builds a validated, ready-to-run scenario from a resolved Config.
  std::function<mc::ScenarioConfig(const Config&)> build;
  /// Infinite-horizon family: routed to the steady-state engine
  /// (mc::run_steady) instead of the finite completion-time engines.
  bool steady = false;
  /// Emulation family: routed to the testbed engine (lossy state plane,
  /// distributed decisions) instead of the abstract MC engine.
  bool testbed = false;
};

/// All registered families, in presentation order.
[[nodiscard]] const std::vector<ScenarioSpec>& scenario_registry();

/// Lookup by name; throws ConfigError(kUnknownKey) with a did-you-mean
/// suggestion when `name` is not registered.
[[nodiscard]] const ScenarioSpec& find_scenario(const std::string& name);

/// Builds the policy described by the shared `policy`/`gain`/`sender`/
/// `period`/`compensate` keys for a system of `node_count` nodes with initial
/// `workloads` (used to auto-pick the LBP-1 sender when sender = -1).
[[nodiscard]] core::PolicyPtr make_policy(const Config& config,
                                          const std::vector<std::size_t>& workloads);

}  // namespace lbsim::cli
