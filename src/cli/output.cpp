#include "cli/output.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#ifndef LBSIM_GIT_DESCRIBE
#define LBSIM_GIT_DESCRIBE "unknown"
#endif

namespace lbsim::cli {
namespace {

/// True when `cell` can be emitted as a bare JSON number.
bool is_json_number(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  return value == value &&  // not NaN
         value != std::numeric_limits<double>::infinity() &&
         value != -std::numeric_limits<double>::infinity();
}

std::string format_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", seconds);
  return buffer;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> RunMetadata::items() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("command", command);
  if (!scenario.empty()) out.emplace_back("scenario", scenario);
  out.emplace_back("seed", std::to_string(seed));
  // A zero count would be a lie (nothing ran 0 replications) — multi-bench
  // artefacts carry their real per-bench counts in `extra` instead.
  if (replications != 0) out.emplace_back("replications", std::to_string(replications));
  out.emplace_back("threads", threads == 0 ? "hardware" : std::to_string(threads));
  out.emplace_back("wall_seconds", format_seconds(wall_seconds));
  out.emplace_back("git", git_revision.empty() ? cli::git_revision() : git_revision);
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

std::string git_revision() { return LBSIM_GIT_DESCRIBE; }

void write_csv(std::ostream& os, const RunMetadata& meta, const util::TextTable& table) {
  for (const auto& [key, value] : meta.items()) {
    os << "# " << key << "=" << value << "\n";
  }
  table.print_csv(os);
}

void write_json(std::ostream& os, const RunMetadata& meta, const util::TextTable& table) {
  os << "{\n  \"metadata\": {";
  const auto items = meta.items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    os << (i != 0 ? ", " : "") << "\"" << json_escape(items[i].first) << "\": \""
       << json_escape(items[i].second) << "\"";
  }
  os << "},\n  \"columns\": [";
  const auto& header = table.header();
  for (std::size_t i = 0; i < header.size(); ++i) {
    os << (i != 0 ? ", " : "") << "\"" << json_escape(header[i]) << "\"";
  }
  os << "],\n  \"rows\": [";
  for (std::size_t r = 0; r < table.rows(); ++r) {
    os << (r != 0 ? ",\n    " : "\n    ") << "[";
    const auto& row = table.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c != 0 ? ", " : "");
      if (is_json_number(row[c])) {
        os << row[c];
      } else {
        os << "\"" << json_escape(row[c]) << "\"";
      }
    }
    os << "]";
  }
  os << "\n  ]\n}\n";
}

std::vector<BenchRow> parse_bench_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  const std::size_t rows_at = text.find("\"rows\"");
  if (rows_at == std::string::npos) throw std::runtime_error("bench json: no \"rows\" key");

  std::vector<BenchRow> rows;
  std::size_t pos = text.find('[', rows_at);
  if (pos == std::string::npos) throw std::runtime_error("bench json: malformed rows");
  ++pos;  // inside the rows array
  while (pos < text.size()) {
    // Find the next row "[...]" or the end of the rows array.
    while (pos < text.size() && text[pos] != '[' && text[pos] != ']') ++pos;
    if (pos >= text.size() || text[pos] == ']') break;
    const std::size_t row_end = text.find(']', pos);
    if (row_end == std::string::npos) throw std::runtime_error("bench json: unterminated row");

    BenchRow row;
    bool have_name = false;
    bool have_wall = false;
    std::size_t cell = pos + 1;
    while (cell < row_end) {
      if (text[cell] == '"') {  // string cell (no escaped quotes in bench names)
        const std::size_t close = text.find('"', cell + 1);
        if (close == std::string::npos || close > row_end) {
          throw std::runtime_error("bench json: unterminated string cell");
        }
        if (!have_name) {
          row.name = text.substr(cell + 1, close - cell - 1);
          have_name = true;
        }
        cell = close + 1;
      } else if ((text[cell] >= '0' && text[cell] <= '9') || text[cell] == '-' ||
                 text[cell] == '+' || text[cell] == '.') {
        char* end = nullptr;
        const double value = std::strtod(text.c_str() + cell, &end);
        if (!have_wall) {
          row.wall_ms = value;
          have_wall = true;
        }
        row.throughput = value;  // last numeric cell wins
        cell = static_cast<std::size_t>(end - text.c_str());
      } else {
        ++cell;
      }
    }
    if (have_name && have_wall) rows.push_back(std::move(row));
    pos = row_end + 1;
  }
  if (rows.empty()) throw std::runtime_error("bench json: no bench rows parsed");
  return rows;
}

std::string json_escape(const std::string& text) {
  std::ostringstream out;
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

const std::vector<std::string>& vr_columns() {
  static const std::vector<std::string> columns = {"vr", "adj_mean_s", "adj_ci95_s",
                                                   "vr_ratio"};
  return columns;
}

void append_vr_cells(const mc::McResult& result, std::vector<std::string>& row) {
  if (result.vr.requested == mc::VrMode::kNone) {
    row.insert(row.end(), {"none", "-", "-", "-"});
    return;
  }
  std::string mode = mc::vr_mode_name(result.vr.requested);
  if (!result.vr.fallback.empty()) mode += "!";
  row.push_back(std::move(mode));
  row.push_back(util::format_double(result.vr.mean, 3));
  row.push_back(util::format_double(result.vr.ci95(), 3));
  row.push_back(util::format_double(result.vr.variance_ratio, 2));
}

void note_vr_metadata(const mc::McResult& result, RunMetadata& meta) {
  if (result.vr.requested == mc::VrMode::kNone) return;
  meta.extra.emplace_back("vr.mode", mc::vr_mode_name(result.vr.requested));
  meta.extra.emplace_back("vr.variance_ratio",
                          util::format_double(result.vr.variance_ratio, 4));
  meta.extra.emplace_back("vr.observations", std::to_string(result.vr.observations));
  if (result.vr.control) {
    meta.extra.emplace_back("vr.beta", util::format_double(result.vr.beta, 4));
    meta.extra.emplace_back("vr.pilot", std::to_string(result.vr.pilot));
    meta.extra.emplace_back("vr.control_mean",
                            util::format_double(result.vr.control_mean, 4));
    meta.extra.emplace_back("vr.control_method", result.vr.control_method);
  }
  if (!result.vr.fallback.empty()) {
    meta.extra.emplace_back("vr.fallback", result.vr.fallback);
  }
}

}  // namespace lbsim::cli
