#include "cli/validate.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "cli/registry.hpp"
#include "markov/theory_oracle.hpp"
#include "mc/engine.hpp"
#include "mc/steady.hpp"
#include "mc/theory.hpp"
#include "stochastic/stats.hpp"
#include "testbed/config.hpp"
#include "testbed/experiment.hpp"

namespace lbsim::cli {
namespace {

/// One validation point: a registry family plus the key overrides that pin it
/// to a configuration worth checking. Points where no solver applies are kept
/// on purpose — they exercise (and display) the tractability boundary.
struct ValidationPoint {
  const char* family;
  const char* label;
  std::vector<std::pair<const char*, const char*>> overrides;
  /// Run the eq. (5) distribution solver and the KS gate (two-node, and cheap
  /// enough for the gate).
  bool check_cdf = false;
};

/// The fixed validation grid: at least one point per registry family, biased
/// toward configurations an exact solver covers, plus boundary points that
/// must come back as "skip".
const std::vector<ValidationPoint>& validation_points() {
  static const std::vector<ValidationPoint> points = {
      // The paper's own operating point: LBP-1 at gain 0.35 on (100, 60).
      {"paper-two-node", "lbp1-paper-point", {}, /*check_cdf=*/true},
      {"paper-two-node", "no-balancing", {{"policy", "none"}}, /*check_cdf=*/true},
      // n-node overlap with the multi-node recursion, with and without a
      // t = 0 transfer plan (LBP-1's one-shot excess partition). Workloads are
      // pinned small: the recursion's lattice is the product of the queue
      // extents, so the family defaults (100, 60, ...) are intractable.
      {"multi-node", "no-balancing", {{"policy", "none"}, {"workloads", "10,6,4,3"}}},
      {"multi-node", "lbp1-oneshot",
       {{"policy", "lbp1"}, {"gain", "0.6"}, {"workloads", "12,2,2,2"}}},
      {"many-node-churn", "solver-overlap-n5",
       {{"nodes", "5"}, {"workloads", "12,8,6,4,2"}, {"policy", "none"}}},
      // n = 32 with a solver-expressible policy: far past the n <= 8
      // tractability boundary — must surface the no-solver marker, not a
      // number.
      {"many-node-churn", "n32-boundary", {{"policy", "none"}}},
      {"churn-storm", "lbp1-under-storm", {{"policy", "lbp1"}, {"gain", "0.35"}}},
      // Node 0 starts down (family default): the solvers' initial work-state
      // parameter, checked against MC with the CDF gate too.
      {"cold-start", "down-node0", {{"policy", "none"}}, /*check_cdf=*/true},
      // Periodic timers have no closed form — boundary marker.
      {"periodic-rebalance", "defaults-boundary", {}},
      // The family default Erlang bundle delay is outside the analytical law
      // (boundary marker); forcing the exponential law restores the solver.
      {"custom-delay", "erlang-delay-boundary", {}},
      {"custom-delay", "exponential-delay",
       {{"delay.model", "exponential"}, {"policy", "lbp1"}}},
      // The env-driven families: each boundary point must surface its pinned
      // decline marker (environment-modulated churn / open arrivals /
      // deterministic schedule — validation_test pins the strings).
      {"correlated-churn", "env-modulation-boundary", {}},
      // With churn frozen the environment is vacuous and the family collapses
      // to the paper's closed two-node system — a real theory check that the
      // env plumbing does not perturb the unmodulated path.
      {"correlated-churn", "calm-reduction",
       {{"churn", "false"}, {"policy", "none"}}, /*check_cdf=*/true},
      {"open-arrivals", "poisson-arrivals-boundary", {}},
      {"open-arrivals", "mmpp-arrivals-boundary", {{"arrivals.process", "mmpp"}}},
      {"scheduled-churn", "schedule-boundary", {}},
      // Steady-state open-system points: the theory column is the exact M/M/1
      // stationary sojourn law (mean z-gate; thinned KS against Exp(mu-lambda)
      // when check_cdf). All arrivals to node 0 of a churn-free pair: M/M/1 at
      // rho = 0.7 exactly.
      {"open-steady", "mm1-rho0.7",
       {{"churn", "false"},
        {"policy", "none"},
        {"lambda_d", "1"},
        {"arrivals.target", "0"},
        {"arrivals.rate", "0.7"},
        {"steady.tasks", "30000"}},
       /*check_cdf=*/true},
      // Uniform split over 4 homogeneous servers: thinning a Poisson stream
      // gives 4 independent M/M/1(lambda/4, mu) queues; sojourn ~
      // Exp(mu - lambda/4) exactly.
      {"open-steady", "mm1-split-n4",
       {{"churn", "false"},
        {"policy", "none"},
        {"nodes", "4"},
        {"lambda_d", "1.2"},
        {"rho", "0.6"}},
       /*check_cdf=*/true},
      // Family defaults keep churn on: stationary sojourn time has no closed
      // form there — the boundary marker the steady theory bridge must pin.
      {"open-steady", "churn-boundary", {}},
      {"open-steady", "batch-boundary", {{"churn", "false"}, {"arrivals.batch", "5"}}},
      // Graph families: every non-complete topology declines with the pinned
      // "neighbourhood-restricted topology" marker (validation_test pins the
      // string)...
      {"graph-ring", "ring-boundary", {}},
      {"graph-torus", "torus-boundary", {}},
      {"graph-rr", "edge-churn-boundary",
       {{"topology.churn.drop", "0.5"}, {"env.storm.mult", "1"}}},
      // ...while topology=complete must collapse to the global-state solver
      // path exactly — a real checked point on a graph family (workloads
      // pinned small for the multi-node recursion's lattice).
      {"graph-ring", "complete-reduction",
       {{"topology", "complete"},
        {"policy", "none"},
        {"nodes", "4"},
        {"workloads", "10,6,4,3"}}},
      // Testbed family: no exact oracle applies, so the checkable point is the
      // i.i.d.-reduction identity — a 1-state channel with loss p must be
      // bit-identical to the Bernoulli fallback exchange.loss = p (the
      // degenerate channel IS the fallback code path; any drift means the
      // per-packet CRN stream discipline broke). Bursty (k >= 2) and blackout
      // points are pinned boundary markers (validation_test pins the strings).
      {"lossy-exchange", "iid-reduction",
       {{"channel.states", "1"}, {"channel.loss", "0.25"}, {"channel.burst", "1"}}},
      {"lossy-exchange", "bursty-boundary", {{"channel.states", "2"}}},
      {"lossy-exchange", "blackout-boundary",
       {{"channel.states", "0"}, {"exchange.loss", "1"}}},
  };
  return points;
}

}  // namespace

std::vector<std::string> validation_families() {
  std::vector<std::string> families;
  for (const ValidationPoint& point : validation_points()) {
    if (std::find(families.begin(), families.end(), point.family) == families.end()) {
      families.emplace_back(point.family);
    }
  }
  return families;
}

double ks_critical(std::size_t n, double alpha) {
  return std::sqrt(-std::log(alpha / 2.0) / (2.0 * static_cast<double>(n)));
}

ValidationReport run_validation(const ValidationOptions& options) {
  if (!options.family.empty()) (void)find_scenario(options.family);  // did-you-mean throw

  const std::size_t reps = options.replications != 0 ? options.replications
                           : options.strict         ? 1500
                                                    : 400;
  const double sigma_gate =
      options.sigma_gate > 0.0 ? options.sigma_gate : (options.strict ? 4.0 : 5.0);
  // alpha = 0.01 Kolmogorov critical value for the MC sample size, plus an
  // absolute slack for the ODE solver's dt-grid discretisation.
  const double ks_gate = ks_critical(reps, 0.01) + options.ks_slack;

  ValidationReport report{
      util::TextTable({"family", "point", "method", "theory_mean", "mc_mean", "sigma_err",
                       "ks", "verdict"}),
      {},
      0,
      0,
      0};

  const markov::TheoryOracle oracle;
  const auto start = std::chrono::steady_clock::now();
  for (const ValidationPoint& point : validation_points()) {
    if (!options.family.empty() && options.family != point.family) continue;
    const ScenarioSpec& spec = find_scenario(point.family);
    RawConfig raw;
    for (const auto& [key, value] : point.overrides) raw.set(key, value);
    const mc::ScenarioConfig built = spec.build(spec.schema.resolve(raw));

    if (spec.steady) {
      // Open-system point: the theory side is the stationary M/M/1 law
      // (mc::map_to_open_theory), the MC side one steady-state window. The
      // mean gate is the same z-score as the finite path but against the
      // batch-means standard error; the KS gate runs on a thinned
      // subsequence of the post-warm-up series (within-run sojourns are
      // autocorrelated, so the iid critical value needs quasi-independent
      // draws).
      const mc::OpenTheory theory = mc::map_to_open_theory(built);
      if (!theory.ok) {
        ++report.skipped;
        report.table.add_row(
            {point.family, point.label, "-", "-", "-", "-", "-", "skip: " + theory.reason});
        continue;
      }
      mc::SteadyConfig steady_config;
      steady_config.seed = options.seed;
      steady_config.threads = options.threads;
      steady_config.collect_samples = point.check_cdf && theory.has_law;
      const mc::SteadyResult steady = mc::run_steady(built, steady_config);

      const double std_error = steady.std_error();
      const double sigma_err =
          std_error > 0.0 ? (steady.mean() - theory.mean) / std_error : 0.0;
      bool failed = std::fabs(sigma_err) > sigma_gate;

      std::string ks_cell = "-";
      if (steady_config.collect_samples) {
        // Thin to ~400 quasi-independent draws: at stride n/400 the lag
        // correlation of an M/M/1 sojourn sequence has decayed to noise, so
        // the iid Kolmogorov critical value applies to the thinned set.
        const std::vector<double>& series = steady.series;
        const std::size_t stride = std::max<std::size_t>(1, series.size() / 400);
        std::vector<double> thinned;
        thinned.reserve(series.size() / stride + 1);
        for (std::size_t i = 0; i < series.size(); i += stride) {
          thinned.push_back(series[i]);
        }
        const stoch::Ecdf ecdf(std::move(thinned));
        // Grid over the law's 99.9% range; reference = 1 - exp(-rate x).
        constexpr std::size_t kGrid = 200;
        const double x_max = -std::log(0.001) / theory.rate;
        std::vector<double> grid(kGrid + 1);
        std::vector<double> reference(kGrid + 1);
        for (std::size_t i = 0; i <= kGrid; ++i) {
          grid[i] = x_max * static_cast<double>(i) / static_cast<double>(kGrid);
          reference[i] = 1.0 - std::exp(-theory.rate * grid[i]);
        }
        const double ks = stoch::ks_distance_to_curve(ecdf, grid, reference);
        const double steady_ks_gate = ks_critical(ecdf.size(), 0.01) + options.ks_slack;
        ks_cell = util::format_double(ks, 4) + "/" + util::format_double(steady_ks_gate, 4);
        failed = failed || ks > steady_ks_gate;
      }

      ++report.checked;
      if (failed) ++report.failures;
      report.table.add_row({point.family, point.label,
                            theory.has_law ? "mm1-stationary" : "mm1-mixture-mean",
                            util::format_double(theory.mean, 3),
                            util::format_double(steady.mean(), 3),
                            util::format_double(sigma_err, 2), ks_cell,
                            failed ? "FAIL" : "ok"});
      continue;
    }

    if (spec.testbed) {
      const net::ChannelSpec& channel = built.state_channel;
      if (channel.enabled() && (channel.states >= 2 || channel.env_coupled)) {
        ++report.skipped;
        report.table.add_row({point.family, point.label, "-", "-", "-", "-", "-",
                              "skip: bursty Markov state-plane channel (no closed form)"});
        continue;
      }
      if (!channel.enabled() && built.exchange_loss >= 1.0) {
        ++report.skipped;
        report.table.add_row({point.family, point.label, "-", "-", "-", "-", "-",
                              "skip: blackout state plane (no closed form)"});
        continue;
      }
      // i.i.d. reduction: re-run the same point with the channel stripped and
      // its single-state loss moved to the Bernoulli fallback. Both paths draw
      // the same per-packet uniforms from the same stream, so the gate is
      // exact equality of the completion-time statistics, not a z-score.
      mc::ScenarioConfig reduced = built.clone();
      reduced.exchange_loss = channel.enabled() && !channel.loss.empty() ? channel.loss[0]
                                                                        : built.exchange_loss;
      reduced.state_channel = net::ChannelSpec{};
      constexpr std::size_t kTestbedReps = 20;
      const testbed::ExperimentSummary with_channel = testbed::run_experiment(
          testbed::from_scenario(built.clone()), kTestbedReps, options.seed, options.threads);
      const testbed::ExperimentSummary fallback = testbed::run_experiment(
          testbed::from_scenario(std::move(reduced)), kTestbedReps, options.seed,
          options.threads);
      const bool failed = with_channel.completion.mean() != fallback.completion.mean() ||
                          with_channel.completion.max() != fallback.completion.max();
      ++report.checked;
      if (failed) ++report.failures;
      report.table.add_row({point.family, point.label, "iid-reduction",
                            util::format_double(fallback.mean(), 3),
                            util::format_double(with_channel.mean(), 3),
                            failed ? "inf" : "0", "-", failed ? "FAIL" : "ok"});
      continue;
    }

    const mc::TheoryMapping mapping = mc::map_to_theory(built);
    markov::TheoryPrediction prediction;
    if (mapping.ok) prediction = oracle.mean(mapping.query);
    if (!mapping.ok || !prediction.applicable) {
      ++report.skipped;
      report.table.add_row({point.family, point.label, "-", "-", "-", "-", "-",
                            "skip: " + (mapping.ok ? prediction.reason : mapping.reason)});
      continue;
    }

    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.seed = options.seed;
    mc_config.threads = options.threads;
    mc_config.collect_samples = point.check_cdf;
    const mc::McResult mc_result = mc::run_monte_carlo(built, mc_config);

    const double std_error = mc_result.std_error();
    const double sigma_err =
        std_error > 0.0 ? (mc_result.mean() - prediction.mean) / std_error : 0.0;
    bool failed = std::fabs(sigma_err) > sigma_gate;

    std::string ks_cell = "-";
    if (point.check_cdf) {
      // dt = 0.1 halves the ODE work vs the solver default; the coarser
      // sampling costs ~F'·dt ≈ 0.002 of KS resolution, inside ks_slack.
      markov::TwoNodeCdfSolver::Config cdf_config;
      cdf_config.dt = 0.1;
      const markov::TheoryCdfPrediction cdf = oracle.cdf(mapping.query, cdf_config);
      if (cdf.applicable) {
        const stoch::Ecdf ecdf(mc_result.samples);
        const double ks =
            stoch::ks_distance_to_curve(ecdf, cdf.curve.grid, cdf.curve.values);
        ks_cell = util::format_double(ks, 4) + "/" + util::format_double(ks_gate, 4);
        failed = failed || ks > ks_gate;
      } else {
        ks_cell = "-";
      }
    }

    ++report.checked;
    if (failed) ++report.failures;
    report.table.add_row({point.family, point.label, prediction.method,
                          util::format_double(prediction.mean, 3),
                          util::format_double(mc_result.mean(), 3),
                          util::format_double(sigma_err, 2), ks_cell,
                          failed ? "FAIL" : "ok"});
  }

  // Coverage guard: a registry family with no validation points would make
  // "validate passed" vacuous for it — surface that as a failure so adding a
  // family forces adding (at least a boundary) point.
  const std::vector<std::string> covered = validation_families();
  for (const ScenarioSpec& spec : scenario_registry()) {
    if (!options.family.empty() && options.family != spec.name) continue;
    if (std::find(covered.begin(), covered.end(), spec.name) == covered.end()) {
      ++report.failures;
      report.table.add_row({spec.name, "-", "-", "-", "-", "-", "-",
                            "FAIL: no validation points registered for this family"});
    }
  }

  report.metadata.scenario = "validate";
  report.metadata.seed = options.seed;
  report.metadata.replications = reps;
  report.metadata.threads = options.threads;
  report.metadata.extra.emplace_back("sigma_gate", util::format_double(sigma_gate, 2));
  report.metadata.extra.emplace_back("ks_gate", util::format_double(ks_gate, 4));
  report.metadata.extra.emplace_back("strict", options.strict ? "true" : "false");
  report.metadata.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace lbsim::cli
