#pragma once
/// \file
/// Result writers for the lbsim CLI: CSV and JSON emission of a result table
/// together with run metadata (scenario, seed, replication counts, git
/// revision, wall time) so that any written artefact is self-describing and
/// reproducible from its own header.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/format.hpp"

namespace lbsim::cli {

/// Everything needed to re-run (and trust) a result file.
struct RunMetadata {
  std::string command;       ///< e.g. "lbsim run paper-two-node gain=0.5"
  std::string scenario;      ///< scenario or artefact name ("" when n/a)
  std::uint64_t seed = 0;
  std::size_t replications = 0;
  unsigned threads = 0;      ///< 0 = hardware concurrency
  double wall_seconds = 0.0;
  std::string git_revision;  ///< `git describe` at configure time

  /// Ordered key=value pairs, used identically by the CSV and JSON writers.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> items() const;
};

/// The `git describe --always --dirty` of the source tree at configure time
/// ("unknown" when the build was not configured inside a git checkout).
[[nodiscard]] std::string git_revision();

/// Writes `# key=value` metadata comment lines followed by the RFC-4180-ish
/// CSV of `table`.
void write_csv(std::ostream& os, const RunMetadata& meta, const util::TextTable& table);

/// Writes `{"metadata": {...}, "columns": [...], "rows": [[...], ...]}`.
/// Cells that parse as finite numbers are emitted unquoted.
void write_json(std::ostream& os, const RunMetadata& meta, const util::TextTable& table);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace lbsim::cli
