#pragma once
/// \file
/// Result writers for the lbsim CLI: CSV and JSON emission of a result table
/// together with run metadata (scenario, seed, replication counts, git
/// revision, wall time) so that any written artefact is self-describing and
/// reproducible from its own header.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "mc/engine.hpp"
#include "util/format.hpp"

namespace lbsim::cli {

/// Everything needed to re-run (and trust) a result file.
struct RunMetadata {
  std::string command;       ///< e.g. "lbsim run paper-two-node gain=0.5"
  std::string scenario;      ///< scenario or artefact name ("" when n/a)
  std::uint64_t seed = 0;
  /// Replications of the single run this file describes. 0 means "not a
  /// single-run artefact" (e.g. `lbsim perf`, which reports per-bench counts
  /// through `extra` instead) and is omitted from the emitted metadata.
  std::size_t replications = 0;
  unsigned threads = 0;      ///< 0 = hardware concurrency
  double wall_seconds = 0.0;
  std::string git_revision;  ///< `git describe` at configure time
  /// Additional ordered key=value pairs appended verbatim (e.g. the real
  /// per-bench replication counts of a perf baseline).
  std::vector<std::pair<std::string, std::string>> extra;

  /// Ordered key=value pairs, used identically by the CSV and JSON writers.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> items() const;
};

/// The `git describe --always --dirty` of the source tree at configure time
/// ("unknown" when the build was not configured inside a git checkout).
[[nodiscard]] std::string git_revision();

/// Writes `# key=value` metadata comment lines followed by the RFC-4180-ish
/// CSV of `table`.
void write_csv(std::ostream& os, const RunMetadata& meta, const util::TextTable& table);

/// Writes `{"metadata": {...}, "columns": [...], "rows": [[...], ...]}`.
/// Cells that parse as finite numbers are emitted unquoted.
void write_json(std::ostream& os, const RunMetadata& meta, const util::TextTable& table);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// The extra columns a variance-reduced run appends to run/sweep tables
/// (paired with append_vr_cells below; see mc::McVrReport).
[[nodiscard]] const std::vector<std::string>& vr_columns();

/// Formats one result's VR cells onto `row`: mode, adjusted mean, adjusted
/// 95% CI half width, and the equal-budget variance ratio. "-" markers when
/// the mode is none (mixed sweeps) and a "!" suffix on the mode name when a
/// requested component fell back (McVrReport.fallback).
void append_vr_cells(const mc::McResult& result, std::vector<std::string>& row);

/// Metadata entries documenting the estimator (vr.mode, vr.beta, vr.fallback,
/// ...) so JSON/CSV artefacts keep the full story behind the four table cells.
void note_vr_metadata(const mc::McResult& result, RunMetadata& meta);

/// One row of a `lbsim perf` JSON artefact.
struct BenchRow {
  std::string name;     ///< first (string) cell, e.g. "perf_mc"
  double wall_ms = 0.0;     ///< first numeric cell
  double throughput = 0.0;  ///< last numeric cell
};

/// Reads the rows of a file produced by write_json for `lbsim perf`
/// (first string cell = bench name, first/last numeric cells = wall_ms /
/// throughput). Throws std::runtime_error when no such rows are found.
[[nodiscard]] std::vector<BenchRow> parse_bench_json(std::istream& is);

}  // namespace lbsim::cli
