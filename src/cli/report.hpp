#pragma once
/// \file
/// Shared presentation helpers for the lbsim CLI and the bench binaries:
/// consistent banners, ASCII curves for the "figure" artefacts, and
/// paper-vs-measured comparison lines. (Moved from bench/bench_common.hpp so
/// `lbsim reproduce` and the thin bench wrappers share one implementation.)

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/format.hpp"

namespace lbsim::cli {

/// "(m0,m1)" workload label for the table artefacts. Built via a stream: the
/// chained std::to_string concatenation trips gcc 12's -Wrestrict false
/// positive at -O2.
inline std::string workload_label(std::size_t m0, std::size_t m1) {
  std::ostringstream out;
  out << '(' << m0 << ',' << m1 << ')';
  return out.str();
}

/// Prints the standard banner naming which paper artefact a run regenerates.
inline void print_banner(std::ostream& os, const std::string& artefact,
                         const std::string& description) {
  os << "==============================================================\n"
     << artefact << " - " << description << "\n"
     << "Dhakal et al., IPDPS 2006 (reproduction)\n"
     << "==============================================================\n";
}

/// Renders y(x) as a fixed-height ASCII chart (rows top-down), for the
/// "figure" artefacts where the shape matters more than exact values.
inline void print_ascii_curve(std::ostream& os, const std::vector<double>& xs,
                              const std::vector<std::vector<double>>& series,
                              const std::vector<std::string>& labels, int height = 16) {
  if (xs.empty() || series.empty()) return;
  double lo = series[0][0], hi = series[0][0];
  for (const auto& ys : series) {
    for (const double y : ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  if (hi <= lo) hi = lo + 1.0;
  const char* glyphs = "*o+x#";
  for (int row = height; row >= 0; --row) {
    const double level = lo + (hi - lo) * row / height;
    std::string line(xs.size(), ' ');
    for (std::size_t s = 0; s < series.size(); ++s) {
      for (std::size_t i = 0; i < xs.size() && i < series[s].size(); ++i) {
        const double y = series[s][i];
        const double cell = (hi - lo) / height;
        if (y >= level - cell / 2 && y < level + cell / 2) {
          line[i] = glyphs[s % 5];
        }
      }
    }
    os << util::format_double(level, 1) << "\t|" << line << "\n";
  }
  os << "\t+" << std::string(xs.size(), '-') << "\n";
  os << "\t x: " << xs.front() << " .. " << xs.back() << "\n";
  for (std::size_t s = 0; s < labels.size(); ++s) {
    os << "\t '" << glyphs[s % 5] << "' = " << labels[s] << "\n";
  }
}

/// "paper vs measured" comparison line used by EXPERIMENTS.md extraction.
inline void print_comparison(std::ostream& os, const std::string& what, double paper,
                             double measured) {
  os << "  " << what << ": paper=" << util::format_double(paper, 2)
     << "  measured=" << util::format_double(measured, 2) << "  (ratio "
     << util::format_double(measured / paper, 3) << ")\n";
}

}  // namespace lbsim::cli
