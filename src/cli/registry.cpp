#include "cli/registry.hpp"

#include <algorithm>

#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "core/local.hpp"
#include "core/periodic.hpp"
#include "net/delay_model.hpp"
#include "net/topology.hpp"
#include "util/format.hpp"

namespace lbsim::cli {
namespace {

constexpr double kNoMin = std::numeric_limits<double>::lowest();
constexpr double kNoMax = std::numeric_limits<double>::max();

/// Policy vocabularies: every pre-topology family keeps the global-state set;
/// the graph-* families additionally admit the neighbourhood-local policies
/// (and reject the global ones at build time unless topology=complete).
const std::vector<std::string> kGlobalPolicies = {"none", "proportional", "lbp1", "lbp2",
                                                  "periodic"};
const std::vector<std::string> kGraphPolicies = {"none",     "proportional", "lbp1", "lbp2",
                                                 "periodic", "probe",        "diffusion"};

/// Shorthand OptionSpec constructor (avoids designated-init verbosity and
/// gcc's -Wmissing-field-initializers on partially designated aggregates).
OptionSpec opt(std::string key, OptionType type, std::string default_value,
               std::string description, double min_value = kNoMin, double max_value = kNoMax,
               std::vector<std::string> choices = {}) {
  OptionSpec spec;
  spec.key = std::move(key);
  spec.type = type;
  spec.default_value = std::move(default_value);
  spec.description = std::move(description);
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.choices = std::move(choices);
  return spec;
}

/// Keys shared by every scenario family.
Schema common_schema(const std::string& default_policy, double default_gain,
                     std::vector<std::string> policy_choices = kGlobalPolicies) {
  Schema schema;
  schema
      .add(opt("policy", OptionType::kString, default_policy,
               "balancing policy executed by the engines", kNoMin, kNoMax,
               std::move(policy_choices)))
      .add(opt("gain", OptionType::kDouble, util::format_double(default_gain, 2),
               "policy gain K", 0.0, 10.0))
      .add(opt("sender", OptionType::kInt, "-1",
               "LBP-1 two-node sender (-1 = the more-loaded node)", -1.0, 255.0))
      .add(opt("period", OptionType::kDouble, "10",
               "rebalance period in seconds (policy=periodic)", 1e-6, 1e6))
      .add(opt("compensate", OptionType::kBool, "false",
               "stack LBP-2's on-failure compensation onto policy=periodic"))
      .add(opt("churn", OptionType::kBool, "true", "inject node failure/recovery"))
      .add(opt("down.mask", OptionType::kSize, "0",
               "bitmask of nodes that start down (bit i = node i, 64-bit)", kNoMin, kNoMax))
      .add(opt("delay.model", OptionType::kString, "exponential", "bundle transfer-delay law",
               kNoMin, kNoMax, {"exponential", "erlang", "deterministic"}))
      .add(opt("delay.per_task", OptionType::kDouble, "0.02",
               "mean per-task transfer delay d (seconds)", 1e-9, 1e3))
      .add(opt("delay.shift", OptionType::kDouble, "0",
               "connection-setup shift added to every bundle delay (s)", 0.0, 10.0));
  return schema;
}

/// Two-node workload keys (the paper's m0/m1).
Schema two_node_schema(const std::string& default_policy, double default_gain,
                       std::size_t m0 = 100, std::size_t m1 = 60) {
  Schema schema = common_schema(default_policy, default_gain);
  schema
      .add(opt("m0", OptionType::kSize, std::to_string(m0), "initial tasks on node 0",
               kNoMin, 5000.0))
      .add(opt("m1", OptionType::kSize, std::to_string(m1), "initial tasks on node 1",
               kNoMin, 5000.0));
  return schema;
}

/// Applies the shared delay/churn/down keys onto a built scenario.
void apply_common(mc::ScenarioConfig& scenario, const Config& config) {
  scenario.params.per_task_delay_mean = config.get_double("delay.per_task");
  const std::string model = config.get_string("delay.model");
  const double shift = config.get_double("delay.shift");
  if (model == "erlang") {
    scenario.delay_model =
        std::make_unique<net::ErlangPerTaskDelay>(scenario.params.per_task_delay_mean, shift);
  } else if (model == "deterministic") {
    scenario.delay_model = std::make_unique<net::DeterministicLinearDelay>(
        scenario.params.per_task_delay_mean, shift);
  } else if (shift != 0.0) {
    scenario.delay_model = std::make_unique<net::ExponentialBundleDelay>(
        scenario.params.per_task_delay_mean, shift);
  }  // plain exponential with no shift: leave null, the engine default
  scenario.churn_enabled = config.get_bool("churn");
  scenario.initially_down = static_cast<std::uint64_t>(config.get_size("down.mask"));
  // The round-based policies all run off the engine's periodic timer.
  const std::string policy = config.get_string("policy");
  if (policy == "periodic" || policy == "probe" || policy == "diffusion") {
    scenario.rebalance_period = config.get_double("period");
  }
}

/// Builds a two-node scenario on the paper's measured parameters, with an
/// optional scaling of the failure/recovery rates.
mc::ScenarioConfig build_two_node(const Config& config, double failure_scale = 1.0,
                                  double recovery_scale = 1.0) {
  markov::TwoNodeParams params = markov::ipdps2006_params();
  for (auto& node : params.nodes) {
    node.lambda_f *= failure_scale;
    node.lambda_r *= recovery_scale;
  }
  const std::vector<std::size_t> workloads = {config.get_size("m0"), config.get_size("m1")};
  mc::ScenarioConfig scenario = mc::make_two_node_scenario(params, workloads[0], workloads[1],
                                                           make_policy(config, workloads));
  apply_common(scenario, config);
  return scenario;
}

/// Shared keys of the n-node families: per-node rate/workload lists cycled to
/// `nodes` entries. Defaults differ per family (small heterogeneous cluster vs
/// many-node churn stress).
Schema n_node_schema(const char* default_nodes, const char* default_lambda_r,
                     const char* default_workloads, const char* default_policy = "lbp2",
                     std::vector<std::string> policy_choices = kGlobalPolicies) {
  Schema schema = common_schema(default_policy, 1.0, std::move(policy_choices));
  schema
      .add(opt("nodes", OptionType::kSize, default_nodes,
               "number of compute nodes (down.mask addresses the first 64)", 2.0, 1024.0))
      .add(opt("lambda_d", OptionType::kDoubleList, "1.08,1.86,1.5,1.2",
               "per-node service rates, cycled to `nodes` entries", 1e-9, 1e6))
      .add(opt("lambda_f", OptionType::kDoubleList, "0.05",
               "per-node failure rates, cycled (0 = never fails)", 0.0, 1e6))
      .add(opt("lambda_r", OptionType::kDoubleList, default_lambda_r,
               "per-node recovery rates, cycled", 0.0, 1e6))
      .add(opt("workloads", OptionType::kSizeList, default_workloads,
               "initial tasks per node, cycled to `nodes` entries", kNoMin, 5000.0));
  return schema;
}

/// Environment-CTMC key group (the env.* keys shared by the env-modulated
/// families). The canonical 2-state calm/storm chain is parameterised by the
/// scalar env.storm.* keys — sweepable as axes — while env.mult/env.gen give
/// the general K-state form.
Schema env_schema(const char* default_storm_mult) {
  Schema schema;
  schema
      .add(opt("env.states", OptionType::kSize, "2", "environment CTMC state count K", 2.0,
               16.0))
      .add(opt("env.storm.mult", OptionType::kDouble, default_storm_mult,
               "failure-hazard multiplier of the storm state (2-state form)", 1e-6, 1e6))
      .add(opt("env.storm.on", OptionType::kDouble, "0.05",
               "calm->storm transition rate (2-state form)", 1e-9, 1e6))
      .add(opt("env.storm.off", OptionType::kDouble, "0.2",
               "storm->calm transition rate (2-state form)", 1e-9, 1e6))
      .add(opt("env.mult", OptionType::kDoubleList, "",
               "per-state failure-hazard multipliers, cycled to env.states "
               "(overrides env.storm.mult)",
               1e-6, 1e6))
      .add(opt("env.gen", OptionType::kDoubleList, "",
               "row-major K x K generator rates, diagonals ignored "
               "(empty = 2-state calm/storm from env.storm.*)",
               0.0, 1e6))
      .add(opt("env.start", OptionType::kSize, "0", "environment state at t = 0", 0.0,
               15.0));
  return schema;
}

/// True when the user supplied any env.* key (so a family with optional
/// modulation knows to build the environment at all).
bool env_supplied(const Config& config) {
  for (const char* key : {"env.states", "env.storm.mult", "env.storm.on", "env.storm.off",
                          "env.mult", "env.gen", "env.start"}) {
    if (config.supplied(key)) return true;
  }
  return false;
}

/// Cycles `values` to exactly `n` entries (the list-key idiom used by the
/// n-node rate lists).
std::vector<double> cycled(std::vector<double> values, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = values[i % values.size()];
  return out;
}

env::EnvironmentSpec build_environment(const Config& config) {
  env::EnvironmentSpec spec;
  spec.states = config.get_size("env.states");
  const std::vector<double> mult = config.get_double_list("env.mult");
  if (mult.empty()) {
    if (spec.states != 2) {
      throw ConfigError(ConfigError::Kind::kBadValue, "env.mult",
                        "env.states=" + std::to_string(spec.states) +
                            " needs an explicit env.mult list (env.storm.mult only "
                            "parameterises the 2-state form)");
    }
    spec.failure_mult = {1.0, config.get_double("env.storm.mult")};
  } else {
    spec.failure_mult = cycled(mult, spec.states);
  }
  const std::vector<double> gen = config.get_double_list("env.gen");
  if (gen.empty()) {
    if (spec.states != 2) {
      throw ConfigError(ConfigError::Kind::kBadValue, "env.gen",
                        "env.states=" + std::to_string(spec.states) +
                            " needs an explicit K x K env.gen generator");
    }
    spec.generator = {0.0, config.get_double("env.storm.on"),
                      config.get_double("env.storm.off"), 0.0};
  } else {
    if (gen.size() != spec.states * spec.states) {
      throw ConfigError(ConfigError::Kind::kBadValue, "env.gen",
                        "env.gen has " + std::to_string(gen.size()) + " entries, expected " +
                            std::to_string(spec.states * spec.states));
    }
    spec.generator = gen;
  }
  spec.initial_state = config.get_size("env.start");
  if (spec.initial_state >= spec.states) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "env.start",
                      "env.start=" + std::to_string(spec.initial_state) +
                          " is not a state of the " + std::to_string(spec.states) +
                          "-state environment");
  }
  env::validate(spec);
  return spec;
}

/// State-exchange / channel key group (the testbed-engine families). The
/// channel.* lists are per-state, cycled to channel.states entries — so a
/// scalar channel.burst sweep stretches every state's dwell while holding the
/// stationary loss mix fixed (the controlled staleness experiment).
Schema channel_schema(const char* default_states) {
  Schema schema;
  schema
      .add(opt("exchange.period", OptionType::kDouble, "1",
               "UDP state-broadcast period (s)", 1e-3, 1e3))
      .add(opt("exchange.latency", OptionType::kDouble, "0.001",
               "one-way state-packet latency (s)", 0.0, 10.0))
      .add(opt("exchange.loss", OptionType::kDouble, "0",
               "i.i.d. state-packet loss probability (1 = blackout; ignored when "
               "channel.states >= 1)",
               0.0, 1.0))
      .add(opt("channel.states", OptionType::kSize, default_states,
               "Markov channel state count k (0 = i.i.d. exchange.loss; 2 = "
               "Gilbert-Elliott)",
               kNoMin, 16.0))
      .add(opt("channel.loss", OptionType::kDoubleList, "0,0.9",
               "per-state loss probabilities, cycled to channel.states", 0.0, 1.0))
      .add(opt("channel.burst", OptionType::kDoubleList, "16,4",
               "per-state mean burst lengths in packets (geometric dwell), cycled", 1.0, 1e6))
      .add(opt("channel.latency.mult", OptionType::kDoubleList, "1",
               "per-state multipliers on exchange.latency, cycled", 0.0, 1e3))
      .add(opt("channel.data.mult", OptionType::kDoubleList, "1",
               "per-state multipliers on data-bundle delays, cycled", 1e-6, 1e3))
      .add(opt("channel.env", OptionType::kBool, "false",
               "floor the channel state by the env.* CTMC state (storms jam the "
               "state plane)"));
  return schema;
}

/// Applies the exchange.*/channel.* keys onto a built scenario.
void apply_channel(mc::ScenarioConfig& scenario, const Config& config) {
  scenario.exchange_period = config.get_double("exchange.period");
  scenario.exchange_latency = config.get_double("exchange.latency");
  scenario.exchange_loss = config.get_double("exchange.loss");
  const std::size_t k = config.get_size("channel.states");
  if (k == 0) {
    if (config.get_bool("channel.env")) {
      throw ConfigError(ConfigError::Kind::kBadValue, "channel.env",
                        "channel.env=true needs channel.states >= 1");
    }
    return;
  }
  net::ChannelSpec channel;
  channel.states = k;
  // Empty lists keep ChannelModel's documented defaults (loss 0, burst 1,
  // multipliers 1); non-empty lists are cycled to k entries here so the spec
  // that lands in the scenario is fully explicit.
  const auto cyc = [&](const char* key) {
    std::vector<double> values = config.get_double_list(key);
    return values.empty() ? values : cycled(std::move(values), k);
  };
  channel.loss = cyc("channel.loss");
  channel.mean_burst = cyc("channel.burst");
  channel.latency_mult = cyc("channel.latency.mult");
  channel.data_mult = cyc("channel.data.mult");
  channel.env_coupled = config.get_bool("channel.env");
  try {
    net::validate(channel);
  } catch (const std::invalid_argument& e) {
    throw ConfigError(ConfigError::Kind::kBadValue, "channel.states", e.what());
  }
  scenario.state_channel = std::move(channel);
}

/// Topology key group (the graph-* families). `topology` selects the
/// exchange-graph kind; `complete` takes the historical full-mesh path, so a
/// graph-* family at topology=complete is bit-identical to its global-state
/// counterpart (pinned in mc_test).
Schema topology_schema(const char* default_kind) {
  Schema schema;
  schema
      .add(opt("topology", OptionType::kString, default_kind,
               "exchange-graph kind (complete reduces to the global-state baseline)", kNoMin,
               kNoMax, {"complete", "ring", "torus", "rr"}))
      .add(opt("topology.degree", OptionType::kSize, "4",
               "random-regular degree d (topology=rr; nodes*d must be even)", 2.0, 63.0))
      .add(opt("topology.rows", OptionType::kSize, "0",
               "torus rows (0 = near-square factorisation of nodes)", kNoMin, 64.0))
      .add(opt("topology.cols", OptionType::kSize, "0",
               "torus cols (0 = near-square factorisation of nodes)", kNoMin, 64.0))
      .add(opt("topology.seed", OptionType::kSize, "278819329",
               "graph-construction seed (random-regular wiring, churn masks)", kNoMin,
               kNoMax))
      .add(opt("topology.churn.drop", OptionType::kDouble, "0",
               "edge-drop scale under the environment CTMC: state s of K drops each edge "
               "w.p. drop*s/(K-1) (needs the env.* keys)",
               0.0, 1.0))
      .add(opt("topology.churn.spare", OptionType::kBool, "true",
               "never drop an edge that would isolate either endpoint"))
      .add(opt("probes", OptionType::kSize, "2",
               "random neighbours probed per round (policy=probe)", 1.0, 63.0))
      .add(opt("alpha", OptionType::kDouble, "0.5",
               "diffusion step scale in (0, 1] (policy=diffusion)", 1e-6, 1.0));
  return schema;
}

net::TopologySpec build_topology(const Config& config) {
  net::TopologySpec spec;
  try {
    spec.kind = net::kind_from_string(config.get_string("topology"));
  } catch (const std::invalid_argument& e) {
    throw ConfigError(ConfigError::Kind::kBadValue, "topology", e.what());
  }
  spec.degree = config.get_size("topology.degree");
  spec.rows = config.get_size("topology.rows");
  spec.cols = config.get_size("topology.cols");
  spec.seed = static_cast<std::uint64_t>(config.get_size("topology.seed"));
  spec.churn_drop = config.get_double("topology.churn.drop");
  spec.churn_spare = config.get_bool("topology.churn.spare");
  return spec;
}

/// External-arrival key group (open-system families).
Schema arrivals_schema() {
  Schema schema;
  schema
      .add(opt("arrivals.process", OptionType::kString, "poisson",
               "external arrival process", kNoMin, kNoMax, {"none", "poisson", "mmpp"}))
      .add(opt("arrivals.rate", OptionType::kDouble, "0.04",
               "Poisson arrival-epoch rate (1/s)", 1e-9, 1e6))
      .add(opt("arrivals.rates", OptionType::kDoubleList, "0.01,0.16",
               "MMPP per-environment-state epoch rates, cycled to env.states", 0.0, 1e6))
      .add(opt("arrivals.count", OptionType::kSize, "4",
               "arrival epochs per replication (finite keeps completion defined; "
               "use arrivals.process=none to disable the stream)",
               1.0, 100000.0))
      .add(opt("arrivals.batch", OptionType::kSize, "40",
               "tasks per arrival epoch (the mean when geometric)", 1.0, 5000.0))
      .add(opt("arrivals.batch.law", OptionType::kString, "fixed", "batch-size law", kNoMin,
               kNoMax, {"fixed", "geometric"}))
      .add(opt("arrivals.target", OptionType::kInt, "0",
               "node receiving each bundle (-1 = uniform random)", -1.0, 63.0))
      .add(opt("arrivals.rebalance", OptionType::kBool, "false",
               "re-run the policy's t=0 balancing episode after every arrival"));
  return schema;
}

env::ArrivalSpec build_arrivals(const Config& config, const env::EnvironmentSpec& environment) {
  env::ArrivalSpec spec;
  const std::string process = config.get_string("arrivals.process");
  if (process == "none") return spec;
  spec.process = process == "mmpp" ? env::ArrivalSpec::Process::kMmpp
                                   : env::ArrivalSpec::Process::kPoisson;
  spec.rate = config.get_double("arrivals.rate");
  if (spec.process == env::ArrivalSpec::Process::kMmpp) {
    if (!environment.enabled()) {
      throw ConfigError(ConfigError::Kind::kBadValue, "arrivals.process",
                        "arrivals.process=mmpp needs the env.* environment keys");
    }
    const std::vector<double> rates = config.get_double_list("arrivals.rates");
    if (rates.empty()) {
      throw ConfigError(ConfigError::Kind::kBadValue, "arrivals.rates",
                        "arrivals.rates must be a non-empty rate list for MMPP");
    }
    spec.state_rates = cycled(rates, environment.states);
  }
  spec.count = config.get_size("arrivals.count");
  spec.batch = config.get_size("arrivals.batch");
  spec.batch_law = config.get_string("arrivals.batch.law") == "geometric"
                       ? env::ArrivalSpec::BatchLaw::kGeometric
                       : env::ArrivalSpec::BatchLaw::kFixed;
  spec.target = static_cast<int>(config.get_int("arrivals.target"));
  spec.rebalance = config.get_bool("arrivals.rebalance");
  return spec;
}

/// Arrival keys of the steady-state family: same names as arrivals_schema so
/// sweeps/overrides transfer, but no arrivals.count (the stream is always
/// unbounded), unit batches by default, and rate 0 = derive from `rho`.
Schema steady_arrivals_schema() {
  Schema schema;
  schema
      .add(opt("arrivals.process", OptionType::kString, "poisson",
               "external arrival process", kNoMin, kNoMax, {"poisson", "mmpp"}))
      .add(opt("arrivals.rate", OptionType::kDouble, "0",
               "Poisson arrival-epoch rate (1/s); 0 = derive from rho", 0.0, 1e6))
      .add(opt("arrivals.rates", OptionType::kDoubleList, "0.5,2",
               "MMPP per-environment-state epoch rates, cycled to env.states", 0.0, 1e6))
      .add(opt("arrivals.batch", OptionType::kSize, "1",
               "tasks per arrival epoch (the mean when geometric)", 1.0, 5000.0))
      .add(opt("arrivals.batch.law", OptionType::kString, "fixed", "batch-size law", kNoMin,
               kNoMax, {"fixed", "geometric"}))
      .add(opt("arrivals.target", OptionType::kInt, "-1",
               "node receiving each epoch (-1 = uniform random)", -1.0, 63.0))
      .add(opt("arrivals.rebalance", OptionType::kBool, "false",
               "re-run the policy's t=0 balancing episode after every arrival"))
      .add(opt("rho", OptionType::kDouble, "0.5",
               "offered load: epoch rate = rho * sum(lambda_d) / batch "
               "(used when arrivals.rate = 0; under churn, effective capacity "
               "is availability * lambda_d, so saturation begins below 1)",
               0.01, 0.99))
      .add(opt("steady.tasks", OptionType::kSize, "20000",
               "completed tasks observed per replication", 1000.0, 1e7))
      .add(opt("steady.batches", OptionType::kSize, "32",
               "batch count for the batch-means CI", 8.0, 256.0))
      .add(opt("steady.warmup.cap", OptionType::kDouble, "0.5",
               "max fraction of the window MSER-5 may truncate as warm-up", 0.0, 0.9));
  return schema;
}

env::ArrivalSpec build_steady_arrivals(const Config& config,
                                       const mc::ScenarioConfig& scenario) {
  env::ArrivalSpec spec;
  const std::string process = config.get_string("arrivals.process");
  spec.process = process == "mmpp" ? env::ArrivalSpec::Process::kMmpp
                                   : env::ArrivalSpec::Process::kPoisson;
  spec.unbounded = true;
  spec.batch = config.get_size("arrivals.batch");
  spec.batch_law = config.get_string("arrivals.batch.law") == "geometric"
                       ? env::ArrivalSpec::BatchLaw::kGeometric
                       : env::ArrivalSpec::BatchLaw::kFixed;
  spec.target = static_cast<int>(config.get_int("arrivals.target"));
  spec.rebalance = config.get_bool("arrivals.rebalance");
  if (spec.process == env::ArrivalSpec::Process::kMmpp) {
    if (!scenario.environment.enabled()) {
      throw ConfigError(ConfigError::Kind::kBadValue, "arrivals.process",
                        "arrivals.process=mmpp needs the env.* environment keys");
    }
    const std::vector<double> rates = config.get_double_list("arrivals.rates");
    if (rates.empty()) {
      throw ConfigError(ConfigError::Kind::kBadValue, "arrivals.rates",
                        "arrivals.rates must be a non-empty rate list for MMPP");
    }
    spec.state_rates = cycled(rates, scenario.environment.states);
    return spec;
  }
  spec.rate = config.get_double("arrivals.rate");
  if (spec.rate <= 0.0) {
    // rho is the offered load: task rate rho * sum(mu), so the epoch rate
    // divides out the mean batch size.
    double total_mu = 0.0;
    for (const markov::NodeParams& np : scenario.params.nodes) total_mu += np.lambda_d;
    spec.rate =
        config.get_double("rho") * total_mu / static_cast<double>(std::max<std::size_t>(
                                                 spec.batch, 1));
  }
  return spec;
}

/// Builder shared by `multi-node` and `many-node-churn`.
mc::ScenarioConfig build_n_node(const Config& config) {
  const std::size_t n = config.get_size("nodes");
  const auto rates_d = config.get_double_list("lambda_d");
  const auto rates_f = config.get_double_list("lambda_f");
  const auto rates_r = config.get_double_list("lambda_r");
  const auto loads = config.get_size_list("workloads");
  if (rates_d.empty() || rates_f.empty() || rates_r.empty() || loads.empty()) {
    throw ConfigError(ConfigError::Kind::kBadValue, "lambda_d",
                      "multi-node rate/workload lists must be non-empty");
  }
  mc::ScenarioConfig scenario;
  scenario.workloads.resize(n);
  scenario.params.nodes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scenario.params.nodes[i].lambda_d = rates_d[i % rates_d.size()];
    scenario.params.nodes[i].lambda_f = rates_f[i % rates_f.size()];
    scenario.params.nodes[i].lambda_r = rates_r[i % rates_r.size()];
    scenario.workloads[i] = loads[i % loads.size()];
  }
  scenario.policy = make_policy(config, scenario.workloads);
  apply_common(scenario, config);
  markov::validate(scenario.params);
  return scenario;
}

/// Builder shared by the graph-* families: an n-node cluster restricted to a
/// (possibly churned) exchange graph. Global-state policies are rejected
/// unless topology=complete — on a sparse graph they would read and ship
/// across non-edges, which the engine traps anyway; failing here names the
/// key instead of aborting a replication.
mc::ScenarioConfig build_graph(const Config& config) {
  mc::ScenarioConfig scenario = build_n_node(config);
  scenario.topology = build_topology(config);
  const std::string policy = config.get_string("policy");
  const bool local = policy == "none" || policy == "probe" || policy == "diffusion";
  if (!scenario.topology.complete() && !local) {
    throw ConfigError(ConfigError::Kind::kBadValue, "policy",
                      "policy=" + policy +
                          " reads global state; topology=" + config.get_string("topology") +
                          " admits only the neighbourhood-local policies "
                          "(none, probe, diffusion) — or set topology=complete");
  }
  if (env_supplied(config)) scenario.environment = build_environment(config);
  if (scenario.topology.dynamic()) {
    if (scenario.topology.complete()) {
      throw ConfigError(ConfigError::Kind::kBadValue, "topology.churn.drop",
                        "edge churn needs a non-complete topology");
    }
    if (!scenario.environment.enabled()) {
      throw ConfigError(ConfigError::Kind::kBadValue, "topology.churn.drop",
                        "topology.churn.drop > 0 needs the env.* environment keys "
                        "(the CTMC drives the edge churn)");
    }
  }
  if (!scenario.topology.complete()) {
    // Surface construction errors (degree parity, torus factorisation) as
    // ConfigError at build time rather than std::invalid_argument at run time.
    try {
      (void)net::Topology::build(scenario.topology, scenario.params.nodes.size());
    } catch (const std::invalid_argument& e) {
      throw ConfigError(ConfigError::Kind::kBadValue, "topology", e.what());
    }
  }
  return scenario;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> registry;

  registry.push_back(
      {.name = "paper-two-node",
       .summary = "Section 2 two-node system at the paper's measured rates (Tables 1-2)",
       .schema = two_node_schema("lbp1", 0.35),
       .build = [](const Config& config) { return build_two_node(config); }});

  registry.push_back(
      {.name = "multi-node",
       .summary = "n-node heterogeneous cluster (the paper's Section 5 extension)",
       .schema = n_node_schema("4", "0.1", "100,60"),
       .build = [](const Config& config) { return build_n_node(config); }});

  // Many-node MC stress family: the exact solver stops at 8 nodes (one
  // 2^n x 2^n solve per lattice point), so past that the MC engine is the
  // only source of truth. Defaults: 32 nodes, imbalanced workloads (so LBP-2
  // actually transfers), brisk churn. Cross-checked against the solver on the
  // n <= 6 overlap in mc_solver_crosscheck_test.
  registry.push_back(
      {.name = "many-node-churn",
       .summary = "many-node (default 32) churn stress; MC-only past the solver's n<=8 range",
       .schema = n_node_schema("32", "0.25", "120,20,60,40"),
       .build = [](const Config& config) { return build_n_node(config); }});

  {
    Schema schema = two_node_schema("lbp2", 1.0);
    schema
        .add(opt("failure.scale", OptionType::kDouble, "10",
                 "multiplier on both paper failure rates", 0.0, 1e6))
        .add(opt("recovery.scale", OptionType::kDouble, "10",
                 "multiplier on both paper recovery rates", 1e-6, 1e6));
    registry.push_back(
        {.name = "churn-storm",
         .summary = "paper two-node under accelerated failure/recovery churn",
         .schema = std::move(schema),
         .build = [](const Config& config) {
           return build_two_node(config, config.get_double("failure.scale"),
                                 config.get_double("recovery.scale"));
         }});
  }

  {
    Schema schema = two_node_schema("lbp2", 1.0);
    // cold start: node 0 begins down, so its queue drains only after recovery.
    registry.push_back(
        {.name = "cold-start",
         .summary = "paper two-node with nodes initially down (down.mask, default node 0)",
         .schema = std::move(schema),
         .build = [](const Config& config) {
           mc::ScenarioConfig scenario = build_two_node(config);
           if (!config.supplied("down.mask")) scenario.initially_down = 0b01;
           return scenario;
         }});
  }

  registry.push_back(
      {.name = "periodic-rebalance",
       .summary = "paper two-node driven by the periodic re-balancing extension",
       .schema = two_node_schema("periodic", 0.5),
       .build = [](const Config& config) { return build_two_node(config); }});

  // --- env-driven families (src/env subsystem) ---

  {
    // Common-shock churn: paper rates by default (n-node lists cycle to the
    // two paper nodes), scaled to n=16/32 for the MC stress rows. With
    // env.storm.mult=1 this reduces to independent churn (pinned against
    // churn-storm in env_test).
    Schema schema = n_node_schema("2", "0.1,0.05", "100,60");
    schema.merge(env_schema("10"));
    registry.push_back(
        {.name = "correlated-churn",
         .summary = "common-shock churn: calm/storm environment CTMC multiplies every "
                    "failure hazard",
         .schema = std::move(schema),
         .build = [](const Config& config) {
           mc::ScenarioConfig scenario = build_n_node(config);
           scenario.environment = build_environment(config);
           return scenario;
         }});
  }

  {
    // Open system: Poisson / MMPP / batch task arrivals on the paper two-node
    // system (Section 5's dynamic-workload future work, promoted from
    // bench/ablation_dynamic_arrivals).
    Schema schema = two_node_schema("lbp2", 1.0);
    schema.merge(arrivals_schema()).merge(env_schema("1"));
    registry.push_back(
        {.name = "open-arrivals",
         .summary = "paper two-node with external task arrivals (Poisson / MMPP / batch)",
         .schema = std::move(schema),
         .build = [](const Config& config) {
           mc::ScenarioConfig scenario = build_two_node(config);
           // MMPP needs the environment; otherwise it is built only when the
           // user asked for modulation (env.storm.mult defaults to 1 here, so
           // arrival burstiness can be studied without correlated churn).
           if (config.get_string("arrivals.process") == "mmpp" || env_supplied(config)) {
             scenario.environment = build_environment(config);
           }
           scenario.arrivals = build_arrivals(config, scenario.environment);
           return scenario;
         }});
  }

  {
    // Infinite-horizon open system: an unbounded Poisson/MMPP stream feeds an
    // n-node cluster and the steady-state engine reports stationary sojourn
    // time (batch-means CI + MSER-5 warm-up truncation) instead of completion
    // time. No-churn points have an exact M/M/1 law (see lbsim validate).
    Schema schema = n_node_schema("2", "0.25", "0");
    schema.merge(steady_arrivals_schema()).merge(env_schema("1"));
    registry.push_back(
        {.name = "open-steady",
         .summary = "infinite-horizon open system: stationary sojourn time under an "
                    "unbounded arrival stream (steady-state engine)",
         .schema = std::move(schema),
         .build =
             [](const Config& config) {
               mc::ScenarioConfig scenario = build_n_node(config);
               if (config.get_string("arrivals.process") == "mmpp" ||
                   env_supplied(config)) {
                 scenario.environment = build_environment(config);
               }
               scenario.arrivals = build_steady_arrivals(config, scenario);
               scenario.steady.enabled = true;
               scenario.steady.tasks = config.get_size("steady.tasks");
               scenario.steady.batches = config.get_size("steady.batches");
               scenario.steady.warmup_cap = config.get_double("steady.warmup.cap");
               return scenario;
             },
         .steady = true});
  }

  {
    // Aspnes-style adversarial churn: deterministic up/down timelines replace
    // the alternating-renewal processes (stochastic churn defaults off; nodes
    // without a clause stay up unless churn=true is supplied).
    Schema schema = two_node_schema("lbp2", 1.0);
    schema.add(opt("schedule", OptionType::kString, "0:down@10-30",
                   "deterministic timeline per node: n:down@A[-B],up@T;... "
                   "(down@0-... = starts down)"));
    registry.push_back(
        {.name = "scheduled-churn",
         .summary = "paper two-node under deterministic up/down schedules (adversarial "
                    "churn)",
         .schema = std::move(schema),
         .build = [](const Config& config) {
           mc::ScenarioConfig scenario = build_two_node(config);
           if (!config.supplied("churn")) scenario.churn_enabled = false;
           try {
             scenario.schedule = env::parse_schedule(config.get_string("schedule"));
             env::validate(scenario.schedule, scenario.params.nodes.size());
           } catch (const std::invalid_argument& e) {
             throw ConfigError(ConfigError::Kind::kBadValue, "schedule", e.what());
           }
           return scenario;
         }});
  }

  {
    Schema schema = two_node_schema("lbp1", 0.35);
    registry.push_back(
        {.name = "custom-delay",
         .summary = "paper two-node under alternative bundle-delay laws (delay.*)",
         .schema = std::move(schema),
         .build = [](const Config& config) {
           mc::ScenarioConfig scenario = build_two_node(config);
           // The testbed's measured law (Fig. 2) is the scenario's point:
           // default to Erlang per-task delays with the measured setup shift.
           if (!config.supplied("delay.model") && !config.supplied("delay.shift")) {
             scenario.delay_model = std::make_unique<net::ErlangPerTaskDelay>(
                 scenario.params.per_task_delay_mean, 0.005);
           }
           return scenario;
         }});
  }

  // --- topology-structured families (src/net topology layer) ---

  {
    // Ring: the sparsest connected regular graph (diameter floor(n/2)), so
    // neighbourhood policies are at their slowest here — the worst case the
    // diffusion spectral-gap bound in net_topology_test pins.
    Schema schema = n_node_schema("8", "0.1", "100,60,20,40", "diffusion", kGraphPolicies);
    schema.merge(topology_schema("ring")).merge(env_schema("1"));
    registry.push_back(
        {.name = "graph-ring",
         .summary = "n-node cycle exchange graph with neighbourhood-local policies "
                    "(topology=complete reduces to the global-state baseline)",
         .schema = std::move(schema),
         .build = [](const Config& config) { return build_graph(config); }});
  }

  {
    // 2-D torus: the paper's mesh-interconnect cousin; near-square
    // factorisation by default, explicit topology.rows/cols otherwise.
    Schema schema = n_node_schema("16", "0.1", "120,20,60,40", "diffusion", kGraphPolicies);
    schema.merge(topology_schema("torus")).merge(env_schema("1"));
    registry.push_back(
        {.name = "graph-torus",
         .summary = "2-D wrap-around torus exchange graph (rows x cols, default "
                    "near-square) with neighbourhood-local policies",
         .schema = std::move(schema),
         .build = [](const Config& config) { return build_graph(config); }});
  }

  {
    // Random-regular: expander-like constant-degree graphs; with env.* keys
    // and topology.churn.drop > 0 the edge set degrades with the environment
    // state (the dynamic-graph extension).
    Schema schema = n_node_schema("32", "0.25", "120,20,60,40", "probe", kGraphPolicies);
    schema.merge(topology_schema("rr")).merge(env_schema("1"));
    registry.push_back(
        {.name = "graph-rr",
         .summary = "seeded random-regular exchange graph (degree d) with random-probe "
                    "balancing and optional environment-driven edge churn",
         .schema = std::move(schema),
         .build = [](const Config& config) { return build_graph(config); }});
  }

  // --- testbed-engine family (src/testbed + net channel layer) ---

  {
    // Lossy/bursty state exchange: the Section 3 emulation with the state
    // plane degraded by i.i.d. loss or a k-state Markov (Gilbert-Elliott)
    // channel. Runs on the testbed engine — policies act on the possibly
    // stale state board, so this is where "how does stale state break
    // LBP-1/LBP-2 gains" becomes a one-line channel.burst sweep.
    // The Gilbert-Elliott channel is ON by default (the family exists to
    // model bursty loss); channel.states=0 recovers the i.i.d. exchange.loss
    // plane.
    Schema schema = two_node_schema("lbp2", 1.0);
    schema.merge(channel_schema("2")).merge(env_schema("10"));
    schema.add(opt("aware", OptionType::kBool, "true",
                   "LBP-2's failure compensation consults the advertised (possibly "
                   "stale) peer up/down state instead of shipping blindly — the decision "
                   "the channel's staleness actually corrupts"));
    registry.push_back(
        {.name = "lossy-exchange",
         .summary = "testbed-engine two-node with lossy/bursty UDP state exchange "
                    "(channel.* = k-state Markov channel; Gilbert-Elliott at k=2)",
         .schema = std::move(schema),
         .build =
             [](const Config& config) {
               mc::ScenarioConfig scenario = build_two_node(config);
               apply_channel(scenario, config);
               if (config.get_bool("aware") && config.get_string("policy") == "lbp2") {
                 scenario.policy = std::make_unique<core::Lbp2Policy>(
                     config.get_double("gain"), /*state_aware=*/true);
               }
               if (config.get_bool("channel.env") || env_supplied(config)) {
                 scenario.environment = build_environment(config);
               }
               return scenario;
             },
         .testbed = true});
  }

  return registry;
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> registry = build_registry();
  return registry;
}

const ScenarioSpec& find_scenario(const std::string& name) {
  const auto& registry = scenario_registry();
  const auto it = std::find_if(registry.begin(), registry.end(),
                               [&](const ScenarioSpec& spec) { return spec.name == name; });
  if (it != registry.end()) return *it;

  std::string known;
  for (const ScenarioSpec& spec : registry) {
    known += (known.empty() ? "" : ", ") + spec.name;
  }
  throw ConfigError(ConfigError::Kind::kUnknownKey, name,
                    "unknown scenario '" + name + "' (known: " + known + ")");
}

core::PolicyPtr make_policy(const Config& config, const std::vector<std::size_t>& workloads) {
  const std::string policy = config.get_string("policy");
  const double gain = config.get_double("gain");
  if (policy == "none") return std::make_unique<core::NoBalancingPolicy>();
  if (policy == "proportional") return std::make_unique<core::ProportionalOncePolicy>();
  if (policy == "lbp2") return std::make_unique<core::Lbp2Policy>(gain);
  if (policy == "probe") {
    return std::make_unique<core::RandomProbePolicy>(config.get_size("probes"));
  }
  if (policy == "diffusion") {
    return std::make_unique<core::DiffusionPolicy>(config.get_double("alpha"));
  }
  if (policy == "periodic") {
    return std::make_unique<core::PeriodicRebalancePolicy>(config.get_double("period"), gain,
                                                           config.get_bool("compensate"));
  }
  // lbp1: the two-node form takes an explicit sender; -1 picks the more-loaded
  // node (the paper's convention). n > 2 uses the one-shot excess-load form.
  if (workloads.size() == 2) {
    long long sender = config.get_int("sender");
    if (sender < 0) sender = workloads[0] >= workloads[1] ? 0 : 1;
    if (sender > 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "sender",
                        "sender must be 0, 1, or -1 for a two-node scenario");
    }
    return std::make_unique<core::Lbp1Policy>(static_cast<int>(sender), gain);
  }
  return std::make_unique<core::Lbp1Policy>(gain);
}

}  // namespace lbsim::cli
