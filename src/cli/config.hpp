#pragma once
/// \file
/// Key=value / INI configuration with typed schema validation.
///
/// Raw text (a file, a `[section]`-structured INI, or `key=value` command-line
/// overrides) parses into a flat string map; a Schema then resolves it into a
/// typed Config: defaults are applied, unknown keys are rejected with a
/// nearest-match suggestion, and every value is parsed and range-checked
/// according to its OptionSpec. All failures throw ConfigError carrying the
/// offending key and a machine-readable error kind, so callers (and tests) can
/// distinguish a typo from a type error from an out-of-range value.

#include <cstddef>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace lbsim::cli {

/// Error raised by parsing or schema resolution.
class ConfigError : public std::runtime_error {
 public:
  enum class Kind {
    kSyntax,      ///< malformed line / override (no '=', empty key, bad section)
    kUnknownKey,  ///< key not declared in the schema
    kBadValue,    ///< value does not parse as the declared type
    kOutOfRange,  ///< parses, but violates [min,max] or the choice list
  };

  ConfigError(Kind kind, std::string key, const std::string& message);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// The offending key ("" for file-level syntax errors).
  [[nodiscard]] const std::string& key() const noexcept { return key_; }

 private:
  Kind kind_;
  std::string key_;
};

/// Flat, untyped key=value map as read from text. Section headers `[sec]`
/// prefix subsequent keys as `sec.key`.
struct RawConfig {
  std::map<std::string, std::string> values;

  [[nodiscard]] bool has(const std::string& key) const { return values.count(key) != 0; }
  /// Sets `key=value`, overwriting (later sources win).
  void set(const std::string& key, const std::string& value) { values[key] = value; }
};

/// Parses INI-style text: `key = value` lines, `[section]` headers, blank
/// lines, and full-line `#`/`;` comments. Throws ConfigError(kSyntax).
[[nodiscard]] RawConfig parse_ini(const std::string& text);

/// parse_ini over the contents of `path`; throws std::runtime_error if the
/// file cannot be read.
[[nodiscard]] RawConfig parse_ini_file(const std::string& path);

/// Applies one `key=value` override (e.g. a positional CLI argument); the
/// current section concept does not apply. Throws ConfigError(kSyntax).
void apply_override(RawConfig& raw, const std::string& assignment);

enum class OptionType {
  kString,
  kBool,    ///< true/false, yes/no, on/off, 1/0
  kInt,     ///< long long
  kSize,    ///< non-negative integer
  kDouble,
  kSizeList,    ///< comma-separated non-negative integers
  kDoubleList,  ///< comma-separated doubles
};

/// Human-readable name ("double", "size-list", ...) for messages and `lbsim list`.
[[nodiscard]] std::string to_string(OptionType type);

/// One typed, documented, range-checked configuration key.
struct OptionSpec {
  std::string key;
  OptionType type = OptionType::kString;
  std::string default_value;  ///< textual default; must itself validate
  std::string description;
  /// Inclusive numeric bounds, applied to kInt/kSize/kDouble and to every
  /// element of list types.
  double min_value = std::numeric_limits<double>::lowest();
  double max_value = std::numeric_limits<double>::max();
  /// For kString: the allowed values (empty = unrestricted).
  std::vector<std::string> choices;
};

class Config;

/// An ordered set of OptionSpecs; resolves a RawConfig into a typed Config.
class Schema {
 public:
  /// Declares one option; throws std::logic_error on duplicate keys.
  Schema& add(OptionSpec spec);

  /// Appends every option of `other` (for layering shared + per-scenario keys).
  Schema& merge(const Schema& other);

  [[nodiscard]] const std::vector<OptionSpec>& options() const noexcept { return options_; }
  [[nodiscard]] const OptionSpec* find(const std::string& key) const;

  /// Closest declared key within edit distance 2 of `key` ("" if none) — the
  /// did-you-mean suggestion used for unknown keys here and by the sweep's
  /// fail-fast axis check.
  [[nodiscard]] std::string suggest(const std::string& key) const;

  /// Validates `raw` against the schema: applies defaults, rejects unknown
  /// keys (kUnknownKey, with a did-you-mean suggestion), parses and
  /// range-checks every value. Throws ConfigError.
  [[nodiscard]] Config resolve(const RawConfig& raw) const;

 private:
  std::vector<OptionSpec> options_;
};

/// Schema-validated configuration; getters cannot fail on values (they were
/// validated by Schema::resolve) but throw std::logic_error when asked for a
/// key the schema never declared or with the wrong typed getter.
class Config {
 public:
  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] std::size_t get_size(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] std::vector<std::size_t> get_size_list(const std::string& key) const;
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key) const;

  /// True when the key was supplied explicitly (not filled from the default).
  [[nodiscard]] bool supplied(const std::string& key) const;

  /// The resolved textual value of every key, for echoing into run metadata.
  [[nodiscard]] const std::map<std::string, std::string>& values() const noexcept {
    return values_;
  }

 private:
  friend class Schema;
  [[nodiscard]] const std::string& checked(const std::string& key, OptionType type) const;

  std::map<std::string, std::string> values_;
  std::map<std::string, OptionType> types_;
  std::map<std::string, bool> supplied_;
};

/// Low-level typed parsers, shared with the sweep-axis grammar. Each throws
/// ConfigError(kBadValue) naming `key` when `text` does not fully parse.
[[nodiscard]] bool parse_bool(const std::string& text, const std::string& key);
[[nodiscard]] long long parse_int(const std::string& text, const std::string& key);
[[nodiscard]] double parse_double(const std::string& text, const std::string& key);
[[nodiscard]] std::vector<std::string> split_list(const std::string& text);

}  // namespace lbsim::cli
