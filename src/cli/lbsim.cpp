#include "cli/lbsim.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/artifacts.hpp"
#include "cli/config.hpp"
#include "cli/output.hpp"
#include "cli/registry.hpp"
#include "cli/sweep.hpp"
#include "cli/validate.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "mc/scenario.hpp"
#include "mc/steady.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "testbed/config.hpp"
#include "testbed/experiment.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace lbsim::cli {
namespace {

constexpr const char* kUsage = R"(lbsim - load-balancing experiment runner (Dhakal et al., IPDPS 2006 reproduction)

Usage:
  lbsim list [scenario]             registered scenarios, or one scenario's keys
  lbsim run <scenario> [key=value ...]
        [--config=FILE] [--engine=mc|testbed] [--reps=N] [--threads=N]
        [--seed=S] [--vr=none|antithetic|cv|both] [--cv-pilot=N] [--shards=N]
        [--trace=FILE[:jsonl|chrome]] [--metrics=FILE]
        [--format=table|csv|json] [--out=FILE]
        --trace writes the structured event trace (task/service/transfer/
        churn/env records, replications in order behind rep_begin markers) as
        JSONL or the Chrome trace-event JSON Perfetto opens; --metrics dumps
        the merged counters/gauges/histograms registry as JSON. Both are
        bit-identity-neutral: the run's statistics are unchanged.
        --vr selects the variance-reduced estimator (mc engine, finite
        horizon): antithetic mirrors replication pairs, cv adjusts by a
        churn-free surrogate under common random numbers with its exact mean
        from the theory oracle, both composes them. Adds vr/adj_mean_s/
        adj_ci95_s/vr_ratio columns; raw statistics stay alongside. An
        inadmissible component falls back with a note ("!" on the mode).
        --shards=N splits the event queue into N shards (bit-identical
        results at any N)
  lbsim sweep <scenario> [key=v1,v2 | key=lo:hi:step ...]
        [--reps=N] [--threads=N] [--seed=S] [--dry-run]
        [--vr=MODE] [--cv-pilot=N] [--shards=N] [--metrics=FILE]
        [--quantiles] [--ecdf[=K]] [--compare=theory]
        [--format=table|csv|json] [--out=FILE]
        --metrics dumps one registry merged over every grid point
        --quantiles adds p50/p90/p99 columns (streaming P2 estimates);
        --ecdf=K adds the empirical quantile function at K+1 evenly spaced
        probabilities (exact, collects samples); --compare=theory joins the
        exact-solver prediction (theory_mean, abs_err, sigma_err) onto every
        grid point, with "-" where no solver applies; mc.vr works as a sweep
        axis (mc.vr=none,antithetic,cv,both compares estimators per point)
  lbsim validate [family] [--strict] [--reps=N] [--seed=S] [--threads=N]
        [--sigma=F] [--ks-slack=F] [--format=table|csv|json] [--out=FILE]
        runs every registry family (or one) against the exact solvers at a
        fixed seed; exits nonzero when a z-score or KS gate fails. --strict is
        the CI configuration (1500 reps, 4-sigma mean gate). Steady-state
        points check the stationary M/M/1 sojourn law instead of a
        completion-time solver
  lbsim reproduce <table1|table2|table3|fig1..fig5>
        [--quick] [--golden-only] [--reps=N] [--realizations=N] [--seed=S]
        [--format=table|csv|json] [--out=FILE]
  lbsim perf [--quick] [--profile] [--out=FILE] [--check[=BASELINE]]
        [--max-regression=F]
        timing baseline (perf_solver/perf_mc/perf_des, many-node
        perf_mc_n16/32/64 and sharded-queue perf_mc_n256, variance-reduced
        effective throughput perf_mc_vr, env-modulated perf_mc_env,
        topology-restricted perf_mc_graph, open-system perf_mc_steady,
        lossy state-plane perf_testbed_lossy);
        --check exits nonzero when any bench regresses >F (default 0.30) vs the
        baseline JSON (default BENCH_baseline.json); --profile appends a
        per-bench phase breakdown (setup / event loop / stats fold wall time)
        from the engines' self-profiling

Global flags: --log-level=trace|debug|info|warn|error|off (default warn).

Scenario keys are INI-style (`lbsim list <scenario>` documents them); a
--config file may also carry them, with command-line key=value pairs winning.
The reserved keys `mc.reps`, `mc.threads`, `mc.seed`, `mc.vr`, `mc.cv-pilot`,
`mc.shards`, and `engine` select the execution engine rather than the scenario.
)";

/// Emission sink: --out writes the formatted table to a file, keeping the
/// human narration on stdout.
void emit(const util::CliArgs& args, const RunMetadata& meta, const util::TextTable& table,
          std::ostream& out) {
  const std::string path = args.get_string("out", "");
  std::string format = args.get_string("format", path.empty() ? "table" : "csv");
  if (format != "table" && format != "csv" && format != "json") {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "format",
                      "--format must be table, csv, or json");
  }
  const auto write = [&](std::ostream& os) {
    if (format == "csv") {
      write_csv(os, meta, table);
    } else if (format == "json") {
      write_json(os, meta, table);
    } else {
      table.print(os);
    }
  };
  if (path.empty()) {
    write(out);
    return;
  }
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write to '" + path + "'");
  write(file);
  out << "wrote " << format << " to " << path << "\n";
}

/// Observability sinks shared by run (all engines) and sweep (metrics only):
/// `--trace=FILE[:jsonl|chrome]` and `--metrics=FILE`. Attaching them never
/// perturbs the run — no RNG draws, bit-identical statistics.
struct ObsOptions {
  std::string trace_path;
  std::string trace_format = "jsonl";
  std::string metrics_path;
  [[nodiscard]] bool any() const { return !trace_path.empty() || !metrics_path.empty(); }
};

ObsOptions parse_obs_options(const util::CliArgs& args) {
  ObsOptions options;
  options.metrics_path = args.get_string("metrics", "");
  std::string spec = args.get_string("trace", "");
  if (args.has("trace") && spec.empty()) {
    throw ConfigError(ConfigError::Kind::kSyntax, "trace",
                      "--trace needs a file path (FILE[:jsonl|chrome])");
  }
  if (!spec.empty()) {
    // Only a recognised exporter suffix splits off, so plain paths with
    // colons (e.g. Windows drives, timestamps) pass through untouched.
    if (const std::size_t colon = spec.rfind(':'); colon != std::string::npos) {
      const std::string suffix = spec.substr(colon + 1);
      if (suffix == "jsonl" || suffix == "chrome") {
        options.trace_format = suffix;
        spec.resize(colon);
      }
    }
    if (spec.empty()) {
      throw ConfigError(ConfigError::Kind::kSyntax, "trace",
                        "--trace needs a file path before the ':" + options.trace_format +
                            "' suffix");
    }
    options.trace_path = spec;
  }
  return options;
}

void write_trace_file(const ObsOptions& options, const obs::TraceBuffer& trace,
                      const obs::TraceMeta& trace_meta, std::ostream& out) {
  std::ofstream file(options.trace_path);
  if (!file) throw std::runtime_error("cannot write to '" + options.trace_path + "'");
  if (options.trace_format == "chrome") {
    obs::write_chrome(file, trace);
  } else {
    obs::write_jsonl(file, trace, &trace_meta);
  }
  out << "wrote " << trace.size() << " trace records (" << options.trace_format << ") to "
      << options.trace_path << "\n";
}

void write_metrics_file(const std::string& path, const obs::Registry& metrics,
                        const RunMetadata& meta, std::ostream& out) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write to '" + path + "'");
  file << "{\n  \"metadata\": {";
  const auto items = meta.items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    file << (i != 0 ? ",\n" : "\n") << "    \"" << json_escape(items[i].first) << "\": \""
         << json_escape(items[i].second) << "\"";
  }
  file << "\n  },\n  \"metrics\": ";
  metrics.write_json(file, 2);
  file << "\n}\n";
  out << "wrote metrics to " << path << "\n";
}

std::string joined_command(int argc, const char* const* argv) {
  std::ostringstream os;
  os << "lbsim";
  for (int i = 1; i < argc; ++i) os << ' ' << argv[i];
  return os.str();
}

/// Splits the reserved engine keys out of a raw scenario config.
struct EngineOptions {
  std::string engine = "mc";
  std::size_t replications = 0;  // 0 = engine default
  unsigned threads = 0;
  std::uint64_t seed = 0;        // 0 = engine default
  mc::VrMode vr = mc::VrMode::kNone;
  std::size_t cv_pilot = 0;      // 0 = engine auto
  std::size_t shards = 1;
};

EngineOptions extract_engine_options(RawConfig& raw, const util::CliArgs& args) {
  EngineOptions options;
  const auto take = [&raw](const std::string& key) -> std::string {
    const auto it = raw.values.find(key);
    if (it == raw.values.end()) return "";
    std::string value = it->second;
    raw.values.erase(it);
    return value;
  };
  if (const std::string v = take("engine"); !v.empty()) options.engine = v;
  if (const std::string v = take("mc.reps"); !v.empty()) {
    options.replications = static_cast<std::size_t>(parse_int(v, "mc.reps"));
  }
  if (const std::string v = take("mc.threads"); !v.empty()) {
    options.threads = static_cast<unsigned>(parse_int(v, "mc.threads"));
  }
  if (const std::string v = take("mc.seed"); !v.empty()) {
    options.seed = static_cast<std::uint64_t>(parse_int(v, "mc.seed"));
  }
  std::string vr_text = take("mc.vr");
  std::string cv_pilot_text = take("mc.cv-pilot");
  std::string shards_text = take("mc.shards");
  // Command-line flags win over config-file keys.
  options.engine = args.get_string("engine", options.engine);
  options.replications =
      static_cast<std::size_t>(args.get_int64("reps", static_cast<long long>(options.replications)));
  options.threads = static_cast<unsigned>(args.get_int("threads", static_cast<int>(options.threads)));
  options.seed =
      static_cast<std::uint64_t>(args.get_int64("seed", static_cast<long long>(options.seed)));
  vr_text = args.get_string("vr", vr_text);
  cv_pilot_text = args.get_string("cv-pilot", cv_pilot_text);
  shards_text = args.get_string("shards", shards_text);
  if (!vr_text.empty() && !mc::parse_vr_mode(vr_text, options.vr)) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "vr",
                      "--vr must be none, antithetic, cv, or both (got '" + vr_text + "')");
  }
  if (!cv_pilot_text.empty()) {
    const long long pilot = parse_int(cv_pilot_text, "cv-pilot");
    if (pilot < 0) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "cv-pilot",
                        "--cv-pilot must be >= 0 (0 = auto)");
    }
    options.cv_pilot = static_cast<std::size_t>(pilot);
  }
  if (!shards_text.empty()) {
    const long long shards = parse_int(shards_text, "shards");
    if (shards < 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "shards", "--shards must be >= 1");
    }
    options.shards = static_cast<std::size_t>(shards);
  }
  if (options.engine != "mc" && options.engine != "testbed") {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "engine",
                      "engine must be 'mc' or 'testbed'");
  }
  if (options.engine != "mc" && (options.vr != mc::VrMode::kNone || options.shards != 1)) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "vr",
                      "--vr/--shards belong to the mc engine");
  }
  return options;
}

/// Gathers the scenario name + raw key=value config for run/sweep: positional
/// overrides layered over an optional --config file.
struct ScenarioInvocation {
  const ScenarioSpec* spec = nullptr;
  RawConfig raw;
  std::vector<std::string> extra;  ///< positionals that are not key=value
};

ScenarioInvocation parse_scenario_invocation(const util::CliArgs& args) {
  ScenarioInvocation invocation;
  if (const std::string path = args.get_string("config", ""); !path.empty()) {
    invocation.raw = parse_ini_file(path);
  }
  std::string name;
  const auto& positional = args.positional();
  for (std::size_t i = 1; i < positional.size(); ++i) {
    const std::string& arg = positional[i];
    if (arg.find('=') != std::string::npos) {
      invocation.extra.push_back(arg);
    } else if (name.empty()) {
      name = arg;
    } else {
      throw ConfigError(ConfigError::Kind::kSyntax, arg,
                        "unexpected positional argument '" + arg + "'");
    }
  }
  if (name.empty()) {
    const auto it = invocation.raw.values.find("scenario");
    if (it != invocation.raw.values.end()) {
      name = it->second;
    } else {
      throw ConfigError(ConfigError::Kind::kSyntax, "scenario",
                        "no scenario named (positional argument or 'scenario' config key)");
    }
  }
  invocation.raw.values.erase("scenario");
  invocation.spec = &find_scenario(name);
  return invocation;
}

int cmd_list(const util::CliArgs& args, std::ostream& out) {
  const auto& positional = args.positional();
  if (positional.size() > 1) {
    const ScenarioSpec& spec = find_scenario(positional[1]);
    out << spec.name << " - " << spec.summary << "\n\n";
    util::TextTable table({"key", "type", "default", "description"});
    for (const OptionSpec& option : spec.schema.options()) {
      table.add_row({option.key, to_string(option.type),
                     option.default_value.empty() ? "-" : option.default_value,
                     option.description});
    }
    table.print(out);
    return 0;
  }

  out << "Scenarios (lbsim run/sweep <name>; `lbsim list <name>` shows keys):\n\n";
  util::TextTable scenarios({"scenario", "keys", "summary"});
  for (const ScenarioSpec& spec : scenario_registry()) {
    scenarios.add_row({spec.name, std::to_string(spec.schema.options().size()), spec.summary});
  }
  scenarios.print(out);

  out << "\nPaper artefacts (lbsim reproduce <name>):\n\n";
  util::TextTable artifacts({"artefact", "summary"});
  for (const std::string& name : artifact_names()) {
    artifacts.add_row({name, artifact_summary(name)});
  }
  artifacts.print(out);
  return 0;
}

int cmd_run(int argc, const char* const* argv, const util::CliArgs& args, std::ostream& out) {
  ScenarioInvocation invocation = parse_scenario_invocation(args);
  for (const std::string& assignment : invocation.extra) {
    apply_override(invocation.raw, assignment);
  }
  EngineOptions engine = extract_engine_options(invocation.raw, args);
  const Config config = invocation.spec->schema.resolve(invocation.raw);
  mc::ScenarioConfig scenario = invocation.spec->build(config);

  // Observability sinks: in-memory buffers the engines fill (every family),
  // flushed to files after the result table. Zero RNG draws, so attaching
  // them leaves every statistic bit-identical.
  const ObsOptions obs_options = parse_obs_options(args);
  obs::TraceBuffer trace_buffer;
  obs::Registry metrics_registry;
  mc::ObsSinks sinks;
  if (!obs_options.trace_path.empty()) sinks.trace = &trace_buffer;
  if (!obs_options.metrics_path.empty()) sinks.metrics = &metrics_registry;
  const auto flush_obs = [&](const RunMetadata& run_meta, std::ostream& os) {
    if (sinks.trace != nullptr) {
      obs::TraceMeta trace_meta;
      trace_meta.scenario = invocation.spec->name;
      trace_meta.seed = run_meta.seed;
      trace_meta.replications = run_meta.replications;
      trace_meta.git_revision = git_revision();
      write_trace_file(obs_options, trace_buffer, trace_meta, os);
    }
    if (sinks.metrics != nullptr) {
      write_metrics_file(obs_options.metrics_path, metrics_registry, run_meta, os);
    }
  };

  if (invocation.spec->testbed) {
    // Emulation family: the testbed engine is the only one with a state plane
    // to degrade, so the family always routes there.
    if (engine.vr != mc::VrMode::kNone || engine.shards != 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "vr",
                        "--vr/--shards belong to the mc engine; scenario '" +
                            invocation.spec->name + "' runs on the testbed engine");
    }
    engine.engine = "testbed";
  }

  if (invocation.spec->steady) {
    // Infinite-horizon family: the steady-state engine is the only one whose
    // semantics (stop at N completions, not drain) are defined for it.
    if (engine.engine != "mc") {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "engine",
                        "scenario '" + invocation.spec->name +
                            "' is infinite-horizon; only the mc (steady-state) engine "
                            "runs it");
    }
    if (engine.vr != mc::VrMode::kNone || engine.shards != 1) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "vr",
                        "--vr/--shards apply to finite-horizon replications; scenario '" +
                            invocation.spec->name + "' is infinite-horizon");
    }
    mc::SteadyConfig steady_config;
    if (engine.replications != 0) steady_config.replications = engine.replications;
    if (engine.seed != 0) steady_config.seed = engine.seed;
    steady_config.threads = engine.threads;
    steady_config.obs = sinks;
    const std::string policy_name = scenario.policy->name();
    const auto steady_start = std::chrono::steady_clock::now();
    const mc::SteadyResult result = mc::run_steady(scenario, steady_config);
    util::TextTable table({"scenario", "policy", "engine", "reps", "tasks",
                           "mean_sojourn_s", "ci95_s", "stderr_s", "p50_s", "p90_s",
                           "p99_s", "warmup", "batches", "lag1", "horizon_s",
                           "mean_queue"});
    table.add_row({invocation.spec->name, policy_name, "mc-steady",
                   std::to_string(steady_config.replications),
                   std::to_string(result.batch.observations),
                   util::format_double(result.mean(), 4),
                   util::format_double(result.ci95(), 4),
                   util::format_double(result.std_error(), 4),
                   util::format_double(result.p50, 4), util::format_double(result.p90, 4),
                   util::format_double(result.p99, 4), std::to_string(result.warmup),
                   std::to_string(result.batch.batches),
                   util::format_double(result.batch.lag1, 3),
                   util::format_double(result.horizon_time, 1),
                   util::format_double(result.mean_queue_length, 3)});
    RunMetadata meta;
    meta.command = joined_command(argc, argv);
    meta.scenario = invocation.spec->name;
    meta.threads = engine.threads;
    meta.seed = steady_config.seed;
    meta.replications = steady_config.replications;
    if (result.batch.correlated) {
      meta.extra.emplace_back("warning",
                              "batch means are lag-1 correlated (|" +
                                  util::format_double(result.batch.lag1, 3) + "| > " +
                                  util::format_double(result.batch.lag1_gate, 3) +
                                  "); widen steady.tasks for an honest CI");
    }
    meta.wall_seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                            std::chrono::steady_clock::now() - steady_start)
                            .count();
    emit(args, meta, table, out);
    flush_obs(meta, out);
    return 0;
  }

  std::vector<std::string> header = {"scenario", "policy", "engine", "reps", "mean_s",
                                     "ci95_s", "stderr_s", "min_s", "max_s", "p50_s",
                                     "p90_s", "p99_s", "mean_failures",
                                     "mean_tasks_moved", "mean_bundles"};
  if (engine.vr != mc::VrMode::kNone) {
    header.insert(header.end(), vr_columns().begin(), vr_columns().end());
  }
  if (engine.engine == "testbed") {
    header.insert(header.end(), {"state_age_mean_s", "state_age_max_s", "state_lost"});
  }
  util::TextTable table(header);
  RunMetadata meta;
  meta.command = joined_command(argc, argv);
  meta.scenario = invocation.spec->name;
  meta.threads = engine.threads;

  const auto start = std::chrono::steady_clock::now();
  if (engine.engine == "mc") {
    mc::McConfig mc_config;
    if (engine.replications != 0) mc_config.replications = engine.replications;
    if (engine.seed != 0) mc_config.seed = engine.seed;
    mc_config.threads = engine.threads;
    mc_config.vr = engine.vr;
    mc_config.cv_pilot = engine.cv_pilot;
    mc_config.shards = engine.shards;
    mc_config.obs = sinks;
    const std::string policy_name = scenario.policy->name();
    const mc::McResult result = mc::run_monte_carlo(scenario, mc_config);
    std::vector<std::string> row = {invocation.spec->name, policy_name, "mc",
                                    std::to_string(mc_config.replications),
                                    util::format_double(result.mean(), 3),
                                    util::format_double(result.ci95(), 3),
                                    util::format_double(result.std_error(), 3),
                                    util::format_double(result.completion.min(), 3),
                                    util::format_double(result.completion.max(), 3),
                                    util::format_double(result.p50, 3),
                                    util::format_double(result.p90, 3),
                                    util::format_double(result.p99, 3),
                                    util::format_double(result.mean_failures, 2),
                                    util::format_double(result.mean_tasks_moved, 2),
                                    util::format_double(result.mean_bundles, 2)};
    if (engine.vr != mc::VrMode::kNone) {
      append_vr_cells(result, row);
      note_vr_metadata(result, meta);
      if (!result.vr.fallback.empty()) {
        out << "note: " << result.vr.fallback << "\n";
      }
    }
    table.add_row(std::move(row));
    meta.seed = mc_config.seed;
    meta.replications = mc_config.replications;
  } else {
    // The testbed emulates its own communication layer and start-up sequence;
    // refuse scenario semantics it cannot honour rather than silently
    // dropping them (mc is the engine for those keys).
    std::string unsupported;
    if (scenario.rebalance_period > 0.0) unsupported = "policy=periodic";
    if (scenario.delay_model != nullptr) {
      unsupported += std::string(unsupported.empty() ? "" : ", ") + "delay.model/delay.shift";
    }
    if (scenario.arrivals.active()) {
      unsupported += std::string(unsupported.empty() ? "" : ", ") + "arrivals.*";
    }
    if (!scenario.schedule.empty()) {
      unsupported += std::string(unsupported.empty() ? "" : ", ") + "schedule";
    }
    if (!scenario.topology.complete()) {
      unsupported += std::string(unsupported.empty() ? "" : ", ") + "topology";
    }
    if (!unsupported.empty()) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "engine",
                        "the testbed engine does not emulate " + unsupported +
                            " for this scenario; use the default mc engine");
    }
    testbed::TestbedConfig tb = testbed::from_scenario(std::move(scenario));
    const std::size_t realizations = engine.replications != 0 ? engine.replications : 60;
    const std::uint64_t seed = engine.seed != 0 ? engine.seed : 0xbed2006;
    const std::string policy_name = tb.policy->name();
    const testbed::ExperimentSummary result =
        testbed::run_experiment(tb, realizations, seed, engine.threads, sinks);
    table.add_row({invocation.spec->name, policy_name, "testbed",
                   std::to_string(realizations), util::format_double(result.mean(), 3),
                   util::format_double(result.ci95(), 3),
                   util::format_double(result.completion.std_error(), 3),
                   util::format_double(result.completion.min(), 3),
                   util::format_double(result.completion.max(), 3), "-", "-", "-",
                   util::format_double(result.mean_failures, 2),
                   util::format_double(result.mean_tasks_moved, 2), "-",
                   util::format_double(result.state_age.mean(), 3),
                   util::format_double(result.state_age.max(), 3),
                   util::format_double(result.mean_state_lost, 1)});
    meta.seed = seed;
    meta.replications = realizations;
  }
  meta.wall_seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  emit(args, meta, table, out);
  flush_obs(meta, out);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv, const util::CliArgs& args,
              std::ostream& out) {
  ScenarioInvocation invocation = parse_scenario_invocation(args);
  std::vector<SweepAxis> axes;
  for (const std::string& assignment : invocation.extra) {
    SweepAxis axis = parse_axis(assignment);
    if (axis.values.size() == 1) {
      // Single-valued "axes" are fixed overrides, not table columns. Reserved
      // mc.* keys land in raw too and are extracted just below.
      invocation.raw.set(axis.key, axis.values[0]);
    } else {
      axes.push_back(std::move(axis));
    }
  }
  if (axes.empty()) {
    throw ConfigError(ConfigError::Kind::kSyntax, "sweep",
                      "no sweep axis given (expected key=v1,v2 or key=lo:hi:step)");
  }

  SweepOptions options;
  const ObsOptions obs_options = parse_obs_options(args);
  if (!obs_options.trace_path.empty()) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "trace",
                      "--trace is per-run; `lbsim sweep` supports --metrics only");
  }
  obs::Registry metrics_registry;
  if (!obs_options.metrics_path.empty()) options.obs.metrics = &metrics_registry;
  EngineOptions engine = extract_engine_options(invocation.raw, args);
  if (engine.engine != "mc" && !invocation.spec->testbed) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "engine",
                      "lbsim sweep drives the MC engine only");
  }
  if (engine.replications != 0) {
    options.replications = engine.replications;
    options.replications_explicit = true;
  }
  if (engine.seed != 0) options.seed = engine.seed;
  options.threads = engine.threads;
  options.vr = engine.vr;
  options.cv_pilot = engine.cv_pilot;
  options.shards = engine.shards;
  options.dry_run = args.get_bool("dry-run", false);
  options.quantiles = args.has("quantiles") && args.get_bool("quantiles", true);
  if (args.has("ecdf")) {
    // Bare --ecdf keeps the default decile grid; --ecdf=K picks the resolution.
    const std::string spec = args.get_string("ecdf", "");
    const long long k = (spec.empty() || spec == "true") ? 10 : parse_int(spec, "ecdf");
    if (k < 2 || k > 1000) {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "ecdf",
                        "--ecdf resolution must be in [2, 1000]");
    }
    options.ecdf_points = static_cast<std::size_t>(k);
  }
  if (const std::string compare = args.get_string("compare", ""); !compare.empty()) {
    if (compare != "theory") {
      throw ConfigError(ConfigError::Kind::kOutOfRange, "compare",
                        "--compare supports 'theory' only");
    }
    options.compare_theory = true;
  }

  SweepResult result = run_sweep(*invocation.spec, invocation.raw, axes, options);
  result.metadata.command = joined_command(argc, argv);
  if (options.dry_run) {
    out << "dry run: " << result.table.rows() << " grid points over " << axes.size()
        << " axes (nothing executed)\n";
  }
  emit(args, result.metadata, result.table, out);
  if (options.obs.metrics != nullptr && !options.dry_run) {
    write_metrics_file(obs_options.metrics_path, metrics_registry, result.metadata, out);
  }
  return 0;
}

int cmd_validate(int argc, const char* const* argv, const util::CliArgs& args,
                 std::ostream& out) {
  ValidationOptions options;
  const auto& positional = args.positional();
  if (positional.size() > 2) {
    throw ConfigError(ConfigError::Kind::kSyntax, "validate",
                      "usage: lbsim validate [family] [--strict]");
  }
  if (positional.size() == 2) options.family = positional[1];
  options.strict = args.has("strict") && args.get_bool("strict", true);
  const long long reps = args.get_int64("reps", 0);
  if (reps < 0) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "reps", "--reps must be >= 1");
  }
  options.replications = static_cast<std::size_t>(reps);
  if (const long long seed = args.get_int64("seed", 0); seed != 0) {
    options.seed = static_cast<std::uint64_t>(seed);
  }
  const int threads = args.get_int("threads", 0);
  if (threads < 0) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "threads", "--threads must be >= 0");
  }
  options.threads = static_cast<unsigned>(threads);
  options.sigma_gate = args.get_double("sigma", 0.0);
  if (options.sigma_gate < 0.0) {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "sigma", "--sigma must be > 0");
  }
  options.ks_slack = args.get_double("ks-slack", options.ks_slack);

  ValidationReport report = run_validation(options);
  report.metadata.command = joined_command(argc, argv);
  emit(args, report.metadata, report.table, out);
  out << "\nvalidate: " << report.checked << " theory-checked, " << report.skipped
      << " past the solver boundary, " << report.failures << " failure(s)\n";
  if (!report.passed()) {
    out << "validate FAILED: the MC engine disagrees with the exact solvers beyond "
           "the statistical gates\n";
    return 1;
  }
  out << "validate passed\n";
  return 0;
}

int cmd_reproduce(int argc, const char* const* argv, const util::CliArgs& args,
                  std::ostream& out) {
  const auto& positional = args.positional();
  if (positional.size() < 2) {
    throw ConfigError(ConfigError::Kind::kSyntax, "artefact",
                      "usage: lbsim reproduce <table1|table2|table3|fig1..fig5>");
  }
  ArtifactOptions options;
  options.quick = args.has("quick") && args.get_bool("quick", true);
  options.golden_only = args.has("golden-only") && args.get_bool("golden-only", true);
  options.mc_reps = static_cast<std::size_t>(args.get_int64("reps", 0));
  options.realizations = static_cast<std::size_t>(args.get_int64("realizations", 0));
  options.seed = static_cast<std::uint64_t>(args.get_int64("seed", 0));
  options.format = args.get_string("format", "table");
  if (options.format != "table" && options.format != "csv" && options.format != "json") {
    throw ConfigError(ConfigError::Kind::kOutOfRange, "format",
                      "--format must be table, csv, or json");
  }

  const std::string path = args.get_string("out", "");
  if (!path.empty()) {
    // A file target defaults to CSV, but an explicit --format=table is kept.
    if (!args.has("format")) options.format = "csv";
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write to '" + path + "'");
    (void)reproduce_artifact(positional[1], options, file);
    out << "wrote " << options.format << " to " << path << "\n";
    return 0;
  }
  (void)reproduce_artifact(positional[1], options, out);
  (void)argc;
  (void)argv;
  return 0;
}

/// Compares current bench rows against a committed baseline: any row whose
/// throughput fell by more than `max_regression` (fraction) fails, as does a
/// baseline row that disappeared. Returns the process exit code (0/1).
int check_against_baseline(const std::string& baseline_path, const util::TextTable& current,
                           double max_regression, std::ostream& out) {
  std::ifstream file(baseline_path);
  if (!file) throw std::runtime_error("cannot read baseline '" + baseline_path + "'");
  const std::vector<BenchRow> baseline = parse_bench_json(file);

  const auto current_throughput = [&](const std::string& name) -> double {
    for (std::size_t r = 0; r < current.rows(); ++r) {
      if (current.row(r)[0] == name) return std::stod(current.row(r)[3]);
    }
    return -1.0;
  };

  util::TextTable report({"bench", "baseline_per_s", "current_per_s", "ratio", "verdict"});
  int failures = 0;
  for (const BenchRow& base : baseline) {
    const double now = current_throughput(base.name);
    if (now < 0.0) {
      report.add_row({base.name, util::format_double(base.throughput, 1), "-", "-",
                      "MISSING"});
      ++failures;
      continue;
    }
    const double ratio = base.throughput > 0.0 ? now / base.throughput : 1.0;
    const bool regressed = ratio < 1.0 - max_regression;
    if (regressed) ++failures;
    report.add_row({base.name, util::format_double(base.throughput, 1),
                    util::format_double(now, 1), util::format_double(ratio, 3),
                    regressed ? "REGRESSED" : "ok"});
  }
  out << "\nperf check vs " << baseline_path << " (fail below "
      << util::format_double((1.0 - max_regression) * 100.0, 0) << "% of baseline):\n\n";
  report.print(out);
  if (failures != 0) {
    out << "\nperf check FAILED: " << failures << " bench(es) regressed or missing\n";
    return 1;
  }
  out << "\nperf check passed\n";
  return 0;
}

int cmd_perf(int argc, const char* const* argv, const util::CliArgs& args, std::ostream& out) {
  const bool quick = args.has("quick");
  const bool profile = args.has("profile");

  // --profile: the engines' per-phase self-profiling (setup / event loop /
  // stats fold), printed as a separate table so the bench columns — and the
  // parse_bench_json baseline format — stay fixed. The breakdown is the last
  // timed run of each bench (best-of-k reruns would sum phases across runs).
  util::TextTable profile_table({"bench", "setup_ms", "loop_ms", "fold_ms", "reps"});
  obs::PhaseProfile bench_profile;
  const auto profile_sinks = [&] {
    mc::ObsSinks sinks;
    if (profile) sinks.profile = &bench_profile;
    return sinks;
  };
  const auto note_profile = [&](const std::string& bench) {
    if (!profile) return;
    profile_table.add_row({bench, util::format_double(bench_profile.setup_s * 1000.0, 2),
                           util::format_double(bench_profile.loop_s * 1000.0, 2),
                           util::format_double(bench_profile.fold_s * 1000.0, 2),
                           std::to_string(bench_profile.reps)});
  };

  const auto time_once_ms = [](const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  // Best-of-k timing: single-digit-millisecond rows are far too noisy for a
  // 30% regression gate, so every bench reports its fastest of `repeats` runs
  // (the run least disturbed by the OS).
  const auto time_ms = [&time_once_ms](int repeats, const auto& fn) {
    double best = time_once_ms(fn);
    for (int i = 1; i < repeats; ++i) best = std::min(best, time_once_ms(fn));
    return best;
  };

  util::TextTable table({"bench", "wall_ms", "work", "throughput_per_s"});
  RunMetadata meta;
  // The real work count behind every row ("replications.<bench>"): a perf
  // artefact must not claim a single bogus replication count for benches
  // that each run a different number.
  const auto note_reps = [&meta](const std::string& bench, std::size_t reps) {
    meta.extra.emplace_back("replications." + bench, std::to_string(reps));
  };
  const auto start = std::chrono::steady_clock::now();

  // Per-row noise tolerances baked into the baseline artefact
  // (scripts/compare_bench.py reads "tolerance.<bench>" metadata): rows whose
  // best-of-k wall time is a couple of milliseconds jitter far beyond the
  // 30% default gate, and perf_mc_vr folds a stochastic variance-ratio
  // estimate into its throughput.
  meta.extra.emplace_back("tolerance.perf_solver", "0.60");
  meta.extra.emplace_back("tolerance.perf_mc", "0.45");
  meta.extra.emplace_back("tolerance.perf_des", "0.60");
  meta.extra.emplace_back("tolerance.perf_mc_vr", "0.45");
  meta.extra.emplace_back("tolerance.perf_mc_steady", "0.45");
  meta.extra.emplace_back("tolerance.perf_testbed_lossy", "0.45");
  meta.extra.emplace_back("tolerance.perf_mc_traced", "0.45");

  // perf_mc_traced reports its overhead against perf_mc_n16's wall time.
  double untraced_n16_ms = 0.0;

  // perf_solver: one cold exact-solver evaluation at the pinned operating point.
  {
    double result = 0.0;
    const double ms = time_ms(7, [&] {
      markov::TwoNodeMeanSolver solver(markov::ipdps2006_params());
      result = solver.lbp1_mean(100, 60, 0, 0.35);
    });
    table.add_row({"perf_solver", util::format_double(ms, 2),
                   "lbp1_mean(100,60,K=0.35) = " + util::format_double(result, 2) + " s",
                   util::format_double(1000.0 / ms, 2)});
    note_reps("perf_solver", 1);
  }

  // perf_mc: the parallel Monte-Carlo engine on the paper scenario.
  {
    const std::size_t reps = quick ? 100 : 500;
    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.obs = profile_sinks();
    double mean = 0.0;
    const double ms = time_ms(3, [&] {
      bench_profile = {};
      mc::ScenarioConfig scenario =
          mc::make_two_node_scenario(markov::ipdps2006_params(), 100, 60,
                                     std::make_unique<core::Lbp1Policy>(0, 0.35));
      mean = mc::run_monte_carlo(scenario, mc_config).mean();
    });
    table.add_row({"perf_mc", util::format_double(ms, 2),
                   std::to_string(reps) + " reps, mean " + util::format_double(mean, 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_mc", reps);
    note_profile("perf_mc");
  }

  // perf_des: sequential discrete-event replications (single-threaded hot path).
  {
    const std::size_t reps = quick ? 20 : 100;
    double total = 0.0;
    const double ms = time_ms(3, [&] {
      total = 0.0;  // the lambda runs best-of-k times; only one run's sum counts
      mc::ScenarioConfig scenario =
          mc::make_two_node_scenario(markov::ipdps2006_params(), 100, 60,
                                     std::make_unique<core::Lbp2Policy>(1.0));
      des::Simulator sim;
      for (std::size_t r = 0; r < reps; ++r) {
        total += mc::run_scenario(scenario, 0x5eed2006, r, nullptr, sim).completion_time;
      }
    });
    table.add_row({"perf_des", util::format_double(ms, 2),
                   std::to_string(reps) + " sequential runs, mean " +
                       util::format_double(total / static_cast<double>(reps), 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_des", reps);
  }

  // perf_mc_n{16,32,64}: the many-node-churn registry family at scale — the
  // regime where the exact solver is unavailable and MC throughput is the
  // product's speed limit.
  for (const std::size_t nodes : {std::size_t{16}, std::size_t{32}, std::size_t{64}}) {
    const std::size_t reps = quick ? 50 : 500;
    const ScenarioSpec& spec = find_scenario("many-node-churn");
    RawConfig raw;
    raw.set("nodes", std::to_string(nodes));
    mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));
    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.obs = profile_sinks();
    double mean = 0.0;
    const int repeats = nodes <= 16 ? 3 : 2;
    const double ms = time_ms(repeats, [&] {
      bench_profile = {};
      mean = mc::run_monte_carlo(scenario, mc_config).mean();
    });
    if (nodes == 16) untraced_n16_ms = ms;
    const std::string name = "perf_mc_n" + std::to_string(nodes);
    table.add_row({name, util::format_double(ms, 2),
                   std::to_string(reps) + " reps x " + std::to_string(nodes) +
                       " nodes, mean " + util::format_double(mean, 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps(name, reps);
    note_profile(name);
  }

  // perf_mc_traced: perf_mc_n16 with every observability sink attached
  // (trace + metrics + profile, into in-memory buffers). The row pins the
  // whole-stack observability overhead: "overhead.perf_mc_traced" metadata is
  // the fractional wall-time cost over the untraced sibling, budgeted at
  // <= 15% (scripts/compare_bench.py gates the throughput like any row).
  {
    const std::size_t reps = quick ? 50 : 500;
    const ScenarioSpec& spec = find_scenario("many-node-churn");
    RawConfig raw;
    raw.set("nodes", "16");
    mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));
    mc::McConfig mc_config;
    mc_config.replications = reps;
    obs::TraceBuffer trace_sink;
    obs::Registry metrics_sink;
    obs::PhaseProfile profile_sink;
    mc_config.obs.trace = &trace_sink;
    mc_config.obs.metrics = &metrics_sink;
    mc_config.obs.profile = &profile_sink;
    double mean = 0.0;
    const double ms = time_ms(3, [&] {
      trace_sink.clear();
      metrics_sink = obs::Registry{};
      profile_sink = {};
      mean = mc::run_monte_carlo(scenario, mc_config).mean();
    });
    const double overhead = untraced_n16_ms > 0.0 ? ms / untraced_n16_ms - 1.0 : 0.0;
    table.add_row({"perf_mc_traced", util::format_double(ms, 2),
                   std::to_string(reps) + " reps x 16 nodes, " +
                       std::to_string(trace_sink.size()) + " records, overhead " +
                       util::format_double(overhead * 100.0, 1) + "%",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_mc_traced", reps);
    meta.extra.emplace_back("overhead.perf_mc_traced", util::format_double(overhead, 3));
    if (profile) {
      bench_profile = profile_sink;
      note_profile("perf_mc_traced");
    }
  }

  // perf_mc_n256: the sharded-queue scaling witness — many-node-churn at
  // n=256 with an 8-way event-queue shard split. Shard routing keys on the
  // node id, so per-shard heaps stay small (and compaction local) while pop
  // order — and hence every statistic — is bit-identical to one heap.
  {
    const std::size_t reps = quick ? 20 : 100;
    const ScenarioSpec& spec = find_scenario("many-node-churn");
    RawConfig raw;
    raw.set("nodes", "256");
    mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));
    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.shards = 8;
    mc_config.obs = profile_sinks();
    double mean = 0.0;
    const double ms = time_ms(2, [&] {
      bench_profile = {};
      mean = mc::run_monte_carlo(scenario, mc_config).mean();
    });
    table.add_row({"perf_mc_n256", util::format_double(ms, 2),
                   std::to_string(reps) + " reps x 256 nodes, 8 queue shards, mean " +
                       util::format_double(mean, 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_mc_n256", reps);
    note_profile("perf_mc_n256");
  }

  // perf_mc_vr: effective throughput of the variance-reduced estimator —
  // measured replications/s times the equal-budget variance ratio
  // Var(plain)/Var(adjusted). The ratio is the factor by which the adjusted
  // estimator stretches the same wall-clock budget, so this row regresses if
  // either the engine slows down or the estimator's variance contraction
  // degrades (e.g. a control drifting out of correlation), while raw-speed
  // rows above stay blind to the latter. The family is churn-storm — the
  // theory-mappable two-node system under accelerated churn, where mirrored
  // pairs cancel most of the service-draw noise (ratio ~2.2-2.5). Antithetic
  // only: pairs cost nothing per replication, so the whole ratio is net gain,
  // whereas the control variate's surrogate run roughly doubles per-rep cost
  // for little extra contraction on this family.
  {
    const std::size_t reps = quick ? 200 : 1000;
    const ScenarioSpec& spec = find_scenario("churn-storm");
    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.vr = mc::VrMode::kAntithetic;
    mc_config.obs = profile_sinks();
    mc::McVrReport vr;
    const double ms = time_ms(3, [&] {
      bench_profile = {};
      mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(RawConfig{}));
      vr = mc::run_monte_carlo(scenario, mc_config).vr;
    });
    const double effective = reps * 1000.0 / ms * vr.variance_ratio;
    table.add_row({"perf_mc_vr", util::format_double(ms, 2),
                   std::to_string(reps) + " reps vr=antithetic, var ratio " +
                       util::format_double(vr.variance_ratio, 2) + ", adj mean " +
                       util::format_double(vr.mean, 2) + " s",
                   util::format_double(effective, 1)});
    note_reps("perf_mc_vr", reps);
    note_profile("perf_mc_vr");
    meta.extra.emplace_back("variance_ratio.perf_mc_vr",
                            util::format_double(vr.variance_ratio, 3));
  }

  // perf_mc_env: the environment-modulated hot path (correlated-churn at
  // n=16) — guards the env subsystem's per-event cost (hazard re-arms, CTMC
  // transitions) against allocation/regression creep, next to its unmodulated
  // perf_mc_n16 sibling.
  {
    const std::size_t reps = quick ? 50 : 500;
    const ScenarioSpec& spec = find_scenario("correlated-churn");
    RawConfig raw;
    raw.set("nodes", "16");
    // Pinned to perf_mc_n16's exact workloads/rates with a mild, brisk storm:
    // the two rows then differ only in the modulation machinery (CTMC
    // transitions, hazard re-arms, the extra RNG stream), not in how much
    // churn the storm physically causes.
    raw.set("workloads", "120,20,60,40");
    raw.set("lambda_r", "0.25");
    raw.set("env.storm.mult", "2");
    raw.set("env.storm.on", "0.1");
    raw.set("env.storm.off", "1.5");
    mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));
    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.obs = profile_sinks();
    double mean = 0.0;
    const double ms = time_ms(3, [&] {
      bench_profile = {};
      mean = mc::run_monte_carlo(scenario, mc_config).mean();
    });
    table.add_row({"perf_mc_env", util::format_double(ms, 2),
                   std::to_string(reps) + " reps x 16 nodes correlated churn, mean " +
                       util::format_double(mean, 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_mc_env", reps);
    note_profile("perf_mc_env");
  }

  // perf_mc_graph: the topology-restricted hot path (graph-rr at n=32 with
  // random-probe rounds) — guards the neighbourhood machinery's per-round
  // cost (adjacency checks, neighbour iteration, the policy RNG stream) next
  // to its unrestricted perf_mc_n32 sibling.
  {
    const std::size_t reps = quick ? 50 : 500;
    const ScenarioSpec& spec = find_scenario("graph-rr");
    RawConfig raw;
    raw.set("workloads", "120,20,60,40");
    mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));
    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.obs = profile_sinks();
    double mean = 0.0;
    const double ms = time_ms(2, [&] {
      bench_profile = {};
      mean = mc::run_monte_carlo(scenario, mc_config).mean();
    });
    table.add_row({"perf_mc_graph", util::format_double(ms, 2),
                   std::to_string(reps) + " reps x 32 nodes random-regular probe, mean " +
                       util::format_double(mean, 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_mc_graph", reps);
    note_profile("perf_mc_graph");
  }

  // perf_mc_steady: the infinite-horizon engine on the open-steady defaults —
  // guards the per-completion cost of the open-system hot path (unbounded
  // arrival stream, per-task latency records, MSER-5 + batch-means analysis),
  // which has no finite-horizon sibling.
  {
    const std::size_t tasks = quick ? 5000 : 20000;
    const ScenarioSpec& spec = find_scenario("open-steady");
    RawConfig raw;
    raw.set("steady.tasks", std::to_string(tasks));
    mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));
    mc::SteadyConfig steady_config;
    steady_config.seed = 0x5eed2006;
    steady_config.obs = profile_sinks();
    double mean = 0.0;
    const double ms = time_ms(3, [&] {
      bench_profile = {};
      mean = mc::run_steady(scenario, steady_config).mean();
    });
    table.add_row({"perf_mc_steady", util::format_double(ms, 2),
                   std::to_string(tasks) + " completions open-steady, mean sojourn " +
                       util::format_double(mean, 2) + " s",
                   util::format_double(tasks * 1000.0 / ms, 1)});
    note_reps("perf_mc_steady", 1);
    note_profile("perf_mc_steady");
  }

  // perf_testbed_lossy: the emulated testbed with a bursty 2-state channel on
  // the state plane — guards the per-round broadcast cost (channel stepping,
  // shared-delivery captures, staleness accounting) of the lossy-exchange hot
  // path, which no abstract-MC row exercises.
  {
    const std::size_t reps = quick ? 20 : 60;
    const ScenarioSpec& spec = find_scenario("lossy-exchange");
    RawConfig raw;
    raw.set("channel.states", "2");
    testbed::TestbedConfig tb = testbed::from_scenario(spec.build(spec.schema.resolve(raw)));
    double mean = 0.0;
    const double ms = time_ms(3, [&] {
      bench_profile = {};
      mean = testbed::run_experiment(tb, reps, 0xbed2006, /*threads=*/0, profile_sinks())
                 .mean();
    });
    table.add_row({"perf_testbed_lossy", util::format_double(ms, 2),
                   std::to_string(reps) + " realizations, 2-state channel, mean " +
                       util::format_double(mean, 2) + " s",
                   util::format_double(reps * 1000.0 / ms, 1)});
    note_reps("perf_testbed_lossy", reps);
    note_profile("perf_testbed_lossy");
  }

  meta.command = joined_command(argc, argv);
  meta.scenario = "perf-baseline";
  meta.seed = 0x5eed2006;
  meta.wall_seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  table.print(out);
  if (profile) {
    out << "\nper-phase breakdown (engine self-profiling, last timed run):\n\n";
    profile_table.print(out);
  }
  const std::string path = args.get_string("out", "");
  if (!path.empty()) {
    // git_revision() is the configure-time snapshot — the same value stamped
    // into the artefact's metadata — so this warns exactly when the written
    // file would claim a dirty revision.
    if (git_revision().find("-dirty") != std::string::npos) {
      out << "warning: baseline will be stamped with a dirty configure-time revision (git "
          << git_revision()
          << "); commit, re-run cmake, and rebuild before committing this baseline\n";
    }
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write to '" + path + "'");
    write_json(file, meta, table);
    out << "wrote json to " << path << "\n";
  }

  // --check[=FILE]: compare against a committed baseline and fail loudly
  // (nonzero exit) on >30% throughput regression, so CI cannot silently
  // `cat` its way past a slowdown.
  if (args.has("check")) {
    std::string baseline = args.get_string("check", "");
    if (baseline.empty() || baseline == "true") baseline = "BENCH_baseline.json";
    const double max_regression = args.get_double("max-regression", 0.30);
    return check_against_baseline(baseline, table, max_regression, out);
  }
  return 0;
}

}  // namespace

int run_lbsim(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  try {
    const util::CliArgs args(argc, argv);
    if (const std::string level = args.get_string("log-level", ""); !level.empty()) {
      util::set_log_level(util::parse_log_level(level));
    }
    if (args.positional().empty() || args.has("help")) {
      out << kUsage;
      return args.positional().empty() && !args.has("help") ? 2 : 0;
    }
    const std::string& command = args.positional()[0];
    if (command == "list") return cmd_list(args, out);
    if (command == "run") return cmd_run(argc, argv, args, out);
    if (command == "sweep") return cmd_sweep(argc, argv, args, out);
    if (command == "validate") return cmd_validate(argc, argv, args, out);
    if (command == "reproduce") return cmd_reproduce(argc, argv, args, out);
    if (command == "perf") return cmd_perf(argc, argv, args, out);
    err << "lbsim: unknown command '" << command << "'\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "lbsim: error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace lbsim::cli
