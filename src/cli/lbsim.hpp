#pragma once
/// \file
/// The `lbsim` command-line entry point, exposed as a library function so the
/// test suites can drive every subcommand in-process.
///
/// Subcommands:
///   lbsim list [scenario]          registered scenarios / one scenario's keys
///   lbsim run <scenario> [k=v...]  one configuration through the MC engine
///                                  (or --engine=testbed)
///   lbsim sweep <scenario> [axes]  cartesian sweep (key=v1,v2 / key=lo:hi:step)
///   lbsim reproduce <artefact>     regenerate a paper table/figure
///   lbsim perf                     timing baseline (perf_des/perf_mc/perf_solver)

#include <iosfwd>

namespace lbsim::cli {

/// Runs one lbsim invocation; returns the process exit code (0 success, 2 on
/// usage/config errors). Writes results to `out` and diagnostics to `err`;
/// never throws.
int run_lbsim(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace lbsim::cli
