#include "env/schedule.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"
#include "util/math.hpp"

namespace lbsim::env {
namespace {

constexpr double kForever = std::numeric_limits<double>::infinity();

[[noreturn]] void parse_fail(const std::string& what) {
  throw std::invalid_argument("schedule: " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (true) {
    const std::string::size_type pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(trim(text.substr(start)));
      return out;
    }
    out.push_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
}

double parse_time(const std::string& text, const std::string& token) {
  const std::optional<double> value = util::try_parse_double(text);
  if (!value) parse_fail("'" + text + "' in token '" + token + "' is not a time");
  if (*value < 0.0) parse_fail("negative time in token '" + token + "'");
  return *value;
}

/// One node's down intervals, accumulated token by token.
struct Interval {
  double begin;
  double end;  // kForever while the 'down@' is still open
};

}  // namespace

bool Schedule::empty() const noexcept {
  for (const auto& timeline : per_node) {
    if (!timeline.empty()) return false;
  }
  return true;
}

Schedule parse_schedule(const std::string& text) {
  Schedule schedule;
  const std::string body = trim(text);
  if (body.empty()) return schedule;

  for (const std::string& clause : split(body, ';')) {
    if (clause.empty()) parse_fail("empty clause (stray ';'?)");
    const std::string::size_type colon = clause.find(':');
    if (colon == std::string::npos || colon == 0) {
      parse_fail("clause '" + clause + "' is not of the form node:tokens");
    }
    errno = 0;
    char* end = nullptr;
    const std::string node_text = trim(clause.substr(0, colon));
    const long node = std::strtol(node_text.c_str(), &end, 10);
    if (node_text.empty() || end != node_text.c_str() + node_text.size() || node < 0 ||
        errno == ERANGE) {
      parse_fail("'" + node_text + "' is not a node id");
    }

    std::vector<Interval> intervals;
    for (const std::string& token : split(clause.substr(colon + 1), ',')) {
      const bool open_pending = !intervals.empty() && intervals.back().end == kForever;
      if (token.rfind("down@", 0) == 0) {
        if (open_pending) {
          parse_fail("token '" + token + "' while the previous down@ is still open");
        }
        const std::string times = token.substr(5);
        const std::string::size_type dash = times.find('-');
        Interval interval{};
        if (dash == std::string::npos) {
          interval = {parse_time(times, token), kForever};
        } else {
          interval = {parse_time(times.substr(0, dash), token),
                      parse_time(times.substr(dash + 1), token)};
          if (interval.end <= interval.begin) {
            parse_fail("interval '" + token + "' needs end > begin");
          }
        }
        if (!intervals.empty() && interval.begin < intervals.back().end) {
          parse_fail("token '" + token + "' overlaps the preceding interval");
        }
        intervals.push_back(interval);
      } else if (token.rfind("up@", 0) == 0) {
        const double at = parse_time(token.substr(3), token);
        if (open_pending) {
          if (at <= intervals.back().begin) {
            parse_fail("token '" + token + "' does not follow its down@ instant");
          }
          intervals.back().end = at;
        } else if (intervals.empty() || at != intervals.back().end) {
          // A redundant up@ exactly at a closed interval's end is tolerated
          // (the ISSUE grammar's `down@10-30,up@30` idiom); anything else has
          // nothing to recover.
          parse_fail("token '" + token + "' has no open down@ interval to close");
        }
      } else {
        parse_fail("unknown token '" + token + "' (expected down@A[-B] or up@T)");
      }
    }
    if (intervals.empty()) parse_fail("clause for node " + node_text + " has no tokens");

    const auto node_index = static_cast<std::size_t>(node);
    if (schedule.per_node.size() <= node_index) schedule.per_node.resize(node_index + 1);
    if (!schedule.per_node[node_index].empty()) {
      parse_fail("node " + node_text + " appears in more than one clause");
    }
    std::vector<Schedule::Transition>& timeline = schedule.per_node[node_index];
    for (const Interval& interval : intervals) {
      timeline.push_back({interval.begin, /*down=*/true});
      if (interval.end != kForever) timeline.push_back({interval.end, /*down=*/false});
    }
  }
  return schedule;
}

void validate(const Schedule& schedule, std::size_t node_count) {
  LBSIM_REQUIRE(schedule.per_node.size() <= node_count,
                "schedule names node " << schedule.per_node.size() - 1
                                       << " but the scenario has " << node_count
                                       << " nodes");
}

ScheduleDriver::ScheduleDriver(des::Simulator& sim,
                               std::vector<Schedule::Transition> timeline)
    : sim_(sim), timeline_(std::move(timeline)) {}

void ScheduleDriver::start() {
  LBSIM_REQUIRE(handler_ != nullptr, "schedule driver needs a handler before start()");
  // A t = 0 failure is applied synchronously, exactly like
  // FailureProcess::start(initially_down = true).
  while (next_ < timeline_.size() && timeline_[next_].time <= sim_.now()) {
    handler_(timeline_[next_].down);
    ++next_;
  }
  arm_next();
}

void ScheduleDriver::arm_next() {
  if (next_ >= timeline_.size()) return;
  sim_.schedule_at(timeline_[next_].time, [this] { fire(); });
}

void ScheduleDriver::fire() {
  handler_(timeline_[next_].down);
  ++next_;
  arm_next();
}

}  // namespace lbsim::env
