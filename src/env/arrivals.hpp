#pragma once
/// \file
/// External task arrivals for open-system scenarios (the paper's Section 5
/// "dynamic workloads" future work): a finite stream of task bundles injected
/// into the running scenario by a Poisson process, or by a Markov-modulated
/// Poisson process (MMPP) tied to the shared env::Environment so arrival
/// bursts and failure storms can be driven by the same common shock.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "env/environment.hpp"
#include "sim/simulator.hpp"
#include "stochastic/rng.hpp"

namespace lbsim::env {

/// Declarative description of the arrival stream. Plain value type; the
/// default (`process == kNone`) is the paper's closed system.
struct ArrivalSpec {
  enum class Process {
    kNone,     ///< closed system, no external arrivals
    kPoisson,  ///< constant-rate Poisson arrival epochs
    kMmpp,     ///< rate selected by the environment state (needs an Environment)
  };
  enum class BatchLaw {
    kFixed,      ///< every arrival carries exactly `batch` tasks
    kGeometric,  ///< size ~ Geometric on {1, 2, ...} with mean `batch`
  };

  Process process = Process::kNone;
  /// Poisson rate (arrivals per second); ignored by kMmpp.
  double rate = 0.0;
  /// MMPP per-environment-state rates (size = environment states); a state may
  /// be 0 (no arrivals while it lasts).
  std::vector<double> state_rates;
  /// Total arrival epochs per replication. Finite so completion time stays
  /// well-defined; 0 disables the stream like kNone.
  std::size_t count = 0;
  /// Infinite-horizon stream: epochs never run out and `finished()` never
  /// turns true. Only the steady-state engine accepts such a spec (a finite
  /// replication could not declare completion); mutually exclusive with count.
  bool unbounded = false;
  /// Tasks per arrival epoch (the mean when batch_law is kGeometric).
  std::size_t batch = 1;
  BatchLaw batch_law = BatchLaw::kFixed;
  /// Node receiving each bundle; -1 draws a node uniformly per epoch.
  int target = 0;
  /// Re-run the policy's initial balancing episode after every arrival
  /// (the "LB episode at every external arrival" variant of Section 5).
  bool rebalance = false;

  [[nodiscard]] bool active() const noexcept {
    return process != Process::kNone && (count > 0 || unbounded);
  }
};

/// Checks the spec against the system it will drive. `environment` may be
/// null; kMmpp requires it and state_rates sized to its state count. Throws
/// via LBSIM_REQUIRE.
void validate(const ArrivalSpec& spec, std::size_t node_count,
              const EnvironmentSpec* environment);

/// Draws one batch size according to spec.batch / spec.batch_law.
[[nodiscard]] std::size_t sample_batch_size(const ArrivalSpec& spec, stoch::RngStream& rng);

/// Runtime driver: samples inter-arrival gaps from its private RNG stream and
/// hands each epoch to the scenario through the sink. For kMmpp the scenario
/// forwards environment transitions to on_environment_transition(), which
/// re-arms the pending gap at the new state's rate — exact modulation by the
/// memorylessness of the exponential gap.
class ArrivalProcess {
 public:
  /// One arrival epoch: inject `tasks` onto `node`; `last` marks the final
  /// epoch of the stream (completion may be declared once it is processed).
  using Sink = std::function<void(std::size_t node, std::size_t tasks, bool last)>;

  /// `environment` is required (and must outlive this) iff spec is kMmpp.
  ArrivalProcess(des::Simulator& sim, ArrivalSpec spec, std::size_t node_count,
                 const Environment* environment, stoch::RngStream& rng);

  ArrivalProcess(const ArrivalProcess&) = delete;
  ArrivalProcess& operator=(const ArrivalProcess&) = delete;

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Arms the first gap (no-op when the spec is inactive).
  void start();

  /// Re-arms the pending gap at the (possibly changed) current rate.
  void on_environment_transition();

  /// Epochs fired so far.
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  /// Tasks injected so far.
  [[nodiscard]] std::uint64_t tasks_injected() const noexcept { return tasks_; }
  /// True once every epoch of the stream has fired (or the spec is inactive).
  /// An unbounded stream never finishes.
  [[nodiscard]] bool finished() const noexcept {
    if (spec_.unbounded) return false;
    return epochs_ >= spec_.count || !spec_.active();
  }

 private:
  [[nodiscard]] double current_rate() const;
  void arm();
  void fire();

  des::Simulator& sim_;
  ArrivalSpec spec_;
  std::size_t node_count_;
  const Environment* environment_;
  stoch::RngStream& rng_;
  Sink sink_;
  des::EventId pending_;
  bool armed_ = false;
  std::uint64_t epochs_ = 0;
  std::uint64_t tasks_ = 0;
};

}  // namespace lbsim::env
