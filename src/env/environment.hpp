#pragma once
/// \file
/// System-wide stochastic environment: a K-state continuous-time Markov chain
/// whose current state modulates the rest of the model (every node's failure
/// hazard, MMPP arrival rates). This is the common-shock extension of the
/// paper's independence assumption: failures stay conditionally independent
/// given the environment path, but the shared storm state correlates them.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "stochastic/rng.hpp"

namespace lbsim::env {

/// Declarative description of the environment CTMC. `states == 0` means "no
/// environment configured" (the paper's independent-churn model); specs are
/// plain values so ScenarioConfig stays copy-cloneable.
struct EnvironmentSpec {
  /// Number of CTMC states K; 0 disables the environment entirely.
  std::size_t states = 0;
  /// Per-state multiplier applied to every node's failure hazard (size K).
  /// 1.0 everywhere reproduces independent churn exactly in distribution.
  std::vector<double> failure_mult;
  /// Row-major K x K generator: entry [i*K + j] (i != j) is the transition
  /// rate i -> j. Diagonal entries are ignored (recomputed as the negative
  /// row sum); a row of zeros makes the state absorbing.
  std::vector<double> generator;
  /// State occupied at t = 0.
  std::size_t initial_state = 0;

  [[nodiscard]] bool enabled() const noexcept { return states > 0; }
  /// Transition rate `from -> to` (off-diagonal generator entry).
  [[nodiscard]] double rate(std::size_t from, std::size_t to) const {
    return generator[from * states + to];
  }
  /// Total exit rate of `state` (negative diagonal of the generator).
  [[nodiscard]] double exit_rate(std::size_t state) const;
};

/// Checks internal consistency (sizes, nonnegative rates, positive
/// multipliers, initial state in range). Throws via LBSIM_REQUIRE.
void validate(const EnvironmentSpec& spec);

/// The canonical two-state calm/storm spec: state 0 (calm) has multiplier 1,
/// state 1 (storm) multiplies every failure hazard by `storm_mult`; the chain
/// enters the storm at rate `storm_on` and leaves it at rate `storm_off`.
[[nodiscard]] EnvironmentSpec make_calm_storm(double storm_mult, double storm_on,
                                              double storm_off);

/// Runtime driver: holds the current state, samples exponential holding times
/// and jump targets from its private RNG stream, and notifies one listener on
/// every transition (the scenario re-arms failure processes and MMPP arrivals
/// there). Transitions are rare relative to task events, so the listener is a
/// std::function; the per-transition timer callback captures only `this` and
/// stays inside the event pool's inline buffer.
class Environment {
 public:
  /// Called after the state change has been applied (state() == to).
  using TransitionListener = std::function<void(std::size_t from, std::size_t to)>;

  /// `spec` must validate; `rng` must outlive the environment.
  Environment(des::Simulator& sim, EnvironmentSpec spec, stoch::RngStream& rng);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Arms the first transition out of the initial state (no-op if absorbing).
  void start();

  /// Stops scheduling further transitions (pending timer cancelled).
  void stop();

  [[nodiscard]] std::size_t state() const noexcept { return state_; }
  [[nodiscard]] const EnvironmentSpec& spec() const noexcept { return spec_; }
  /// Failure-hazard multiplier of the current state.
  [[nodiscard]] double failure_multiplier() const {
    return spec_.failure_mult[state_];
  }
  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }

  void set_transition_listener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

  /// Optional structured event sink: every CTMC jump is recorded as
  /// kEnvTransition (node = from state, peer = to state) before the listener
  /// runs. Consumes no RNG draws; pass nullptr to stop.
  void set_event_trace(obs::TraceBuffer* trace) noexcept { event_trace_ = trace; }

 private:
  void arm();
  void fire();

  des::Simulator& sim_;
  EnvironmentSpec spec_;
  stoch::RngStream& rng_;
  std::size_t state_;
  des::EventId pending_;
  bool running_ = false;
  std::uint64_t transitions_ = 0;
  TransitionListener listener_;
  obs::TraceBuffer* event_trace_ = nullptr;
};

}  // namespace lbsim::env
