#include "env/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace lbsim::env {

void validate(const ArrivalSpec& spec, std::size_t node_count,
              const EnvironmentSpec* environment) {
  if (!spec.active()) return;
  LBSIM_REQUIRE(!(spec.unbounded && spec.count > 0),
                "arrival stream cannot be both unbounded and count-limited");
  LBSIM_REQUIRE(spec.batch >= 1, "arrival batch size must be >= 1");
  LBSIM_REQUIRE(spec.target >= -1 && spec.target < static_cast<int>(node_count),
                "arrival target " << spec.target << " out of range for " << node_count
                                  << " nodes (-1 = uniform random)");
  if (spec.process == ArrivalSpec::Process::kPoisson) {
    LBSIM_REQUIRE(spec.rate > 0.0, "Poisson arrivals need rate > 0");
  } else {
    LBSIM_REQUIRE(environment != nullptr && environment->enabled(),
                  "MMPP arrivals need an environment");
    LBSIM_REQUIRE(spec.state_rates.size() == environment->states,
                  "MMPP has " << spec.state_rates.size() << " rates for "
                              << environment->states << " environment states");
    double max_rate = 0.0;
    for (const double rate : spec.state_rates) {
      LBSIM_REQUIRE(rate >= 0.0, "MMPP state rate " << rate << " is negative");
      max_rate = std::max(max_rate, rate);
    }
    LBSIM_REQUIRE(max_rate > 0.0, "MMPP arrivals need a state with rate > 0");
  }
}

std::size_t sample_batch_size(const ArrivalSpec& spec, stoch::RngStream& rng) {
  if (spec.batch_law == ArrivalSpec::BatchLaw::kFixed || spec.batch <= 1) {
    return spec.batch;
  }
  // Geometric on {1, 2, ...} with mean b: success probability p = 1/b,
  // inverted from one uniform draw. log1p(-p) < 0 strictly since p in (0, 1).
  const double p = 1.0 / static_cast<double>(spec.batch);
  const double u = rng.uniform01();
  const double k = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
  return static_cast<std::size_t>(std::max(1.0, k));
}

ArrivalProcess::ArrivalProcess(des::Simulator& sim, ArrivalSpec spec,
                               std::size_t node_count, const Environment* environment,
                               stoch::RngStream& rng)
    : sim_(sim),
      spec_(std::move(spec)),
      node_count_(node_count),
      environment_(environment),
      rng_(rng) {
  validate(spec_, node_count_, environment_ != nullptr ? &environment_->spec() : nullptr);
}

double ArrivalProcess::current_rate() const {
  if (spec_.process == ArrivalSpec::Process::kPoisson) return spec_.rate;
  return spec_.state_rates[environment_->state()];
}

void ArrivalProcess::start() {
  if (!spec_.active()) return;
  LBSIM_REQUIRE(sink_ != nullptr, "arrival process needs a sink before start()");
  arm();
}

void ArrivalProcess::on_environment_transition() {
  if (!spec_.active() || finished()) return;
  // Memorylessness: cancelling the pending exponential gap and resampling at
  // the new rate is exactly the modulated process.
  if (armed_) {
    sim_.cancel(pending_);
    armed_ = false;
  }
  arm();
}

void ArrivalProcess::arm() {
  const double rate = current_rate();
  if (rate <= 0.0) return;  // no arrivals in this state; re-armed on transition
  pending_ = sim_.schedule_in(rng_.exponential(rate), [this] { fire(); });
  armed_ = true;
}

void ArrivalProcess::fire() {
  armed_ = false;
  const std::size_t tasks = sample_batch_size(spec_, rng_);
  const std::size_t node =
      spec_.target >= 0 ? static_cast<std::size_t>(spec_.target)
                        : static_cast<std::size_t>(rng_.uniform_index(node_count_));
  ++epochs_;
  tasks_ += tasks;
  const bool last = !spec_.unbounded && epochs_ >= spec_.count;
  sink_(node, tasks, last);
  if (!last) arm();
}

}  // namespace lbsim::env
