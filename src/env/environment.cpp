#include "env/environment.hpp"

#include "util/error.hpp"

namespace lbsim::env {

double EnvironmentSpec::exit_rate(std::size_t state) const {
  double total = 0.0;
  for (std::size_t j = 0; j < states; ++j) {
    if (j != state) total += rate(state, j);
  }
  return total;
}

void validate(const EnvironmentSpec& spec) {
  if (!spec.enabled()) return;
  LBSIM_REQUIRE(spec.failure_mult.size() == spec.states,
                "environment has " << spec.failure_mult.size() << " multipliers for "
                                   << spec.states << " states");
  LBSIM_REQUIRE(spec.generator.size() == spec.states * spec.states,
                "environment generator has " << spec.generator.size() << " entries, expected "
                                             << spec.states << "x" << spec.states);
  LBSIM_REQUIRE(spec.initial_state < spec.states,
                "environment initial state " << spec.initial_state << " out of range");
  for (const double mult : spec.failure_mult) {
    LBSIM_REQUIRE(mult > 0.0, "failure multiplier " << mult << " must be > 0");
  }
  for (std::size_t i = 0; i < spec.states; ++i) {
    for (std::size_t j = 0; j < spec.states; ++j) {
      if (i == j) continue;
      LBSIM_REQUIRE(spec.rate(i, j) >= 0.0,
                    "environment rate " << i << "->" << j << " is negative");
    }
  }
}

EnvironmentSpec make_calm_storm(double storm_mult, double storm_on, double storm_off) {
  EnvironmentSpec spec;
  spec.states = 2;
  spec.failure_mult = {1.0, storm_mult};
  spec.generator = {0.0, storm_on, storm_off, 0.0};
  validate(spec);
  return spec;
}

Environment::Environment(des::Simulator& sim, EnvironmentSpec spec, stoch::RngStream& rng)
    : sim_(sim), spec_(std::move(spec)), rng_(rng), state_(spec_.initial_state) {
  validate(spec_);
  LBSIM_REQUIRE(spec_.enabled(), "Environment needs a spec with states > 0");
}

void Environment::start() {
  LBSIM_REQUIRE(!running_, "environment already started");
  running_ = true;
  arm();
}

void Environment::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

void Environment::arm() {
  const double exit = spec_.exit_rate(state_);
  if (exit <= 0.0) return;  // absorbing state
  pending_ = sim_.schedule_in(rng_.exponential(exit), [this] { fire(); });
}

void Environment::fire() {
  if (!running_) return;
  const std::size_t from = state_;
  // Jump-chain draw: target j != from with probability rate(from, j) / exit.
  const double exit = spec_.exit_rate(from);
  double u = rng_.uniform01() * exit;
  std::size_t to = from;
  for (std::size_t j = 0; j < spec_.states; ++j) {
    if (j == from) continue;
    u -= spec_.rate(from, j);
    if (u <= 0.0) {
      to = j;
      break;
    }
  }
  if (to == from) {
    // Floating-point underflow of the final subtraction: pick the last state
    // with positive rate (probability ~0 event, but must not self-loop).
    for (std::size_t j = spec_.states; j-- > 0;) {
      if (j != from && spec_.rate(from, j) > 0.0) {
        to = j;
        break;
      }
    }
  }
  state_ = to;
  ++transitions_;
  if (event_trace_ != nullptr) {
    event_trace_->emit(sim_.now(), obs::Kind::kEnvTransition, static_cast<std::int32_t>(from),
                       static_cast<std::int32_t>(to));
  }
  if (listener_) listener_(from, to);
  arm();
}

}  // namespace lbsim::env
