#pragma once
/// \file
/// Deterministic up/down schedules — the adversarial counterpart of the
/// stochastic churn model (Aspnes et al.'s path-independent unreliable-machine
/// setting): each node follows a fixed timeline of failure/recovery instants
/// instead of an alternating-renewal process.
///
/// Text grammar (the `schedule=` scenario key):
///
///     schedule := clause (';' clause)*
///     clause   := node ':' token (',' token)*
///     token    := 'down@' time [ '-' time ]   e.g. down@10-30  (down on [10, 30))
///               | 'down@' time                down from `time` until up@/forever
///               | 'up@' time                  closes the preceding open 'down@'
///
/// `0:down@0-5` makes node 0 start down and recover at exactly t = 5 — the
/// deterministic analogue of `down.mask=1` with a fixed recovery time.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace lbsim::env {

/// Parsed schedule: per-node sorted transition lists. Value type (copyable) so
/// ScenarioConfig::clone stays trivial.
struct Schedule {
  struct Transition {
    double time;
    bool down;  ///< true = the node fails at `time`, false = it recovers
  };

  /// Indexed by node id; nodes past the end (or with an empty list) are
  /// unscheduled and follow the scenario's stochastic churn settings.
  std::vector<std::vector<Transition>> per_node;

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] bool scheduled(std::size_t node) const noexcept {
    return node < per_node.size() && !per_node[node].empty();
  }
  /// True when the node's timeline starts with a failure at t = 0 (the
  /// schedule analogue of the initially_down mask).
  [[nodiscard]] bool down_at_start(std::size_t node) const noexcept {
    return scheduled(node) && per_node[node].front().time == 0.0 &&
           per_node[node].front().down;
  }
};

/// Parses the grammar above. Throws std::invalid_argument with a precise
/// message on malformed clauses, overlapping or unordered intervals, or an
/// `up@` with nothing to close.
[[nodiscard]] Schedule parse_schedule(const std::string& text);

/// Range-checks node ids against the system size. Throws via LBSIM_REQUIRE.
void validate(const Schedule& schedule, std::size_t node_count);

/// Drives one node's timeline on the simulator. The handler receives each
/// transition in order (true = down); a t = 0 failure fires synchronously
/// inside start(), mirroring FailureProcess::start(initially_down) so the two
/// churn drivers are interchangeable at the engine's wiring point.
class ScheduleDriver {
 public:
  using Handler = std::function<void(bool down)>;

  ScheduleDriver(des::Simulator& sim, std::vector<Schedule::Transition> timeline);

  ScheduleDriver(const ScheduleDriver&) = delete;
  ScheduleDriver& operator=(const ScheduleDriver&) = delete;

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Applies any t = 0 transition immediately, then chains one pending timer
  /// through the rest of the timeline.
  void start();

 private:
  void arm_next();
  void fire();

  des::Simulator& sim_;
  std::vector<Schedule::Transition> timeline_;
  std::size_t next_ = 0;
  Handler handler_;
};

}  // namespace lbsim::env
