#include "node/compute_element.hpp"

#include "util/error.hpp"

namespace lbsim::node {

ComputeElement::ComputeElement(des::Simulator& sim, int id, ServiceTimeFn service_time,
                               stoch::RngStream& rng)
    : sim_(sim), id_(id), service_time_(std::move(service_time)), rng_(rng) {
  LBSIM_REQUIRE(service_time_ != nullptr, "CE " << id << " needs a service-time function");
}

void ComputeElement::record_queue() const {
  if (hot_queue_len_ != nullptr) {
    *hot_queue_len_ = static_cast<std::uint32_t>(queue_.size());
  }
  if (queue_trace_ != nullptr) {
    queue_trace_->record(sim_.now(), static_cast<double>(queue_.size()));
  }
}

void ComputeElement::set_queue_trace(des::TimeSeries* trace) {
  queue_trace_ = trace;
  record_queue();
}

void ComputeElement::bind_hot_cells(std::uint32_t* queue_len, std::uint8_t* up) noexcept {
  hot_queue_len_ = queue_len;
  hot_up_ = up;
  if (hot_queue_len_ != nullptr) {
    *hot_queue_len_ = static_cast<std::uint32_t>(queue_.size());
  }
  if (hot_up_ != nullptr) *hot_up_ = up_ ? 1 : 0;
}

void ComputeElement::enqueue(Task task) {
  task.arrival_time = sim_.now();
  queue_.push_back(task);
  ++stats_.tasks_received;
  if (event_trace_ != nullptr) {
    event_trace_->emit(sim_.now(), obs::Kind::kTaskArrive, id_, -1, 1, task.id);
  }
  record_queue();
  maybe_start_service();
}

void ComputeElement::enqueue_batch(TaskBatch batch) {
  if (batch.empty()) return;
  for (Task& task : batch) {
    queue_.push_back(task);
  }
  stats_.tasks_received += batch.size();
  if (event_trace_ != nullptr) {
    event_trace_->emit(sim_.now(), obs::Kind::kTaskArrive, id_, -1,
                       static_cast<std::uint32_t>(batch.size()));
  }
  record_queue();
  maybe_start_service();
}

void ComputeElement::enqueue_units(std::size_t count, std::uint64_t first_id) {
  if (count == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    queue_.push_back(Task{first_id + i, 1.0, id_, sim_.now()});
  }
  stats_.tasks_received += count;
  if (event_trace_ != nullptr) {
    event_trace_->emit(sim_.now(), obs::Kind::kTaskArrive, id_, -1,
                       static_cast<std::uint32_t>(count), first_id);
  }
  record_queue();
  maybe_start_service();
}

TaskBatch ComputeElement::extract_tasks(std::size_t count) {
  TaskBatch out;
  const std::size_t take = std::min(count, queue_.size());
  if (take == 0) return out;
  // Abort the running/frozen service only when the head task itself leaves.
  if (take == queue_.size()) {
    if (serving_) {
      sim_.cancel(service_event_);
      serving_ = false;
    }
    frozen_remaining_.reset();
  }
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(queue_.back());
    queue_.pop_back();
  }
  stats_.tasks_extracted += take;
  record_queue();
  return out;
}

void ComputeElement::maybe_start_service() {
  if (!up_ || serving_ || queue_.empty()) return;
  if (frozen_remaining_.has_value()) {
    current_service_duration_ = *frozen_remaining_;
    frozen_remaining_.reset();
  } else {
    Task& head = queue_.front();
    if (head.first_service_start < 0.0) head.first_service_start = sim_.now();
    current_service_duration_ = service_time_(head, rng_);
    LBSIM_CHECK(current_service_duration_ >= 0.0, "negative service time");
  }
  serving_ = true;
  service_started_at_ = sim_.now();
  if (event_trace_ != nullptr) {
    event_trace_->emit(sim_.now(), obs::Kind::kServiceStart, id_, -1, 1,
                       obs::Record::pack_f64(current_service_duration_));
  }
  service_event_ = sim_.schedule_in(
      current_service_duration_, [this] { finish_current_task(); },
      static_cast<std::size_t>(id_));
}

void ComputeElement::finish_current_task() {
  LBSIM_CHECK(serving_ && !queue_.empty(), "completion without a task in service");
  serving_ = false;
  const Task done = queue_.front();
  queue_.pop_front();
  ++stats_.tasks_completed;
  stats_.service_time_done += current_service_duration_;
  if (event_trace_ != nullptr) {
    event_trace_->emit(sim_.now(), obs::Kind::kTaskComplete, id_, -1, 1, done.id);
  }
  record_queue();
  if (on_complete_) on_complete_(done);
  maybe_start_service();
}

void ComputeElement::fail() {
  if (!up_) return;
  up_ = false;
  if (hot_up_ != nullptr) *hot_up_ = 0;
  ++stats_.failures;
  went_down_at_ = sim_.now();
  if (serving_) {
    sim_.cancel(service_event_);
    serving_ = false;
    const double elapsed = sim_.now() - service_started_at_;
    frozen_remaining_ = std::max(0.0, current_service_duration_ - elapsed);
  }
}

void ComputeElement::recover() {
  if (up_) return;
  up_ = true;
  if (hot_up_ != nullptr) *hot_up_ = 1;
  ++stats_.recoveries;
  stats_.down_time += sim_.now() - went_down_at_;
  maybe_start_service();
}

}  // namespace lbsim::node
