#pragma once
/// \file
/// The unit of workload. The paper defines a task as "the smallest indivisible
/// unit of workload" (one matrix row multiplied by a static matrix); a load is a
/// collection of tasks.

#include <cstdint>
#include <vector>

namespace lbsim::node {

struct Task {
  /// Unique within a simulation run.
  std::uint64_t id = 0;
  /// Abstract work size (e.g. row length x precision); 1.0 for the unit-size
  /// tasks of the analytical model.
  double size = 1.0;
  /// Node where the task entered the system (for migration accounting).
  int origin = 0;
  /// Virtual time the task entered the system (stamped at enqueue; preserved
  /// across migrations, so completion - arrival is the system sojourn time).
  double arrival_time = 0.0;
  /// Virtual time service first began anywhere (-1 until it does); the gap
  /// arrival -> first start is the task's queueing delay.
  double first_service_start = -1.0;
};

using TaskBatch = std::vector<Task>;

/// Builds `count` unit-size tasks originating at `origin`, ids starting at `first_id`.
[[nodiscard]] TaskBatch make_unit_tasks(std::size_t count, int origin,
                                        std::uint64_t first_id = 1);

}  // namespace lbsim::node
