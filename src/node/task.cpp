#include "node/task.hpp"

namespace lbsim::node {

TaskBatch make_unit_tasks(std::size_t count, int origin, std::uint64_t first_id) {
  TaskBatch batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(Task{first_id + i, 1.0, origin});
  }
  return batch;
}

}  // namespace lbsim::node
