#pragma once
/// \file
/// Alternating-renewal failure/recovery driver for one CE.
///
/// While the node is up, a failure fires after a time drawn from the
/// time-to-failure law (Exp(lambda_f) in the paper); while down, a recovery
/// fires after a time-to-recovery draw (Exp(lambda_r)). Mirrors the paper's
/// failure-injection process that signals the application layer to stop and
/// later resume execution.

#include <functional>

#include "sim/simulator.hpp"
#include "stochastic/distributions.hpp"
#include "stochastic/rng.hpp"

namespace lbsim::node {

class ComputeElement;

class FailureProcess {
 public:
  /// Called at each failure/recovery instant (after the CE state change), e.g.
  /// by LBP-2 to trigger the backup transfer.
  using ChurnHandler = std::function<void(int node_id)>;

  /// Distributions may be null, meaning "never": a null time-to-failure makes
  /// the node perfectly reliable (the paper's no-failure case).
  FailureProcess(des::Simulator& sim, ComputeElement& ce,
                 stoch::DistributionPtr time_to_failure,
                 stoch::DistributionPtr time_to_recovery, stoch::RngStream& rng);

  FailureProcess(const FailureProcess&) = delete;
  FailureProcess& operator=(const FailureProcess&) = delete;

  /// Arms the first failure timer (node assumed up) or, when `initially_down`,
  /// fails the CE immediately at the current time and arms a recovery timer.
  void start(bool initially_down = false);

  /// Stops scheduling further churn events (pending timer cancelled).
  void stop();

  /// Environment-modulation hook: scales the failure hazard by `mult` (> 0) —
  /// every time-to-failure draw is divided by `mult`, which for the
  /// exponential law is exactly Exp(mult * lambda_f). If the node is up with
  /// a failure timer armed, the timer re-arms immediately with a fresh draw
  /// at the new multiplier; by memorylessness this is exactly the
  /// Markov-modulated hazard. Recovery is never modulated (a storm makes
  /// failures more likely, not repairs faster).
  void set_hazard_multiplier(double mult);

  [[nodiscard]] double hazard_multiplier() const noexcept { return hazard_mult_; }

  void set_failure_handler(ChurnHandler handler) { on_failure_ = std::move(handler); }
  void set_recovery_handler(ChurnHandler handler) { on_recovery_ = std::move(handler); }

 private:
  void arm_failure();
  void arm_recovery();
  void fire_failure();
  void fire_recovery();

  des::Simulator& sim_;
  ComputeElement& ce_;
  stoch::DistributionPtr ttf_;
  stoch::DistributionPtr ttr_;
  stoch::RngStream& rng_;
  des::EventId pending_;
  bool running_ = false;
  double hazard_mult_ = 1.0;
  /// True while `pending_` is an armed failure timer (so a multiplier change
  /// knows whether there is a draw to refresh).
  bool failure_armed_ = false;
  ChurnHandler on_failure_;
  ChurnHandler on_recovery_;
};

}  // namespace lbsim::node
