#pragma once
/// \file
/// A computational element (CE): FIFO task queue + service process + up/down
/// state machine with checkpoint-resume.
///
/// Semantics follow Section 3 of the paper: every CE carries a backup system
/// saving the context of the running application, so a failure freezes the
/// in-service task (no work lost) and recovery resumes it. Under exponential
/// service times this coupling is distributionally identical to resampling,
/// which is what the regeneration analysis assumes; under the testbed's
/// size-based service times it models checkpoint-resume faithfully.

#include <deque>
#include <functional>
#include <optional>

#include "node/task.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "stochastic/rng.hpp"

namespace lbsim::node {

/// Per-CE counters exposed for tests and reports.
struct CeStats {
  std::uint64_t tasks_completed = 0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t tasks_received = 0;
  std::uint64_t tasks_extracted = 0;
  double down_time = 0.0;       ///< total time spent in the down state
  double service_time_done = 0.0;  ///< sum of service durations of completed tasks
};

class ComputeElement {
 public:
  /// Samples the service duration of `task` (seconds). Supplied by the scenario:
  /// the abstract model ignores the task and draws Exp(lambda_d); the testbed
  /// derives it from task.size and the node speed.
  using ServiceTimeFn = std::function<double(const Task&, stoch::RngStream&)>;
  using CompletionHandler = std::function<void(const Task&)>;
  using Handle = std::function<void(int node_id)>;

  /// The CE references the kernel and its private RNG stream; both must outlive it.
  ComputeElement(des::Simulator& sim, int id, ServiceTimeFn service_time,
                 stoch::RngStream& rng);

  ComputeElement(const ComputeElement&) = delete;
  ComputeElement& operator=(const ComputeElement&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] bool is_up() const noexcept { return up_; }

  /// Tasks pending, including the one in service.
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Appends tasks and starts service if possible. Works while down (tasks wait).
  void enqueue(Task task);
  void enqueue_batch(TaskBatch batch);

  /// Appends `count` unit-size tasks with ids `first_id`, `first_id`+1, ...
  /// originating here — equivalent to enqueue_batch(make_unit_tasks(...))
  /// without materialising the temporary batch.
  void enqueue_units(std::size_t count, std::uint64_t first_id);

  /// Removes up to `count` tasks from the *back* of the queue (most recently
  /// queued work leaves first; the in-service task is only taken if the request
  /// drains the whole queue, in which case the service is aborted).
  [[nodiscard]] TaskBatch extract_tasks(std::size_t count);

  /// Transitions to the down state, freezing any in-service task. No-op if down.
  void fail();

  /// Transitions to the up state, resuming the frozen task if any. No-op if up.
  void recover();

  /// Invoked after each task completion (after stats are updated).
  void set_completion_handler(CompletionHandler handler) { on_complete_ = std::move(handler); }

  /// Optional queue-length trace (records on every change); pass nullptr to stop.
  void set_queue_trace(des::TimeSeries* trace);

  /// Optional structured event sink: task arrivals (kTaskArrive, count =
  /// tasks added), service starts (kServiceStart, payload = drawn duration)
  /// and completions (kTaskComplete, payload = task id). Recording consumes
  /// no RNG draws and never changes behaviour; pass nullptr to stop.
  void set_event_trace(obs::TraceBuffer* trace) noexcept { event_trace_ = trace; }

  /// Binds externally owned hot-state cells — the scenario's
  /// structure-of-arrays mirror. After binding, *queue_len tracks
  /// queue_length() and *up tracks is_up() on every transition, so policy
  /// scans read two packed arrays instead of chasing one heap allocation per
  /// node. Both cells must outlive the CE; pass nullptrs to unbind.
  void bind_hot_cells(std::uint32_t* queue_len, std::uint8_t* up) noexcept;

  [[nodiscard]] const CeStats& stats() const noexcept { return stats_; }

 private:
  void maybe_start_service();
  void finish_current_task();
  void record_queue() const;

  des::Simulator& sim_;
  int id_;
  ServiceTimeFn service_time_;
  stoch::RngStream& rng_;

  std::deque<Task> queue_;
  bool up_ = true;
  bool serving_ = false;
  des::EventId service_event_;
  double service_started_at_ = 0.0;
  double current_service_duration_ = 0.0;
  /// Remaining service time of the frozen head-of-queue task, if a failure
  /// interrupted it.
  std::optional<double> frozen_remaining_;
  double went_down_at_ = 0.0;

  CompletionHandler on_complete_;
  des::TimeSeries* queue_trace_ = nullptr;
  obs::TraceBuffer* event_trace_ = nullptr;
  /// Hot-state mirror cells (see bind_hot_cells); null = no mirror.
  std::uint32_t* hot_queue_len_ = nullptr;
  std::uint8_t* hot_up_ = nullptr;
  CeStats stats_;
};

}  // namespace lbsim::node
