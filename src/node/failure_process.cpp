#include "node/failure_process.hpp"

#include "node/compute_element.hpp"
#include "util/error.hpp"

namespace lbsim::node {

FailureProcess::FailureProcess(des::Simulator& sim, ComputeElement& ce,
                               stoch::DistributionPtr time_to_failure,
                               stoch::DistributionPtr time_to_recovery,
                               stoch::RngStream& rng)
    : sim_(sim),
      ce_(ce),
      ttf_(std::move(time_to_failure)),
      ttr_(std::move(time_to_recovery)),
      rng_(rng) {
  LBSIM_REQUIRE(ttf_ == nullptr || ttr_ != nullptr,
                "a node that can fail needs a recovery law");
}

void FailureProcess::start(bool initially_down) {
  LBSIM_REQUIRE(!running_, "failure process already started");
  running_ = true;
  if (initially_down) {
    LBSIM_REQUIRE(ttr_ != nullptr, "initially-down node needs a recovery law");
    ce_.fail();
    if (on_failure_) on_failure_(ce_.id());
    arm_recovery();
  } else {
    arm_failure();
  }
}

void FailureProcess::stop() {
  if (!running_) return;
  running_ = false;
  failure_armed_ = false;
  sim_.cancel(pending_);
}

void FailureProcess::set_hazard_multiplier(double mult) {
  LBSIM_REQUIRE(mult > 0.0, "hazard multiplier " << mult << " must be > 0");
  hazard_mult_ = mult;
  if (running_ && failure_armed_) {
    // Refresh the pending draw at the new hazard. Exact for exponential TTF
    // (memorylessness); for other laws this is the standard regenerative
    // approximation of a modulated hazard.
    sim_.cancel(pending_);
    failure_armed_ = false;
    arm_failure();
  }
}

void FailureProcess::arm_failure() {
  if (ttf_ == nullptr) return;  // perfectly reliable node
  pending_ = sim_.schedule_in(
      ttf_->sample(rng_) / hazard_mult_, [this] { fire_failure(); },
      static_cast<std::size_t>(ce_.id()));
  failure_armed_ = true;
}

void FailureProcess::arm_recovery() {
  pending_ = sim_.schedule_in(
      ttr_->sample(rng_), [this] { fire_recovery(); }, static_cast<std::size_t>(ce_.id()));
}

void FailureProcess::fire_failure() {
  if (!running_) return;
  failure_armed_ = false;
  ce_.fail();
  if (on_failure_) on_failure_(ce_.id());
  arm_recovery();
}

void FailureProcess::fire_recovery() {
  if (!running_) return;
  ce_.recover();
  if (on_recovery_) on_recovery_(ce_.id());
  arm_failure();
}

}  // namespace lbsim::node
