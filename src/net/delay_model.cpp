#include "net/delay_model.hpp"

#include <sstream>

#include "util/error.hpp"

namespace lbsim::net {

ExponentialBundleDelay::ExponentialBundleDelay(double per_task_mean, double shift)
    : per_task_mean_(per_task_mean), shift_(shift) {
  LBSIM_REQUIRE(per_task_mean > 0.0, "per_task_mean=" << per_task_mean);
  LBSIM_REQUIRE(shift >= 0.0, "shift=" << shift);
}

double ExponentialBundleDelay::sample(std::size_t n_tasks, stoch::RngStream& rng) const {
  LBSIM_REQUIRE(n_tasks >= 1, "empty bundle");
  const double mean_delay = per_task_mean_ * static_cast<double>(n_tasks);
  return shift_ + rng.exponential(1.0 / mean_delay);
}

double ExponentialBundleDelay::mean(std::size_t n_tasks) const {
  LBSIM_REQUIRE(n_tasks >= 1, "empty bundle");
  return shift_ + per_task_mean_ * static_cast<double>(n_tasks);
}

std::string ExponentialBundleDelay::describe() const {
  std::ostringstream os;
  os << "ExponentialBundleDelay(per_task_mean=" << per_task_mean_ << ", shift=" << shift_ << ")";
  return os.str();
}

TransferDelayModelPtr ExponentialBundleDelay::clone() const {
  return std::make_unique<ExponentialBundleDelay>(*this);
}

ErlangPerTaskDelay::ErlangPerTaskDelay(double per_task_mean, double shift)
    : per_task_mean_(per_task_mean), shift_(shift) {
  LBSIM_REQUIRE(per_task_mean > 0.0, "per_task_mean=" << per_task_mean);
  LBSIM_REQUIRE(shift >= 0.0, "shift=" << shift);
}

double ErlangPerTaskDelay::sample(std::size_t n_tasks, stoch::RngStream& rng) const {
  LBSIM_REQUIRE(n_tasks >= 1, "empty bundle");
  double total = shift_;
  const double rate = 1.0 / per_task_mean_;
  for (std::size_t i = 0; i < n_tasks; ++i) total += rng.exponential(rate);
  return total;
}

double ErlangPerTaskDelay::mean(std::size_t n_tasks) const {
  LBSIM_REQUIRE(n_tasks >= 1, "empty bundle");
  return shift_ + per_task_mean_ * static_cast<double>(n_tasks);
}

std::string ErlangPerTaskDelay::describe() const {
  std::ostringstream os;
  os << "ErlangPerTaskDelay(per_task_mean=" << per_task_mean_ << ", shift=" << shift_ << ")";
  return os.str();
}

TransferDelayModelPtr ErlangPerTaskDelay::clone() const {
  return std::make_unique<ErlangPerTaskDelay>(*this);
}

DeterministicLinearDelay::DeterministicLinearDelay(double per_task_mean, double shift)
    : per_task_mean_(per_task_mean), shift_(shift) {
  LBSIM_REQUIRE(per_task_mean > 0.0, "per_task_mean=" << per_task_mean);
  LBSIM_REQUIRE(shift >= 0.0, "shift=" << shift);
}

double DeterministicLinearDelay::sample(std::size_t n_tasks, stoch::RngStream& /*rng*/) const {
  return mean(n_tasks);
}

double DeterministicLinearDelay::mean(std::size_t n_tasks) const {
  LBSIM_REQUIRE(n_tasks >= 1, "empty bundle");
  return shift_ + per_task_mean_ * static_cast<double>(n_tasks);
}

std::string DeterministicLinearDelay::describe() const {
  std::ostringstream os;
  os << "DeterministicLinearDelay(per_task_mean=" << per_task_mean_ << ", shift=" << shift_
     << ")";
  return os.str();
}

TransferDelayModelPtr DeterministicLinearDelay::clone() const {
  return std::make_unique<DeterministicLinearDelay>(*this);
}

}  // namespace lbsim::net
