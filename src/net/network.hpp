#pragma once
/// \file
/// Full-mesh network between n nodes: one Link per ordered pair plus a UDP-like
/// state-information channel with fixed small latency and optional loss.

#include <functional>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/message.hpp"

namespace lbsim::net {

class Network {
 public:
  struct Config {
    /// Delay law shared by all data links (cloned per link).
    TransferDelayModelPtr data_delay;
    /// One-way latency of a state packet, seconds (UDP datagrams are small).
    double state_latency = 1e-3;
    /// Probability that a state packet is lost (UDP is unreliable).
    double state_loss_probability = 0.0;
  };

  using DeliveryHandler = std::function<void(DataTransfer&&)>;
  using StateHandler = std::function<void(int receiver, const StateInfoPacket&)>;

  /// Builds links for every ordered pair of `node_count` >= 2 nodes.
  Network(des::Simulator& sim, std::size_t node_count, Config config, stoch::RngStream& rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// The directional link from -> to.
  [[nodiscard]] Link& link(int from, int to);
  [[nodiscard]] const Link& link(int from, int to) const;

  /// Ships tasks from -> to; returns the sampled delay.
  double transfer(int from, int to, node::TaskBatch tasks, DeliveryHandler on_delivery);

  /// Sends `packet` to every other node. Each copy independently suffers the
  /// configured loss probability; survivors arrive after `state_latency`.
  /// Returns the number of copies actually delivered (scheduled).
  std::size_t broadcast_state(const StateInfoPacket& packet, StateHandler on_state);

  /// Total tasks currently in flight over all links.
  [[nodiscard]] std::size_t tasks_in_flight() const noexcept;

  /// Count of state packets dropped by the loss process.
  [[nodiscard]] std::uint64_t state_packets_lost() const noexcept { return state_lost_; }
  [[nodiscard]] std::uint64_t state_bytes_sent() const noexcept { return state_bytes_; }

 private:
  [[nodiscard]] std::size_t index(int from, int to) const;

  des::Simulator& sim_;
  std::size_t node_count_;
  Config config_;
  stoch::RngStream& rng_;
  std::vector<std::unique_ptr<Link>> links_;  // row-major [from][to], diagonal empty
  std::uint64_t state_lost_ = 0;
  std::uint64_t state_bytes_ = 0;
};

}  // namespace lbsim::net
