#pragma once
/// \file
/// Full-mesh network between n nodes: one Link per ordered pair plus a UDP-like
/// state-information channel with fixed small latency and optional loss.

#include <functional>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"

namespace lbsim::net {

class Network {
 public:
  struct Config {
    /// Delay law shared by all data links (cloned per link).
    TransferDelayModelPtr data_delay;
    /// One-way latency of a state packet, seconds (UDP datagrams are small).
    double state_latency = 1e-3;
    /// Probability that a state packet is lost (UDP is unreliable). 1.0 is a
    /// legitimate boundary: a total state-plane blackout.
    double state_loss_probability = 0.0;
    /// Optional k-state Markov channel. When disabled (states == 0) the state
    /// plane behaves as i.i.d. Bernoulli(state_loss_probability) at fixed
    /// latency — bit-identical to the historical behaviour.
    ChannelSpec channel;
  };

  using DeliveryHandler = std::function<void(DataTransfer&&)>;
  using StateHandler = std::function<void(int receiver, const StateInfoPacket&)>;

  /// Builds links for every ordered pair of `node_count` >= 2 nodes. Data
  /// delays draw from `rng`; every state-plane decision (channel stepping and
  /// loss) draws from the dedicated `state_rng` so sweeping channel or loss
  /// axes never perturbs data-plane stream consumption (CRN-safe).
  Network(des::Simulator& sim, std::size_t node_count, Config config, stoch::RngStream& rng,
          stoch::RngStream& state_rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// The directional link from -> to.
  [[nodiscard]] Link& link(int from, int to);
  [[nodiscard]] const Link& link(int from, int to) const;

  /// Ships tasks from -> to; returns the sampled delay.
  double transfer(int from, int to, node::TaskBatch tasks, DeliveryHandler on_delivery);

  /// Sends `packet` to every other node. Each copy steps the channel once and
  /// suffers that state's loss probability; survivors arrive after
  /// `state_latency` scaled by the state's latency multiplier. Returns the
  /// number of copies actually delivered (scheduled).
  std::size_t broadcast_state(const StateInfoPacket& packet, StateHandler on_state);

  /// Environment-coupling hook: forces the channel into (at least) `state`.
  void set_channel_floor(std::size_t state) noexcept { channel_.set_floor_state(state); }

  /// The shared state-plane channel (read-mostly; tests inspect its state).
  [[nodiscard]] const ChannelModel& channel() const noexcept { return channel_; }

  /// Total tasks currently in flight over all links.
  [[nodiscard]] std::size_t tasks_in_flight() const noexcept;

  /// Count of state packets dropped by the loss process.
  [[nodiscard]] std::uint64_t state_packets_lost() const noexcept { return state_lost_; }
  [[nodiscard]] std::uint64_t state_bytes_sent() const noexcept { return state_bytes_; }

  /// Optional structured event sink: state-packet drops (kStatePacketLost,
  /// node = sender, peer = intended receiver) and state-plane channel jumps
  /// (kChannelState, count = new effective state). Recording reads the
  /// channel after the unconditional per-copy step — it consumes no RNG draws
  /// of its own and never changes behaviour. Pass nullptr to stop.
  void set_event_trace(obs::TraceBuffer* trace) noexcept { event_trace_ = trace; }

 private:
  [[nodiscard]] std::size_t index(int from, int to) const;

  des::Simulator& sim_;
  std::size_t node_count_;
  Config config_;
  stoch::RngStream& rng_;
  stoch::RngStream& state_rng_;
  ChannelModel channel_;
  std::vector<std::unique_ptr<Link>> links_;  // row-major [from][to], diagonal empty
  std::uint64_t state_lost_ = 0;
  std::uint64_t state_bytes_ = 0;
  obs::TraceBuffer* event_trace_ = nullptr;
};

}  // namespace lbsim::net
