#include "net/topology.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "stochastic/rng.hpp"
#include "util/error.hpp"

namespace lbsim::net {
namespace {

/// Canonical undirected edge (a < b).
std::pair<std::size_t, std::size_t> edge(std::size_t a, std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Seeded Fisher-Yates shuffle (stoch::RngStream, not std::shuffle: the
/// standard shuffle is implementation-defined and would break golden graphs
/// across standard libraries).
void shuffle(std::vector<std::size_t>& values, stoch::RngStream& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace

const char* to_string(TopologySpec::Kind kind) {
  switch (kind) {
    case TopologySpec::Kind::kComplete: return "complete";
    case TopologySpec::Kind::kRing: return "ring";
    case TopologySpec::Kind::kTorus: return "torus";
    case TopologySpec::Kind::kRandomRegular: return "rr";
  }
  return "?";
}

TopologySpec::Kind kind_from_string(const std::string& name) {
  if (name == "complete") return TopologySpec::Kind::kComplete;
  if (name == "ring") return TopologySpec::Kind::kRing;
  if (name == "torus") return TopologySpec::Kind::kTorus;
  if (name == "rr") return TopologySpec::Kind::kRandomRegular;
  throw std::invalid_argument("unknown topology '" + name +
                              "' (known: complete, ring, torus, rr)");
}

TorusDims torus_dims(std::size_t n, std::size_t rows, std::size_t cols) {
  if (rows == 0 && cols != 0) rows = (cols >= 2 && n % cols == 0) ? n / cols : 0;
  else if (cols == 0 && rows != 0) cols = (rows >= 2 && n % rows == 0) ? n / rows : 0;
  if (rows != 0 || cols != 0) {
    if (rows < 2 || cols < 2 || rows * cols != n) {
      throw std::invalid_argument("torus dims " + std::to_string(rows) + "x" +
                                  std::to_string(cols) + " do not tile " +
                                  std::to_string(n) + " nodes (each dim >= 2)");
    }
    return {rows, cols};
  }
  // Most-square factorisation: largest divisor r <= sqrt(n) with r >= 2.
  for (std::size_t r = 1; r * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  if (rows < 2) {
    throw std::invalid_argument("torus needs a composite node count (n = " +
                                std::to_string(n) +
                                " has no rows x cols tiling with dims >= 2)");
  }
  return {rows, n / rows};
}

Topology Topology::from_edges(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  Topology topo;
  topo.offsets_.assign(n + 1, 0);
  for (const auto& [a, b] : edges) {
    LBSIM_CHECK(a < n && b < n && a != b, "edge " << a << "-" << b << " out of range");
    ++topo.offsets_[a + 1];
    ++topo.offsets_[b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) topo.offsets_[i + 1] += topo.offsets_[i];
  topo.targets_.resize(2 * edges.size());
  std::vector<std::uint32_t> fill(topo.offsets_.begin(), topo.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    topo.targets_[fill[a]++] = static_cast<std::uint32_t>(b);
    topo.targets_[fill[b]++] = static_cast<std::uint32_t>(a);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(topo.targets_.begin() + topo.offsets_[i],
              topo.targets_.begin() + topo.offsets_[i + 1]);
  }
  return topo;
}

Topology Topology::complete(std::size_t n) {
  LBSIM_REQUIRE(n >= 2, "topology needs >= 2 nodes");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  }
  return from_edges(n, edges);
}

Topology Topology::ring(std::size_t n) {
  LBSIM_REQUIRE(n >= 2, "topology needs >= 2 nodes");
  std::set<std::pair<std::size_t, std::size_t>> edges;  // dedupes the n = 2 wrap
  for (std::size_t i = 0; i < n; ++i) edges.insert(edge(i, (i + 1) % n));
  return from_edges(n, {edges.begin(), edges.end()});
}

Topology Topology::torus(std::size_t rows, std::size_t cols) {
  LBSIM_REQUIRE(rows >= 2 && cols >= 2, "torus dims must each be >= 2");
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  std::set<std::pair<std::size_t, std::size_t>> edges;  // dedupes 2-wide wraps
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      edges.insert(edge(id(r, c), id((r + 1) % rows, c)));
      edges.insert(edge(id(r, c), id(r, (c + 1) % cols)));
    }
  }
  return from_edges(rows * cols, {edges.begin(), edges.end()});
}

Topology Topology::random_regular(std::size_t n, std::size_t degree, std::uint64_t seed) {
  LBSIM_REQUIRE(n >= 3, "random-regular needs >= 3 nodes");
  if (degree < 2 || degree >= n) {
    throw std::invalid_argument("random-regular degree " + std::to_string(degree) +
                                " needs 2 <= degree < n = " + std::to_string(n));
  }
  if (n * degree % 2 != 0) {
    throw std::invalid_argument("random-regular needs n * degree even (n = " +
                                std::to_string(n) +
                                ", degree = " + std::to_string(degree) + ")");
  }
  if (degree == n - 1) return complete(n);

  // Superposition construction: floor(d/2) seeded Hamiltonian cycles, plus one
  // perfect matching when d is odd (n is even then, by the parity check). Each
  // layer keeps every degree exact and each cycle keeps the graph connected;
  // the draw is rejected and retried whenever two layers collide on an edge.
  stoch::RngStream rng(seed, 0x726567756c617221ULL);
  constexpr int kMaxAttempts = 10000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::set<std::pair<std::size_t, std::size_t>> edges;
    bool clash = false;
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t cycle = 0; cycle < degree / 2 && !clash; ++cycle) {
      shuffle(order, rng);
      for (std::size_t i = 0; i < n; ++i) {
        // A Hamiltonian cycle needs n distinct edges; n = 3 closes 2-cycles.
        const auto e = edge(order[i], order[(i + 1) % n]);
        if (e.first == e.second || !edges.insert(e).second) {
          clash = true;
          break;
        }
      }
    }
    if (!clash && degree % 2 == 1) {
      shuffle(order, rng);
      for (std::size_t i = 0; i + 1 < n; i += 2) {
        if (!edges.insert(edge(order[i], order[i + 1])).second) {
          clash = true;
          break;
        }
      }
    }
    if (!clash) return from_edges(n, {edges.begin(), edges.end()});
  }
  throw std::invalid_argument("random-regular(" + std::to_string(n) + ", " +
                              std::to_string(degree) +
                              ") failed to wire an edge-disjoint layering; pick a "
                              "smaller degree or another topology.seed");
}

Topology Topology::build(const TopologySpec& spec, std::size_t n) {
  switch (spec.kind) {
    case TopologySpec::Kind::kComplete: return complete(n);
    case TopologySpec::Kind::kRing: return ring(n);
    case TopologySpec::Kind::kTorus: {
      const TorusDims dims = torus_dims(n, spec.rows, spec.cols);
      return torus(dims.rows, dims.cols);
    }
    case TopologySpec::Kind::kRandomRegular:
      return random_regular(n, spec.degree, spec.seed);
  }
  LBSIM_CHECK(false, "unreachable topology kind");
  return complete(n);
}

bool Topology::adjacent(std::size_t a, std::size_t b) const {
  const auto begin = targets_.begin() + offsets_[a];
  const auto end = targets_.begin() + offsets_[a + 1];
  return std::binary_search(begin, end, static_cast<std::uint32_t>(b));
}

std::size_t Topology::min_degree() const {
  std::size_t best = targets_.size();
  for (std::size_t i = 0; i < node_count(); ++i) best = std::min(best, degree(i));
  return best;
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < node_count(); ++i) best = std::max(best, degree(i));
  return best;
}

bool Topology::connected() const {
  const std::size_t n = node_count();
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> frontier{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.back();
    frontier.pop_back();
    for (std::size_t k = 0; k < degree(u); ++k) {
      const std::size_t v = neighbor(u, k);
      if (!seen[v]) {
        seen[v] = true;
        ++reached;
        frontier.push_back(v);
      }
    }
  }
  return reached == n;
}

std::size_t Topology::diameter() const {
  const std::size_t n = node_count();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::size_t diameter = 0;
  std::vector<std::size_t> dist(n);
  std::vector<std::size_t> queue;
  queue.reserve(n);
  for (std::size_t src = 0; src < n; ++src) {
    std::fill(dist.begin(), dist.end(), kUnset);
    queue.assign(1, src);
    dist[src] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t u = queue[head];
      for (std::size_t k = 0; k < degree(u); ++k) {
        const std::size_t v = neighbor(u, k);
        if (dist[v] == kUnset) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (const std::size_t d : dist) {
      if (d == kUnset) return kUnset;  // disconnected
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

Topology Topology::with_edge_churn(double drop, bool spare, std::uint64_t seed,
                                   std::uint64_t salt) const {
  // drop = 1 is admitted: the top environment state of a churn_drop = 1 spec
  // removes every edge the spare rule does not protect.
  LBSIM_REQUIRE(drop >= 0.0 && drop <= 1.0, "drop=" << drop);
  const std::size_t n = node_count();
  // One stream per (seed, salt): the mask is a pure function of the spec, not
  // of the replication (see the file comment in topology.hpp).
  stoch::RngStream rng(seed, 0x636875726e000000ULL ^ salt);
  std::vector<std::size_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = degree(i);
  std::vector<std::pair<std::size_t, std::size_t>> kept;
  kept.reserve(edge_count());
  // Deterministic edge order (CSR ascending), one uniform draw per edge.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t k = 0; k < degree(a); ++k) {
      const std::size_t b = neighbor(a, k);
      if (b <= a) continue;
      const bool dropped = rng.uniform01() < drop;
      if (dropped && (!spare || (remaining[a] > 1 && remaining[b] > 1))) {
        --remaining[a];
        --remaining[b];
        continue;
      }
      kept.emplace_back(a, b);
    }
  }
  return from_edges(n, kept);
}

}  // namespace lbsim::net
