#include "net/channel.hpp"

#include "util/error.hpp"

namespace lbsim::net {

namespace {

constexpr std::size_t kMaxStates = 16;

/// Expands a per-state vector to exactly `states` entries, cycling the given
/// values; an empty vector expands to `fallback` everywhere.
std::vector<double> expand(const std::vector<double>& values, std::size_t states,
                           double fallback) {
  std::vector<double> out(states, fallback);
  if (!values.empty()) {
    for (std::size_t s = 0; s < states; ++s) out[s] = values[s % values.size()];
  }
  return out;
}

}  // namespace

void validate(const ChannelSpec& spec) {
  LBSIM_REQUIRE(spec.states <= kMaxStates, "channel states=" << spec.states);
  if (!spec.enabled()) {
    LBSIM_REQUIRE(!spec.env_coupled, "channel env coupling needs channel states >= 1");
    return;
  }
  for (double p : spec.loss) {
    LBSIM_REQUIRE(p >= 0.0 && p <= 1.0, "channel loss=" << p);
  }
  for (double b : spec.mean_burst) {
    LBSIM_REQUIRE(b >= 1.0, "channel mean burst=" << b << " packets (must be >= 1)");
  }
  for (double m : spec.latency_mult) {
    LBSIM_REQUIRE(m >= 0.0, "channel latency multiplier=" << m);
  }
  for (double m : spec.data_mult) {
    LBSIM_REQUIRE(m > 0.0, "channel data-delay multiplier=" << m);
  }
}

ChannelModel::ChannelModel(const ChannelSpec& spec, double fallback_loss) {
  validate(spec);
  const std::size_t k = spec.enabled() ? spec.states : 1;
  loss_ = expand(spec.loss, k, spec.enabled() ? 0.0 : fallback_loss);
  latency_mult_ = expand(spec.latency_mult, k, 1.0);
  data_mult_ = expand(spec.data_mult, k, 1.0);
  const std::vector<double> burst = expand(spec.mean_burst, k, 1.0);
  exit_prob_.resize(k);
  for (std::size_t s = 0; s < k; ++s) exit_prob_[s] = 1.0 / burst[s];
}

ChannelHop ChannelModel::step(stoch::RngStream& rng) {
  // Always three draws (dwell, jump target, loss) so that changing the number
  // of states, burst lengths, or loss probabilities never shifts downstream
  // stream consumption — common-random-numbers comparisons stay paired.
  const double u_dwell = rng.uniform01();
  const double u_jump = rng.uniform01();
  const double u_loss = rng.uniform01();
  const std::size_t k = loss_.size();
  if (k > 1 && u_dwell < exit_prob_[state_]) {
    // Jump to a uniformly-chosen *other* state; for k=2 this is the
    // deterministic good<->bad flip of the Gilbert-Elliott model.
    std::size_t target = static_cast<std::size_t>(u_jump * static_cast<double>(k - 1));
    if (target >= k - 1) target = k - 2;
    if (target >= state_) ++target;
    state_ = target;
  }
  const std::size_t s = effective_state();
  return ChannelHop{u_loss < loss_[s], latency_mult_[s]};
}

void ChannelModel::set_floor_state(std::size_t state) noexcept {
  const std::size_t last = loss_.size() - 1;
  floor_ = state > last ? last : state;
}

}  // namespace lbsim::net
