#pragma once
/// \file
/// A one-directional point-to-point link delivering task bundles after a
/// load-dependent random delay, with in-flight accounting.

#include <cstdint>
#include <functional>

#include "net/delay_model.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace lbsim::net {

class Link {
 public:
  using DeliveryHandler = std::function<void(DataTransfer&&)>;

  /// The link samples delays from `delay` using `rng`; both references/pointees
  /// must outlive the link.
  Link(des::Simulator& sim, int from, int to, TransferDelayModelPtr delay,
       stoch::RngStream& rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Ships `tasks` (non-empty) and invokes `on_delivery` when they arrive.
  /// The sampled delay is scaled by `delay_scale` (> 0; the channel layer
  /// passes its per-state data multiplier here). Returns the scaled delay.
  double send(node::TaskBatch tasks, DeliveryHandler on_delivery, double delay_scale = 1.0);

  [[nodiscard]] int from() const noexcept { return from_; }
  [[nodiscard]] int to() const noexcept { return to_; }
  [[nodiscard]] std::size_t bundles_in_flight() const noexcept { return in_flight_bundles_; }
  [[nodiscard]] std::size_t tasks_in_flight() const noexcept { return in_flight_tasks_; }
  [[nodiscard]] std::uint64_t bundles_delivered() const noexcept { return delivered_bundles_; }
  [[nodiscard]] std::uint64_t tasks_delivered() const noexcept { return delivered_tasks_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] const TransferDelayModel& delay_model() const noexcept { return *delay_; }

 private:
  des::Simulator& sim_;
  int from_;
  int to_;
  TransferDelayModelPtr delay_;
  stoch::RngStream& rng_;

  std::size_t in_flight_bundles_ = 0;
  std::size_t in_flight_tasks_ = 0;
  std::uint64_t delivered_bundles_ = 0;
  std::uint64_t delivered_tasks_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace lbsim::net
