#include "net/link.hpp"

#include <memory>

#include "util/error.hpp"

namespace lbsim::net {

Link::Link(des::Simulator& sim, int from, int to, TransferDelayModelPtr delay,
           stoch::RngStream& rng)
    : sim_(sim), from_(from), to_(to), delay_(std::move(delay)), rng_(rng) {
  LBSIM_REQUIRE(delay_ != nullptr, "link needs a delay model");
  LBSIM_REQUIRE(from != to, "self-link from node " << from);
}

double Link::send(node::TaskBatch tasks, DeliveryHandler on_delivery, double delay_scale) {
  LBSIM_REQUIRE(!tasks.empty(), "cannot send an empty bundle");
  LBSIM_REQUIRE(on_delivery != nullptr, "null delivery handler");
  LBSIM_REQUIRE(delay_scale > 0.0, "delay_scale=" << delay_scale);
  const std::size_t n = tasks.size();
  const double delay = delay_->sample(n, rng_) * delay_scale;

  // The event callback is move-only (des::SmallCallback), so it can own the
  // transfer outright — no shared_ptr control block per bundle.
  auto transfer = std::make_unique<DataTransfer>();
  transfer->from = from_;
  transfer->to = to_;
  transfer->sent_at = sim_.now();
  transfer->tasks = std::move(tasks);

  in_flight_bundles_ += 1;
  in_flight_tasks_ += n;
  bytes_sent_ += transfer->wire_bytes();

  // Shard hint: deliveries belong to the destination node's event shard.
  sim_.schedule_in(
      delay,
      [this, transfer = std::move(transfer), handler = std::move(on_delivery), n]() mutable {
        in_flight_bundles_ -= 1;
        in_flight_tasks_ -= n;
        delivered_bundles_ += 1;
        delivered_tasks_ += n;
        handler(std::move(*transfer));
      },
      static_cast<std::size_t>(to_));
  return delay;
}

}  // namespace lbsim::net
