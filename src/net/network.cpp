#include "net/network.hpp"

#include <memory>
#include <utility>

#include "util/error.hpp"

namespace lbsim::net {

Network::Network(des::Simulator& sim, std::size_t node_count, Config config,
                 stoch::RngStream& rng, stoch::RngStream& state_rng)
    : sim_(sim),
      node_count_(node_count),
      config_(std::move(config)),
      rng_(rng),
      state_rng_(state_rng),
      channel_(config_.channel, config_.state_loss_probability) {
  LBSIM_REQUIRE(node_count >= 2, "network needs >= 2 nodes");
  LBSIM_REQUIRE(config_.data_delay != nullptr, "network needs a data delay model");
  LBSIM_REQUIRE(config_.state_latency >= 0.0, "state_latency=" << config_.state_latency);
  // p == 1 is a legitimate boundary (total state-plane blackout), matching the
  // topology layer's churn.drop=1; only p > 1 is a configuration error.
  LBSIM_REQUIRE(config_.state_loss_probability >= 0.0 && config_.state_loss_probability <= 1.0,
                "state_loss_probability=" << config_.state_loss_probability);
  links_.resize(node_count_ * node_count_);
  for (std::size_t from = 0; from < node_count_; ++from) {
    for (std::size_t to = 0; to < node_count_; ++to) {
      if (from == to) continue;
      links_[from * node_count_ + to] =
          std::make_unique<Link>(sim_, static_cast<int>(from), static_cast<int>(to),
                                 config_.data_delay->clone(), rng_);
    }
  }
}

std::size_t Network::index(int from, int to) const {
  LBSIM_REQUIRE(from >= 0 && static_cast<std::size_t>(from) < node_count_, "from=" << from);
  LBSIM_REQUIRE(to >= 0 && static_cast<std::size_t>(to) < node_count_, "to=" << to);
  LBSIM_REQUIRE(from != to, "no self link");
  return static_cast<std::size_t>(from) * node_count_ + static_cast<std::size_t>(to);
}

Link& Network::link(int from, int to) { return *links_[index(from, to)]; }

const Link& Network::link(int from, int to) const { return *links_[index(from, to)]; }

double Network::transfer(int from, int to, node::TaskBatch tasks,
                         DeliveryHandler on_delivery) {
  return link(from, to).send(std::move(tasks), std::move(on_delivery),
                             channel_.data_multiplier());
}

std::size_t Network::broadcast_state(const StateInfoPacket& packet, StateHandler on_state) {
  LBSIM_REQUIRE(on_state != nullptr, "null state handler");
  // One shared allocation per round holds the handler and the packet; each of
  // the n-1 deliveries captures only {shared_ptr, receiver}, which fits
  // des::SmallCallback's inline buffer (no per-copy std::function or packet
  // copies, and no per-event heap allocation).
  struct StateDelivery {
    StateHandler handler;
    StateInfoPacket packet;
  };
  auto delivery =
      std::make_shared<const StateDelivery>(StateDelivery{std::move(on_state), packet});
  std::size_t delivered = 0;
  for (std::size_t to = 0; to < node_count_; ++to) {
    if (static_cast<int>(to) == packet.sender) continue;
    state_bytes_ += packet.wire_bytes();
    // Unconditionally-per-packet channel step: stream consumption is the same
    // whatever the loss/channel configuration, so CRN pairing survives sweeps.
    const std::size_t state_before = channel_.effective_state();
    const ChannelHop hop = channel_.step(state_rng_);
    if (event_trace_ != nullptr && channel_.effective_state() != state_before) {
      event_trace_->emit(sim_.now(), obs::Kind::kChannelState, packet.sender,
                         static_cast<std::int32_t>(to),
                         static_cast<std::uint32_t>(channel_.effective_state()));
    }
    if (hop.lost) {
      ++state_lost_;
      if (event_trace_ != nullptr) {
        event_trace_->emit(sim_.now(), obs::Kind::kStatePacketLost, packet.sender,
                           static_cast<std::int32_t>(to));
      }
      continue;
    }
    ++delivered;
    // Shard hint: state deliveries belong to the receiver's event shard, the
    // same convention Link::send uses for data deliveries.
    sim_.schedule_in(
        config_.state_latency * hop.latency_mult,
        [delivery, to] { delivery->handler(static_cast<int>(to), delivery->packet); },
        /*shard_hint=*/to);
  }
  return delivered;
}

std::size_t Network::tasks_in_flight() const noexcept {
  std::size_t total = 0;
  for (const auto& link : links_) {
    if (link) total += link->tasks_in_flight();
  }
  return total;
}

}  // namespace lbsim::net
