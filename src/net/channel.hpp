#pragma once
/// \file
/// k-state Markov channel for the UDP-like state plane: per-state loss
/// probability, per-state latency multiplier, and geometric state dwell times
/// measured in packets (the CDF-of-burst-length idiom). Gilbert-Elliott is the
/// k=2 special case; k=1 collapses to i.i.d. Bernoulli loss, and the default
/// (states == 0) means "no channel configured" so existing scenarios keep the
/// plain fixed-latency / Bernoulli behaviour bit-identically.

#include <cstddef>
#include <vector>

#include "stochastic/rng.hpp"

namespace lbsim::net {

/// Declarative channel description, sweepable from the CLI (`channel.*` keys).
/// All per-state vectors are indexed by channel state; state 0 is conventionally
/// the "good" state. `validate(spec)` enforces the invariants listed per field.
struct ChannelSpec {
  /// Number of Markov states. 0 disables the channel entirely (the network
  /// falls back to its i.i.d. Bernoulli `state_loss_probability`).
  std::size_t states = 0;
  /// Per-state packet loss probability, in [0, 1] (1 = blackout state).
  std::vector<double> loss;
  /// Per-state mean burst length in packets (geometric dwell, >= 1). A mean of
  /// 1 means the channel re-draws its state every packet.
  std::vector<double> mean_burst;
  /// Per-state multiplier applied to the base state-packet latency (>= 0).
  std::vector<double> latency_mult;
  /// Per-state multiplier applied to sampled data-link delays (> 0).
  std::vector<double> data_mult;
  /// Couple the channel to the environment CTMC: the env state imposes a floor
  /// on the channel state, so failure storms force the channel into (at least)
  /// the proportionally-bad state.
  bool env_coupled = false;

  [[nodiscard]] bool enabled() const noexcept { return states > 0; }
};

/// Throws util::SimError if the spec is inconsistent. Vectors may be shorter
/// than `states`; missing entries are cycled from the given ones (an empty
/// vector takes the documented default: loss 0, burst 1, multipliers 1).
void validate(const ChannelSpec& spec);

/// Outcome of pushing one packet through the channel.
struct ChannelHop {
  bool lost = false;
  double latency_mult = 1.0;
};

/// Runtime channel: one instance models the shared WLAN medium, stepped once
/// per state-packet copy. Every step draws EXACTLY three uniforms (dwell,
/// jump target, loss) from the caller's stream regardless of configuration,
/// so sweeping any channel axis never changes stream consumption (CRN-safe).
class ChannelModel {
 public:
  /// `spec` may be disabled (states == 0); then the channel behaves as a
  /// single always-good state with loss `fallback_loss`.
  ChannelModel(const ChannelSpec& spec, double fallback_loss);

  /// Advances the state machine by one packet and samples its fate.
  ChannelHop step(stoch::RngStream& rng);

  /// Multiplier applied to data-link delays in the current effective state.
  [[nodiscard]] double data_multiplier() const noexcept {
    return data_mult_[effective_state()];
  }

  /// Environment-coupling hook: clamps the effective state to at least
  /// `state` (clipped to the last state) until lowered again.
  void set_floor_state(std::size_t state) noexcept;

  [[nodiscard]] std::size_t state_count() const noexcept { return loss_.size(); }
  [[nodiscard]] std::size_t effective_state() const noexcept {
    return state_ > floor_ ? state_ : floor_;
  }

 private:
  std::vector<double> loss_;
  std::vector<double> exit_prob_;  // 1 / mean_burst per state
  std::vector<double> latency_mult_;
  std::vector<double> data_mult_;
  std::size_t state_ = 0;
  std::size_t floor_ = 0;
};

}  // namespace lbsim::net
