#pragma once
/// \file
/// Load-dependent transfer-delay laws for moving a bundle of L tasks between
/// nodes.
///
/// The paper's analytical model (Section 2) takes the whole bundle delay to be
/// exponential with mean d*L (d = mean per-task delay, 0.02 s measured); the
/// empirical measurements (Fig. 2) show the mean growing linearly in L with a
/// slight shift. Three laws are provided:
///  * ExponentialBundleDelay  — the analytical model;
///  * ErlangPerTaskDelay      — sum of L iid Exp per-task delays + setup shift
///                              (the testbed emulation; same linear mean);
///  * DeterministicLinearDelay — ablation baseline.

#include <cstddef>
#include <memory>
#include <string>

#include "stochastic/rng.hpp"

namespace lbsim::net {

class TransferDelayModel {
 public:
  virtual ~TransferDelayModel() = default;

  /// Delay (seconds) to deliver a bundle of `n_tasks` tasks; n_tasks >= 1.
  [[nodiscard]] virtual double sample(std::size_t n_tasks, stoch::RngStream& rng) const = 0;

  /// Mean of the above law.
  [[nodiscard]] virtual double mean(std::size_t n_tasks) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual std::unique_ptr<TransferDelayModel> clone() const = 0;
};

using TransferDelayModelPtr = std::unique_ptr<TransferDelayModel>;

/// Exp with mean `shift + per_task_mean * n`; shift defaults to 0 (paper model).
class ExponentialBundleDelay final : public TransferDelayModel {
 public:
  explicit ExponentialBundleDelay(double per_task_mean, double shift = 0.0);
  [[nodiscard]] double sample(std::size_t n_tasks, stoch::RngStream& rng) const override;
  [[nodiscard]] double mean(std::size_t n_tasks) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TransferDelayModelPtr clone() const override;
  [[nodiscard]] double per_task_mean() const noexcept { return per_task_mean_; }

 private:
  double per_task_mean_;
  double shift_;
};

/// shift + sum of n iid Exp(1/per_task_mean): Erlang(n) bundle delay.
class ErlangPerTaskDelay final : public TransferDelayModel {
 public:
  explicit ErlangPerTaskDelay(double per_task_mean, double shift = 0.0);
  [[nodiscard]] double sample(std::size_t n_tasks, stoch::RngStream& rng) const override;
  [[nodiscard]] double mean(std::size_t n_tasks) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TransferDelayModelPtr clone() const override;
  [[nodiscard]] double per_task_mean() const noexcept { return per_task_mean_; }
  [[nodiscard]] double shift() const noexcept { return shift_; }

 private:
  double per_task_mean_;
  double shift_;
};

/// Exactly shift + per_task_mean * n.
class DeterministicLinearDelay final : public TransferDelayModel {
 public:
  explicit DeterministicLinearDelay(double per_task_mean, double shift = 0.0);
  [[nodiscard]] double sample(std::size_t n_tasks, stoch::RngStream& rng) const override;
  [[nodiscard]] double mean(std::size_t n_tasks) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TransferDelayModelPtr clone() const override;

 private:
  double per_task_mean_;
  double shift_;
};

}  // namespace lbsim::net
