#pragma once
/// \file
/// Wire messages of the emulated communication layer (Section 3 of the paper):
/// small UDP state-information packets and TCP data transfers whose size depends
/// on the tasks carried.

#include <cstddef>
#include <cstdint>

#include "node/task.hpp"

namespace lbsim::net {

/// Queue/capability advertisement exchanged over UDP. The paper reports packet
/// sizes between 20 and 34 bytes depending on the policy fields present.
struct StateInfoPacket {
  int sender = 0;
  double timestamp = 0.0;       ///< emission time (virtual seconds)
  std::uint32_t queue_size = 0;
  double processing_rate = 0.0;  ///< tasks per second
  bool node_up = true;
  /// Optional policy-specific payload (e.g. LBP-2 advertises its excess load).
  double policy_payload = 0.0;
  bool has_policy_payload = false;

  /// Emulated wire size in bytes: 20-byte base record plus optional fields,
  /// matching the 20-34 byte range reported in the paper.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    std::size_t bytes = 20;              // sender, timestamp, queue, rate
    bytes += 2;                          // node_up + version tag
    if (has_policy_payload) bytes += 12; // payload + descriptor
    return bytes;
  }
};

/// A bundle of tasks in flight between two nodes (TCP transfer).
struct DataTransfer {
  int from = 0;
  int to = 0;
  double sent_at = 0.0;
  node::TaskBatch tasks;

  /// Emulated wire size: 16-byte header + per-task records whose length scales
  /// with the (random) task size, mirroring "the size of the data packets
  /// depends on the number of tasks ... and the particular realization of each
  /// randomly generated task".
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    std::size_t bytes = 16;
    for (const auto& task : tasks) {
      bytes += 12 + static_cast<std::size_t>(task.size * 8.0);
    }
    return bytes;
  }
};

}  // namespace lbsim::net
