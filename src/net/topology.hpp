#pragma once
/// \file
/// Static and dynamic communication graphs. The paper's testbed (and every
/// family before the graph-* ones) assumes a complete exchange graph: any node
/// may probe or ship tasks to any other. Real fleets are sparse graphs with
/// neighbourhood-local information, so this layer provides the standard
/// regular families (ring, 2-D torus, random-regular) plus an edge-churn
/// overlay driven by the environment CTMC, and the adjacency / degree /
/// diameter queries the neighbourhood policies and their theory tests need.
///
/// Determinism: a Topology is a pure function of its construction inputs.
/// Random-regular wiring and the per-state churn masks derive from
/// TopologySpec::seed alone — never from the replication index — so every
/// Monte-Carlo replication of a scenario runs on the same graph family and
/// replications differ only through the environment's CTMC path.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lbsim::net {

/// Declarative description of a scenario's exchange graph; a plain value so
/// mc::ScenarioConfig stays copy-cloneable. `kind == kComplete` (the default)
/// means "no restriction": the engine takes the historical full-mesh path
/// untouched, which is what keeps pre-topology scenarios bit-identical.
struct TopologySpec {
  enum class Kind { kComplete, kRing, kTorus, kRandomRegular };

  Kind kind = Kind::kComplete;
  /// Random-regular degree d (kRandomRegular only); 2 <= d < n, n*d even.
  std::size_t degree = 4;
  /// Torus dimensions (kTorus only); 0 means "near-square factorisation of n".
  /// When both are given, rows * cols must equal the node count.
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Construction seed: random-regular wiring and churn masks only. Distinct
  /// from the experiment master seed on purpose (see file comment).
  std::uint64_t seed = 0x109e7201ULL;
  /// Edge churn under the environment CTMC: in environment state s of K the
  /// graph drops each edge independently with probability
  /// churn_drop * s / (K - 1) (state 0 always keeps the full graph). 0
  /// disables churn; > 0 requires a configured environment.
  double churn_drop = 0.0;
  /// When true, an edge is never dropped if that would leave either endpoint
  /// with no active neighbour (no state of the dynamic graph isolates a node).
  bool churn_spare = true;

  [[nodiscard]] bool complete() const noexcept { return kind == Kind::kComplete; }
  [[nodiscard]] bool dynamic() const noexcept { return churn_drop > 0.0; }
};

/// "complete", "ring", "torus", "rr" — the CLI's `topology=` vocabulary.
[[nodiscard]] const char* to_string(TopologySpec::Kind kind);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] TopologySpec::Kind kind_from_string(const std::string& name);

/// Resolves torus dimensions for `n` nodes: explicit rows/cols are checked
/// (each >= 2, product == n), 0/0 picks the most-square factorisation. Throws
/// std::invalid_argument when no valid factorisation exists (e.g. prime n).
struct TorusDims {
  std::size_t rows = 0;
  std::size_t cols = 0;
};
[[nodiscard]] TorusDims torus_dims(std::size_t n, std::size_t rows, std::size_t cols);

/// An immutable simple undirected graph in CSR form (sorted neighbour lists,
/// so adjacency is a binary search). Construction errors that reflect bad
/// user input (degree parity, torus factorisation) throw
/// std::invalid_argument, which the CLI registry converts to ConfigError.
class Topology {
 public:
  /// K_n: every pair adjacent (used by tests; the engine never builds it —
  /// kComplete scenarios skip the topology machinery entirely).
  [[nodiscard]] static Topology complete(std::size_t n);
  /// C_n: node i adjacent to (i±1) mod n. n = 2 degenerates to a single edge.
  [[nodiscard]] static Topology ring(std::size_t n);
  /// rows x cols wrap-around grid; dims >= 2 (a 2-wide dimension merges its
  /// duplicate wrap edge, so degrees drop from 4 accordingly).
  [[nodiscard]] static Topology torus(std::size_t rows, std::size_t cols);
  /// d-regular simple graph on n nodes, deterministic in `seed`: superposition
  /// of floor(d/2) seeded Hamiltonian cycles plus (d odd) a perfect matching,
  /// re-drawn until edge-disjoint. Connected by construction for d >= 2.
  [[nodiscard]] static Topology random_regular(std::size_t n, std::size_t degree,
                                               std::uint64_t seed);
  /// Dispatch on spec.kind for an n-node system.
  [[nodiscard]] static Topology build(const TopologySpec& spec, std::size_t n);

  [[nodiscard]] std::size_t node_count() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return targets_.size() / 2; }
  [[nodiscard]] std::size_t degree(std::size_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }
  /// k-th neighbour of `node` (ascending order), k < degree(node).
  [[nodiscard]] std::size_t neighbor(std::size_t node, std::size_t k) const {
    return targets_[offsets_[node] + k];
  }
  [[nodiscard]] bool adjacent(std::size_t a, std::size_t b) const;
  [[nodiscard]] std::size_t min_degree() const;
  [[nodiscard]] std::size_t max_degree() const;

  /// BFS reachability from node 0 covers every node.
  [[nodiscard]] bool connected() const;
  /// Max over sources of BFS eccentricity; SIZE_MAX when disconnected.
  [[nodiscard]] std::size_t diameter() const;

  /// The churned copy for one environment state: each edge is dropped
  /// independently with probability `drop`, deterministically in (seed, salt)
  /// — salt is the environment state index, so each state has its own edge
  /// set but every replication shares it. With `spare`, an edge survives
  /// whenever dropping it would isolate either endpoint.
  [[nodiscard]] Topology with_edge_churn(double drop, bool spare, std::uint64_t seed,
                                         std::uint64_t salt) const;

 private:
  /// Builds the CSR form from an undirected edge list (validated simple).
  static Topology from_edges(std::size_t n,
                             const std::vector<std::pair<std::size_t, std::size_t>>& edges);

  std::vector<std::uint32_t> offsets_;  // size n + 1
  std::vector<std::uint32_t> targets_;  // 2 * edge_count, sorted per node
};

}  // namespace lbsim::net
