// Unit tests for the CSV/JSON result writers and their run-metadata block.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cli/output.hpp"

namespace lbsim::cli {
namespace {

RunMetadata demo_meta() {
  RunMetadata meta;
  meta.command = "lbsim run paper-two-node";
  meta.scenario = "paper-two-node";
  meta.seed = 42;
  meta.replications = 100;
  meta.threads = 4;
  meta.wall_seconds = 1.25;
  meta.git_revision = "v0-test";
  return meta;
}

util::TextTable demo_table() {
  util::TextTable table({"gain", "mean_s", "note"});
  table.add_row({"0.35", "116.749", "paper optimum"});
  table.add_row({"0.50", "123.2", "with, comma"});
  return table;
}

TEST(CliOutput, CsvCarriesMetadataCommentsAndQuotesCells) {
  std::ostringstream os;
  write_csv(os, demo_meta(), demo_table());
  const std::string text = os.str();
  EXPECT_NE(text.find("# command=lbsim run paper-two-node"), std::string::npos);
  EXPECT_NE(text.find("# seed=42"), std::string::npos);
  EXPECT_NE(text.find("# replications=100"), std::string::npos);
  EXPECT_NE(text.find("# threads=4"), std::string::npos);
  EXPECT_NE(text.find("# wall_seconds=1.250"), std::string::npos);
  EXPECT_NE(text.find("# git=v0-test"), std::string::npos);
  EXPECT_NE(text.find("gain,mean_s,note"), std::string::npos);
  EXPECT_NE(text.find("\"with, comma\""), std::string::npos);  // RFC-4180 quoting
}

TEST(CliOutput, JsonEmitsNumbersUnquotedAndStringsQuoted) {
  std::ostringstream os;
  write_json(os, demo_meta(), demo_table());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"metadata\""), std::string::npos);
  EXPECT_NE(text.find("\"scenario\": \"paper-two-node\""), std::string::npos);
  EXPECT_NE(text.find("\"columns\": [\"gain\", \"mean_s\", \"note\"]"), std::string::npos);
  EXPECT_NE(text.find("[0.35, 116.749, \"paper optimum\"]"), std::string::npos);
  EXPECT_NE(text.find("\"with, comma\""), std::string::npos);
}

TEST(CliOutput, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(CliOutput, TheoryColumnsRoundTripThroughCsv) {
  // A sweep row with the theory join: numeric cells plus the "-" no-solver
  // marker. CSV must emit both verbatim (the marker needs no quoting) so the
  // table parses back cell-for-cell.
  util::TextTable table({"gain", "mean_s", "theory_mean", "abs_err", "sigma_err"});
  table.add_row({"0.35", "116.749", "116.749", "0.862", "0.28"});
  table.add_row({"0.5", "123.2", "-", "-", "-"});
  std::ostringstream os;
  write_csv(os, demo_meta(), table);
  const std::string text = os.str();
  EXPECT_NE(text.find("gain,mean_s,theory_mean,abs_err,sigma_err"), std::string::npos);
  EXPECT_NE(text.find("0.35,116.749,116.749,0.862,0.28"), std::string::npos);
  EXPECT_NE(text.find("0.5,123.2,-,-,-"), std::string::npos);
}

TEST(CliOutput, TheoryAndQuantileColumnsInJson) {
  // JSON keeps numbers unquoted and the no-solver marker as the string "-",
  // so downstream tooling can distinguish "no prediction" from 0.
  util::TextTable table({"p50_s", "p90_s", "theory_mean"});
  table.add_row({"108.133", "171.061", "-"});
  std::ostringstream os;
  write_json(os, demo_meta(), table);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"columns\": [\"p50_s\", \"p90_s\", \"theory_mean\"]"),
            std::string::npos);
  EXPECT_NE(text.find("[108.133, 171.061, \"-\"]"), std::string::npos);
}

TEST(CliOutput, HardwareThreadsSpelledOut) {
  RunMetadata meta = demo_meta();
  meta.threads = 0;
  std::ostringstream os;
  write_csv(os, meta, demo_table());
  EXPECT_NE(os.str().find("# threads=hardware"), std::string::npos);
}

TEST(CliOutput, GitRevisionIsConfigured) {
  // The build stamps LBSIM_GIT_DESCRIBE; whatever it is, it must be non-empty
  // and default into metadata when the caller leaves git_revision blank.
  EXPECT_FALSE(git_revision().empty());
  RunMetadata meta = demo_meta();
  meta.git_revision.clear();
  const auto items = meta.items();
  const auto git = std::find_if(items.begin(), items.end(),
                                [](const auto& kv) { return kv.first == "git"; });
  ASSERT_NE(git, items.end());
  EXPECT_FALSE(git->second.empty());
}

}  // namespace
}  // namespace lbsim::cli
