// Tests for the Monte-Carlo engine: determinism, threading invariance, task
// conservation, and — the central validation — agreement with the
// regeneration-theory solver on the same model.

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>

#include "cli/registry.hpp"
#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "mc/scenario.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"

namespace lbsim::mc {
namespace {

ScenarioConfig fig3_scenario(double gain, bool churn = true) {
  ScenarioConfig config = make_two_node_scenario(markov::ipdps2006_params(), 100, 60,
                                                 std::make_unique<core::Lbp1Policy>(0, gain));
  config.churn_enabled = churn;
  return config;
}

TEST(ScenarioTest, SingleRunCompletesAllTasks) {
  const ScenarioConfig config = fig3_scenario(0.35);
  const RunResult run = run_scenario(config, 1, 0);
  EXPECT_EQ(run.tasks_completed, 160u);
  EXPECT_GT(run.completion_time, 0.0);
  EXPECT_EQ(run.bundles_sent, 1u);
  EXPECT_EQ(run.tasks_moved, 35u);
}

TEST(ScenarioTest, DeterministicGivenSeedAndReplication) {
  const ScenarioConfig config = fig3_scenario(0.35);
  const RunResult a = run_scenario(config, 7, 3);
  const RunResult b = run_scenario(config, 7, 3);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(ScenarioTest, ReusedSimulatorBitIdenticalToFreshOne) {
  // The engine recycles one simulator (and its pooled event slab) across a
  // worker's replication loop; recycling must not change a single bit.
  const ScenarioConfig config = fig3_scenario(0.35);
  des::Simulator reused;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    const RunResult fresh = run_scenario(config, 7, rep);
    const RunResult recycled = run_scenario(config, 7, rep, nullptr, reused);
    EXPECT_DOUBLE_EQ(fresh.completion_time, recycled.completion_time) << "rep " << rep;
    EXPECT_EQ(fresh.failures, recycled.failures) << "rep " << rep;
    EXPECT_EQ(fresh.tasks_moved, recycled.tasks_moved) << "rep " << rep;
  }
}

TEST(ScenarioTest, PerTaskRecordsPopulateLatencyStats) {
  // Since the per-task-record refactor every completed task contributes a
  // sojourn and a queueing delay; the aggregates must be consistent with the
  // run's scalar counters.
  const ScenarioConfig config = fig3_scenario(0.35);
  const RunResult run = run_scenario(config, 1, 0);
  EXPECT_EQ(run.sojourn.count(), run.tasks_completed);
  EXPECT_GE(run.queue_delay.min(), 0.0);
  EXPECT_LE(run.sojourn.max(), run.completion_time);
  // Sojourn = queueing delay + service (+ possible transit), so means order.
  EXPECT_GE(run.sojourn.mean(), run.queue_delay.mean());
  EXPECT_GT(run.mean_queue_length(), 0.0);
}

TEST(ScenarioTest, SteadyProbeStopsAtTargetAndLogsSojourns) {
  const ScenarioConfig config = fig3_scenario(0.35);
  des::Simulator sim;
  std::vector<double> log;
  SteadyProbe probe;
  probe.target_completions = 40;
  probe.sojourn_log = &log;
  const RunResult partial = run_scenario(config, 1, 0, nullptr, sim, probe);
  EXPECT_EQ(partial.sojourn.count(), 40u);
  EXPECT_EQ(log.size(), 40u);
  const RunResult full = run_scenario(config, 1, 0);
  EXPECT_LT(partial.completion_time, full.completion_time);
  // A default probe is exactly the finite run.
  des::Simulator sim2;
  const RunResult defaulted = run_scenario(config, 1, 0, nullptr, sim2, SteadyProbe{});
  EXPECT_DOUBLE_EQ(defaulted.completion_time, full.completion_time);
}

TEST(ScenarioTest, DifferentReplicationsDiffer) {
  const ScenarioConfig config = fig3_scenario(0.35);
  const RunResult a = run_scenario(config, 7, 0);
  const RunResult b = run_scenario(config, 7, 1);
  EXPECT_NE(a.completion_time, b.completion_time);
}

TEST(ScenarioTest, NoChurnMeansNoFailures) {
  const ScenarioConfig config = fig3_scenario(0.35, /*churn=*/false);
  const RunResult run = run_scenario(config, 7, 0);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_EQ(run.recoveries, 0u);
}

TEST(ScenarioTest, NoBalancingMovesNothing) {
  ScenarioConfig config = make_two_node_scenario(
      markov::ipdps2006_params(), 40, 20, std::make_unique<core::NoBalancingPolicy>());
  const RunResult run = run_scenario(config, 3, 0);
  EXPECT_EQ(run.tasks_moved, 0u);
  EXPECT_EQ(run.bundles_sent, 0u);
  EXPECT_EQ(run.tasks_completed, 60u);
}

TEST(ScenarioTest, Lbp2TransfersAtFailureInstants) {
  ScenarioConfig config = make_two_node_scenario(markov::ipdps2006_params(), 100, 60,
                                                 std::make_unique<core::Lbp2Policy>(1.0));
  RunTrace trace;
  const RunResult run = run_scenario(config, 11, 2, &trace);
  // Every failure of a non-empty node triggers a backup transfer directive;
  // at least check consistency between the log and the counters.
  EXPECT_EQ(trace.events.count(obs::Kind::kFail), run.failures);
  EXPECT_EQ(trace.events.count(obs::Kind::kRecover), run.recoveries);
  EXPECT_EQ(trace.events.count(obs::Kind::kTransferSend), run.bundles_sent);
  EXPECT_EQ(trace.events.count(obs::Kind::kTransferDeliver), run.bundles_sent);
}

TEST(ScenarioTest, TraceRecordsQueues) {
  ScenarioConfig config = fig3_scenario(0.35);
  RunTrace trace;
  const RunResult run = run_scenario(config, 5, 0, &trace);
  ASSERT_EQ(trace.queue_lengths.size(), 2u);
  // Initial queue sizes after the t = 0 transfer: 65 and 60.
  EXPECT_DOUBLE_EQ(trace.queue_lengths[0].value_at(0.0), 65.0);
  EXPECT_DOUBLE_EQ(trace.queue_lengths[1].value_at(0.0), 60.0);
  // Queues end empty at the completion time.
  EXPECT_DOUBLE_EQ(trace.queue_lengths[0].value_at(run.completion_time), 0.0);
  EXPECT_DOUBLE_EQ(trace.queue_lengths[1].value_at(run.completion_time), 0.0);
}

TEST(ScenarioTest, InitiallyDownNodeDelaysCompletion) {
  ScenarioConfig up = make_two_node_scenario(markov::ipdps2006_params(), 20, 20,
                                             std::make_unique<core::NoBalancingPolicy>());
  up.churn_enabled = false;
  ScenarioConfig down = up.clone();
  down.initially_down = 0b01;
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = 200;
  const double mean_up = run_monte_carlo(up, mc).mean();
  const double mean_down = run_monte_carlo(down, mc).mean();
  EXPECT_GT(mean_down, mean_up);
}

TEST(ScenarioTest, ValidatesConfig) {
  ScenarioConfig config = fig3_scenario(0.35);
  config.workloads = {100};
  EXPECT_THROW((void)run_scenario(config, 1, 0), std::invalid_argument);
  ScenarioConfig no_policy = fig3_scenario(0.35);
  no_policy.policy = nullptr;
  EXPECT_THROW((void)run_scenario(no_policy, 1, 0), std::invalid_argument);
}

// ---------- engine ----------

TEST(EngineTest, ThreadCountDoesNotChangeEstimate) {
  const ScenarioConfig config = fig3_scenario(0.35);
  McConfig serial;
  serial.seed = test::kFixedSeed;
  serial.replications = 60;
  serial.threads = 1;
  McConfig parallel = serial;
  parallel.threads = 4;
  const McResult a = run_monte_carlo(config, serial);
  const McResult b = run_monte_carlo(config, parallel);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.completion.variance(), b.completion.variance());
}

TEST(EngineTest, CollectSamplesSortedAndSized) {
  const ScenarioConfig config = fig3_scenario(0.35);
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = 50;
  mc.collect_samples = true;
  const McResult result = run_monte_carlo(config, mc);
  ASSERT_EQ(result.samples.size(), 50u);
  EXPECT_TRUE(std::is_sorted(result.samples.begin(), result.samples.end()));
  EXPECT_EQ(result.completion.count(), 50u);
}

TEST(EngineTest, QuantilesExactAndThreadCountIndependentBelowCap) {
  // Below kExactQuantileCap the p50/p90/p99 summary must be the exact type-7
  // quantiles of the (thread-count-independent) sample multiset — identical
  // across thread counts and to a collect_samples run, with no samples kept.
  const ScenarioConfig config = fig3_scenario(0.35);
  McConfig serial;
  serial.seed = test::kFixedSeed;
  serial.replications = 40;
  serial.threads = 1;
  McConfig parallel = serial;
  parallel.threads = 4;
  McConfig sampled = serial;
  sampled.collect_samples = true;

  const McResult a = run_monte_carlo(config, serial);
  const McResult b = run_monte_carlo(config, parallel);
  const McResult c = run_monte_carlo(config, sampled);
  EXPECT_TRUE(a.samples.empty());
  EXPECT_TRUE(b.samples.empty());
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p90, b.p90);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.p50, c.sample_quantile(0.5));
  EXPECT_DOUBLE_EQ(a.p90, c.sample_quantile(0.9));
  EXPECT_DOUBLE_EQ(a.p99, c.sample_quantile(0.99));
  EXPECT_LE(a.p50, a.p90);
  EXPECT_LE(a.p90, a.p99);
}

TEST(EngineTest, StreamingQuantilesKickInPastTheCapAndStayAccurate) {
  // One reliable node holding a single task: each replication is one
  // Exp(lambda_d0) draw, so kExactQuantileCap+1 replications stay cheap and
  // the analytic quantiles ln(1/(1-q))/lambda are known. The streaming P²
  // path (no samples kept) must land within a few percent of them.
  markov::TwoNodeParams params = markov::without_failures(markov::ipdps2006_params());
  ScenarioConfig config =
      make_two_node_scenario(params, 1, 0, std::make_unique<core::NoBalancingPolicy>());
  config.churn_enabled = false;
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = kExactQuantileCap + 1;
  const McResult result = run_monte_carlo(config, mc);
  EXPECT_TRUE(result.samples.empty());
  const double rate = params.nodes[0].lambda_d;
  EXPECT_NEAR(result.p50, std::log(2.0) / rate, 0.05 * std::log(2.0) / rate);
  EXPECT_NEAR(result.p90, std::log(10.0) / rate, 0.05 * std::log(10.0) / rate);
  EXPECT_NEAR(result.p99, std::log(100.0) / rate, 0.10 * std::log(100.0) / rate);
}

TEST(EngineTest, CiShrinksWithReplications) {
  const ScenarioConfig config = fig3_scenario(0.35);
  McConfig small;
  small.seed = test::kFixedSeed;
  small.replications = 30;
  McConfig big;
  big.seed = test::kFixedSeed;
  big.replications = 300;
  EXPECT_GT(run_monte_carlo(config, small).ci95(), run_monte_carlo(config, big).ci95());
}

// ---------- MC vs theory: the model-consistency pillar ----------

TEST(EngineTest, Lbp1MeanMatchesTheoryWithChurn) {
  const ScenarioConfig config = fig3_scenario(0.35);
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = 1500;
  const McResult result = run_monte_carlo(config, mc);
  markov::TwoNodeMeanSolver solver(markov::ipdps2006_params());
  const double theory = solver.lbp1_mean(100, 60, 0, 0.35);
  EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(), theory, 4.0);
}

TEST(EngineTest, Lbp1MeanMatchesTheoryNoChurn) {
  const ScenarioConfig config = fig3_scenario(0.45, /*churn=*/false);
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = 1500;
  const McResult result = run_monte_carlo(config, mc);
  markov::TwoNodeMeanSolver solver(markov::without_failures(markov::ipdps2006_params()));
  const double theory = solver.lbp1_mean(100, 60, 0, 0.45);
  EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(), theory, 4.0);
}

TEST(EngineTest, NoBalancingMatchesTheoryZeroGain) {
  ScenarioConfig config = make_two_node_scenario(
      markov::ipdps2006_params(), 30, 20, std::make_unique<core::NoBalancingPolicy>());
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = 1500;
  const McResult result = run_monte_carlo(config, mc);
  markov::TwoNodeMeanSolver solver(markov::ipdps2006_params());
  EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(),
               solver.mean_no_transit(30, 20), 4.0);
}

// ---------- bit-identity pins across the per-task-record refactor ----------

TEST(EngineTest, FiniteFamilyStatisticsBitIdenticalToPreRefactorGoldens) {
  // Golden mean/p50/p90/p99 captured at reps = 25, seed = 0x5eed2006,
  // threads = 2 immediately BEFORE the per-task latency-record refactor.
  // EXPECT_DOUBLE_EQ on purpose: stamping arrival/first-service times must not
  // move a single RNG draw or reorder a single event in the finite path, and
  // any change to the stream layout shows up here as a 17-digit mismatch.
  struct Golden {
    const char* family;
    double mean, p50, p90, p99;
  };
  static constexpr Golden kGoldens[] = {
      {"paper-two-node", 116.61103909863549, 107.71454130988158, 188.55173836262219,
       208.28513126617386},
      {"multi-node", 114.13477969202212, 116.1862243825236, 141.83479394478616,
       193.13308647396823},
      {"many-node-churn", 101.33114750456271, 101.31374530663599, 116.17344501814591,
       122.42756594569006},
      {"churn-storm", 111.78423985018355, 111.88879213943629, 136.79691514282791,
       155.00134569499735},
      {"cold-start", 123.65141736552651, 119.10093513663399, 165.3986302898856,
       201.56176966447714},
      {"periodic-rebalance", 110.9883685731524, 103.87991250127128, 171.39297012558143,
       196.37284876354502},
      {"correlated-churn", 156.87487419645061, 139.5359549129561, 269.55959839699125,
       320.34221592067752},
      {"open-arrivals", 295.33829574617022, 296.75439276080596, 357.44840725420784,
       379.21143155637697},
      {"scheduled-churn", 70.323470686165209, 70.997272651383753, 76.883301486046832,
       85.790294700289891},
      {"custom-delay", 116.61103909863549, 107.71454130988158, 188.55173836262219,
       208.28513126617386},
      // Graph families at their sparse defaults (ring diffusion, torus
      // diffusion, random-regular probe): pins the topology layer's RNG
      // stream layout (the appended policy stream) and graph construction.
      {"graph-ring", 93.550722634097752, 97.427238370790761, 111.70778963688932,
       116.75978295048613},
      {"graph-torus", 125.90302528653861, 123.33412498899476, 140.73850116371136,
       236.11077561407274},
      {"graph-rr", 84.375246079558039, 84.287993329342541, 93.297972085717447,
       102.7413167186772},
  };
  for (const Golden& g : kGoldens) {
    const cli::ScenarioSpec& spec = cli::find_scenario(g.family);
    ASSERT_FALSE(spec.steady) << g.family;
    const ScenarioConfig config = spec.build(spec.schema.resolve({}));
    McConfig mc;
    mc.seed = 0x5eed2006;
    mc.replications = 25;
    mc.threads = 2;
    const McResult result = run_monte_carlo(config, mc);
    EXPECT_DOUBLE_EQ(result.mean(), g.mean) << g.family;
    EXPECT_DOUBLE_EQ(result.p50, g.p50) << g.family;
    EXPECT_DOUBLE_EQ(result.p90, g.p90) << g.family;
    EXPECT_DOUBLE_EQ(result.p99, g.p99) << g.family;
  }
  // Every finite mc-engine family is pinned: a new family must add a golden
  // row unless it is a steady family (which the finite engines refuse) or a
  // testbed family (which never runs on the mc engine at all).
  std::size_t finite = 0;
  for (const cli::ScenarioSpec& spec : cli::scenario_registry()) {
    if (!spec.steady && !spec.testbed) ++finite;
  }
  EXPECT_EQ(finite, std::size(kGoldens));
}

TEST(EngineTest, GraphFamiliesAtCompleteTopologyMatchGlobalBaselineBitIdentically) {
  // topology=complete must take the historical full-mesh path untouched: a
  // graph-* family pinned to multi-node's exact defaults (same nodes, rates,
  // workloads, policy) must reproduce multi-node's statistics to the last
  // bit — same RNG stream layout, same event order, no topology machinery.
  const cli::ScenarioSpec& baseline_spec = cli::find_scenario("multi-node");
  McConfig mc;
  mc.seed = 0x5eed2006;
  mc.replications = 25;
  mc.threads = 2;
  const McResult baseline =
      run_monte_carlo(baseline_spec.build(baseline_spec.schema.resolve({})), mc);
  for (const char* family : {"graph-ring", "graph-torus", "graph-rr"}) {
    const cli::ScenarioSpec& spec = cli::find_scenario(family);
    cli::RawConfig raw;
    raw.set("topology", "complete");
    raw.set("policy", "lbp2");
    raw.set("nodes", "4");
    raw.set("lambda_r", "0.1");
    raw.set("workloads", "100,60");
    const McResult result = run_monte_carlo(spec.build(spec.schema.resolve(raw)), mc);
    EXPECT_DOUBLE_EQ(result.mean(), baseline.mean()) << family;
    EXPECT_DOUBLE_EQ(result.p50, baseline.p50) << family;
    EXPECT_DOUBLE_EQ(result.p90, baseline.p90) << family;
    EXPECT_DOUBLE_EQ(result.p99, baseline.p99) << family;
  }
}

TEST(EngineTest, Lbp2MatchesPaperBallpark) {
  // Paper: MC mean 112.43 s for LBP-2 on (100, 60) with K = 1 (500 runs).
  ScenarioConfig config = make_two_node_scenario(markov::ipdps2006_params(), 100, 60,
                                                 std::make_unique<core::Lbp2Policy>(1.0));
  McConfig mc;
  mc.seed = test::kFixedSeed;
  mc.replications = 1500;
  const McResult result = run_monte_carlo(config, mc);
  EXPECT_NEAR_REL(result.mean(), 112.43, 0.055);
}

}  // namespace
}  // namespace lbsim::mc
