// Unit tests for the sweep engine: axis grammar, cartesian expansion, and
// dry-run/real sweeps over a registered scenario.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "cli/sweep.hpp"
#include "test_support.hpp"

namespace lbsim::cli {
namespace {

TEST(CliSweepAxis, ParsesExplicitLists) {
  const SweepAxis axis = parse_axis("gain=0.2,0.5,0.9");
  EXPECT_EQ(axis.key, "gain");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"0.2", "0.5", "0.9"}));
}

TEST(CliSweepAxis, ParsesInclusiveRanges) {
  const SweepAxis axis = parse_axis("gain=0.1:0.5:0.2");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"0.1", "0.3", "0.5"}));
  // Endpoint reached exactly even with floating-point accumulation.
  const SweepAxis fine = parse_axis("gain=0:1:0.1");
  ASSERT_EQ(fine.values.size(), 11u);
  EXPECT_EQ(fine.values.front(), "0");
  EXPECT_EQ(fine.values.back(), "1");
}

TEST(CliSweepAxis, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_axis("gain"), ConfigError);
  EXPECT_THROW((void)parse_axis("=1,2"), ConfigError);
  EXPECT_THROW((void)parse_axis("gain="), ConfigError);
  EXPECT_THROW((void)parse_axis("gain=1:0:0.1"), ConfigError);   // hi < lo
  EXPECT_THROW((void)parse_axis("gain=0:1:-0.1"), ConfigError);  // step <= 0
  // Non-numeric colon bodies are NOT ranges: they fall back to the list
  // grammar (schedule timelines need this) and fail later at schema
  // resolution when the key is numeric.
  const SweepAxis not_a_range = parse_axis("gain=a:b:c");
  EXPECT_EQ(not_a_range.values, (std::vector<std::string>{"a:b:c"}));
}

TEST(CliSweepGrid, ExpandsCartesianProductRowMajor) {
  const std::vector<SweepAxis> axes = {{"a", {"1", "2"}}, {"b", {"x", "y", "z"}}};
  const auto grid = expand_grid(axes);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0], (std::vector<std::pair<std::string, std::string>>{{"a", "1"}, {"b", "x"}}));
  EXPECT_EQ(grid[1][1].second, "y");
  EXPECT_EQ(grid[2][1].second, "z");
  EXPECT_EQ(grid[3][0].second, "2");  // first axis slowest
  EXPECT_EQ(grid[5],
            (std::vector<std::pair<std::string, std::string>>{{"a", "2"}, {"b", "z"}}));
}

TEST(CliSweep, DryRunValidatesEveryPointWithoutRunning) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.dry_run = true;
  const SweepResult result =
      run_sweep(spec, {}, {parse_axis("gain=0.1:0.9:0.2"), parse_axis("m0=50,100")}, options);
  EXPECT_EQ(result.table.rows(), 10u);
  // Dry-run rows carry the resolved policy name, proving the build ran
  // (m0=50 < m1=60, so the auto-picked LBP-1 sender is node 1).
  EXPECT_EQ(result.table.row(0).at(2), "LBP-1(K=0.1, sender=1)");
  EXPECT_EQ(result.metadata.scenario, "paper-two-node");
}

TEST(CliSweep, DryRunStillRejectsInvalidPoints) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.dry_run = true;
  EXPECT_THROW((void)run_sweep(spec, {}, {parse_axis("gain=0.5,11")}, options), ConfigError);
  EXPECT_THROW((void)run_sweep(spec, {}, {parse_axis("bogus=1,2")}, options), ConfigError);
}

TEST(CliSweep, UnknownAxisKeyFailsFastNamingTheFamily) {
  // The fail-fast check runs before any grid point: a typoed env key on a
  // real (non-dry) sweep must throw immediately, name the family, and carry a
  // did-you-mean suggestion across the env.*/arrivals.* key groups.
  const ScenarioSpec& spec = find_scenario("correlated-churn");
  SweepOptions options;
  options.replications = 5000000;  // would take hours if a point ever ran
  try {
    (void)run_sweep(spec, {}, {parse_axis("env.storm.mul=1,5")}, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kUnknownKey);
    const std::string what = e.what();
    EXPECT_NE(what.find("correlated-churn"), std::string::npos) << what;
    EXPECT_NE(what.find("env.storm.mult"), std::string::npos) << what;
  }
  // arrivals.* group, on the open-arrivals family.
  try {
    (void)run_sweep(find_scenario("open-arrivals"), {},
                    {parse_axis("arrivals.bacth=10,20")}, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("open-arrivals"), std::string::npos) << what;
    EXPECT_NE(what.find("arrivals.batch"), std::string::npos) << what;
  }
  // topology.* group, on the graph-rr family.
  try {
    (void)run_sweep(find_scenario("graph-rr"), {}, {parse_axis("topology.degre=2,4")},
                    options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kUnknownKey);
    const std::string what = e.what();
    EXPECT_NE(what.find("graph-rr"), std::string::npos) << what;
    EXPECT_NE(what.find("topology.degree"), std::string::npos) << what;
  }
}

TEST(CliSweep, GridIsFullyValidatedBeforeAnyPointRuns) {
  // A multi-token schedule passed as an axis gets comma-split into bogus
  // values ('0:down@10' + 'up@30'); the whole grid is built up front, so the
  // sweep dies with the precise schedule ConfigError before a single
  // replication runs — never with truncated semantics or a mid-sweep abort.
  const ScenarioSpec& spec = find_scenario("scheduled-churn");
  SweepOptions options;
  options.replications = 5000000;  // would take hours if a point ever ran
  try {
    (void)run_sweep(spec, {}, {parse_axis("schedule=0:down@10,up@30")}, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kBadValue);
    EXPECT_EQ(e.key(), "schedule");
  }
}

TEST(CliSweepAxis, ScheduleTimelinesAreListValuesNotRanges) {
  // Schedule strings carry their own colons; the lo:hi:step detector must not
  // eat them (non-numeric segments fall back to the list grammar).
  const SweepAxis axis = parse_axis("schedule=0:down@10-20,0:down@10-60");
  ASSERT_EQ(axis.values.size(), 2u);
  EXPECT_EQ(axis.values[0], "0:down@10-20");
  EXPECT_EQ(axis.values[1], "0:down@10-60");
  // Numeric ranges keep working.
  EXPECT_EQ(parse_axis("gain=0:1:0.5").values.size(), 3u);
}

TEST(CliSweep, RunsTheGridAndReportsMeans) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.replications = 8;
  options.threads = 1;
  options.seed = lbsim::test::kFixedSeed;
  const SweepResult result = run_sweep(spec, {}, {parse_axis("gain=0.2,0.4")}, options);
  ASSERT_EQ(result.table.rows(), 2u);
  for (std::size_t r = 0; r < result.table.rows(); ++r) {
    const double mean = std::stod(result.table.row(r).at(1));
    EXPECT_GT(mean, 0.0);
    EXPECT_LT(mean, 1000.0);
  }
  EXPECT_GT(result.metadata.wall_seconds, 0.0);
}

TEST(CliSweep, QuantileColumnsAreOrderedAndBracketTheMean) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.replications = 60;
  options.threads = 1;
  options.seed = lbsim::test::kFixedSeed;
  options.quantiles = true;
  const SweepResult result = run_sweep(spec, {}, {parse_axis("gain=0.2,0.4")}, options);
  const auto& header = result.table.header();
  // Columns: gain + 7 MC stats, then the quantile block.
  ASSERT_EQ(header.size(), 11u);
  EXPECT_EQ(header[8], "p50_s");
  EXPECT_EQ(header[9], "p90_s");
  EXPECT_EQ(header[10], "p99_s");
  for (std::size_t r = 0; r < result.table.rows(); ++r) {
    const double p50 = std::stod(result.table.row(r).at(8));
    const double p90 = std::stod(result.table.row(r).at(9));
    const double p99 = std::stod(result.table.row(r).at(10));
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
  }
}

TEST(CliSweep, EcdfColumnsAreTheExactQuantileFunction) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.replications = 40;
  options.threads = 1;
  options.seed = lbsim::test::kFixedSeed;
  options.ecdf_points = 4;
  const SweepResult result = run_sweep(spec, {}, {parse_axis("gain=0.3,0.5")}, options);
  const auto& header = result.table.header();
  ASSERT_EQ(header.size(), 13u);  // gain + 7 stats + 5 quantile-grid columns
  EXPECT_EQ(header[8], "q0_s");
  EXPECT_EQ(header[9], "q25_s");
  EXPECT_EQ(header[12], "q100_s");
  for (std::size_t r = 0; r < result.table.rows(); ++r) {
    // q0..q100 is the sorted sample's quantile function: non-decreasing, and
    // its extremes are the run's min/max (also available to cross-check the
    // ECDF semantics end-to-end).
    double last = 0.0;
    for (std::size_t c = 8; c <= 12; ++c) {
      const double v = std::stod(result.table.row(r).at(c));
      EXPECT_GE(v, last) << "row " << r << " col " << c;
      last = v;
    }
  }
}

TEST(CliSweep, CompareTheoryJoinsSolverAndMarksNoSolverPoints) {
  // policy=none stays inside the regeneration model; policy=lbp2 reacts to
  // failures, so its row must carry the "-" no-solver marker in all three
  // theory columns.
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.replications = 120;
  options.threads = 1;
  options.seed = lbsim::test::kFixedSeed;
  options.compare_theory = true;
  const SweepResult result =
      run_sweep(spec, {}, {parse_axis("policy=none,lbp2")}, options);
  const auto& header = result.table.header();
  ASSERT_EQ(header.size(), 11u);
  EXPECT_EQ(header[8], "theory_mean");
  EXPECT_EQ(header[9], "abs_err");
  EXPECT_EQ(header[10], "sigma_err");

  const auto& theory_row = result.table.row(0);
  // The no-transfer (100, 60) golden pin, joined onto the MC row.
  EXPECT_NEAR(std::stod(theory_row.at(8)), 141.2156, 1e-3);
  EXPECT_LT(std::fabs(std::stod(theory_row.at(10))), 4.0);  // |sigma_err| gate

  const auto& marker_row = result.table.row(1);
  EXPECT_EQ(marker_row.at(8), "-");
  EXPECT_EQ(marker_row.at(9), "-");
  EXPECT_EQ(marker_row.at(10), "-");
}

TEST(CliSweep, McAxesTargetTheEngineNotTheScenario) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  SweepOptions options;
  options.threads = 1;
  options.seed = lbsim::test::kFixedSeed;
  const SweepResult result = run_sweep(spec, {}, {parse_axis("mc.reps=4,8")}, options);
  ASSERT_EQ(result.table.rows(), 2u);
  // The reps column (index 4: mean, ci95, stderr, reps) reflects the axis.
  EXPECT_EQ(result.table.row(0).at(4), "4");
  EXPECT_EQ(result.table.row(1).at(4), "8");
}

}  // namespace
}  // namespace lbsim::cli
