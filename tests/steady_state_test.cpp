// Validation tests for the steady-state (open-system) engine: the stationary
// sojourn-time estimate must agree with the exact M/M/1 law at no-churn
// points across the load range, must *disagree* once churn is switched on
// (the engine can discriminate the paper's failure regime from the clean
// queue), and the MSER-5 warm-up detector must actually find a biased start.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline.hpp"
#include "markov/params.hpp"
#include "mc/scenario.hpp"
#include "mc/steady.hpp"
#include "sim/simulator.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/steady_state.hpp"
#include "test_support.hpp"

namespace lbsim::mc {
namespace {

/// Two homogeneous unit-rate nodes fed by an unbounded Poisson stream split
/// uniformly: each node is an independent M/M/1(rho/ node, 1), stationary
/// sojourn ~ Exp(1 - rho).
ScenarioConfig open_mm1_scenario(double rho, std::size_t tasks) {
  ScenarioConfig config;
  config.params.nodes = {markov::NodeParams{1.0, 0.0, 0.0}, markov::NodeParams{1.0, 0.0, 0.0}};
  config.workloads = {0, 0};
  config.policy = std::make_unique<core::NoBalancingPolicy>();
  config.churn_enabled = false;
  config.arrivals.process = env::ArrivalSpec::Process::kPoisson;
  config.arrivals.rate = 2.0 * rho;  // rho per node after the uniform split
  config.arrivals.unbounded = true;
  config.arrivals.target = -1;
  config.steady.tasks = tasks;
  config.steady.batches = 32;
  return config;
}

TEST(SteadyEngineTest, StationaryMeanMatchesMm1AcrossLoads) {
  // Heavier load needs a longer window: autocorrelation time grows ~1/(1-rho)^2.
  const struct {
    double rho;
    std::size_t tasks;
  } points[] = {{0.3, 20000}, {0.7, 40000}, {0.9, 120000}};
  for (const auto& pt : points) {
    const ScenarioConfig config = open_mm1_scenario(pt.rho, pt.tasks);
    const OpenTheory theory = map_to_open_theory(config);
    ASSERT_TRUE(theory.ok) << theory.reason;
    ASSERT_TRUE(theory.has_law);
    EXPECT_NEAR(theory.mean, 1.0 / (1.0 - pt.rho), 1e-12);

    SteadyConfig sc;
    sc.seed = test::kFixedSeed;
    const SteadyResult result = run_steady(config, sc);
    EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(), theory.mean, 4.0)
        << "rho = " << pt.rho;
    // The exact law pins the quantiles too: median ln(2)/(1-rho) within 10%.
    EXPECT_NEAR_REL(result.p50, std::log(2.0) / (1.0 - pt.rho), 0.10);
  }
}

TEST(SteadyEngineTest, ChurnShiftsStationarySojournBeyondNoise) {
  // Same offered load, but the servers now fail and recover (availability
  // 5/6): sojourns must sit far above the clean-M/M/1 mean — the steady
  // engine resolves the paper's churn effect, not just the queueing baseline.
  ScenarioConfig config = open_mm1_scenario(0.5, 40000);
  for (markov::NodeParams& node : config.params.nodes) {
    node.lambda_f = 0.05;
    node.lambda_r = 0.25;
  }
  config.churn_enabled = true;
  EXPECT_FALSE(map_to_open_theory(config).ok);  // no closed form under churn

  SteadyConfig sc;
  sc.seed = test::kFixedSeed;
  const SteadyResult result = run_steady(config, sc);
  const double clean_mean = 1.0 / (1.0 - 0.5);
  EXPECT_GT(result.mean(), clean_mean);
  EXPECT_GT((result.mean() - clean_mean) / result.std_error(), 4.0);
  EXPECT_GT(result.mean_failures, 0.0);
}

TEST(SteadyEngineTest, Mser5FindsSyntheticBiasedStart) {
  // 300 observations stuck at a level 25x the stationary mean, then 3000
  // stationary Exp(1) draws: MSER-5 must cut at least the biased prefix (and
  // not gut the series — the cap keeps it under half).
  stoch::RngStream rng(test::kFixedSeed);
  std::vector<double> series;
  for (int i = 0; i < 300; ++i) series.push_back(25.0 + rng.uniform(-0.5, 0.5));
  for (int i = 0; i < 3000; ++i) series.push_back(rng.exponential(1.0));
  const std::size_t cut = stoch::mser5_truncation(series);
  EXPECT_EQ(cut % 5, 0u);
  EXPECT_GE(cut, 300u);
  EXPECT_LE(cut, series.size() / 2);
  // The truncated estimate recovers the stationary mean; the raw one cannot.
  const stoch::BatchMeans truncated = stoch::batch_means(series, cut, 32);
  EXPECT_NEAR(truncated.mean, 1.0, 0.1);
  const stoch::BatchMeans raw = stoch::batch_means(series, 0, 32);
  EXPECT_GT(raw.mean, 2.0);
}

TEST(SteadyEngineTest, DeterministicAcrossThreadCounts) {
  const ScenarioConfig config = open_mm1_scenario(0.5, 5000);
  SteadyConfig serial;
  serial.seed = test::kFixedSeed;
  serial.replications = 4;
  serial.threads = 1;
  SteadyConfig parallel = serial;
  parallel.threads = 4;
  const SteadyResult a = run_steady(config, serial);
  const SteadyResult b = run_steady(config, parallel);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.std_error(), b.std_error());
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_EQ(a.warmup, b.warmup);
}

TEST(SteadyEngineTest, FiniteRunRefusesUnboundedArrivals) {
  // An unbounded stream leaves completion time undefined; only the steady
  // probe path may admit it.
  const ScenarioConfig config = open_mm1_scenario(0.5, 5000);
  EXPECT_THROW((void)run_scenario(config, 1, 0), std::invalid_argument);
  des::Simulator sim;
  EXPECT_THROW((void)run_scenario(config, 1, 0, nullptr, sim, SteadyProbe{}),
               std::invalid_argument);
}

TEST(SteadyEngineTest, SpecRejectsUnboundedWithCount) {
  env::ArrivalSpec spec;
  spec.process = env::ArrivalSpec::Process::kPoisson;
  spec.rate = 1.0;
  spec.unbounded = true;
  spec.count = 10;
  EXPECT_THROW(env::validate(spec, 2, nullptr), std::invalid_argument);
}

TEST(SteadyEngineTest, RunSteadyValidatesWindow) {
  ScenarioConfig config = open_mm1_scenario(0.5, 5000);
  SteadyConfig sc;
  sc.seed = test::kFixedSeed;

  ScenarioConfig short_window = config.clone();
  short_window.steady.tasks = 50;
  EXPECT_THROW((void)run_steady(short_window, sc), std::invalid_argument);

  ScenarioConfig bad_batches = config.clone();
  bad_batches.steady.batches = 1;
  EXPECT_THROW((void)run_steady(bad_batches, sc), std::invalid_argument);

  ScenarioConfig closed = config.clone();
  closed.arrivals.unbounded = false;
  closed.arrivals.count = 100;
  EXPECT_THROW((void)run_steady(closed, sc), std::invalid_argument);
}

}  // namespace
}  // namespace lbsim::mc
