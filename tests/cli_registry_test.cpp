// Unit tests for the scenario registry: lookup, per-family default builds,
// key overrides reaching the built mc::ScenarioConfig, and policy selection.

#include <gtest/gtest.h>

#include "cli/registry.hpp"
#include "core/periodic.hpp"
#include "markov/params.hpp"
#include "mc/engine.hpp"
#include "mc/steady.hpp"
#include "net/delay_model.hpp"
#include "net/topology.hpp"
#include "test_support.hpp"

namespace lbsim::cli {
namespace {

Config resolve(const ScenarioSpec& spec, const RawConfig& raw = {}) {
  return spec.schema.resolve(raw);
}

TEST(CliRegistry, ListsTheRegisteredFamilies) {
  const auto& registry = scenario_registry();
  ASSERT_GE(registry.size(), 7u);
  for (const char* name : {"paper-two-node", "multi-node", "many-node-churn", "churn-storm",
                           "cold-start", "periodic-rebalance", "custom-delay"}) {
    EXPECT_NO_THROW((void)find_scenario(name)) << name;
  }
}

TEST(CliRegistry, UnknownScenarioNamesKnownOnes) {
  try {
    (void)find_scenario("paper-2-node");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kUnknownKey);
    EXPECT_NE(std::string(e.what()).find("paper-two-node"), std::string::npos);
  }
}

TEST(CliRegistry, EveryFamilyBuildsAndRunsWithDefaults) {
  for (const ScenarioSpec& spec : scenario_registry()) {
    mc::ScenarioConfig scenario = spec.build(resolve(spec));
    ASSERT_GE(scenario.workloads.size(), 2u) << spec.name;
    ASSERT_NE(scenario.policy, nullptr) << spec.name;
    if (spec.steady) {
      // Infinite-horizon families run on the steady engine; one short window
      // proves the family is runnable.
      scenario.steady.tasks = 1000;
      scenario.steady.batches = 8;
      mc::SteadyConfig steady_config;
      steady_config.seed = lbsim::test::kFixedSeed;
      steady_config.threads = 1;
      const mc::SteadyResult result = mc::run_steady(scenario, steady_config);
      EXPECT_GT(result.mean(), 0.0) << spec.name;
      continue;
    }
    // Two cheap replications prove the scenario is actually runnable.
    mc::McConfig mc_config;
    mc_config.replications = 2;
    mc_config.seed = lbsim::test::kFixedSeed;
    mc_config.threads = 1;
    const mc::McResult result = mc::run_monte_carlo(scenario, mc_config);
    EXPECT_GT(result.mean(), 0.0) << spec.name;
  }
}

TEST(CliRegistry, PaperTwoNodeDefaultsMatchThePaper) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec));
  const markov::TwoNodeParams paper = markov::ipdps2006_params();
  ASSERT_EQ(scenario.params.nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[0].lambda_d, paper.nodes[0].lambda_d);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[1].lambda_d, paper.nodes[1].lambda_d);
  EXPECT_EQ(scenario.workloads, (std::vector<std::size_t>{100, 60}));
  EXPECT_EQ(scenario.policy->name(), "LBP-1(K=0.35, sender=0)");
  EXPECT_TRUE(scenario.churn_enabled);
  EXPECT_EQ(scenario.initially_down, 0u);
  EXPECT_EQ(scenario.delay_model, nullptr);  // the analytical default law
}

TEST(CliRegistry, OverridesReachTheBuiltScenario) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  RawConfig raw;
  raw.set("m0", "30");
  raw.set("m1", "70");
  raw.set("policy", "lbp2");
  raw.set("gain", "0.8");
  raw.set("churn", "off");
  raw.set("delay.model", "deterministic");
  raw.set("delay.per_task", "0.1");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  EXPECT_EQ(scenario.workloads, (std::vector<std::size_t>{30, 70}));
  EXPECT_EQ(scenario.policy->name(), "LBP-2(K=0.8)");
  EXPECT_FALSE(scenario.churn_enabled);
  EXPECT_DOUBLE_EQ(scenario.params.per_task_delay_mean, 0.1);
  ASSERT_NE(scenario.delay_model, nullptr);
  EXPECT_DOUBLE_EQ(scenario.delay_model->mean(10), 1.0);  // deterministic 0.1 * 10
}

TEST(CliRegistry, MultiNodeCyclesRateAndWorkloadLists) {
  const ScenarioSpec& spec = find_scenario("multi-node");
  RawConfig raw;
  raw.set("nodes", "5");
  raw.set("lambda_d", "1.0,2.0");
  raw.set("workloads", "10,20,30");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  ASSERT_EQ(scenario.params.nodes.size(), 5u);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[0].lambda_d, 1.0);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[1].lambda_d, 2.0);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[4].lambda_d, 1.0);
  EXPECT_EQ(scenario.workloads, (std::vector<std::size_t>{10, 20, 30, 10, 20}));
}

TEST(CliRegistry, ManyNodeChurnDefaultsCycleAndBalance) {
  const ScenarioSpec& spec = find_scenario("many-node-churn");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec));
  ASSERT_EQ(scenario.params.nodes.size(), 32u);
  EXPECT_EQ(scenario.policy->name(), "LBP-2(K=1)");
  // Imbalanced default workloads cycle with period 4.
  EXPECT_EQ(scenario.workloads[0], 120u);
  EXPECT_EQ(scenario.workloads[1], 20u);
  EXPECT_EQ(scenario.workloads[4], 120u);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[0].lambda_r, 0.25);
  EXPECT_TRUE(scenario.churn_enabled);
}

TEST(CliRegistry, DownMaskAddressesNodesPastBit31) {
  const ScenarioSpec& spec = find_scenario("many-node-churn");
  RawConfig raw;
  raw.set("nodes", "40");
  raw.set("down.mask", std::to_string(std::uint64_t{1} << 35));
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  EXPECT_EQ(scenario.initially_down, std::uint64_t{1} << 35);
  // Two cheap replications prove a 40-node scenario with a wide mask runs.
  mc::McConfig mc_config;
  mc_config.replications = 2;
  mc_config.seed = lbsim::test::kFixedSeed;
  mc_config.threads = 1;
  EXPECT_GT(mc::run_monte_carlo(scenario, mc_config).mean(), 0.0);
}

TEST(CliRegistry, ChurnStormScalesTheMeasuredRates) {
  const ScenarioSpec& spec = find_scenario("churn-storm");
  RawConfig raw;
  raw.set("failure.scale", "4");
  raw.set("recovery.scale", "2");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  const markov::TwoNodeParams paper = markov::ipdps2006_params();
  EXPECT_NEAR(scenario.params.nodes[0].lambda_f, 4.0 * paper.nodes[0].lambda_f, 1e-12);
  EXPECT_NEAR(scenario.params.nodes[1].lambda_r, 2.0 * paper.nodes[1].lambda_r, 1e-12);
}

TEST(CliRegistry, ColdStartDefaultsNodeZeroDownButHonoursExplicitMask) {
  const ScenarioSpec& spec = find_scenario("cold-start");
  EXPECT_EQ(spec.build(resolve(spec)).initially_down, 0b01u);
  RawConfig raw;
  raw.set("down.mask", "2");
  EXPECT_EQ(spec.build(resolve(spec, raw)).initially_down, 0b10u);
}

TEST(CliRegistry, PeriodicRebalanceWiresTheTimer) {
  const ScenarioSpec& spec = find_scenario("periodic-rebalance");
  RawConfig raw;
  raw.set("period", "5");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  EXPECT_DOUBLE_EQ(scenario.rebalance_period, 5.0);
  EXPECT_NE(dynamic_cast<core::PeriodicRebalancePolicy*>(scenario.policy.get()), nullptr);
}

TEST(CliRegistry, CustomDelayDefaultsToTheTestbedErlangLaw) {
  const ScenarioSpec& spec = find_scenario("custom-delay");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec));
  ASSERT_NE(scenario.delay_model, nullptr);
  EXPECT_NE(dynamic_cast<net::ErlangPerTaskDelay*>(scenario.delay_model.get()), nullptr);
}

TEST(CliRegistry, Lbp1SenderAutoPicksTheMoreLoadedNode) {
  const ScenarioSpec& spec = find_scenario("paper-two-node");
  RawConfig raw;
  raw.set("m0", "10");
  raw.set("m1", "90");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  EXPECT_EQ(scenario.policy->name(), "LBP-1(K=0.35, sender=1)");
}

// ---------- env-driven families ----------

TEST(CliRegistry, CorrelatedChurnBuildsTheCalmStormEnvironment) {
  const ScenarioSpec& spec = find_scenario("correlated-churn");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec));
  ASSERT_TRUE(scenario.environment.enabled());
  EXPECT_EQ(scenario.environment.states, 2u);
  EXPECT_EQ(scenario.environment.failure_mult, (std::vector<double>{1.0, 10.0}));
  EXPECT_DOUBLE_EQ(scenario.environment.rate(0, 1), 0.05);
  EXPECT_DOUBLE_EQ(scenario.environment.rate(1, 0), 0.2);
  // Defaults reduce to the paper's two nodes.
  ASSERT_EQ(scenario.params.nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[0].lambda_d, 1.08);
  EXPECT_DOUBLE_EQ(scenario.params.nodes[1].lambda_r, 0.05);
}

TEST(CliRegistry, GeneralKStateEnvironmentNeedsExplicitMultAndGen) {
  const ScenarioSpec& spec = find_scenario("correlated-churn");
  RawConfig raw;
  raw.set("env.states", "3");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);  // no env.mult
  raw.set("env.mult", "1,4,16");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);  // no env.gen
  raw.set("env.gen", "0,0.1,0, 0.2,0,0.1, 0,0.3,0");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec, raw));
  EXPECT_EQ(scenario.environment.states, 3u);
  EXPECT_DOUBLE_EQ(scenario.environment.rate(2, 1), 0.3);
  // env.start must name a state.
  raw.set("env.start", "3");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);
}

TEST(CliRegistry, OpenArrivalsBuildsEnvironmentOnlyWhenAsked) {
  const ScenarioSpec& spec = find_scenario("open-arrivals");
  const mc::ScenarioConfig poisson = spec.build(resolve(spec));
  EXPECT_FALSE(poisson.environment.enabled());
  EXPECT_TRUE(poisson.arrivals.active());
  EXPECT_EQ(poisson.arrivals.process, env::ArrivalSpec::Process::kPoisson);

  RawConfig raw;
  raw.set("arrivals.process", "mmpp");
  raw.set("arrivals.rates", "0.02");
  const mc::ScenarioConfig mmpp = spec.build(resolve(spec, raw));
  ASSERT_TRUE(mmpp.environment.enabled());
  // Single-entry rate list cycles to the environment's state count.
  EXPECT_EQ(mmpp.arrivals.state_rates, (std::vector<double>{0.02, 0.02}));
}

TEST(CliRegistry, ScheduledChurnDefaultsStochasticChurnOff) {
  const ScenarioSpec& spec = find_scenario("scheduled-churn");
  const mc::ScenarioConfig scenario = spec.build(resolve(spec));
  EXPECT_FALSE(scenario.churn_enabled);
  EXPECT_TRUE(scenario.schedule.scheduled(0));
  // Malformed timelines surface as ConfigError on the schedule key, and node
  // ids outside the system fail at build time, not mid-replication.
  RawConfig raw;
  raw.set("schedule", "0:flip@3");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);
  raw.set("schedule", "7:down@1-2");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);
  // Non-finite times parse under strtod but must be rejected here — a NaN
  // would defeat the interval checks and abort mid-replication instead.
  raw.set("schedule", "0:down@nan");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);
  raw.set("schedule", "0:down@1-nan");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);
  raw.set("schedule", "0:down@inf");
  EXPECT_THROW((void)spec.build(resolve(spec, raw)), ConfigError);
}

TEST(CliRegistry, EnvKeyTyposGetDidYouMeanSuggestions) {
  // The did-you-mean machinery must cover the new key groups.
  const auto expect_suggests = [](const char* family, const char* typo,
                                  const char* suggestion) {
    const ScenarioSpec& spec = find_scenario(family);
    RawConfig raw;
    raw.set(typo, "1");
    try {
      (void)spec.schema.resolve(raw);
      FAIL() << typo;
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.kind(), ConfigError::Kind::kUnknownKey);
      EXPECT_NE(std::string(e.what()).find(suggestion), std::string::npos)
          << e.what() << " should suggest " << suggestion;
    }
  };
  expect_suggests("correlated-churn", "env.storm.mul", "env.storm.mult");
  expect_suggests("correlated-churn", "env.stats", "env.states");
  expect_suggests("open-arrivals", "arrivals.procss", "arrivals.process");
  expect_suggests("scheduled-churn", "schedul", "schedule");
  expect_suggests("graph-rr", "topology.degre", "topology.degree");
  expect_suggests("graph-ring", "topolgy", "topology");
}

TEST(CliRegistry, GraphFamiliesBuildTheirTopologySpecs) {
  const ScenarioSpec& ring = find_scenario("graph-ring");
  const mc::ScenarioConfig ring_scenario = ring.build(resolve(ring));
  EXPECT_EQ(ring_scenario.topology.kind, net::TopologySpec::Kind::kRing);
  EXPECT_GT(ring_scenario.rebalance_period, 0.0);  // diffusion runs off the round timer
  EXPECT_EQ(ring_scenario.policy->name(), "Diffusion(alpha=0.5)");

  const ScenarioSpec& torus = find_scenario("graph-torus");
  const mc::ScenarioConfig torus_scenario = torus.build(resolve(torus));
  EXPECT_EQ(torus_scenario.topology.kind, net::TopologySpec::Kind::kTorus);

  const ScenarioSpec& rr = find_scenario("graph-rr");
  const mc::ScenarioConfig rr_scenario = rr.build(resolve(rr));
  EXPECT_EQ(rr_scenario.topology.kind, net::TopologySpec::Kind::kRandomRegular);
  EXPECT_EQ(rr_scenario.topology.degree, 4u);
  EXPECT_EQ(rr_scenario.policy->name(), "RandomProbe(d=2)");
  EXPECT_TRUE(rr_scenario.policy->needs_rng());

  // topology=complete takes the historical path (no restriction at all).
  RawConfig raw;
  raw.set("topology", "complete");
  raw.set("policy", "lbp2");
  const mc::ScenarioConfig complete_scenario = ring.build(resolve(ring, raw));
  EXPECT_TRUE(complete_scenario.topology.complete());
  EXPECT_EQ(complete_scenario.rebalance_period, 0.0);
}

TEST(CliRegistry, GraphFamiliesRejectBadConfigurationsAtBuildTime) {
  const ScenarioSpec& rr = find_scenario("graph-rr");
  // Global-state policies cannot run on a sparse graph.
  RawConfig raw;
  raw.set("policy", "lbp2");
  EXPECT_THROW((void)rr.build(resolve(rr, raw)), ConfigError);
  // Infeasible degree: odd n * odd d violates the handshake lemma.
  raw = {};
  raw.set("nodes", "9");
  raw.set("topology.degree", "3");
  EXPECT_THROW((void)rr.build(resolve(rr, raw)), ConfigError);
  // Edge churn needs the environment CTMC that drives it.
  raw = {};
  raw.set("topology.churn.drop", "0.5");
  EXPECT_THROW((void)rr.build(resolve(rr, raw)), ConfigError);
  // A prime node count has no torus factorisation.
  const ScenarioSpec& torus = find_scenario("graph-torus");
  raw = {};
  raw.set("nodes", "13");
  EXPECT_THROW((void)torus.build(resolve(torus, raw)), ConfigError);
  // Explicit dims must multiply to the node count.
  raw = {};
  raw.set("nodes", "16");
  raw.set("topology.rows", "3");
  raw.set("topology.cols", "5");
  EXPECT_THROW((void)torus.build(resolve(torus, raw)), ConfigError);
}

TEST(CliRegistry, FiniteFamilyRefusesZeroArrivalCount) {
  // count = 0 used to silently disable the stream; now that unbounded streams
  // exist (open-steady), a finite family must reject it outright so "no
  // arrivals" cannot be confused with "infinite arrivals".
  const ScenarioSpec& spec = find_scenario("open-arrivals");
  RawConfig raw;
  raw.set("arrivals.count", "0");
  try {
    (void)resolve(spec, raw);
    FAIL() << "arrivals.count=0 should be out of range";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kOutOfRange);
  }
}

TEST(CliRegistry, OpenSteadyBuildsUnboundedStreamAndDerivesRate) {
  const ScenarioSpec& spec = find_scenario("open-steady");
  EXPECT_TRUE(spec.steady);
  const mc::ScenarioConfig scenario = spec.build(resolve(spec));
  EXPECT_TRUE(scenario.arrivals.unbounded);
  EXPECT_EQ(scenario.arrivals.count, 0u);
  EXPECT_TRUE(scenario.steady.enabled);
  // Default rho = 0.5 over 2 nodes of lambda_d = (1.08, 1.86):
  // rate = rho * sum(lambda_d).
  EXPECT_NEAR(scenario.arrivals.rate, 0.5 * (1.08 + 1.86), 1e-12);
  // An explicit rate wins over the rho derivation.
  RawConfig raw;
  raw.set("arrivals.rate", "0.8");
  EXPECT_DOUBLE_EQ(spec.build(resolve(spec, raw)).arrivals.rate, 0.8);
}

}  // namespace
}  // namespace lbsim::cli
