// Unit tests for statistics, histograms, ECDF/KS, and the parameter fits that
// back the Fig. 1 / Fig. 2 reproductions.

#include <gtest/gtest.h>

#include <cmath>

#include "stochastic/fit.hpp"
#include "stochastic/histogram.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::stoch {
namespace {

TEST(RunningStatsTest, MeanVarianceAgainstHandComputed) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RngStream rng(8);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, StdErrorShrinksWithN) {
  RngStream rng(3);
  RunningStats small, big;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) big.add(rng.uniform01());
  EXPECT_GT(small.std_error(), big.std_error());
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> data{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 5.0);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(data, 1.5), std::invalid_argument);
}

TEST(EcdfTest, StepFunctionValues) {
  const Ecdf ecdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(3.9), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(99.0), 1.0);
}

TEST(EcdfTest, KsDistanceBetweenIdenticalSamplesIsZero) {
  const Ecdf a({1.0, 2.0, 3.0});
  const Ecdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(EcdfTest, KsDistanceDetectsShift) {
  std::vector<double> xs, ys;
  RngStream rng(4);
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng.exponential(1.0));
    ys.push_back(rng.exponential(1.0) + 1.0);
  }
  EXPECT_GT(ks_distance(Ecdf(std::move(xs)), Ecdf(std::move(ys))), 0.3);
}

TEST(EcdfTest, KsAgainstTrueCurveSmallForMatchingLaw) {
  RngStream rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(2.0));
  const Ecdf ecdf(std::move(xs));
  std::vector<double> grid, ref;
  for (double t = 0.0; t < 3.0; t += 0.05) {
    grid.push_back(t);
    ref.push_back(1.0 - std::exp(-2.0 * t));
  }
  EXPECT_LT(ks_distance_to_curve(ecdf, grid, ref), 0.03);
}

// ---------- histogram ----------

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h(0.0, 10.0, 50);
  RngStream rng(6);
  for (int i = 0; i < 20000; ++i) h.add(rng.uniform(0.0, 10.0));
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) integral += h.density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, OverflowUnderflowCounted) {
  Histogram h(0.0, 1.0, 10);
  h.add(-0.5);
  h.add(0.5);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_in_range(), 1u);
}

TEST(HistogramTest, BinCentersAndCounts) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_THROW((void)h.count(4), std::invalid_argument);
}

TEST(HistogramTest, ExponentialShapeDecreasing) {
  // Fig. 1 sanity: an exponential sample's histogram is (noisily) decreasing.
  Histogram h(0.0, 4.0, 8);
  RngStream rng(7);
  for (int i = 0; i < 100000; ++i) h.add(rng.exponential(1.08));
  EXPECT_GT(h.density(0), h.density(3));
  EXPECT_GT(h.density(3), h.density(7));
}

// ---------- fits ----------

TEST(FitTest, ExponentialMleRecoversRate) {
  RngStream rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.exponential(1.86));
  const ExponentialFit fit = fit_exponential(xs);
  EXPECT_NEAR(fit.rate, 1.86, 0.05);
  EXPECT_NEAR(fit.mean, 1.0 / 1.86, 0.01);
}

TEST(FitTest, ExponentialFitRejectsBadInput) {
  EXPECT_THROW((void)fit_exponential({}), std::invalid_argument);
  EXPECT_THROW((void)fit_exponential({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_exponential({0.0, 0.0}), std::invalid_argument);
}

TEST(FitTest, ShiftedExponentialFindsShift) {
  RngStream rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(0.5 + rng.exponential(4.0));
  double shift = 0.0;
  const ExponentialFit fit = fit_shifted_exponential(xs, &shift);
  EXPECT_NEAR(shift, 0.5, 0.01);
  EXPECT_NEAR(fit.rate, 4.0, 0.15);
}

TEST(FitTest, LinearFitExactOnLine) {
  // Fig. 2 bottom: mean delay vs task count is linear; the fit must nail an
  // exact line.
  std::vector<double> x, y;
  for (int i = 1; i <= 100; ++i) {
    x.push_back(i);
    y.push_back(0.02 * i + 0.005);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.02, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.005, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitTest, LinearFitNoisyStillClose) {
  RngStream rng(12);
  std::vector<double> x, y;
  for (int i = 1; i <= 200; ++i) {
    x.push_back(i);
    y.push_back(0.02 * i + rng.uniform(-0.05, 0.05));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.02, 0.002);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitTest, LinearFitRejectsDegenerate) {
  EXPECT_THROW((void)fit_linear({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_linear({1.0, 1.0}, {2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_linear({1.0, 2.0}, {2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace lbsim::stoch
