// Unit tests for statistics, histograms, ECDF/KS, and the parameter fits that
// back the Fig. 1 / Fig. 2 reproductions.

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "stochastic/fit.hpp"
#include "stochastic/histogram.hpp"
#include "stochastic/quantile_sketch.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"
#include "stochastic/steady_state.hpp"

namespace lbsim::stoch {
namespace {

TEST(RunningStatsTest, MeanVarianceAgainstHandComputed) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RngStream rng(8);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, StdErrorShrinksWithN) {
  RngStream rng(3);
  RunningStats small, big;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) big.add(rng.uniform01());
  EXPECT_GT(small.std_error(), big.std_error());
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> data{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 5.0);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(data, 1.5), std::invalid_argument);
}

TEST(QuantileTest, SingleSampleIsEveryQuantile) {
  for (const double q : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile({7.5}, q), 7.5);
  }
}

TEST(QuantileTest, DuplicatesAndUnsortedInput) {
  // Ties collapse the interpolation; order of the input must not matter.
  const std::vector<double> data{3.0, 1.0, 3.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 3.0);
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.1, 0.37, 0.5, 0.82, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(data, q), quantile_sorted(sorted, q)) << "q=" << q;
  }
}

TEST(QuantileTest, RandomDataMatchesSortedDefinition) {
  // Property: for any sample, quantile() == the type-7 formula applied to the
  // sorted data, and quantiles are monotone in q.
  RngStream rng(13);
  std::vector<double> data;
  for (int i = 0; i < 257; ++i) data.push_back(rng.exponential(0.5));
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  double last = sorted.front();
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double value = quantile(data, q);
    EXPECT_DOUBLE_EQ(value, quantile_sorted(sorted, q));
    EXPECT_GE(value + 1e-15, last);
    last = value;
  }
}

TEST(EcdfTest, SingleSampleAndDuplicates) {
  const Ecdf one({2.0});
  EXPECT_DOUBLE_EQ(one(1.9), 0.0);
  EXPECT_DOUBLE_EQ(one(2.0), 1.0);
  const Ecdf dup({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(dup(0.999), 0.0);
  EXPECT_DOUBLE_EQ(dup(1.0), 1.0);
  EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

TEST(EcdfTest, UnsortedInputSortsOnConstruction) {
  const Ecdf ecdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_TRUE(std::is_sorted(ecdf.sorted_samples().begin(), ecdf.sorted_samples().end()));
  EXPECT_DOUBLE_EQ(ecdf(2.5), 0.5);
}

TEST(EcdfTest, StepFunctionValues) {
  const Ecdf ecdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(3.9), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(99.0), 1.0);
}

TEST(EcdfTest, KsDistanceBetweenIdenticalSamplesIsZero) {
  const Ecdf a({1.0, 2.0, 3.0});
  const Ecdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(EcdfTest, KsDistanceDetectsShift) {
  std::vector<double> xs, ys;
  RngStream rng(4);
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng.exponential(1.0));
    ys.push_back(rng.exponential(1.0) + 1.0);
  }
  EXPECT_GT(ks_distance(Ecdf(std::move(xs)), Ecdf(std::move(ys))), 0.3);
}

TEST(EcdfTest, KsAgainstTrueCurveSmallForMatchingLaw) {
  RngStream rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(2.0));
  const Ecdf ecdf(std::move(xs));
  std::vector<double> grid, ref;
  for (double t = 0.0; t < 3.0; t += 0.05) {
    grid.push_back(t);
    ref.push_back(1.0 - std::exp(-2.0 * t));
  }
  EXPECT_LT(ks_distance_to_curve(ecdf, grid, ref), 0.03);
}

// ---------- streaming quantiles (P²) ----------

TEST(P2QuantileTest, ExactBelowFiveObservations) {
  P2Quantile median(0.5);
  EXPECT_THROW((void)median.estimate(), std::invalid_argument);
  median.add(9.0);
  EXPECT_DOUBLE_EQ(median.estimate(), 9.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.estimate(), 5.0);  // type-7 over {1, 9}
  median.add(5.0);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.estimate(), 4.0);  // type-7 over {1, 3, 5, 9}
}

TEST(P2QuantileTest, RejectsOutOfRangeTarget) {
  EXPECT_THROW(P2Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.1), std::invalid_argument);
}

TEST(P2QuantileTest, DuplicateHeavySampleStaysInRange) {
  P2Quantile p90(0.9);
  for (int i = 0; i < 1000; ++i) p90.add(i % 10 == 0 ? 2.0 : 1.0);
  EXPECT_GE(p90.estimate(), 1.0);
  EXPECT_LE(p90.estimate(), 2.0);
}

TEST(P2QuantileTest, TracksExactQuantilesOnRandomData) {
  // Property: on iid exponential data the streaming estimate lands within a
  // few percent of the exact type-7 quantile, for several targets and sizes.
  RngStream rng(14);
  for (const double q : {0.5, 0.9, 0.99}) {
    for (const int n : {500, 5000}) {
      P2Quantile sketch(q);
      std::vector<double> data;
      data.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(1.0);
        sketch.add(x);
        data.push_back(x);
      }
      const double exact = quantile(data, q);
      EXPECT_NEAR(sketch.estimate(), exact, 0.12 * exact + 0.02)
          << "q=" << q << " n=" << n;
    }
  }
}

TEST(P2QuantileTest, ExtremeTargetsTrackMinAndMax) {
  RngStream rng(15);
  P2Quantile lo(0.0);
  P2Quantile hi(1.0);
  double min = 1e300;
  double max = -1e300;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    lo.add(x);
    hi.add(x);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_DOUBLE_EQ(lo.estimate(), min);
  EXPECT_DOUBLE_EQ(hi.estimate(), max);
}

TEST(P2QuantileTest, CombineEstimatesIsCountWeighted) {
  EXPECT_DOUBLE_EQ(combine_estimates({{100, 2.0}, {300, 4.0}}), 3.5);
  EXPECT_DOUBLE_EQ(combine_estimates({{0, 99.0}, {10, 1.0}}), 1.0);
  EXPECT_DOUBLE_EQ(combine_estimates({}), 0.0);
}

// ---------- histogram ----------

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h(0.0, 10.0, 50);
  RngStream rng(6);
  for (int i = 0; i < 20000; ++i) h.add(rng.uniform(0.0, 10.0));
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) integral += h.density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, OverflowUnderflowCounted) {
  Histogram h(0.0, 1.0, 10);
  h.add(-0.5);
  h.add(0.5);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_in_range(), 1u);
}

TEST(HistogramTest, BinCentersAndCounts) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_THROW((void)h.count(4), std::invalid_argument);
}

TEST(HistogramTest, ExponentialShapeDecreasing) {
  // Fig. 1 sanity: an exponential sample's histogram is (noisily) decreasing.
  Histogram h(0.0, 4.0, 8);
  RngStream rng(7);
  for (int i = 0; i < 100000; ++i) h.add(rng.exponential(1.08));
  EXPECT_GT(h.density(0), h.density(3));
  EXPECT_GT(h.density(3), h.density(7));
}

// ---------- fits ----------

TEST(FitTest, ExponentialMleRecoversRate) {
  RngStream rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.exponential(1.86));
  const ExponentialFit fit = fit_exponential(xs);
  EXPECT_NEAR(fit.rate, 1.86, 0.05);
  EXPECT_NEAR(fit.mean, 1.0 / 1.86, 0.01);
}

TEST(FitTest, ExponentialFitRejectsBadInput) {
  EXPECT_THROW((void)fit_exponential({}), std::invalid_argument);
  EXPECT_THROW((void)fit_exponential({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_exponential({0.0, 0.0}), std::invalid_argument);
}

TEST(FitTest, ShiftedExponentialFindsShift) {
  RngStream rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(0.5 + rng.exponential(4.0));
  double shift = 0.0;
  const ExponentialFit fit = fit_shifted_exponential(xs, &shift);
  EXPECT_NEAR(shift, 0.5, 0.01);
  EXPECT_NEAR(fit.rate, 4.0, 0.15);
}

TEST(FitTest, LinearFitExactOnLine) {
  // Fig. 2 bottom: mean delay vs task count is linear; the fit must nail an
  // exact line.
  std::vector<double> x, y;
  for (int i = 1; i <= 100; ++i) {
    x.push_back(i);
    y.push_back(0.02 * i + 0.005);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.02, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.005, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitTest, LinearFitNoisyStillClose) {
  RngStream rng(12);
  std::vector<double> x, y;
  for (int i = 1; i <= 200; ++i) {
    x.push_back(i);
    y.push_back(0.02 * i + rng.uniform(-0.05, 0.05));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.02, 0.002);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitTest, LinearFitRejectsDegenerate) {
  EXPECT_THROW((void)fit_linear({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_linear({1.0, 1.0}, {2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_linear({1.0, 2.0}, {2.0}), std::invalid_argument);
}

// ---------- steady-state analysis: lag-1, MSER-5, batch means ----------

TEST(SteadyStateTest, Lag1AutocorrelationEdgeCases) {
  EXPECT_DOUBLE_EQ(lag1_autocorrelation({}), 0.0);
  EXPECT_DOUBLE_EQ(lag1_autocorrelation({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(lag1_autocorrelation({3.0, 3.0, 3.0, 3.0}), 0.0);
}

TEST(SteadyStateTest, Lag1AutocorrelationSignMatchesStructure) {
  // A strongly persistent series has lag1 near +1; an alternating one near -1.
  std::vector<double> trend, alternating;
  for (int i = 0; i < 200; ++i) {
    trend.push_back(static_cast<double>(i));
    alternating.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_GT(lag1_autocorrelation(trend), 0.9);
  EXPECT_LT(lag1_autocorrelation(alternating), -0.9);
  RngStream rng(41);
  std::vector<double> iid;
  for (int i = 0; i < 4000; ++i) iid.push_back(rng.exponential(1.0));
  EXPECT_LT(std::fabs(lag1_autocorrelation(iid)), 0.05);
}

TEST(SteadyStateTest, BatchMeansInvariants) {
  // 3210 points, offset 10 -> 3200 usable, 32 batches of exactly 100.
  RngStream rng(42);
  std::vector<double> series;
  for (int i = 0; i < 3210; ++i) series.push_back(rng.exponential(1.0));
  const BatchMeans bm = batch_means(series, 10, 32);
  EXPECT_EQ(bm.batches, 32u);
  EXPECT_EQ(bm.batch_size, 100u);
  EXPECT_EQ(bm.observations, 3200u);
  ASSERT_EQ(bm.means.size(), 32u);
  // Grand mean equals the mean of the consumed observations.
  double sum = 0.0;
  for (std::size_t i = 10; i < 3210; ++i) sum += series[i];
  EXPECT_NEAR(bm.mean, sum / 3200.0, 1e-12);
  EXPECT_DOUBLE_EQ(bm.ci95(), 1.96 * bm.std_error);
  EXPECT_DOUBLE_EQ(bm.lag1_gate, 2.576 / std::sqrt(32.0));

  // A ragged tail is dropped: 3205 usable points still give batches of 100.
  const BatchMeans ragged = batch_means(series, 5, 32);
  EXPECT_EQ(ragged.batch_size, 100u);
  EXPECT_EQ(ragged.observations, 3200u);
}

TEST(SteadyStateTest, BatchMeansRejectsDegenerateInput) {
  const std::vector<double> series(50, 1.0);
  EXPECT_THROW((void)batch_means(series, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)batch_means(series, 50, 2), std::invalid_argument);
  EXPECT_THROW((void)batch_means(series, 49, 2), std::invalid_argument);
}

TEST(SteadyStateTest, CiCoversTrueMeanAboutNinetyFivePercent) {
  // 200 independent trials of 3200 iid Exp(1) draws, 32 batches each: the
  // nominal-95% batch-means CI must cover the true mean 1.0 at close to the
  // nominal rate. Bounds are loose enough to be seed-stable but tight enough
  // to catch a broken standard error (a 2x-off SE lands far outside).
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    RngStream rng(1000 + static_cast<std::uint64_t>(t));
    std::vector<double> series;
    series.reserve(3200);
    for (int i = 0; i < 3200; ++i) series.push_back(rng.exponential(1.0));
    const BatchMeans bm = batch_means(series, 0, 32);
    if (std::fabs(bm.mean - 1.0) <= bm.ci95()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GE(coverage, 0.90);
  EXPECT_LE(coverage, 0.985);
}

TEST(SteadyStateTest, Lag1GuardFiresOnAr1AndStaysQuietOnIid) {
  // AR(1) with phi = 0.98 has autocorrelation time (1+phi)/(1-phi) = 99;
  // batches of 20 (640 points over 32 batches) are far too short to
  // decorrelate, so the guard must fire. A same-shape iid series must pass.
  RngStream rng(43);
  std::vector<double> ar1;
  double x = 0.0;
  for (int i = 0; i < 640; ++i) {
    x = 0.98 * x + rng.uniform(-1.0, 1.0);
    ar1.push_back(x);
  }
  const BatchMeans correlated = batch_means(ar1, 0, 32);
  EXPECT_TRUE(correlated.correlated);
  EXPECT_GT(std::fabs(correlated.lag1), correlated.lag1_gate);

  RngStream rng2(44);
  std::vector<double> iid;
  for (int i = 0; i < 3200; ++i) iid.push_back(rng2.exponential(1.0));
  const BatchMeans independent = batch_means(iid, 0, 32);
  EXPECT_FALSE(independent.correlated);
}

TEST(SteadyStateTest, SummarizePooledMeansMatchesDirectPass) {
  // Pooling two replications' batch means and summarising once must agree
  // with a direct batch_means pass over the concatenated series.
  RngStream rng(45);
  std::vector<double> a, b;
  for (int i = 0; i < 800; ++i) a.push_back(rng.exponential(2.0));
  for (int i = 0; i < 800; ++i) b.push_back(rng.exponential(2.0));
  const BatchMeans bma = batch_means(a, 0, 8);
  const BatchMeans bmb = batch_means(b, 0, 8);
  std::vector<double> pooled = bma.means;
  pooled.insert(pooled.end(), bmb.means.begin(), bmb.means.end());
  const BatchMeans summary = summarize_batch_means(pooled, bma.batch_size);

  std::vector<double> joined = a;
  joined.insert(joined.end(), b.begin(), b.end());
  const BatchMeans direct = batch_means(joined, 0, 16);
  EXPECT_EQ(summary.batches, direct.batches);
  EXPECT_EQ(summary.observations, direct.observations);
  EXPECT_NEAR(summary.mean, direct.mean, 1e-12);
  EXPECT_NEAR(summary.std_error, direct.std_error, 1e-12);
}

TEST(SteadyStateTest, Mser5ShortSeriesNeverTruncates) {
  std::vector<double> series(49, 1.0);  // < 10 blocks of 5
  EXPECT_EQ(mser5_truncation(series), 0u);
  EXPECT_EQ(mser5_truncation({}), 0u);
}

TEST(SteadyStateTest, Mser5RespectsCapAndBlockGranularity) {
  // A monotone-decreasing series keeps "improving" with truncation, so the
  // cap is what stops the search.
  std::vector<double> series;
  for (int i = 0; i < 1000; ++i) series.push_back(1000.0 - i);
  const std::size_t cut = mser5_truncation(series, 0.25);
  EXPECT_EQ(cut % 5, 0u);
  EXPECT_LE(cut, 250u);
  const std::size_t deeper = mser5_truncation(series, 0.5);
  EXPECT_GE(deeper, cut);
  EXPECT_LE(deeper, 500u);
}

}  // namespace
}  // namespace lbsim::stoch
