// Tests for the observability layer: trace record layout and arena mechanics,
// registry merge discipline, exporter round-trips, engine-level record pins,
// and — the layer's one non-negotiable invariant — bit-identity of every
// statistic between observed and unobserved runs (recording consumes zero RNG
// draws). The log-level concurrency test rides here so the TSan CI leg
// (`ctest -L "mc|obs"`) exercises it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/registry.hpp"
#include "core/lbp1.hpp"
#include "markov/params.hpp"
#include "mc/engine.hpp"
#include "mc/scenario.hpp"
#include "mc/steady.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "testbed/config.hpp"
#include "testbed/experiment.hpp"
#include "test_support.hpp"
#include "util/log.hpp"

namespace lbsim {
namespace {

mc::ScenarioConfig family_scenario(const std::string& family,
                                   std::vector<std::pair<std::string, std::string>> keys) {
  const cli::ScenarioSpec& spec = cli::find_scenario(family);
  cli::RawConfig raw;
  for (auto& [key, value] : keys) raw.set(key, value);
  return spec.build(spec.schema.resolve(raw));
}

// ---------- record layout ----------

TEST(ObsRecord, FixedThirtyTwoByteLayout) {
  EXPECT_EQ(sizeof(obs::Record), 32u);
  EXPECT_TRUE(std::is_trivially_copyable_v<obs::Record>);
  obs::Record r;
  EXPECT_EQ(r.node, -1);
  EXPECT_EQ(r.peer, -1);
  EXPECT_EQ(r.count, 0u);
}

TEST(ObsRecord, PayloadDoubleRoundTripsExactly) {
  for (const double v : {0.0, -0.0, 1.0 / 3.0, -1e308, 5e-324, 77.65501}) {
    obs::Record r;
    r.payload = obs::Record::pack_f64(v);
    EXPECT_EQ(obs::Record::pack_f64(r.payload_f64()), r.payload);
    EXPECT_EQ(r.payload_f64(), v);
  }
}

TEST(ObsRecord, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kKindCount; ++i) {
    const auto kind = static_cast<obs::Kind>(i);
    obs::Kind parsed{};
    ASSERT_TRUE(obs::parse_kind(obs::kind_name(kind), parsed)) << obs::kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  obs::Kind unused{};
  EXPECT_FALSE(obs::parse_kind("not-a-kind", unused));
  EXPECT_EQ(obs::kind_name(static_cast<obs::Kind>(obs::kKindCount)), "unknown");
}

// ---------- trace buffer arena ----------

// Spans several chunks: first chunk (256) plus multiple full 2048-record ones.
constexpr std::size_t kManyRecords =
    obs::TraceBuffer::kFirstChunkRecords + 2 * obs::TraceBuffer::kChunkRecords + 99;

obs::TraceBuffer numbered_trace(std::size_t n, std::size_t start = 0) {
  obs::TraceBuffer trace;
  for (std::size_t i = start; i < start + n; ++i) {
    trace.emit(static_cast<double>(i), obs::Kind::kTaskArrive,
               static_cast<std::int32_t>(i % 7), -1, 1, i);
  }
  return trace;
}

TEST(ObsTraceBuffer, ChunkGrowthPreservesAppendOrder) {
  const obs::TraceBuffer trace = numbered_trace(kManyRecords);
  EXPECT_EQ(trace.size(), kManyRecords);
  EXPECT_EQ(trace.count(obs::Kind::kTaskArrive), kManyRecords);
  EXPECT_EQ(trace.count(obs::Kind::kFail), 0u);
  std::size_t expected = 0;
  trace.for_each([&](const obs::Record& r) {
    EXPECT_EQ(r.payload, expected);
    EXPECT_EQ(r.node, static_cast<std::int32_t>(expected % 7));
    ++expected;
  });
  EXPECT_EQ(expected, kManyRecords);
}

TEST(ObsTraceBuffer, AppendAllConcatenatesAcrossChunkBoundaries) {
  obs::TraceBuffer sink = numbered_trace(300);
  const obs::TraceBuffer tail = numbered_trace(kManyRecords, 300);
  sink.append_all(tail);
  EXPECT_EQ(sink.size(), 300 + kManyRecords);
  EXPECT_EQ(tail.size(), kManyRecords);  // source untouched
  const std::vector<obs::Record> flat = sink.to_vector();
  ASSERT_EQ(flat.size(), 300 + kManyRecords);
  for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_EQ(flat[i].payload, i);
}

TEST(ObsTraceBuffer, AbsorbMatchesAppendAllAndEmptiesSource) {
  obs::TraceBuffer by_copy = numbered_trace(500);
  obs::TraceBuffer by_splice = numbered_trace(500);
  obs::TraceBuffer donor_a = numbered_trace(kManyRecords, 500);
  by_copy.append_all(donor_a);
  by_splice.absorb(std::move(donor_a));
  EXPECT_TRUE(donor_a.empty());
  EXPECT_EQ(by_splice.size(), by_copy.size());
  EXPECT_EQ(by_splice.to_vector(), by_copy.to_vector());
  // The spliced buffer keeps appending correctly after adopting foreign chunks.
  by_splice.emit(1.0, obs::Kind::kFail, 3);
  EXPECT_EQ(by_splice.count(obs::Kind::kFail), 1u);
  // Absorbing an empty buffer is a no-op.
  obs::TraceBuffer empty;
  const std::size_t before = by_splice.size();
  by_splice.absorb(std::move(empty));
  EXPECT_EQ(by_splice.size(), before);
}

TEST(ObsTraceBuffer, ClearDropsRecordsAndStaysUsable) {
  obs::TraceBuffer trace = numbered_trace(kManyRecords);
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  trace.emit(2.5, obs::Kind::kRecover, 1);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.to_vector()[0].kind_enum(), obs::Kind::kRecover);
}

// ---------- metrics registry ----------

TEST(ObsRegistry, InstrumentSemantics) {
  obs::Registry reg;
  reg.counter("a").add();
  reg.counter("a").add(4);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  reg.gauge("g").set(2.0);
  reg.gauge("g").max_of(1.0);  // lower value must not win
  EXPECT_EQ(reg.gauge("g").value(), 2.0);
  reg.gauge("g").max_of(7.5);
  EXPECT_EQ(reg.gauge("g").value(), 7.5);
  obs::Histogram& h = reg.histogram("h");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 7.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 4.0);
}

TEST(ObsRegistry, MergeIsCommutative) {
  const auto build = [](std::uint64_t c, double g, std::initializer_list<double> hs) {
    obs::Registry reg;
    reg.counter("shared").add(c);
    reg.counter("only_" + std::to_string(c)).add(1);
    reg.gauge("peak").max_of(g);
    for (double v : hs) reg.histogram("lat").observe(v);
    return reg;
  };
  obs::Registry ab = build(3, 1.5, {0.1, 10.0});
  obs::Registry ba = build(9, 4.0, {0.5, 1e6, -1.0});
  ab.merge(build(9, 4.0, {0.5, 1e6, -1.0}));
  ba.merge(build(3, 1.5, {0.1, 10.0}));
  EXPECT_EQ(ab.counter("shared").value(), 12u);
  EXPECT_EQ(ba.counter("shared").value(), 12u);
  EXPECT_EQ(ab.counter("only_3").value(), 1u);
  EXPECT_EQ(ab.counter("only_9").value(), 1u);
  EXPECT_EQ(ab.gauge("peak").value(), 4.0);
  EXPECT_EQ(ba.gauge("peak").value(), 4.0);
  const obs::Histogram& ha = ab.histogram("lat");
  const obs::Histogram& hb = ba.histogram("lat");
  EXPECT_EQ(ha.count(), hb.count());
  EXPECT_EQ(ha.sum(), hb.sum());
  EXPECT_EQ(ha.min(), hb.min());
  EXPECT_EQ(ha.max(), hb.max());
  for (std::size_t i = 0; i < obs::Histogram::kBucketCount; ++i) {
    ASSERT_EQ(ha.bucket(i), hb.bucket(i)) << "bucket " << i;
  }
}

TEST(ObsHistogram, BucketEdgesAreConsistent) {
  // Non-positive values land in the dedicated bucket 0.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lower(0), 0.0);
  // Mid-range values fall inside [lower(i), lower(i+1)).
  for (const double v : {1e-4, 0.02, 0.5, 1.0, 3.0, 77.65, 1e4, 1e9}) {
    const std::size_t i = obs::Histogram::bucket_index(v);
    ASSERT_GT(i, 0u) << v;
    ASSERT_LT(i, obs::Histogram::kBucketCount) << v;
    EXPECT_LE(obs::Histogram::bucket_lower(i), v) << v;
    if (i + 1 < obs::Histogram::kBucketCount) {
      EXPECT_LT(v, obs::Histogram::bucket_lower(i + 1)) << v;
    }
    // Log-linear grid: relative bucket width is bounded (1/kSubBuckets).
    if (i + 1 < obs::Histogram::kBucketCount) {
      const double lo = obs::Histogram::bucket_lower(i);
      const double hi = obs::Histogram::bucket_lower(i + 1);
      EXPECT_LE((hi - lo) / lo, 1.0 / obs::Histogram::kSubBuckets + 1e-12) << v;
    }
  }
  // Out-of-range magnitudes clamp instead of indexing out of bounds.
  EXPECT_EQ(obs::Histogram::bucket_index(1e-300), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(1e300), obs::Histogram::kBucketCount - 1);
}

TEST(ObsRegistry, WriteJsonEmitsAllSections) {
  obs::Registry reg;
  reg.counter("events").add(2);
  reg.gauge("depth").set(3.5);
  reg.histogram("lat").observe(1.0);
  std::ostringstream os;
  reg.write_json(os, 0);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 2"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---------- exporters ----------

TEST(ObsExport, JsonlRoundTripIsLossless) {
  obs::TraceBuffer trace;
  trace.emit(0.0, obs::Kind::kRepBegin, -1, -1, 0, 0);
  trace.emit(1.5, obs::Kind::kTransferSend, 0, 1, 35, obs::Record::pack_f64(1.0 / 3.0));
  trace.emit(10.0, obs::Kind::kFail, 0);
  trace.emit(30.0, obs::Kind::kRecover, 0, -1, 0, obs::Record::pack_f64(-0.0));
  obs::TraceMeta meta;
  meta.scenario = "paper-two-node";
  meta.seed = 0x5eed2006;
  meta.replications = 2;
  meta.git_revision = "deadbeef";
  std::stringstream ss;
  obs::write_jsonl(ss, trace, &meta);
  const std::string first_line = ss.str().substr(0, ss.str().find('\n'));
  EXPECT_NE(first_line.find("\"meta\""), std::string::npos);
  EXPECT_NE(first_line.find("paper-two-node"), std::string::npos);
  const std::vector<obs::Record> back = obs::read_jsonl(ss);
  EXPECT_EQ(back, trace.to_vector());
}

TEST(ObsExport, ChromeTraceMapsReplicationsToPidsAndNodesToTids) {
  obs::TraceBuffer trace;
  trace.emit(0.0, obs::Kind::kRepBegin, -1, -1, 0, 3);
  trace.emit(2.0, obs::Kind::kServiceStart, 1);
  std::ostringstream os;
  obs::write_chrome(os, trace);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 3"), std::string::npos);  // from the marker payload
  EXPECT_NE(json.find("service_start"), std::string::npos);
}

// ---------- engine-level pins ----------

TEST(ObsEngine, ScheduledChurnPinsExactFailAndRecoverRecords) {
  // The ISSUE's pin: `0:down@10-30` must surface as exactly one kFail and one
  // kRecover for node 0, at t = 10 and t = 30, per replication.
  const mc::ScenarioConfig config =
      family_scenario("scheduled-churn", {{"schedule", "0:down@10-30"}});
  obs::TraceBuffer trace;
  mc::McConfig mc;
  mc.replications = 2;
  mc.seed = test::kFixedSeed;
  mc.threads = 1;
  mc.obs.trace = &trace;
  (void)mc::run_monte_carlo(config, mc);
  EXPECT_EQ(trace.count(obs::Kind::kRepBegin), 2u);
  ASSERT_EQ(trace.count(obs::Kind::kFail), 2u);
  ASSERT_EQ(trace.count(obs::Kind::kRecover), 2u);
  trace.for_each([](const obs::Record& r) {
    if (r.kind_enum() == obs::Kind::kFail) {
      EXPECT_EQ(r.node, 0);
      EXPECT_DOUBLE_EQ(r.time, 10.0);
    }
    if (r.kind_enum() == obs::Kind::kRecover) {
      EXPECT_EQ(r.node, 0);
      EXPECT_DOUBLE_EQ(r.time, 30.0);
    }
  });
}

TEST(ObsEngine, TraceCountsAgreeWithRunStatistics) {
  const mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  obs::TraceBuffer trace;
  mc::McConfig mc;
  mc.replications = 4;
  mc.seed = test::kFixedSeed;
  mc.threads = 1;
  mc.obs.trace = &trace;
  const mc::McResult result = mc::run_monte_carlo(config, mc);
  EXPECT_EQ(trace.count(obs::Kind::kRepBegin), 4u);
  // Finite runs complete every initial task, once each.
  EXPECT_EQ(trace.count(obs::Kind::kTaskComplete), 4u * 160u);
  EXPECT_EQ(static_cast<double>(trace.count(obs::Kind::kFail)),
            result.mean_failures * 4.0);
  EXPECT_EQ(static_cast<double>(trace.count(obs::Kind::kTransferSend)),
            result.mean_bundles * 4.0);
  // Every send is eventually delivered (transfers are never lost in the
  // abstract model).
  EXPECT_EQ(trace.count(obs::Kind::kTransferDeliver),
            trace.count(obs::Kind::kTransferSend));
}

TEST(ObsEngine, TraceIsThreadCountIndependent) {
  const mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 40, 20, std::make_unique<core::Lbp1Policy>(0, 0.35));
  obs::TraceBuffer serial_trace;
  obs::TraceBuffer parallel_trace;
  mc::McConfig serial;
  serial.replications = 8;
  serial.seed = test::kFixedSeed;
  serial.threads = 1;
  serial.obs.trace = &serial_trace;
  mc::McConfig parallel = serial;
  parallel.threads = 4;
  parallel.obs.trace = &parallel_trace;
  (void)mc::run_monte_carlo(config, serial);
  (void)mc::run_monte_carlo(config, parallel);
  ASSERT_EQ(serial_trace.size(), parallel_trace.size());
  EXPECT_EQ(serial_trace.to_vector(), parallel_trace.to_vector());
}

TEST(ObsEngine, MetricsCountersMatchDriverStatistics) {
  const mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  obs::Registry metrics;
  mc::McConfig mc;
  mc.replications = 6;
  mc.seed = test::kFixedSeed;
  mc.threads = 2;
  mc.obs.metrics = &metrics;
  const mc::McResult result = mc::run_monte_carlo(config, mc);
  EXPECT_EQ(metrics.counter("mc.replications").value(), 6u);
  EXPECT_EQ(metrics.counter("mc.tasks_completed").value(), 6u * 160u);
  EXPECT_EQ(static_cast<double>(metrics.counter("mc.failures").value()),
            result.mean_failures * 6.0);
  EXPECT_GT(metrics.counter("des.events.scheduled").value(), 0u);
  EXPECT_GE(metrics.counter("des.events.scheduled").value(),
            metrics.counter("des.events.popped").value());
  EXPECT_GT(metrics.gauge("des.queue.max_depth").value(), 0.0);
  EXPECT_EQ(metrics.histogram("mc.completion_time").count(), 6u);
  EXPECT_GT(metrics.gauge("mc.reps_per_s").value(), 0.0);
}

TEST(ObsProfile, MergeSumsAndEngineFillsPhases) {
  obs::PhaseProfile a;
  a.setup_s = 1.0;
  a.loop_s = 2.0;
  a.fold_s = 0.5;
  a.reps = 3;
  obs::PhaseProfile b;
  b.loop_s = 4.0;
  b.reps = 2;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.loop_s, 6.0);
  EXPECT_DOUBLE_EQ(a.total_s(), 7.5);
  EXPECT_EQ(a.reps, 5u);

  const mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 40, 20, std::make_unique<core::Lbp1Policy>(0, 0.35));
  obs::PhaseProfile profile;
  mc::McConfig mc;
  mc.replications = 4;
  mc.seed = test::kFixedSeed;
  mc.threads = 1;
  mc.obs.profile = &profile;
  (void)mc::run_monte_carlo(config, mc);
  EXPECT_EQ(profile.reps, 4u);
  EXPECT_GT(profile.loop_s, 0.0);
  EXPECT_GE(profile.total_s(), profile.loop_s);
}

// ---------- bit identity: the invariant the whole layer hangs on ----------

TEST(ObsBitIdentity, FiniteEngineIsUnperturbedByAllThreeSinks) {
  const mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  mc::McConfig plain;
  plain.replications = 10;
  plain.seed = test::kFixedSeed;
  plain.threads = 2;
  mc::McConfig observed = plain;
  obs::TraceBuffer trace;
  obs::Registry metrics;
  obs::PhaseProfile profile;
  observed.obs.trace = &trace;
  observed.obs.metrics = &metrics;
  observed.obs.profile = &profile;
  const mc::McResult a = mc::run_monte_carlo(config, plain);
  const mc::McResult b = mc::run_monte_carlo(config, observed);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.std_error(), b.std_error());
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p90, b.p90);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.mean_failures, b.mean_failures);
  EXPECT_DOUBLE_EQ(a.mean_tasks_moved, b.mean_tasks_moved);
  EXPECT_DOUBLE_EQ(a.sojourn.mean(), b.sojourn.mean());
  EXPECT_GT(trace.size(), 0u);
}

TEST(ObsBitIdentity, SteadyEngineIsUnperturbedByAllThreeSinks) {
  mc::ScenarioConfig config = family_scenario("open-steady", {});
  config.steady.tasks = 2000;
  config.steady.batches = 8;
  mc::SteadyConfig plain;
  plain.replications = 2;
  plain.seed = test::kFixedSeed;
  plain.threads = 1;
  mc::SteadyConfig observed = plain;
  obs::TraceBuffer trace;
  obs::Registry metrics;
  obs::PhaseProfile profile;
  observed.obs.trace = &trace;
  observed.obs.metrics = &metrics;
  observed.obs.profile = &profile;
  const mc::SteadyResult a = mc::run_steady(config, plain);
  const mc::SteadyResult b = mc::run_steady(config, observed);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.std_error(), b.std_error());
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(metrics.counter("steady.replications").value(), 2u);
}

TEST(ObsBitIdentity, TestbedEngineIsUnperturbedByAllThreeSinks) {
  const testbed::TestbedConfig config =
      testbed::paper_testbed(40, 20, std::make_unique<core::Lbp1Policy>(0, 0.35));
  obs::TraceBuffer trace;
  obs::Registry metrics;
  obs::PhaseProfile profile;
  mc::ObsSinks sinks;
  sinks.trace = &trace;
  sinks.metrics = &metrics;
  sinks.profile = &profile;
  const testbed::ExperimentSummary a =
      testbed::run_experiment(config, 20, test::kFixedSeed, 2);
  const testbed::ExperimentSummary b =
      testbed::run_experiment(config, 20, test::kFixedSeed, 2, sinks);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.ci95(), b.ci95());
  EXPECT_DOUBLE_EQ(a.mean_failures, b.mean_failures);
  EXPECT_DOUBLE_EQ(a.state_age.mean(), b.state_age.mean());
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(metrics.counter("testbed.realizations").value(), 20u);
}

// ---------- log-level thread safety (exercised under the TSan CI leg) ----------

TEST(ObsLogLevel, ConcurrentLevelFlipsAndFilteredLoggingAreRaceFree) {
  // The global level is a relaxed atomic: flipping it while worker threads
  // evaluate the LBSIM_LOG threshold must be race-free (records in flight may
  // use either threshold, which is fine). Levels stay >= info so the debug
  // records are filtered and the test emits nothing.
  const util::LogLevel restore = util::log_level();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < 2000; ++i) {
        util::set_log_level((i + t) % 2 == 0 ? util::LogLevel::warn : util::LogLevel::error);
      }
    });
    threads.emplace_back([&go] {
      while (!go.load()) {
      }
      for (int i = 0; i < 2000; ++i) {
        LBSIM_DEBUG("obs_test", "filtered " << i);
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  util::set_log_level(restore);
  SUCCEED();
}

}  // namespace
}  // namespace lbsim
