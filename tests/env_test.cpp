// The stochastic environment subsystem: schedule grammar + driver exactness,
// environment CTMC statistics, the FailureProcess hazard-multiplier hook, and
// the statistical reductions the ISSUE pins — MMPP with equal per-state rates
// matches plain Poisson, correlated-churn with storm multiplier 1 matches the
// independent churn-storm baseline, and a one-node schedule reproduces
// initially_down-with-fixed-recovery semantics exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "cli/registry.hpp"
#include "env/arrivals.hpp"
#include "env/environment.hpp"
#include "env/schedule.hpp"
#include "mc/engine.hpp"
#include "mc/scenario.hpp"
#include "node/compute_element.hpp"
#include "node/failure_process.hpp"
#include "sim/simulator.hpp"
#include "stochastic/distributions.hpp"
#include "test_support.hpp"

namespace lbsim {
namespace {

mc::ScenarioConfig family_scenario(const std::string& family,
                                   std::vector<std::pair<std::string, std::string>> keys) {
  const cli::ScenarioSpec& spec = cli::find_scenario(family);
  cli::RawConfig raw;
  for (auto& [key, value] : keys) raw.set(key, value);
  return spec.build(spec.schema.resolve(raw));
}

// ---------- schedule grammar ----------

TEST(ScheduleParse, ClosedIntervalMakesTwoTransitions) {
  const env::Schedule schedule = env::parse_schedule("0:down@10-30");
  ASSERT_TRUE(schedule.scheduled(0));
  ASSERT_EQ(schedule.per_node[0].size(), 2u);
  EXPECT_EQ(schedule.per_node[0][0].time, 10.0);
  EXPECT_TRUE(schedule.per_node[0][0].down);
  EXPECT_EQ(schedule.per_node[0][1].time, 30.0);
  EXPECT_FALSE(schedule.per_node[0][1].down);
  EXPECT_FALSE(schedule.down_at_start(0));
}

TEST(ScheduleParse, OpenDownClosedByUpToken) {
  const env::Schedule schedule = env::parse_schedule("1:down@10,up@30");
  ASSERT_TRUE(schedule.scheduled(1));
  EXPECT_FALSE(schedule.scheduled(0));
  ASSERT_EQ(schedule.per_node[1].size(), 2u);
  EXPECT_EQ(schedule.per_node[1][1].time, 30.0);
  EXPECT_FALSE(schedule.per_node[1][1].down);
}

TEST(ScheduleParse, OpenDownWithoutUpIsForever) {
  const env::Schedule schedule = env::parse_schedule("0:down@7");
  ASSERT_EQ(schedule.per_node[0].size(), 1u);  // never recovers
  EXPECT_TRUE(schedule.per_node[0][0].down);
}

TEST(ScheduleParse, RedundantUpAtIntervalEndTolerated) {
  // The ISSUE's grammar example: `down@10-30,up@30` — the up@ marker
  // coincides with the closed interval's end and is a no-op.
  const env::Schedule schedule = env::parse_schedule("0:down@10-30,up@30");
  ASSERT_EQ(schedule.per_node[0].size(), 2u);
}

TEST(ScheduleParse, MultipleClausesAndIntervals) {
  const env::Schedule schedule = env::parse_schedule("0:down@0-5,down@40-50;1:down@20-25");
  EXPECT_TRUE(schedule.down_at_start(0));
  ASSERT_EQ(schedule.per_node[0].size(), 4u);
  ASSERT_EQ(schedule.per_node[1].size(), 2u);
  EXPECT_FALSE(schedule.empty());
  EXPECT_TRUE(env::parse_schedule("").empty());
}

TEST(ScheduleParse, RejectsMalformedTimelines) {
  EXPECT_THROW((void)env::parse_schedule("down@1-2"), std::invalid_argument);   // no node
  EXPECT_THROW((void)env::parse_schedule("0:flip@3"), std::invalid_argument);   // token
  EXPECT_THROW((void)env::parse_schedule("0:down@5-2"), std::invalid_argument); // end<=begin
  EXPECT_THROW((void)env::parse_schedule("0:down@x-2"), std::invalid_argument); // time
  EXPECT_THROW((void)env::parse_schedule("0:down@-3-5"), std::invalid_argument);
  EXPECT_THROW((void)env::parse_schedule("0:up@4"), std::invalid_argument);     // no open
  EXPECT_THROW((void)env::parse_schedule("0:down@1-9,down@5-12"),
               std::invalid_argument);                                          // overlap
  EXPECT_THROW((void)env::parse_schedule("0:down@1,down@9"), std::invalid_argument);
  EXPECT_THROW((void)env::parse_schedule("0:down@1-2;0:down@5-6"),
               std::invalid_argument);                                          // dup clause
  EXPECT_THROW(env::validate(env::parse_schedule("5:down@1-2"), 2),
               std::invalid_argument);                                          // node range
}

// ---------- environment CTMC ----------

TEST(EnvironmentSpec, ValidationCatchesShapeErrors) {
  env::EnvironmentSpec spec = env::make_calm_storm(10.0, 0.05, 0.2);
  EXPECT_NO_THROW(env::validate(spec));
  spec.failure_mult = {1.0};
  EXPECT_THROW(env::validate(spec), std::invalid_argument);
  spec = env::make_calm_storm(10.0, 0.05, 0.2);
  spec.initial_state = 2;
  EXPECT_THROW(env::validate(spec), std::invalid_argument);
  spec = env::make_calm_storm(10.0, 0.05, 0.2);
  spec.failure_mult[1] = 0.0;
  EXPECT_THROW(env::validate(spec), std::invalid_argument);
}

TEST(Environment, OccupancyMatchesStationaryDistribution) {
  // Two-state chain: stationary storm fraction = on / (on + off) = 0.2.
  des::Simulator sim;
  stoch::RngStream rng(test::kFixedSeed, 7);
  env::Environment environment(sim, env::make_calm_storm(10.0, 0.05, 0.2), rng);
  double storm_time = 0.0;
  double entered_storm = -1.0;
  environment.set_transition_listener([&](std::size_t, std::size_t to) {
    if (to == 1) {
      entered_storm = sim.now();
    } else if (entered_storm >= 0.0) {
      storm_time += sim.now() - entered_storm;
      entered_storm = -1.0;
    }
  });
  environment.start();
  const double horizon = 200000.0;
  sim.run_until(horizon);
  if (environment.state() == 1) storm_time += horizon - entered_storm;
  EXPECT_GT(environment.transitions(), 1000u);
  EXPECT_NEAR(storm_time / horizon, 0.2, 0.02);
}

TEST(Environment, AbsorbingStateStopsTransitions) {
  // One-way chain: calm -> storm at rate 1, storm absorbing.
  des::Simulator sim;
  stoch::RngStream rng(test::kFixedSeed, 8);
  env::EnvironmentSpec spec;
  spec.states = 2;
  spec.failure_mult = {1.0, 3.0};
  spec.generator = {0.0, 1.0, 0.0, 0.0};
  env::Environment environment(sim, spec, rng);
  environment.start();
  sim.run();
  EXPECT_EQ(environment.state(), 1u);
  EXPECT_EQ(environment.transitions(), 1u);
  EXPECT_DOUBLE_EQ(environment.failure_multiplier(), 3.0);
}

// ---------- FailureProcess hazard modulation ----------

TEST(FailureProcessModulation, MultiplierScalesDeterministicTtfExactly) {
  // Deterministic(8) under multiplier 4 must fire at exactly 2 s — hazard
  // scaling is time scaling.
  des::Simulator sim;
  stoch::RngStream service_rng(1), churn_rng(2);
  node::ComputeElement ce(sim, 0, [](const node::Task&, stoch::RngStream&) { return 1.0; },
                          service_rng);
  node::FailureProcess process(sim, ce, std::make_unique<stoch::Deterministic>(8.0),
                               std::make_unique<stoch::Deterministic>(100.0), churn_rng);
  double failed_at = -1.0;
  process.set_failure_handler([&](int) { failed_at = sim.now(); });
  process.set_hazard_multiplier(4.0);
  process.start();
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(failed_at, 2.0);
}

TEST(FailureProcessModulation, MultiplierChangeReArmsThePendingDraw) {
  des::Simulator sim;
  stoch::RngStream service_rng(1), churn_rng(2);
  node::ComputeElement ce(sim, 0, [](const node::Task&, stoch::RngStream&) { return 1.0; },
                          service_rng);
  node::FailureProcess process(sim, ce, std::make_unique<stoch::Deterministic>(8.0),
                               std::make_unique<stoch::Deterministic>(100.0), churn_rng);
  double failed_at = -1.0;
  process.set_failure_handler([&](int) { failed_at = sim.now(); });
  process.start();  // failure armed for t = 8
  sim.schedule_at(1.0, [&] { process.set_hazard_multiplier(4.0); });
  sim.run_until(10.0);
  // Re-armed at t = 1 with a fresh draw 8 / 4 = 2 -> fires at t = 3.
  EXPECT_DOUBLE_EQ(failed_at, 3.0);
  EXPECT_FALSE(ce.is_up());
}

// ---------- batch-size law ----------

TEST(ArrivalBatches, GeometricLawHasTheConfiguredMean) {
  env::ArrivalSpec spec;
  spec.process = env::ArrivalSpec::Process::kPoisson;
  spec.rate = 1.0;
  spec.count = 1;
  spec.batch = 5;
  spec.batch_law = env::ArrivalSpec::BatchLaw::kGeometric;
  stoch::RngStream rng(test::kFixedSeed, 11);
  double total = 0.0;
  std::size_t min_size = 1000;
  const std::size_t draws = 20000;
  for (std::size_t i = 0; i < draws; ++i) {
    const std::size_t size = env::sample_batch_size(spec, rng);
    total += static_cast<double>(size);
    min_size = std::min(min_size, size);
  }
  EXPECT_EQ(min_size, 1u);  // support starts at 1
  // Geometric(mean 5) has sd sqrt(20) ~ 4.5; 4 sigma of the sample mean.
  EXPECT_NEAR(total / static_cast<double>(draws), 5.0, 4.0 * 4.5 / std::sqrt(draws));
  spec.batch_law = env::ArrivalSpec::BatchLaw::kFixed;
  EXPECT_EQ(env::sample_batch_size(spec, rng), 5u);
}

// ---------- engine integration ----------

TEST(EnvScenario, OpenArrivalAccountingIsExact) {
  mc::ScenarioConfig scenario = family_scenario(
      "open-arrivals",
      {{"arrivals.count", "3"}, {"arrivals.batch", "10"}, {"policy", "none"}});
  mc::RunTrace trace;
  const mc::RunResult result = mc::run_scenario(scenario, test::kFixedSeed, 0, &trace);
  EXPECT_EQ(result.tasks_arrived, 30u);
  EXPECT_EQ(result.tasks_completed, 100u + 60u + 30u);
  EXPECT_EQ(trace.events.count(obs::Kind::kInject), 3u);
  EXPECT_GT(result.completion_time, 0.0);
}

TEST(EnvScenario, RandomTargetAndGeometricBatchesRun) {
  mc::ScenarioConfig scenario = family_scenario(
      "open-arrivals", {{"arrivals.target", "-1"}, {"arrivals.batch.law", "geometric"},
                        {"arrivals.batch", "8"}, {"arrivals.count", "6"}});
  const mc::RunResult result = mc::run_scenario(scenario, test::kFixedSeed, 1, nullptr);
  EXPECT_GE(result.tasks_arrived, 6u);  // every epoch carries >= 1 task
  EXPECT_GT(result.completion_time, 0.0);
}

TEST(EnvScenario, EnvironmentTransitionsSurfaceInResultAndTrace) {
  mc::ScenarioConfig scenario = family_scenario(
      "correlated-churn", {{"env.storm.on", "0.5"}, {"env.storm.off", "0.5"}});
  mc::RunTrace trace;
  const mc::RunResult result = mc::run_scenario(scenario, test::kFixedSeed, 0, &trace);
  EXPECT_GT(result.env_transitions, 0u);
  EXPECT_EQ(trace.events.count(obs::Kind::kEnvTransition), result.env_transitions);
}

TEST(EnvScenario, ScheduleReproducesInitiallyDownWithFixedRecoveryExactly) {
  // One scheduled node holding all the work: `0:down@0-R` must behave exactly
  // like "node 0 starts down and recovers at R" — the failure fires at t = 0,
  // the recovery at t = R, and (the service draws being untouched) the
  // completion time shifts by exactly R against the unscheduled run.
  const double recovery = 5.0;
  mc::ScenarioConfig scheduled = family_scenario(
      "scheduled-churn",
      {{"schedule", "0:down@0-5"}, {"policy", "none"}, {"m0", "40"}, {"m1", "0"}});
  mc::ScenarioConfig plain = family_scenario(
      "paper-two-node",
      {{"churn", "false"}, {"policy", "none"}, {"m0", "40"}, {"m1", "0"}});
  for (const std::uint64_t seed : {test::kFixedSeed, test::kAltSeed}) {
    // Replication 0 shares stream ids between the two layouts (base = 0).
    mc::RunTrace trace;
    const mc::RunResult with_schedule = mc::run_scenario(scheduled, seed, 0, &trace);
    const mc::RunResult without = mc::run_scenario(plain, seed, 0, nullptr);
    EXPECT_EQ(with_schedule.failures, 1u);
    EXPECT_EQ(with_schedule.recoveries, 1u);
    ASSERT_EQ(trace.events.count(obs::Kind::kFail), 1u);
    ASSERT_EQ(trace.events.count(obs::Kind::kRecover), 1u);
    trace.events.for_each([&](const obs::Record& record) {
      if (record.kind_enum() == obs::Kind::kFail) {
        EXPECT_DOUBLE_EQ(record.time, 0.0);
      }
      if (record.kind_enum() == obs::Kind::kRecover) {
        EXPECT_DOUBLE_EQ(record.time, recovery);
      }
    });
    EXPECT_NEAR(with_schedule.completion_time, without.completion_time + recovery, 1e-9);
  }
}

TEST(EnvScenario, ScheduledNodeIgnoresStochasticChurnAndDownMaskConflicts) {
  // churn=true still drives only the unscheduled node; the scheduled node's
  // churn is its timeline alone.
  mc::ScenarioConfig scenario = family_scenario(
      "scheduled-churn", {{"schedule", "0:down@1-2"}, {"churn", "true"}});
  const mc::RunResult result = mc::run_scenario(scenario, test::kFixedSeed, 0, nullptr);
  EXPECT_GE(result.failures, 1u);
  // A schedule clause and an initially_down bit on the same node conflict.
  scenario.initially_down = 0b01;
  EXPECT_THROW((void)mc::run_scenario(scenario, test::kFixedSeed, 0, nullptr),
               std::invalid_argument);
}

// ---------- the ISSUE's statistical reductions (4 sigma) ----------

double sigma_distance(const mc::McResult& a, const mc::McResult& b) {
  const double sigma =
      std::sqrt(a.std_error() * a.std_error() + b.std_error() * b.std_error());
  return std::fabs(a.mean() - b.mean()) / sigma;
}

TEST(EnvReduction, MmppWithEqualRatesMatchesPlainPoisson) {
  // Equal per-state rates make the modulation vacuous: by memorylessness the
  // re-armed gaps are distributionally plain Poisson.
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 400;
  const mc::McResult poisson = mc::run_monte_carlo(
      family_scenario("open-arrivals",
                      {{"arrivals.process", "poisson"}, {"arrivals.rate", "0.04"}}),
      mc_cfg);
  mc_cfg.seed = test::kAltSeed;  // independent sample for the two-sample z-test
  const mc::McResult mmpp = mc::run_monte_carlo(
      family_scenario("open-arrivals", {{"arrivals.process", "mmpp"},
                                        {"arrivals.rates", "0.04"},
                                        {"env.storm.on", "0.5"},
                                        {"env.storm.off", "0.5"}}),
      mc_cfg);
  EXPECT_LT(sigma_distance(poisson, mmpp), 4.0)
      << "poisson=" << poisson.mean() << " mmpp=" << mmpp.mean();
}

TEST(EnvReduction, StormMultiplierOneMatchesIndependentChurnStorm) {
  // correlated-churn pinned to churn-storm's scaled rates with a unit storm
  // multiplier: the environment re-arms are distributional no-ops, so the two
  // families must agree in mean.
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 400;
  const mc::McResult storm =
      mc::run_monte_carlo(family_scenario("churn-storm", {}), mc_cfg);
  mc_cfg.seed = test::kAltSeed;
  const mc::McResult correlated = mc::run_monte_carlo(
      family_scenario("correlated-churn", {{"lambda_f", "0.5"},
                                           {"lambda_r", "1,0.5"},
                                           {"env.storm.mult", "1"},
                                           {"env.storm.on", "0.5"},
                                           {"env.storm.off", "0.5"}}),
      mc_cfg);
  EXPECT_LT(sigma_distance(storm, correlated), 4.0)
      << "churn-storm=" << storm.mean() << " correlated=" << correlated.mean();
}

TEST(EnvReduction, StormMultiplierActuallyHurts) {
  // Discrimination check for the reduction above: a 20x storm on the same
  // rates must be far more than 4 sigma slower.
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 300;
  const mc::McResult calm = mc::run_monte_carlo(
      family_scenario("correlated-churn", {{"env.storm.mult", "1"}}), mc_cfg);
  const mc::McResult stormy = mc::run_monte_carlo(
      family_scenario("correlated-churn", {{"env.storm.mult", "20"}}), mc_cfg);
  EXPECT_GT(stormy.mean(), calm.mean());
  EXPECT_GT(sigma_distance(calm, stormy), 4.0);
}

}  // namespace
}  // namespace lbsim
