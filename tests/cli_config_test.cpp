// Unit tests for the cli config parser: INI parsing, overrides, and typed
// schema validation (valid configs, syntax errors, unknown keys, type errors,
// range/choice violations).

#include <gtest/gtest.h>

#include "cli/config.hpp"

namespace lbsim::cli {
namespace {

Schema demo_schema() {
  Schema schema;
  OptionSpec name;
  name.key = "name";
  name.type = OptionType::kString;
  name.default_value = "exp";
  name.description = "experiment label";
  schema.add(name);

  OptionSpec gain;
  gain.key = "gain";
  gain.type = OptionType::kDouble;
  gain.default_value = "0.35";
  gain.min_value = 0.0;
  gain.max_value = 1.0;
  schema.add(gain);

  OptionSpec reps;
  reps.key = "mc.reps";
  reps.type = OptionType::kSize;
  reps.default_value = "500";
  reps.min_value = 1.0;
  schema.add(reps);

  OptionSpec churn;
  churn.key = "churn";
  churn.type = OptionType::kBool;
  churn.default_value = "true";
  schema.add(churn);

  OptionSpec loads;
  loads.key = "workloads";
  loads.type = OptionType::kSizeList;
  loads.default_value = "100,60";
  schema.add(loads);

  OptionSpec rates;
  rates.key = "rates";
  rates.type = OptionType::kDoubleList;
  rates.default_value = "";
  rates.min_value = 0.0;
  schema.add(rates);

  OptionSpec model;
  model.key = "model";
  model.type = OptionType::kString;
  model.default_value = "exponential";
  model.choices = {"exponential", "erlang"};
  schema.add(model);
  return schema;
}

TEST(CliIni, ParsesKeysSectionsAndComments) {
  const RawConfig raw = parse_ini(
      "# comment\n"
      "; also a comment\n"
      "name = trial-7\n"
      "\n"
      "[mc]\n"
      "  reps =  250 \n"
      "[delay]\n"
      "model=erlang\n");
  EXPECT_EQ(raw.values.at("name"), "trial-7");
  EXPECT_EQ(raw.values.at("mc.reps"), "250");
  EXPECT_EQ(raw.values.at("delay.model"), "erlang");
  EXPECT_EQ(raw.values.size(), 3u);
}

TEST(CliIni, SyntaxErrors) {
  try {
    (void)parse_ini("name no equals sign\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kSyntax);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW((void)parse_ini("[unclosed\n"), ConfigError);
  EXPECT_THROW((void)parse_ini("[]\n"), ConfigError);
  EXPECT_THROW((void)parse_ini("=value\n"), ConfigError);
}

TEST(CliIni, OverridesWinOverFileValues) {
  RawConfig raw = parse_ini("gain = 0.2\n");
  apply_override(raw, "gain=0.9");
  EXPECT_EQ(raw.values.at("gain"), "0.9");
  EXPECT_THROW(apply_override(raw, "justakey"), ConfigError);
  EXPECT_THROW(apply_override(raw, "=0.5"), ConfigError);
}

TEST(CliSchema, AppliesDefaultsAndReportsSupplied) {
  RawConfig raw;
  raw.set("gain", "0.5");
  const Config config = demo_schema().resolve(raw);
  EXPECT_DOUBLE_EQ(config.get_double("gain"), 0.5);
  EXPECT_TRUE(config.supplied("gain"));
  EXPECT_EQ(config.get_string("name"), "exp");
  EXPECT_FALSE(config.supplied("name"));
  EXPECT_EQ(config.get_size("mc.reps"), 500u);
  EXPECT_TRUE(config.get_bool("churn"));
  EXPECT_EQ(config.get_size_list("workloads"), (std::vector<std::size_t>{100, 60}));
  EXPECT_TRUE(config.get_double_list("rates").empty());
}

TEST(CliSchema, RejectsUnknownKeyWithSuggestion) {
  RawConfig raw;
  raw.set("gian", "0.5");
  try {
    (void)demo_schema().resolve(raw);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.kind(), ConfigError::Kind::kUnknownKey);
    EXPECT_EQ(e.key(), "gian");
    EXPECT_NE(std::string(e.what()).find("did you mean 'gain'"), std::string::npos);
  }
}

TEST(CliSchema, TypedErrors) {
  const Schema schema = demo_schema();
  {
    RawConfig raw;
    raw.set("gain", "fast");  // not a number
    try {
      (void)schema.resolve(raw);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.kind(), ConfigError::Kind::kBadValue);
      EXPECT_EQ(e.key(), "gain");
    }
  }
  {
    RawConfig raw;
    raw.set("gain", "1.5");  // above max
    try {
      (void)schema.resolve(raw);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.kind(), ConfigError::Kind::kOutOfRange);
    }
  }
  {
    RawConfig raw;
    raw.set("mc.reps", "-3");  // negative size
    EXPECT_THROW((void)schema.resolve(raw), ConfigError);
  }
  {
    RawConfig raw;
    raw.set("churn", "maybe");  // not a bool
    EXPECT_THROW((void)schema.resolve(raw), ConfigError);
  }
  {
    RawConfig raw;
    raw.set("workloads", "100,sixty");  // bad list element
    EXPECT_THROW((void)schema.resolve(raw), ConfigError);
  }
  {
    RawConfig raw;
    raw.set("model", "uniform");  // not in the choice list
    try {
      (void)schema.resolve(raw);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.kind(), ConfigError::Kind::kOutOfRange);
      EXPECT_NE(std::string(e.what()).find("erlang"), std::string::npos);
    }
  }
}

TEST(CliSchema, BoolSpellingsAndGetterTypeChecks) {
  const Schema schema = demo_schema();
  for (const char* truthy : {"true", "YES", "on", "1"}) {
    RawConfig raw;
    raw.set("churn", truthy);
    EXPECT_TRUE(schema.resolve(raw).get_bool("churn")) << truthy;
  }
  for (const char* falsy : {"false", "No", "off", "0"}) {
    RawConfig raw;
    raw.set("churn", falsy);
    EXPECT_FALSE(schema.resolve(raw).get_bool("churn")) << falsy;
  }
  const Config config = schema.resolve(RawConfig{});
  EXPECT_THROW((void)config.get_double("name"), std::logic_error);    // wrong type
  EXPECT_THROW((void)config.get_string("nothere"), std::logic_error);  // undeclared
}

TEST(CliSchema, DuplicateKeysRejectedAndMergeWorks) {
  Schema a = demo_schema();
  OptionSpec dup;
  dup.key = "gain";
  EXPECT_THROW(a.add(dup), std::logic_error);

  Schema b;
  OptionSpec extra;
  extra.key = "extra";
  extra.type = OptionType::kInt;
  extra.default_value = "7";
  b.add(extra);
  a.merge(b);
  EXPECT_EQ(a.resolve(RawConfig{}).get_int("extra"), 7);
}

}  // namespace
}  // namespace lbsim::cli
