// MC-vs-exact-solver cross-check on the small-n overlap of the many-node-churn
// registry family. The multi-node regeneration solver is limited to n <= 8
// (one 2^n x 2^n work-state solve per lattice point); for the family's real
// target (tens of nodes) the MC engine is the only source of truth, so this
// suite pins the two engines together exactly where both exist: with
// policy=none (no transfers) the family's laws — Exp(lambda_d) service,
// alternating Exp(lambda_f)/Exp(lambda_r) churn — are precisely the solver's
// model, and the MC mean must land within Monte-Carlo error of the solver.

#include <gtest/gtest.h>

#include <string>

#include "cli/registry.hpp"
#include "markov/multi_node_mean.hpp"
#include "mc/engine.hpp"
#include "test_support.hpp"

namespace lbsim {
namespace {

mc::ScenarioConfig family_scenario(std::size_t nodes, const std::string& workloads,
                                   const std::string& policy = "none",
                                   bool churn = true) {
  const cli::ScenarioSpec& spec = cli::find_scenario("many-node-churn");
  cli::RawConfig raw;
  raw.set("nodes", std::to_string(nodes));
  raw.set("workloads", workloads);
  raw.set("policy", policy);
  if (!churn) raw.set("churn", "false");
  return spec.build(spec.schema.resolve(raw));
}

/// Runs the MC engine and the exact solver on the same scenario; the MC mean
/// must be within 4 standard errors of the solver (the law is identical, so
/// only Monte-Carlo noise separates them).
void expect_mc_matches_solver(std::size_t nodes, const std::string& workloads,
                              std::size_t replications) {
  mc::ScenarioConfig scenario = family_scenario(nodes, workloads);

  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = replications;
  const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);

  markov::MultiNodeMeanSolver solver(scenario.params);
  const double theory = solver.expected_completion(scenario.workloads);

  EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(), theory, 4.0)
      << "n=" << nodes << " workloads=" << workloads << " theory=" << theory
      << " mc=" << result.mean();
}

TEST(McSolverCrosscheck, ThreeNodesUnderChurn) {
  expect_mc_matches_solver(3, "8,5,3", 2000);
}

TEST(McSolverCrosscheck, FourNodesUnderChurn) {
  expect_mc_matches_solver(4, "5,4,3,2", 2000);
}

TEST(McSolverCrosscheck, FiveNodesUnderChurn) {
  expect_mc_matches_solver(5, "4,3,2,2,1", 1500);
}

TEST(McSolverCrosscheck, SixNodesUnderChurn) {
  expect_mc_matches_solver(6, "3,2,2,1,1,1", 1500);
}

TEST(McSolverCrosscheck, FourNodesNoChurn) {
  // churn=false zeroes the effective failure process; the solver sees the
  // same thing through lambda_f = 0.
  mc::ScenarioConfig scenario = family_scenario(4, "6,4,2,2", "none", /*churn=*/false);
  for (auto& node : scenario.params.nodes) node.lambda_f = 0.0;

  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 2000;
  const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);

  markov::MultiNodeMeanSolver solver(scenario.params);
  const double theory = solver.expected_completion(scenario.workloads);
  EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(), theory, 4.0);
}

TEST(McSolverCrosscheck, ChurnIsNotFree) {
  // Sanity on the family defaults: the same workload takes longer under churn
  // than with perfectly reliable nodes.
  mc::ScenarioConfig churny = family_scenario(4, "8,4,2,2");
  mc::ScenarioConfig reliable = family_scenario(4, "8,4,2,2", "none", /*churn=*/false);
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 800;
  EXPECT_GT(mc::run_monte_carlo(churny, mc_cfg).mean(),
            mc::run_monte_carlo(reliable, mc_cfg).mean());
}

TEST(McSolverCrosscheck, ManyNodeDefaultsRunAndBalance) {
  // The family's raison d'être: defaults must run way past the solver's
  // n <= 8 ceiling and actually move tasks (imbalanced workloads + LBP-2).
  const cli::ScenarioSpec& spec = cli::find_scenario("many-node-churn");
  const mc::ScenarioConfig scenario = spec.build(spec.schema.resolve({}));
  ASSERT_EQ(scenario.params.nodes.size(), 32u);
  EXPECT_EQ(scenario.policy->name(), "LBP-2(K=1)");

  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 10;
  const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);
  EXPECT_GT(result.mean(), 0.0);
  EXPECT_GT(result.mean_tasks_moved, 0.0);   // LBP-2 actually balanced
  EXPECT_GT(result.mean_failures, 0.0);      // churn actually fired
}

}  // namespace
}  // namespace lbsim
