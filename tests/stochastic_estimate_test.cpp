// Tests for online rate estimation (the "rates must be learned" extension).

#include <gtest/gtest.h>

#include <cmath>
#include "stochastic/estimate.hpp"
#include "stochastic/rng.hpp"

namespace lbsim::stoch {
namespace {

TEST(RateEstimatorTest, EmptyHasNoRate) {
  ExponentialRateEstimator est;
  EXPECT_FALSE(est.rate().has_value());
  EXPECT_FALSE(est.rate_ci95().has_value());
  EXPECT_TRUE(std::isinf(est.relative_error()));
}

TEST(RateEstimatorTest, MleIsCountOverTotal) {
  ExponentialRateEstimator est;
  est.observe(2.0);
  est.observe(4.0);
  ASSERT_TRUE(est.rate().has_value());
  EXPECT_DOUBLE_EQ(*est.rate(), 2.0 / 6.0);
  EXPECT_EQ(est.count(), 2u);
  EXPECT_THROW(est.observe(-1.0), std::invalid_argument);
}

TEST(RateEstimatorTest, RecoversTrueRate) {
  ExponentialRateEstimator est;
  RngStream rng(31);
  const double rate = 0.05;  // the paper's failure rate
  for (int i = 0; i < 5000; ++i) est.observe(rng.exponential(rate));
  EXPECT_NEAR(*est.rate(), rate, 0.003);
  const auto [lo, hi] = *est.rate_ci95();
  EXPECT_LT(lo, rate);
  EXPECT_GT(hi, rate);
}

TEST(RateEstimatorTest, CiShrinksWithObservations) {
  ExponentialRateEstimator small, big;
  RngStream rng(32);
  for (int i = 0; i < 10; ++i) small.observe(rng.exponential(1.0));
  for (int i = 0; i < 1000; ++i) big.observe(rng.exponential(1.0));
  EXPECT_GT(small.relative_error(), big.relative_error());
}

TEST(RateEstimatorTest, MergeEqualsCombined) {
  ExponentialRateEstimator a, b, whole;
  RngStream rng(33);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.exponential(2.0);
    (i % 2 ? a : b).observe(x);
    whole.observe(x);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(*a.rate(), *whole.rate());
}

TEST(ChurnObserverTest, TransitionsProduceSojournEstimates) {
  ChurnObserver obs(0.0);
  obs.observe_failure(20.0);   // up sojourn 20
  obs.observe_recovery(30.0);  // down sojourn 10
  obs.observe_failure(50.0);   // up sojourn 20
  ASSERT_TRUE(obs.failure_rate().has_value());
  EXPECT_DOUBLE_EQ(*obs.failure_rate(), 2.0 / 40.0);
  EXPECT_DOUBLE_EQ(*obs.recovery_rate(), 1.0 / 10.0);
  EXPECT_EQ(obs.failures_seen(), 2u);
}

TEST(ChurnObserverTest, OrderEnforced) {
  ChurnObserver obs(0.0);
  EXPECT_THROW(obs.observe_recovery(5.0), std::invalid_argument);
  obs.observe_failure(5.0);
  EXPECT_THROW(obs.observe_failure(6.0), std::invalid_argument);
  EXPECT_THROW(obs.observe_recovery(4.0), std::invalid_argument);
}

TEST(ChurnObserverTest, EstimateFallsBackToReliable) {
  const ChurnObserver obs(0.0);
  const markov::NodeParams params = obs.estimate(100.0, 1.08);
  EXPECT_DOUBLE_EQ(params.lambda_d, 1.08);
  EXPECT_DOUBLE_EQ(params.lambda_f, 0.0);  // no churn observed yet
}

TEST(ChurnObserverTest, EstimateCarriesMleRates) {
  ChurnObserver obs(0.0);
  obs.observe_failure(10.0);
  obs.observe_recovery(15.0);
  const markov::NodeParams params = obs.estimate(20.0, 2.0);
  EXPECT_DOUBLE_EQ(params.lambda_f, 0.1);
  EXPECT_DOUBLE_EQ(params.lambda_r, 0.2);
}

TEST(ChurnObserverTest, EmpiricalAvailabilityCountsOpenSojourn) {
  ChurnObserver obs(0.0);
  obs.observe_failure(60.0);
  obs.observe_recovery(90.0);
  // Up 60 + 10 (open) of 100 total.
  EXPECT_NEAR(obs.empirical_availability(100.0), 0.7, 1e-12);
}

TEST(ChurnObserverTest, LongRunAvailabilityMatchesTheory) {
  ChurnObserver obs(0.0);
  RngStream rng(34);
  double t = 0.0;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    t += rng.exponential(1.0 / 20.0);
    obs.observe_failure(t);
    t += rng.exponential(1.0 / 10.0);
    obs.observe_recovery(t);
  }
  EXPECT_NEAR(obs.empirical_availability(t), 2.0 / 3.0, 0.02);
  EXPECT_NEAR(*obs.failure_rate(), 1.0 / 20.0, 0.002);
  EXPECT_NEAR(*obs.recovery_rate(), 1.0 / 10.0, 0.005);
}

}  // namespace
}  // namespace lbsim::stoch
