// Unit tests for src/util: contracts, CLI parsing, table/CSV formatting, math.

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/math.hpp"

namespace lbsim::util {
namespace {

// ---------- error.hpp ----------

TEST(ErrorTest, RequireThrowsInvalidArgumentWithDetail) {
  try {
    LBSIM_REQUIRE(1 == 2, "one is " << 1);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("one is 1"), std::string::npos);
  }
}

TEST(ErrorTest, CheckThrowsLogicError) {
  EXPECT_THROW(LBSIM_CHECK(false, "broken"), std::logic_error);
}

TEST(ErrorTest, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(LBSIM_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(LBSIM_CHECK(true, "fine"));
}

// ---------- log.hpp ----------

TEST(LogTest, ParseLevelRoundTrip) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::debug);
  EXPECT_EQ(parse_log_level("off"), LogLevel::off);
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
}

TEST(LogTest, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::error);
  EXPECT_EQ(log_level(), LogLevel::error);
  set_log_level(before);
}

// ---------- cli.hpp ----------

TEST(CliTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--gain=0.35", "--nodes=2"};
  const CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("gain", 0.0), 0.35);
  EXPECT_EQ(args.get_int("nodes", 0), 2);
}

TEST(CliTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--seed", "42"};
  const CliArgs args(3, argv);
  EXPECT_EQ(args.get_int64("seed", 0), 42);
}

TEST(CliTest, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--quick"};
  const CliArgs args(2, argv);
  EXPECT_TRUE(args.get_bool("quick", false));
  EXPECT_TRUE(args.has("quick"));
}

TEST(CliTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_string("missing", "x"), "x");
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliTest, PositionalArgumentsKeepOrder) {
  const char* argv[] = {"prog", "a", "--k=1", "b"};
  const CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "a");
  EXPECT_EQ(args.positional()[1], "b");
}

TEST(CliTest, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--gain=abc", "--n=1.5x"};
  const CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_double("gain", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
}

TEST(CliTest, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=0", "--c=off"};
  const CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
}

// ---------- format.hpp ----------

TEST(FormatTest, FormatDoubleFixedDigits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_THROW(format_double(1.0, -1), std::invalid_argument);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"K", "mean"});
  table.add_row({"0.35", "116.75"});
  table.add_row({"1", "172"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("K     mean"), std::string::npos);
  EXPECT_NE(out.find("0.35  116.75"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(TextTableTest, CsvRoundTripsRows) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2,3"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,\"2,3\"\n");
}

// ---------- math.hpp ----------

TEST(MathTest, LinspaceEndpointsExact) {
  const auto v = linspace(0.0, 1.0, 21);
  ASSERT_EQ(v.size(), 21u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[10], 0.5, 1e-12);
}

TEST(MathTest, LinspaceSinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(MathTest, KahanSumBeatsNaiveOnSmallAddends) {
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10'000'000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-9, 1e-12);
}

TEST(MathTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
  EXPECT_NEAR(relative_difference(100.0, 101.0), 0.0099, 1e-4);
}

TEST(MathTest, TrapezoidIntegratesLine) {
  // integral of y = x over [0,1] with 11 samples = 0.5 exactly (trapezoid is
  // exact for linear functions).
  std::vector<double> y(11);
  for (int i = 0; i <= 10; ++i) y[i] = i / 10.0;
  EXPECT_NEAR(trapezoid(y, 0.1), 0.5, 1e-12);
}

TEST(MathTest, TryParseDoubleFullMatchFiniteOnly) {
  ASSERT_TRUE(util::try_parse_double("1.5").has_value());
  EXPECT_DOUBLE_EQ(*util::try_parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*util::try_parse_double("-2e3"), -2000.0);
  EXPECT_FALSE(util::try_parse_double("").has_value());
  EXPECT_FALSE(util::try_parse_double("1.5x").has_value());
  EXPECT_FALSE(util::try_parse_double("abc").has_value());
  EXPECT_FALSE(util::try_parse_double("1e999").has_value());  // ERANGE
  // strtod parses these without ERANGE, but no config value may be non-finite
  // (NaN would defeat every downstream range check).
  EXPECT_FALSE(util::try_parse_double("inf").has_value());
  EXPECT_FALSE(util::try_parse_double("nan").has_value());
  EXPECT_FALSE(util::try_parse_double("-inf").has_value());
}

TEST(MathTest, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(52, 5), 2598960.0);
}

}  // namespace
}  // namespace lbsim::util
