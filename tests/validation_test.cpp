// The statistical backbone of the theory-vs-simulation validation subsystem:
// distributional (Kolmogorov–Smirnov) agreement between the MC engine and the
// eq. (5) CDF solver at the paper's operating point, z-score gates for the
// multi-node mean solver across its whole n = 3..8 range, the TheoryOracle
// dispatch/decline rules, the scenario → theory bridge, and the
// `lbsim validate` gate itself (including that a tightened tolerance trips a
// failure — the property CI relies on).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cli/registry.hpp"
#include "cli/validate.hpp"
#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "markov/theory_oracle.hpp"
#include "markov/two_node_cdf.hpp"
#include "mc/engine.hpp"
#include "mc/theory.hpp"
#include "net/delay_model.hpp"
#include "stochastic/stats.hpp"
#include "test_support.hpp"

namespace lbsim {
namespace {

mc::ScenarioConfig family_scenario(const std::string& family,
                                   std::vector<std::pair<std::string, std::string>> keys) {
  const cli::ScenarioSpec& spec = cli::find_scenario(family);
  cli::RawConfig raw;
  for (auto& [key, value] : keys) raw.set(key, value);
  return spec.build(spec.schema.resolve(raw));
}

// ---------- KS: MC ECDF vs the eq. (5) distribution solver ----------

TEST(ValidationKs, PaperPointEcdfMatchesCdfSolver) {
  // LBP-1 at the paper's (100, 60) operating point, gain 0.35: the MC
  // empirical CDF must sit within the alpha = 0.001 Kolmogorov band (plus
  // dt-grid slack) of the exact distribution.
  mc::ScenarioConfig scenario = family_scenario("paper-two-node", {});
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 600;
  mc_cfg.collect_samples = true;
  const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);

  const mc::TheoryMapping mapping = mc::map_to_theory(scenario);
  ASSERT_TRUE(mapping.ok) << mapping.reason;
  // dt = 0.1 halves the ODE work vs the default grid; the coarser sampling
  // costs at most ~F'·dt ≈ 0.002 of KS resolution, well inside the slack.
  markov::TwoNodeCdfSolver::Config cdf_config;
  cdf_config.dt = 0.1;
  const markov::TheoryCdfPrediction cdf =
      markov::TheoryOracle{}.cdf(mapping.query, cdf_config);
  ASSERT_TRUE(cdf.applicable) << cdf.reason;
  EXPECT_LT(cdf.curve.tail_mass(), 0.01);

  const stoch::Ecdf ecdf(result.samples);
  const double ks = stoch::ks_distance_to_curve(ecdf, cdf.curve.grid, cdf.curve.values);
  const double gate = cli::ks_critical(mc_cfg.replications, 0.001) + 0.01;
  EXPECT_LT(ks, gate);
  // Sanity: the gate actually discriminates — the no-failure distribution is
  // far more than one band away from the churny empirical sample.
  markov::TheoryQuery no_churn = mapping.query;
  for (auto& node : no_churn.params.nodes) node.lambda_f = 0.0;
  const markov::TheoryCdfPrediction wrong =
      markov::TheoryOracle{}.cdf(no_churn, cdf_config);
  ASSERT_TRUE(wrong.applicable);
  EXPECT_GT(stoch::ks_distance_to_curve(ecdf, wrong.curve.grid, wrong.curve.values), gate);
}

// ---------- z-score gates: multi-node mean across n = 3..8 ----------

void expect_oracle_matches_mc(std::size_t nodes, const std::string& workloads,
                              std::size_t replications) {
  mc::ScenarioConfig scenario = family_scenario(
      "many-node-churn",
      {{"nodes", std::to_string(nodes)}, {"workloads", workloads}, {"policy", "none"}});

  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = replications;
  const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);

  const mc::TheoryMapping mapping = mc::map_to_theory(scenario);
  ASSERT_TRUE(mapping.ok) << mapping.reason;
  const markov::TheoryPrediction prediction = markov::TheoryOracle{}.mean(mapping.query);
  ASSERT_TRUE(prediction.applicable) << prediction.reason;
  EXPECT_EQ(prediction.method, "multi-node regeneration (n=" + std::to_string(nodes) + ")");
  EXPECT_PRED4(test::within_sigmas, result.mean(), result.std_error(), prediction.mean, 4.0)
      << "n=" << nodes << " workloads=" << workloads << " theory=" << prediction.mean
      << " mc=" << result.mean();
}

TEST(ValidationSigma, ThreeNodes) { expect_oracle_matches_mc(3, "10,6,4", 1500); }
TEST(ValidationSigma, FourNodes) { expect_oracle_matches_mc(4, "8,5,3,2", 1500); }
TEST(ValidationSigma, FiveNodes) { expect_oracle_matches_mc(5, "6,4,3,2,1", 1200); }
TEST(ValidationSigma, SixNodes) { expect_oracle_matches_mc(6, "4,3,2,2,1,1", 1000); }
TEST(ValidationSigma, SevenNodes) { expect_oracle_matches_mc(7, "3,2,2,1,1,1,1", 800); }
TEST(ValidationSigma, EightNodes) { expect_oracle_matches_mc(8, "2,1,1,1,1,1,1,1", 600); }

// ---------- TheoryOracle dispatch and decline rules ----------

markov::TheoryQuery two_node_query(std::size_t q0, std::size_t q1) {
  markov::TheoryQuery query;
  query.params.nodes = {markov::ipdps2006_params().nodes[0],
                        markov::ipdps2006_params().nodes[1]};
  query.params.per_task_delay_mean = markov::ipdps2006_params().per_task_delay_mean;
  query.queues = {q0, q1};
  return query;
}

TEST(TheoryOracle, TwoNodeDispatchHitsGoldenPins) {
  const markov::TheoryOracle oracle;
  // No transit: the golden mean pin of the (100, 60) operating point.
  markov::TheoryQuery query = two_node_query(100, 60);
  markov::TheoryPrediction prediction = oracle.mean(query);
  ASSERT_TRUE(prediction.applicable) << prediction.reason;
  EXPECT_EQ(prediction.method, "two-node regeneration (eq. 4)");
  EXPECT_NEAR(prediction.mean, 141.21564887669729, 1e-9);
  // LBP-1's bundle in flight: 35 tasks toward node 1 reproduces lbp1_mean.
  query = two_node_query(65, 60);
  query.transfers = {{.from = 0, .to = 1, .count = 35}};
  prediction = oracle.mean(query);
  ASSERT_TRUE(prediction.applicable);
  EXPECT_NEAR(prediction.mean, 116.74907081578611, 1e-9);
}

TEST(TheoryOracle, CdfDispatchMatchesGoldenQuantiles) {
  markov::TheoryQuery query = two_node_query(65, 60);
  query.transfers = {{.from = 0, .to = 1, .count = 35}};
  const markov::TheoryCdfPrediction cdf = markov::TheoryOracle{}.cdf(query);
  ASSERT_TRUE(cdf.applicable) << cdf.reason;
  EXPECT_NEAR(cdf.curve.quantile(0.5), 108.65, 0.051);
  EXPECT_NEAR(cdf.curve.quantile(0.9), 169.85, 0.051);
}

TEST(TheoryOracle, DeclinesPastTractabilityBoundary) {
  const markov::TheoryOracle oracle;
  markov::TheoryQuery query;
  query.params.nodes.assign(9, markov::NodeParams{1.0, 0.05, 0.1});
  query.queues.assign(9, 2);
  const markov::TheoryPrediction prediction = oracle.mean(query);
  EXPECT_FALSE(prediction.applicable);
  EXPECT_NE(prediction.reason.find("n=9"), std::string::npos);
  // The same boundary reason surfaces from the CDF entry point.
  EXPECT_FALSE(oracle.cdf(query).applicable);
}

TEST(TheoryOracle, DeclinesHugeLattices) {
  markov::TheoryQuery query;
  query.params.nodes.assign(4, markov::NodeParams{1.0, 0.05, 0.1});
  query.queues = {100, 60, 100, 60};
  const markov::TheoryPrediction prediction = markov::TheoryOracle{}.mean(query);
  EXPECT_FALSE(prediction.applicable);
  EXPECT_NE(prediction.reason.find("lattice"), std::string::npos);
}

TEST(TheoryOracle, DeclinesDownStartOfNeverFailingNode) {
  markov::TheoryQuery query = two_node_query(10, 10);
  for (auto& node : query.params.nodes) node.lambda_f = 0.0;
  query.initial_state = 0b10;  // node 0 down, but it can never fail
  const markov::TheoryPrediction prediction = markov::TheoryOracle{}.mean(query);
  EXPECT_FALSE(prediction.applicable);
  EXPECT_NE(prediction.reason.find("starts down"), std::string::npos);
}

TEST(TheoryOracle, MultiNodeCdfDeclinedButMeanServed) {
  markov::TheoryQuery query;
  query.params.nodes.assign(3, markov::NodeParams{1.0, 0.05, 0.1});
  query.queues = {3, 2, 1};
  const markov::TheoryOracle oracle;
  EXPECT_TRUE(oracle.mean(query).applicable);
  const markov::TheoryCdfPrediction cdf = oracle.cdf(query);
  EXPECT_FALSE(cdf.applicable);
  EXPECT_NE(cdf.reason.find("two-node"), std::string::npos);
}

// ---------- scenario → theory bridge ----------

TEST(TheoryBridge, Lbp2DeclinedUnderChurnButMappedWithoutIt) {
  // LBP-2 compensates at failure instants: no closed form while churn lives.
  mc::ScenarioConfig churny = family_scenario("paper-two-node", {{"policy", "lbp2"}});
  const mc::TheoryMapping declined = mc::map_to_theory(churny);
  EXPECT_FALSE(declined.ok);
  EXPECT_NE(declined.reason.find("LBP-2"), std::string::npos);
  // With churn off its failure hook is dead code and the t = 0 split remains.
  mc::ScenarioConfig calm =
      family_scenario("paper-two-node", {{"policy", "lbp2"}, {"churn", "false"}});
  const mc::TheoryMapping mapped = mc::map_to_theory(calm);
  ASSERT_TRUE(mapped.ok) << mapped.reason;
  EXPECT_FALSE(mapped.query.transfers.empty());
  for (const auto& node : mapped.query.params.nodes) EXPECT_EQ(node.lambda_f, 0.0);
}

TEST(TheoryBridge, ReplaysPolicyStartAndNetsQueues) {
  mc::ScenarioConfig scenario = family_scenario("paper-two-node", {});
  const mc::TheoryMapping mapping = mc::map_to_theory(scenario);
  ASSERT_TRUE(mapping.ok) << mapping.reason;
  // LBP-1(K=0.35) from (100, 60): 35 tasks leave node 0.
  ASSERT_EQ(mapping.query.transfers.size(), 1u);
  EXPECT_EQ(mapping.query.transfers[0].from, 0);
  EXPECT_EQ(mapping.query.transfers[0].to, 1);
  EXPECT_EQ(mapping.query.transfers[0].count, 35u);
  EXPECT_EQ(mapping.query.queues, (std::vector<std::size_t>{65, 60}));
  EXPECT_EQ(mapping.query.resolved_state(), markov::kBothUp);
}

TEST(TheoryBridge, PeriodicAndCustomDelayDeclined) {
  EXPECT_FALSE(mc::map_to_theory(family_scenario("periodic-rebalance", {})).ok);
  EXPECT_FALSE(mc::map_to_theory(family_scenario("custom-delay", {})).ok);
  // ... but a custom delay law with nothing in flight is irrelevant.
  const mc::TheoryMapping idle =
      mc::map_to_theory(family_scenario("custom-delay", {{"policy", "none"}}));
  EXPECT_TRUE(idle.ok) << idle.reason;
}

TEST(TheoryBridge, ColdStartMapsTheDownMask) {
  const mc::TheoryMapping mapping =
      mc::map_to_theory(family_scenario("cold-start", {{"policy", "none"}}));
  ASSERT_TRUE(mapping.ok) << mapping.reason;
  EXPECT_EQ(mapping.query.resolved_state(), 0b10u);  // node 0 starts down
}

TEST(TheoryBridge, EnvFamiliesDeclineWithPinnedReasons) {
  // The exact marker strings the env subsystem's boundary points rely on —
  // `lbsim validate` prints them verbatim in its skip rows.
  const mc::TheoryMapping modulated =
      mc::map_to_theory(family_scenario("correlated-churn", {}));
  EXPECT_FALSE(modulated.ok);
  EXPECT_EQ(modulated.reason, "environment-modulated churn");

  const mc::TheoryMapping open = mc::map_to_theory(family_scenario("open-arrivals", {}));
  EXPECT_FALSE(open.ok);
  EXPECT_EQ(open.reason, "open arrivals");
  // MMPP declines for its arrivals (its default environment has unit
  // multipliers, which modulate nothing).
  const mc::TheoryMapping mmpp = mc::map_to_theory(
      family_scenario("open-arrivals", {{"arrivals.process", "mmpp"}}));
  EXPECT_FALSE(mmpp.ok);
  EXPECT_EQ(mmpp.reason, "open arrivals");

  const mc::TheoryMapping scheduled =
      mc::map_to_theory(family_scenario("scheduled-churn", {}));
  EXPECT_FALSE(scheduled.ok);
  EXPECT_EQ(scheduled.reason, "deterministic schedule");
}

TEST(TheoryBridge, GraphFamiliesDeclineWithPinnedTopologyReason) {
  // The exact marker string the graph-* boundary points rely on.
  const mc::TheoryMapping ring = mc::map_to_theory(family_scenario("graph-ring", {}));
  EXPECT_FALSE(ring.ok);
  EXPECT_EQ(ring.reason, "neighbourhood-restricted topology");
  // The topology decline outranks every other marker: a graph family with env
  // extras (edge churn) still surfaces the topology reason, not the env one.
  const mc::TheoryMapping churned = mc::map_to_theory(family_scenario(
      "graph-rr", {{"topology.churn.drop", "0.5"}, {"env.storm.mult", "1"}}));
  EXPECT_FALSE(churned.ok);
  EXPECT_EQ(churned.reason, "neighbourhood-restricted topology");
  // topology=complete collapses to the global-state solver path exactly.
  const mc::TheoryMapping complete = mc::map_to_theory(
      family_scenario("graph-ring", {{"topology", "complete"},
                                     {"policy", "none"},
                                     {"nodes", "4"},
                                     {"workloads", "10,6,4,3"}}));
  EXPECT_TRUE(complete.ok) << complete.reason;
}

TEST(TheoryBridge, VacuousEnvironmentStillMaps) {
  // Unit multipliers everywhere (re-arming Exp at its own rate is a
  // distributional no-op) keep the scenario inside the solvers' model, as
  // does an environment whose churn is frozen.
  const mc::TheoryMapping unit_mult = mc::map_to_theory(family_scenario(
      "correlated-churn", {{"env.storm.mult", "1"}, {"policy", "none"}}));
  ASSERT_TRUE(unit_mult.ok) << unit_mult.reason;
  const mc::TheoryMapping no_churn = mc::map_to_theory(
      family_scenario("correlated-churn", {{"churn", "false"}, {"policy", "none"}}));
  ASSERT_TRUE(no_churn.ok) << no_churn.reason;
  for (const auto& node : no_churn.query.params.nodes) EXPECT_EQ(node.lambda_f, 0.0);
}

// ---------- the lbsim validate gate ----------

TEST(ValidateCommand, PaperFamilyPassesAtDefaultGates) {
  cli::ValidationOptions options;
  options.family = "paper-two-node";
  options.replications = 200;
  options.seed = test::kFixedSeed;
  const cli::ValidationReport report = cli::run_validation(options);
  EXPECT_EQ(report.checked, 2u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_TRUE(report.passed());
}

TEST(ValidateCommand, ArtificiallyTightenedToleranceTripsTheGate) {
  cli::ValidationOptions options;
  options.family = "paper-two-node";
  options.replications = 200;
  options.seed = test::kFixedSeed;
  options.sigma_gate = 1e-4;   // no finite-sample MC run can pass this
  options.ks_slack = -1.0;     // drives the KS threshold negative
  const cli::ValidationReport report = cli::run_validation(options);
  EXPECT_GT(report.failures, 0u);
  EXPECT_FALSE(report.passed());
}

TEST(ValidateCommand, BoundaryPointsReportSkipNotFailure) {
  cli::ValidationOptions options;
  options.family = "periodic-rebalance";
  const cli::ValidationReport report = cli::run_validation(options);
  EXPECT_EQ(report.checked, 0u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_TRUE(report.passed());
}

TEST(ValidateCommand, EveryRegistryFamilyHasValidationPoints) {
  // run_validation fails loudly at runtime when a family has no points; this
  // static check catches the same omission at test time, without running MC.
  const std::vector<std::string> covered = cli::validation_families();
  for (const cli::ScenarioSpec& spec : cli::scenario_registry()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), spec.name), covered.end())
        << "registry family '" << spec.name
        << "' has no validation point in src/cli/validate.cpp";
  }
}

TEST(ValidateCommand, EnvFamiliesPassWithBoundaryMarkers) {
  // Each env family must carry at least one decline-marker point (coverage
  // guard) and pass the gate; correlated-churn additionally theory-checks its
  // calm reduction.
  for (const char* family : {"correlated-churn", "open-arrivals", "scheduled-churn"}) {
    cli::ValidationOptions options;
    options.family = family;
    options.replications = 150;
    options.seed = test::kFixedSeed;
    const cli::ValidationReport report = cli::run_validation(options);
    EXPECT_GE(report.skipped, 1u) << family;
    EXPECT_TRUE(report.passed()) << family;
    if (std::string(family) == "correlated-churn") {
      EXPECT_EQ(report.checked, 1u);
    }
  }
}

TEST(ValidateCommand, GraphFamiliesPassWithBoundaryMarkersAndCompleteReduction) {
  // Each graph family carries at least one topology boundary point;
  // graph-ring additionally theory-checks its topology=complete reduction
  // against the multi-node recursion.
  for (const char* family : {"graph-ring", "graph-torus", "graph-rr"}) {
    cli::ValidationOptions options;
    options.family = family;
    options.replications = 150;
    options.seed = test::kFixedSeed;
    const cli::ValidationReport report = cli::run_validation(options);
    EXPECT_GE(report.skipped, 1u) << family;
    EXPECT_TRUE(report.passed()) << family;
    if (std::string(family) == "graph-ring") {
      EXPECT_EQ(report.checked, 1u);
    }
  }
}

TEST(ValidateCommand, UnknownFamilyThrows) {
  cli::ValidationOptions options;
  options.family = "no-such-family";
  EXPECT_THROW((void)cli::run_validation(options), cli::ConfigError);
}

}  // namespace
}  // namespace lbsim
