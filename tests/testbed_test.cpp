// Tests for the testbed emulation: the three-layer wiring, state exchange,
// distributed decisions, and consistency with the abstract model.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "markov/two_node_mean.hpp"
#include "testbed/config.hpp"
#include "testbed/experiment.hpp"
#include "testbed/state_exchange.hpp"

namespace lbsim::testbed {
namespace {

TEST(StateBoardTest, StoreAndRecall) {
  StateBoard board(3);
  net::StateInfoPacket packet;
  packet.sender = 1;
  packet.queue_size = 17;
  board.store(0, packet);
  EXPECT_EQ(board.last_heard(0, 1).queue_size, 17u);
  // Unheard peers read as the default packet.
  EXPECT_EQ(board.last_heard(2, 1).queue_size, 0u);
  EXPECT_THROW((void)board.last_heard(1, 1), std::invalid_argument);
}

TEST(TestbedConfigTest, PaperPresetAndValidation) {
  TestbedConfig config = paper_testbed(100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  EXPECT_NO_THROW(validate(config));
  EXPECT_DOUBLE_EQ(config.params.nodes[0].lambda_d, 1.08);
  TestbedConfig broken = config.clone();
  broken.policy = nullptr;
  EXPECT_THROW(validate(broken), std::invalid_argument);
  // loss = 1.0 is the blackout boundary and must validate; above 1 is
  // malformed.
  TestbedConfig blackout = config.clone();
  blackout.state_loss_probability = 1.0;
  EXPECT_NO_THROW(validate(blackout));
  TestbedConfig bad_loss = config.clone();
  bad_loss.state_loss_probability = 1.0 + 1e-9;
  EXPECT_THROW(validate(bad_loss), std::invalid_argument);
}

TEST(TestbedTest, RealizationCompletesAllTasks) {
  const TestbedConfig config =
      paper_testbed(100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  const mc::RunResult run = run_realization(config, 1, 0);
  EXPECT_EQ(run.tasks_completed, 160u);
  EXPECT_GT(run.completion_time, 0.0);
  EXPECT_EQ(run.tasks_moved, 35u);
}

TEST(TestbedTest, DeterministicPerReplication) {
  const TestbedConfig config =
      paper_testbed(100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  const mc::RunResult a = run_realization(config, 9, 4);
  const mc::RunResult b = run_realization(config, 9, 4);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(TestbedTest, TraceShowsFlatSegmentsDuringDownTime) {
  const TestbedConfig config =
      paper_testbed(100, 60, std::make_unique<core::Lbp2Policy>(1.0));
  mc::RunTrace trace;
  const mc::RunResult run = run_realization(config, 4, 1, &trace);
  ASSERT_EQ(trace.queue_lengths.size(), 2u);
  EXPECT_EQ(trace.events.count(obs::Kind::kFail), run.failures);
  EXPECT_DOUBLE_EQ(trace.queue_lengths[0].value_at(run.completion_time), 0.0);
  EXPECT_DOUBLE_EQ(trace.queue_lengths[1].value_at(run.completion_time), 0.0);
}

TEST(TestbedTest, NoChurnMatchesNoFailureTheory) {
  // With churn off and the Erlang delay's mean equal to the analytic model's,
  // the emulated mean must sit near the no-failure theory (the delay-law shape
  // difference moves the completion mean by far less than a second here).
  TestbedConfig config = paper_testbed(100, 60, std::make_unique<core::Lbp1Policy>(0, 0.45));
  config.churn_enabled = false;
  config.transfer_setup_shift = 0.0;
  const ExperimentSummary summary = run_experiment(config, 400, 77, 2);
  markov::TwoNodeMeanSolver solver(markov::without_failures(markov::ipdps2006_params()));
  const double theory = solver.lbp1_mean(100, 60, 0, 0.45);
  EXPECT_NEAR(summary.mean(), theory, std::max(1.0, 4.0 * summary.ci95() / 1.96));
}

TEST(TestbedTest, ChurnyMeanNearAbstractModel) {
  // The emulation differs from the abstract model (Erlang bundle delay, setup
  // shift, size-based service) but must land in the same regime as the theory
  // for the Fig. 3 operating point (~117 s); allow 10%.
  const TestbedConfig config =
      paper_testbed(100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  const ExperimentSummary summary = run_experiment(config, 300, 13, 2);
  EXPECT_NEAR(summary.mean(), 117.0, 0.10 * 117.0);
}

TEST(TestbedTest, SummaryAggregatesRealizations) {
  const TestbedConfig config =
      paper_testbed(50, 30, std::make_unique<core::Lbp1Policy>(0, 0.3));
  const ExperimentSummary summary = run_experiment(config, 20, 5, 2);
  EXPECT_EQ(summary.completion.count(), 20u);
  EXPECT_EQ(summary.samples.size(), 20u);
  EXPECT_TRUE(std::is_sorted(summary.samples.begin(), summary.samples.end()));
  EXPECT_GT(summary.mean(), 0.0);
}

TEST(TestbedTest, ThreadingInvariance) {
  const TestbedConfig config =
      paper_testbed(40, 20, std::make_unique<core::Lbp2Policy>(1.0));
  const ExperimentSummary a = run_experiment(config, 16, 3, 1);
  const ExperimentSummary b = run_experiment(config, 16, 3, 4);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(TestbedTest, LossyStatePlaneStillCompletes) {
  TestbedConfig config = paper_testbed(60, 40, std::make_unique<core::Lbp2Policy>(1.0));
  config.state_loss_probability = 0.3;
  const mc::RunResult run = run_realization(config, 21, 0);
  EXPECT_EQ(run.tasks_completed, 100u);
}

TEST(TestbedTest, SetupShiftSlowsTransfers) {
  TestbedConfig fast = paper_testbed(100, 0, std::make_unique<core::Lbp1Policy>(0, 0.5));
  fast.churn_enabled = false;
  fast.transfer_setup_shift = 0.0;
  TestbedConfig slow = fast.clone();
  slow.transfer_setup_shift = 5.0;  // exaggerated for the test
  const ExperimentSummary a = run_experiment(fast, 60, 2, 2);
  const ExperimentSummary b = run_experiment(slow, 60, 2, 2);
  EXPECT_GT(b.mean(), a.mean());
}

}  // namespace
}  // namespace lbsim::testbed
