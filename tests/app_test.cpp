// Unit tests for the application substrate: matrix kernel and calibrated
// workload generation (the Fig. 1 model).

#include <gtest/gtest.h>

#include "app/matrix.hpp"
#include "app/workload.hpp"
#include "stochastic/fit.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::app {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
}

TEST(MatrixTest, SeededIsDeterministic) {
  const Matrix a = Matrix::seeded(4, 4, 99);
  const Matrix b = Matrix::seeded(4, 4, 99);
  EXPECT_EQ(a, b);
  const Matrix c = Matrix::seeded(4, 4, 100);
  EXPECT_FALSE(a == c);
}

TEST(MatrixTest, MultiplyRowIdentity) {
  Matrix identity(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) identity.at(i, i) = 1.0;
  const std::vector<double> row{1.0, 2.0, 3.0};
  EXPECT_EQ(multiply_row(row, identity), row);
}

TEST(MatrixTest, MultiplyRowHandComputed) {
  Matrix m(2, 2, 0.0);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const auto out = multiply_row({5.0, 6.0}, m);  // [5*1+6*3, 5*2+6*4]
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 23.0);
  EXPECT_DOUBLE_EQ(out[1], 34.0);
}

TEST(MatrixTest, MultiplyRowRejectsShapeMismatch) {
  const Matrix m(3, 2);
  EXPECT_THROW((void)multiply_row({1.0, 2.0}, m), std::invalid_argument);
}

TEST(WorkloadTest, GeneratesRequestedCountWithUniqueIds) {
  WorkloadGenerator gen;
  stoch::RngStream rng(21);
  const auto b1 = gen.generate(10, 0, rng);
  const auto b2 = gen.generate(5, 1, rng);
  EXPECT_EQ(b1.size(), 10u);
  EXPECT_EQ(b2.size(), 5u);
  EXPECT_EQ(b2[0].id, 11u);  // ids continue across calls
  EXPECT_EQ(b2[0].origin, 1);
  EXPECT_EQ(gen.tasks_generated(), 15u);
}

TEST(WorkloadTest, DefaultSizesAreExpOne) {
  WorkloadGenerator gen;
  stoch::RngStream rng(22);
  const auto batch = gen.generate(50000, 0, rng);
  std::vector<double> sizes;
  for (const auto& t : batch) sizes.push_back(t.size);
  const auto fit = stoch::fit_exponential(sizes);
  EXPECT_NEAR(fit.rate, 1.0, 0.02);
}

TEST(WorkloadTest, CalibratedServiceTimesAreExponentialAtTargetRate) {
  // The Fig. 1 claim: random task sizes / fixed speed => Exp(lambda_d) service.
  WorkloadGenerator gen;
  stoch::RngStream rng(23);
  const auto batch = gen.generate(50000, 0, rng);
  const auto svc = calibrated_service(1.86);
  std::vector<double> times;
  stoch::RngStream unused(0);
  for (const auto& t : batch) times.push_back(svc(t, unused));
  const auto fit = stoch::fit_exponential(times);
  EXPECT_NEAR(fit.rate, 1.86, 0.05);
}

TEST(WorkloadTest, ExponentialServiceIgnoresTaskSize) {
  const auto svc = exponential_service(1.08);
  stoch::RngStream rng(24);
  node::Task small{1, 0.001, 0};
  node::Task big{2, 1000.0, 0};
  stoch::RunningStats s_small, s_big;
  for (int i = 0; i < 20000; ++i) {
    s_small.add(svc(small, rng));
    s_big.add(svc(big, rng));
  }
  EXPECT_NEAR(s_small.mean(), 1.0 / 1.08, 0.03);
  EXPECT_NEAR(s_big.mean(), 1.0 / 1.08, 0.03);
}

TEST(WorkloadTest, SizeBasedServiceTime) {
  const node::Task task{1, 3.0, 0};
  EXPECT_DOUBLE_EQ(size_based_service_time(task, 1.5), 2.0);
  EXPECT_THROW((void)size_based_service_time(task, 0.0), std::invalid_argument);
}

TEST(WorkloadTest, CustomSizeLaw) {
  WorkloadGenerator gen(std::make_unique<stoch::Deterministic>(2.0));
  stoch::RngStream rng(25);
  const auto batch = gen.generate(10, 0, rng);
  for (const auto& t : batch) EXPECT_DOUBLE_EQ(t.size, 2.0);
}

}  // namespace
}  // namespace lbsim::app
