// Unit tests for src/stochastic: RNG streams and distribution samplers.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "stochastic/distributions.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::stoch {
namespace {

TEST(Xoshiro256ppTest, DeterministicForSeed) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ppTest, DifferentSeedsDiffer) {
  Xoshiro256pp a(1);
  Xoshiro256pp b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256ppTest, LongJumpChangesSequence) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

TEST(RngStreamTest, StreamsAreReproducible) {
  RngStream a(123, 5);
  RngStream b(123, 5);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngStreamTest, DistinctStreamsDecorrelated) {
  RngStream a(123, 0);
  RngStream b(123, 1);
  // Correlation of 1e4 uniform pairs should be near zero.
  const int n = 10000;
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform01();
    const double y = b.uniform01();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  EXPECT_NEAR(cov, 0.0, 0.01);
}

TEST(RngStreamTest, AntitheticStreamMirrorsUniform01) {
  // The antithetic member of a replication pair sees 1 - U wherever its twin
  // saw U; raw-bit draws (next_u64 / uniform_index) are intentionally NOT
  // mirrored, so index-valued decisions stay identical across the pair.
  RngStream plain(123, 5);
  RngStream mirrored(123, 5);
  mirrored.set_antithetic(true);
  EXPECT_TRUE(mirrored.antithetic());
  for (int i = 0; i < 1000; ++i) {
    const double u = plain.uniform01();
    const double v = mirrored.uniform01();
    EXPECT_NEAR(v, 1.0 - u, 1e-15);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);  // the mirror of u = 0 is clamped below 1
  }
  RngStream plain2(99, 0);
  RngStream mirrored2(99, 0);
  mirrored2.set_antithetic(true);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plain2.uniform_index(7), mirrored2.uniform_index(7));
  }
}

TEST(RngStreamTest, AntitheticExponentialsAreNegativelyCorrelated) {
  RngStream plain(2026, 3);
  RngStream mirrored(2026, 3);
  mirrored.set_antithetic(true);
  const int n = 10000;
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = plain.exponential(1.0);
    const double y = mirrored.exponential(1.0);
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double var_x = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double var_y = sum_y2 / n - (sum_y / n) * (sum_y / n);
  // Inverse-CDF sampling of a monotone transform keeps most of the negative
  // correlation (theoretical rho ~ -0.645 for exponentials).
  EXPECT_LT(cov / std::sqrt(var_x * var_y), -0.5);
}

TEST(RngStreamTest, Uniform01InRange) {
  RngStream rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStreamTest, UniformRangeRespected) {
  RngStream rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngStreamTest, ExponentialMeanMatchesRate) {
  RngStream rng(2024);
  RunningStats stats;
  const double rate = 1.86;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 4.0 * stats.std_error());
  // Exponential: stddev == mean.
  EXPECT_NEAR(stats.stddev(), 1.0 / rate, 0.01);
}

TEST(RngStreamTest, ExponentialRejectsBadRate) {
  RngStream rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-2.0), std::invalid_argument);
}

TEST(RngStreamTest, UniformIndexBounds) {
  RngStream rng(77);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto k = rng.uniform_index(7);
    ASSERT_LT(k, 7u);
    counts[static_cast<std::size_t>(k)]++;
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

// ---------- distributions ----------

TEST(DistributionTest, ExponentialMoments) {
  const Exponential d(0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 4.0);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(DistributionTest, ShiftedExponentialMoments) {
  const ShiftedExponential d(0.5, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.25);
  RngStream rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(d.sample(rng), 0.5);
}

TEST(DistributionTest, ErlangMoments) {
  const Erlang d(4, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 1.0);
  EXPECT_THROW(Erlang(0, 1.0), std::invalid_argument);
}

TEST(DistributionTest, ErlangSampleMeanAndVariance) {
  const Erlang d(5, 2.5);
  RngStream rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), d.mean(), 4.0 * stats.std_error());
  EXPECT_NEAR(stats.variance(), d.variance(), 0.05);
}

TEST(DistributionTest, DeterministicIsConstant) {
  const Deterministic d(3.5);
  RngStream rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(DistributionTest, UniformRealMoments) {
  const UniformReal d(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_NEAR(d.variance(), 4.0 / 12.0, 1e-12);
}

TEST(DistributionTest, WeibullShapeOneIsExponential) {
  // Weibull(k=1, scale) == Exponential(1/scale).
  const Weibull w(1.0, 2.0);
  EXPECT_NEAR(w.mean(), 2.0, 1e-12);
  EXPECT_NEAR(w.variance(), 4.0, 1e-9);
}

TEST(DistributionTest, WeibullSampleMean) {
  const Weibull w(2.0, 1.0);
  RngStream rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(w.sample(rng));
  EXPECT_NEAR(stats.mean(), w.mean(), 4.0 * stats.std_error());
}

TEST(DistributionTest, CloneIsIndependentButIdenticalLaw) {
  const Exponential d(1.08);
  const DistributionPtr c = d.clone();
  EXPECT_EQ(c->describe(), d.describe());
  RngStream r1(42), r2(42);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(d.sample(r1), c->sample(r2));
}

TEST(DistributionTest, DescribeMentionsParameters) {
  EXPECT_NE(Exponential(1.08).describe().find("1.08"), std::string::npos);
  EXPECT_NE(Erlang(3, 2.0).describe().find("3"), std::string::npos);
}

}  // namespace
}  // namespace lbsim::stoch
