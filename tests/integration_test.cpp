// Cross-module integration tests: the paper's qualitative findings must hold
// end to end (theory + MC + testbed together), including the Table 3 policy
// crossover and the Fig. 5 dominance relations.

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "stochastic/stats.hpp"
#include "test_support.hpp"
#include "testbed/experiment.hpp"

namespace lbsim {
namespace {

markov::TwoNodeParams params_with_delay(double d) {
  markov::TwoNodeParams p = markov::ipdps2006_params();
  p.per_task_delay_mean = d;
  return p;
}

double lbp2_mc_mean(const markov::TwoNodeParams& p, std::size_t m0, std::size_t m1,
                    std::size_t reps = 800) {
  const auto gain = core::optimize_lbp2_initial_gain(p, m0, m1);
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      p, m0, m1, std::make_unique<core::Lbp2Policy>(gain.gain));
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = reps;
  return mc::run_monte_carlo(config, mc_cfg).mean();
}

TEST(IntegrationTest, SmallDelayLbp2BeatsLbp1) {
  // Tables 1-2: at d = 0.02 s/task, LBP-2 outperforms LBP-1 for all
  // workloads; spot-check the headline (100, 60) configuration.
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  const auto lbp1 = core::optimize_lbp1_exact(p, 100, 60);
  const double lbp2 = lbp2_mc_mean(p, 100, 60);
  EXPECT_LT(lbp2, lbp1.expected_completion);
}

TEST(IntegrationTest, LargeDelayLbp1BeatsLbp2) {
  // Table 3: at d = 3 s/task the ranking flips.
  const markov::TwoNodeParams p = params_with_delay(3.0);
  const auto lbp1 = core::optimize_lbp1_exact(p, 100, 60);
  const double lbp2 = lbp2_mc_mean(p, 100, 60);
  EXPECT_GT(lbp2, lbp1.expected_completion);
}

TEST(IntegrationTest, CrossoverLiesBetweenHalfAndThreeSeconds) {
  // Table 3 reports the crossover between 0.5 and 1 s/task; shapes vary with
  // the RNG so we assert the wider bracket (0.1, 3).
  const double gap_small = lbp2_mc_mean(params_with_delay(0.1), 100, 60) -
                           core::optimize_lbp1_exact(params_with_delay(0.1), 100, 60)
                               .expected_completion;
  const double gap_large = lbp2_mc_mean(params_with_delay(3.0), 100, 60) -
                           core::optimize_lbp1_exact(params_with_delay(3.0), 100, 60)
                               .expected_completion;
  EXPECT_LT(gap_small, 0.0);
  EXPECT_GT(gap_large, 0.0);
}

TEST(IntegrationTest, Lbp1CompletionGrowsWithDelay) {
  double prev = 0.0;
  for (const double d : {0.01, 0.5, 1.0, 2.0, 3.0}) {
    const auto opt = core::optimize_lbp1_exact(params_with_delay(d), 100, 60);
    EXPECT_GT(opt.expected_completion, prev);
    prev = opt.expected_completion;
  }
}

TEST(IntegrationTest, Table3Lbp1TheoryValues) {
  // Paper Table 3, LBP-1 column: 116.82, 117.76, 120.99, 127.62, 131.64 for
  // d in {0.01, 0.5, 1, 2, 3}; check within 2%.
  const double expected[] = {116.82, 117.76, 120.99, 127.62, 131.64};
  const double delays[] = {0.01, 0.5, 1.0, 2.0, 3.0};
  for (int i = 0; i < 5; ++i) {
    const auto opt = core::optimize_lbp1_grid(params_with_delay(delays[i]), 100, 60, 0.05);
    EXPECT_NEAR_REL(opt.expected_completion, expected[i], 0.02) << "d=" << delays[i];
  }
}

TEST(IntegrationTest, McEcdfMatchesCdfSolver) {
  // The distribution solver and the simulator describe the same law: KS
  // distance between the MC ECDF (1000 samples) and the analytic CDF must be
  // small for the (25, 50) Fig. 5 workload with transfer.
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  const double gain = 0.3;
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      p, 25, 50, std::make_unique<core::Lbp1Policy>(1, gain));
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 1000;
  mc_cfg.collect_samples = true;
  const mc::McResult mc_result = mc::run_monte_carlo(config, mc_cfg);

  markov::TwoNodeCdfSolver::Config cdf_cfg;
  cdf_cfg.horizon = 400.0;
  cdf_cfg.dt = 0.05;
  const markov::TwoNodeCdfSolver solver(p, cdf_cfg);
  const markov::CdfCurve curve = solver.lbp1_cdf(25, 50, 1, gain);

  const stoch::Ecdf ecdf(mc_result.samples);
  const double ks = stoch::ks_distance_to_curve(ecdf, curve.grid, curve.values);
  EXPECT_LT(ks, 0.06);  // ~1.92/sqrt(1000) = 0.061 is the 0.1%-level KS band
}

TEST(IntegrationTest, CdfMedianConsistentWithMcMedian) {
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      p, 50, 0, std::make_unique<core::Lbp1Policy>(0, 0.3));
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 1000;
  mc_cfg.collect_samples = true;
  const mc::McResult mc_result = mc::run_monte_carlo(config, mc_cfg);
  markov::TwoNodeCdfSolver::Config cdf_cfg;
  cdf_cfg.horizon = 300.0;
  const markov::TwoNodeCdfSolver solver(p, cdf_cfg);
  const markov::CdfCurve curve = solver.lbp1_cdf(50, 0, 0, 0.3);
  const double mc_median = stoch::quantile(mc_result.samples, 0.5);
  EXPECT_NEAR_REL(curve.quantile(0.5), mc_median, 0.08);
}

TEST(IntegrationTest, TestbedAgreesWithMcWithinTolerance) {
  // The "experiment" (testbed emulation) and the "MC simulation" (abstract
  // model) disagree only through delay-law shape and task-size granularity:
  // their means for the same policy must land within a few percent, the same
  // agreement the paper reports between its experiment and MC columns.
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  mc::ScenarioConfig mc_config = mc::make_two_node_scenario(
      p, 200, 100, std::make_unique<core::Lbp1Policy>(0, 0.35));
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 600;
  const double mc_mean = mc::run_monte_carlo(mc_config, mc_cfg).mean();

  testbed::TestbedConfig tb =
      testbed::paper_testbed(200, 100, std::make_unique<core::Lbp1Policy>(0, 0.35));
  const double tb_mean = testbed::run_experiment(tb, 300, 19, 2).mean();
  EXPECT_NEAR_REL(tb_mean, mc_mean, 0.06);
}

TEST(IntegrationTest, OptimalGainUnderChurnSmallerInMcToo) {
  // Verify with simulation (not just theory) that transferring the no-failure
  // optimum under churn is worse than the churn-aware optimum (Fig. 3 story).
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 1200;
  mc::ScenarioConfig at_035 = mc::make_two_node_scenario(
      p, 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  mc::ScenarioConfig at_080 = mc::make_two_node_scenario(
      p, 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.80));
  const auto r035 = mc::run_monte_carlo(at_035, mc_cfg);
  const auto r080 = mc::run_monte_carlo(at_080, mc_cfg);
  EXPECT_LT(r035.mean(), r080.mean());
}

TEST(IntegrationTest, MultiNodeLbp2BeatsNoBalancingUnderChurn) {
  markov::MultiNodeParams p;
  p.nodes = {markov::NodeParams{1.0, 0.05, 0.1}, markov::NodeParams{2.0, 0.05, 0.1},
             markov::NodeParams{1.5, 0.05, 0.05}};
  p.per_task_delay_mean = 0.02;
  mc::ScenarioConfig lbp2;
  lbp2.params = p;
  lbp2.workloads = {120, 10, 20};
  lbp2.policy = std::make_unique<core::Lbp2Policy>(1.0);
  mc::ScenarioConfig nothing = lbp2.clone();
  nothing.policy = std::make_unique<core::NoBalancingPolicy>();
  mc::McConfig mc_cfg;
  mc_cfg.seed = test::kFixedSeed;
  mc_cfg.replications = 400;
  EXPECT_LT(mc::run_monte_carlo(lbp2, mc_cfg).mean(),
            mc::run_monte_carlo(nothing, mc_cfg).mean());
}

}  // namespace
}  // namespace lbsim
