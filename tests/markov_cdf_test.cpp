// Tests for the completion-time CDF solver (paper eq. (5), Fig. 5): closed
// forms, shape properties, consistency with the mean solver, and dominance
// relations between the failure and no-failure curves.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/oracle.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"

namespace lbsim::markov {
namespace {

TwoNodeParams reliable_params(double r0, double r1, double d = 0.02) {
  TwoNodeParams p;
  p.nodes[0] = NodeParams{r0, 0.0, 0.0};
  p.nodes[1] = NodeParams{r1, 0.0, 0.0};
  p.per_task_delay_mean = d;
  return p;
}

TwoNodeCdfSolver::Config fast_config(double horizon = 60.0, double dt = 0.02) {
  TwoNodeCdfSolver::Config config;
  config.horizon = horizon;
  config.dt = dt;
  return config;
}

TEST(CdfSolverTest, EmptySystemIsDoneAtZero) {
  const TwoNodeCdfSolver solver(ipdps2006_params(), fast_config(5.0));
  const CdfCurve curve = solver.cdf_no_transit(0, 0);
  for (const double v : curve.values) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(curve.mean_estimate(), 0.0);
}

TEST(CdfSolverTest, SingleTaskSingleNodeIsExponentialCdf) {
  const TwoNodeCdfSolver solver(reliable_params(1.0, 1.0), fast_config(30.0, 0.01));
  const CdfCurve curve = solver.cdf_no_transit(1, 0);
  for (std::size_t k = 0; k < curve.grid.size(); k += 100) {
    const double expected = 1.0 - std::exp(-curve.grid[k]);
    EXPECT_NEAR(curve.values[k], expected, 1e-4) << "t=" << curve.grid[k];
  }
}

TEST(CdfSolverTest, MonotoneNondecreasingAndBounded) {
  const TwoNodeCdfSolver solver(ipdps2006_params(), fast_config(120.0));
  const CdfCurve curve = solver.cdf_with_transit(10, 5, 5, 1);
  double prev = -1e-12;
  for (const double v : curve.values) {
    EXPECT_GE(v, prev - 1e-9);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(CdfSolverTest, ReachesOneWithinGenerousHorizon) {
  const TwoNodeCdfSolver solver(ipdps2006_params(), fast_config(400.0, 0.05));
  const CdfCurve curve = solver.cdf_no_transit(10, 10);
  EXPECT_LT(curve.tail_mass(), 1e-3);
}

TEST(CdfSolverTest, MeanFromCdfMatchesMeanSolverNoChurn) {
  const TwoNodeParams p = reliable_params(1.08, 1.86);
  const TwoNodeCdfSolver cdf_solver(p, fast_config(80.0, 0.01));
  TwoNodeMeanSolver mean_solver(p);
  const CdfCurve curve = cdf_solver.cdf_no_transit(12, 8);
  EXPECT_NEAR(curve.mean_estimate(), mean_solver.mean_no_transit(12, 8), 0.05);
}

TEST(CdfSolverTest, MeanFromCdfMatchesMeanSolverWithChurnAndTransit) {
  const TwoNodeParams p = ipdps2006_params();
  const TwoNodeCdfSolver cdf_solver(p, fast_config(500.0, 0.02));
  TwoNodeMeanSolver mean_solver(p);
  const CdfCurve curve = cdf_solver.cdf_with_transit(7, 4, 4, 1);
  EXPECT_NEAR(curve.mean_estimate(), mean_solver.mean_with_transit(7, 4, 4, 1), 0.25);
}

TEST(CdfSolverTest, FailureCurveStochasticallyDominated) {
  // P{T <= t} with churn <= P{T <= t} without churn, for every t (Fig. 5).
  const TwoNodeCdfSolver churny(ipdps2006_params(), fast_config(150.0));
  const TwoNodeCdfSolver clean(without_failures(ipdps2006_params()), fast_config(150.0));
  const CdfCurve with_fail = churny.cdf_no_transit(25, 25);
  const CdfCurve no_fail = clean.cdf_no_transit(25, 25);
  ASSERT_EQ(with_fail.values.size(), no_fail.values.size());
  for (std::size_t k = 0; k < with_fail.values.size(); ++k) {
    EXPECT_LE(with_fail.values[k], no_fail.values[k] + 1e-6);
  }
}

TEST(CdfSolverTest, TransitDirectionSymmetry) {
  // Shipping L toward node 1 in params P == shipping L toward node 0 in
  // swapped params with swapped queues.
  const TwoNodeParams p = ipdps2006_params();
  const TwoNodeCdfSolver solver(p, fast_config(100.0));
  const TwoNodeCdfSolver swapped(swap_nodes(p), fast_config(100.0));
  const CdfCurve a = solver.cdf_with_transit(6, 3, 4, 1);
  const CdfCurve b = swapped.cdf_with_transit(3, 6, 4, 0);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t k = 0; k < a.values.size(); k += 50) {
    EXPECT_NEAR(a.values[k], b.values[k], 1e-9);
  }
}

TEST(CdfSolverTest, SwapHelpers) {
  EXPECT_EQ(swap_state_bits(0b01), 0b10u);
  EXPECT_EQ(swap_state_bits(0b10), 0b01u);
  EXPECT_EQ(swap_state_bits(0b11), 0b11u);
  EXPECT_EQ(swap_state_bits(0b00), 0b00u);
  const TwoNodeParams p = ipdps2006_params();
  const TwoNodeParams s = swap_nodes(p);
  EXPECT_DOUBLE_EQ(s.nodes[0].lambda_d, p.nodes[1].lambda_d);
  EXPECT_DOUBLE_EQ(s.nodes[1].lambda_r, p.nodes[0].lambda_r);
}

TEST(CdfSolverTest, QuantileAndTail) {
  const TwoNodeCdfSolver solver(reliable_params(1.0, 1.0), fast_config(50.0, 0.01));
  const CdfCurve curve = solver.cdf_no_transit(1, 0);  // Exp(1)
  EXPECT_NEAR(curve.quantile(0.5), std::log(2.0), 0.02);
  EXPECT_NEAR(curve.quantile(0.95), -std::log(0.05), 0.05);
  EXPECT_THROW((void)curve.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)curve.quantile(1.5), std::invalid_argument);
}

TEST(CdfSolverTest, QuantileBeyondHorizonReturnsTailSentinel) {
  // A 2-second horizon on an Exp(1) completion leaves ~13.5% of the mass in
  // the tail: quantiles inside the reached mass stay finite, ones beyond it
  // come back as the +infinity sentinel instead of a hard failure.
  const TwoNodeCdfSolver solver(reliable_params(1.0, 1.0), fast_config(2.0, 0.01));
  const CdfCurve curve = solver.cdf_no_transit(1, 0);
  ASSERT_GT(curve.tail_mass(), 0.10);
  EXPECT_TRUE(std::isfinite(curve.quantile(0.5)));
  EXPECT_TRUE(std::isinf(curve.quantile(0.99)));
  EXPECT_TRUE(std::isinf(curve.quantile(1.0)));
  // Extending the horizon turns the same quantile finite again.
  const CdfCurve longer =
      TwoNodeCdfSolver(reliable_params(1.0, 1.0), fast_config(20.0, 0.01))
          .cdf_no_transit(1, 0);
  EXPECT_NEAR(longer.quantile(0.99), -std::log(0.01), 0.05);
}

TEST(CdfSolverTest, MoreWorkShiftsCurveRight) {
  const TwoNodeCdfSolver solver(ipdps2006_params(), fast_config(200.0));
  const CdfCurve small = solver.cdf_no_transit(5, 5);
  const CdfCurve big = solver.cdf_no_transit(20, 20);
  for (std::size_t k = 0; k < small.values.size(); k += 100) {
    EXPECT_GE(small.values[k], big.values[k] - 1e-9);
  }
}

TEST(CdfSolverTest, StiffSmallBundleStaysStable) {
  // L = 1 gives an arrival rate of 50/s; substepping must keep RK4 stable.
  const TwoNodeCdfSolver solver(ipdps2006_params(), fast_config(60.0, 0.05));
  const CdfCurve curve = solver.cdf_with_transit(2, 2, 1, 1);
  for (const double v : curve.values) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  EXPECT_LT(curve.tail_mass(), 0.05);
}

TEST(CdfSolverTest, Lbp1EntryPointConsistentWithTransit) {
  const TwoNodeCdfSolver solver(ipdps2006_params(), fast_config(100.0));
  const CdfCurve via_lbp1 = solver.lbp1_cdf(10, 6, 0, 0.4);  // L = 4
  const CdfCurve direct = solver.cdf_with_transit(6, 6, 4, 1);
  ASSERT_EQ(via_lbp1.values.size(), direct.values.size());
  for (std::size_t k = 0; k < direct.values.size(); k += 100) {
    EXPECT_NEAR(via_lbp1.values[k], direct.values[k], 1e-12);
  }
}

TEST(CdfSolverTest, ConfigValidation) {
  EXPECT_THROW(TwoNodeCdfSolver(ipdps2006_params(), {0.0, 0.05, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(TwoNodeCdfSolver(ipdps2006_params(), {10.0, 0.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(TwoNodeCdfSolver(ipdps2006_params(), {10.0, 0.05, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lbsim::markov
