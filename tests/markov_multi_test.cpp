// Tests for the multi-node regeneration solver: reduction to closed forms and
// to the specialised two-node solver, plus n = 3 extension properties.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "markov/multi_node_mean.hpp"
#include "markov/oracle.hpp"
#include "markov/two_node_mean.hpp"

namespace lbsim::markov {
namespace {

MultiNodeParams two_node(const TwoNodeParams& p) {
  MultiNodeParams out;
  out.nodes = {p.nodes[0], p.nodes[1]};
  out.per_task_delay_mean = p.per_task_delay_mean;
  return out;
}

MultiNodeParams reliable_three(double r0, double r1, double r2) {
  MultiNodeParams p;
  p.nodes = {NodeParams{r0, 0.0, 0.0}, NodeParams{r1, 0.0, 0.0}, NodeParams{r2, 0.0, 0.0}};
  p.per_task_delay_mean = 0.02;
  return p;
}

TEST(MultiNodeTest, EmptySystemZero) {
  MultiNodeMeanSolver solver(two_node(ipdps2006_params()));
  EXPECT_DOUBLE_EQ(solver.expected_completion({0, 0}), 0.0);
}

TEST(MultiNodeTest, MatchesTwoNodeSolverNoTransit) {
  const TwoNodeParams p = ipdps2006_params();
  MultiNodeMeanSolver multi(two_node(p));
  TwoNodeMeanSolver two(p);
  for (const auto& [m0, m1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 0}, {0, 3}, {5, 5}, {12, 7}}) {
    EXPECT_NEAR(multi.expected_completion({m0, m1}), two.mean_no_transit(m0, m1), 1e-9)
        << m0 << "," << m1;
  }
}

TEST(MultiNodeTest, MatchesTwoNodeSolverWithTransit) {
  const TwoNodeParams p = ipdps2006_params();
  MultiNodeMeanSolver multi(two_node(p));
  TwoNodeMeanSolver two(p);
  const std::vector<TransferSpec> transfers{{0, 1, 6}};
  EXPECT_NEAR(multi.expected_completion({10, 4}, transfers),
              two.mean_with_transit(10, 4, 6, 1), 1e-9);
}

TEST(MultiNodeTest, MatchesTwoNodeSolverAllWorkStates) {
  const TwoNodeParams p = ipdps2006_params();
  MultiNodeMeanSolver multi(two_node(p));
  TwoNodeMeanSolver two(p);
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_NEAR(multi.expected_completion({6, 6}, {}, w), two.mean_no_transit(6, 6, w),
                1e-9)
        << "state " << w;
  }
}

TEST(MultiNodeTest, SingleNodeChurnClosedForm) {
  MultiNodeParams p;
  p.nodes = {NodeParams{1.08, 0.05, 0.1}, NodeParams{1.86, 0.0, 0.0}};
  p.per_task_delay_mean = 0.02;
  MultiNodeMeanSolver solver(p);
  EXPECT_NEAR(solver.expected_completion({9, 0}), single_node_churn_mean(9, p.nodes[0]),
              1e-9);
}

TEST(MultiNodeTest, ThreeReliableNodesIndependentQueues) {
  // With no transfers the three queues race independently; E[max] can be
  // obtained by conditioning: verify against a direct Monte-Carlo-free bound
  // check and the two-node reduction when one queue is empty.
  MultiNodeMeanSolver solver(reliable_three(1.0, 2.0, 4.0));
  TwoNodeParams p2;
  p2.nodes[0] = NodeParams{1.0, 0.0, 0.0};
  p2.nodes[1] = NodeParams{2.0, 0.0, 0.0};
  p2.per_task_delay_mean = 0.02;
  TwoNodeMeanSolver two(p2);
  EXPECT_NEAR(solver.expected_completion({4, 6, 0}), two.mean_no_transit(4, 6), 1e-9);
  // E[max of three] >= E[max of any pair].
  EXPECT_GT(solver.expected_completion({4, 6, 6}), two.mean_no_transit(4, 6));
}

TEST(MultiNodeTest, TransferBetweenTwoOfThreeNodes) {
  // A transfer to an empty third node must beat leaving everything queued at a
  // slow node (rates chosen so that offloading clearly helps).
  MultiNodeMeanSolver solver(reliable_three(0.5, 0.5, 5.0));
  const double keep = solver.expected_completion({20, 0, 0});
  const double ship = solver.expected_completion({10, 0, 0}, {{0, 2, 10}});
  EXPECT_LT(ship, keep);
}

TEST(MultiNodeTest, TwoSimultaneousTransfers) {
  MultiNodeMeanSolver solver(reliable_three(1.0, 1.0, 1.0));
  const std::vector<TransferSpec> transfers{{0, 1, 3}, {0, 2, 3}};
  const double mean = solver.expected_completion({4, 0, 0}, transfers);
  // Lower bound: each branch must process >= 3 tasks at rate 1 after >= its
  // bundle delay; upper bound: everything serial at one node.
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 10.0);
  // Independence sanity: adding a second transfer changed the answer vs one.
  const double one = solver.expected_completion({4, 0, 0}, {{0, 1, 3}});
  EXPECT_NE(mean, one);
}

TEST(MultiNodeTest, TransferArrivalSplitsMass) {
  // mu(with transit) >= bundle delay and approaches hat as delay -> 0.
  MultiNodeParams fast = two_node(ipdps2006_params());
  fast.per_task_delay_mean = 1e-7;
  MultiNodeMeanSolver solver(fast);
  TwoNodeMeanSolver two(ipdps2006_params());
  EXPECT_NEAR(solver.expected_completion({5, 5}, {{0, 1, 5}}),
              two.mean_no_transit(5, 10), 1e-3);
}

TEST(MultiNodeTest, MemoGrowsWithLattice) {
  MultiNodeMeanSolver solver(reliable_three(1.0, 1.0, 1.0));
  (void)solver.expected_completion({3, 3, 3});
  // 4x4x4 queue lattice = 64 states.
  EXPECT_EQ(solver.memo_size(), 64u);
}

TEST(MultiNodeTest, InputValidation) {
  MultiNodeMeanSolver solver(two_node(ipdps2006_params()));
  EXPECT_THROW((void)solver.expected_completion({1}), std::invalid_argument);
  EXPECT_THROW((void)solver.expected_completion({1, 1}, {{0, 0, 3}}),
               std::invalid_argument);
  EXPECT_THROW((void)solver.expected_completion({1, 1}, {{0, 1, 0}}),
               std::invalid_argument);
  EXPECT_THROW((void)solver.expected_completion({1, 1}, {}, 7), std::invalid_argument);
  MultiNodeParams nine;
  nine.nodes.assign(9, NodeParams{1.0, 0.0, 0.0});
  EXPECT_THROW(MultiNodeMeanSolver{nine}, std::invalid_argument);
}

TEST(MultiNodeTest, ChurnyThreeNodeSlowerThanReliable) {
  MultiNodeParams churny = reliable_three(1.0, 1.0, 1.0);
  for (auto& node : churny.nodes) {
    node.lambda_f = 0.05;
    node.lambda_r = 0.1;
  }
  MultiNodeMeanSolver a(churny);
  MultiNodeMeanSolver b(reliable_three(1.0, 1.0, 1.0));
  EXPECT_GT(a.expected_completion({5, 5, 5}), b.expected_completion({5, 5, 5}));
}

TEST(MultiNodeTest, DownStateCostsRecoveryTime) {
  MultiNodeParams p = two_node(ipdps2006_params());
  MultiNodeMeanSolver solver(p);
  const double up = solver.expected_completion({3, 3}, {}, 0b11);
  const double down0 = solver.expected_completion({3, 3}, {}, 0b10);
  EXPECT_GT(down0, up);
}

}  // namespace
}  // namespace lbsim::markov
