// Tests for the variance-reduced estimator layer and the sharded event queue:
// antithetic pairs and the control variate must contract the CI without
// biasing the estimate (checked against the exact solvers), inadmissible
// controls must fall back with their pinned markers, and every statistic must
// be bit-identical across event-queue shard counts.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cli/registry.hpp"
#include "core/lbp1.hpp"
#include "markov/theory_oracle.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "mc/scenario.hpp"
#include "mc/theory.hpp"
#include "sim/simulator.hpp"

namespace lbsim::mc {
namespace {

/// The paper's two-node system under LBP-1 (theory-mappable, churn on).
ScenarioConfig paper_scenario(bool churn = true) {
  ScenarioConfig config = make_two_node_scenario(markov::ipdps2006_params(), 100, 60,
                                                 std::make_unique<core::Lbp1Policy>(0, 0.35));
  config.churn_enabled = churn;
  return config;
}

/// churn-storm's model: the paper system with 10x failure/recovery rates.
/// Fast churn self-averages across a replication, so mirrored service draws
/// dominate the completion-time variance — the regime where antithetic
/// pairing shines (variance ratio well above 2).
ScenarioConfig storm_scenario() {
  markov::TwoNodeParams params = markov::ipdps2006_params();
  for (auto& node : params.nodes) {
    node.lambda_f *= 10.0;
    node.lambda_r *= 10.0;
  }
  return make_two_node_scenario(params, 100, 60,
                                std::make_unique<core::Lbp1Policy>(0, 0.35));
}

/// Exact completion-time mean for a mappable scenario (test precondition).
double exact_mean(const ScenarioConfig& config) {
  const TheoryMapping mapping = map_to_theory(config);
  EXPECT_TRUE(mapping.ok) << mapping.reason;
  const markov::TheoryPrediction prediction = markov::TheoryOracle{}.mean(mapping.query);
  EXPECT_TRUE(prediction.applicable) << prediction.reason;
  return prediction.mean;
}

TEST(VrModeTest, NamesRoundTripAndGarbageIsRejected) {
  for (const VrMode mode : {VrMode::kNone, VrMode::kAntithetic, VrMode::kControlVariate,
                            VrMode::kBoth}) {
    VrMode parsed = VrMode::kNone;
    EXPECT_TRUE(parse_vr_mode(vr_mode_name(mode), parsed)) << vr_mode_name(mode);
    EXPECT_EQ(parsed, mode);
  }
  VrMode parsed = VrMode::kAntithetic;
  EXPECT_FALSE(parse_vr_mode("antithetical", parsed));
  EXPECT_FALSE(parse_vr_mode("", parsed));
  EXPECT_EQ(parsed, VrMode::kAntithetic);  // untouched on failure
}

TEST(McVrTest, AntitheticContractsTheConfidenceInterval) {
  const ScenarioConfig config = storm_scenario();
  McConfig mc;
  mc.replications = 1000;
  const McResult plain = run_monte_carlo(config, mc);
  mc.vr = VrMode::kAntithetic;
  const McResult vr = run_monte_carlo(config, mc);

  EXPECT_TRUE(vr.vr.antithetic);
  EXPECT_FALSE(vr.vr.control);
  EXPECT_TRUE(vr.vr.fallback.empty()) << vr.vr.fallback;
  EXPECT_EQ(vr.vr.observations, 500u);  // pair means
  // Equal-budget contraction: at this operating point the mirrored pairs
  // cancel most of the service-draw noise (ratio ~2.2-2.7 across seeds); a
  // ratio this far above 1 cannot be luck at 1000 replications.
  EXPECT_GT(vr.vr.variance_ratio, 1.5);
  EXPECT_LT(vr.vr.std_error, plain.std_error());
  // The adjusted estimate agrees with the exact solver at 4 sigma.
  EXPECT_NEAR(vr.vr.mean, exact_mean(config), 4.0 * vr.vr.std_error);
}

TEST(McVrTest, ControlVariateIsUnbiasedAgainstTheory) {
  const ScenarioConfig config = paper_scenario();
  McConfig mc;
  mc.replications = 600;
  mc.vr = VrMode::kControlVariate;
  const McResult result = run_monte_carlo(config, mc);

  EXPECT_TRUE(result.vr.control);
  EXPECT_FALSE(result.vr.antithetic);
  EXPECT_TRUE(result.vr.fallback.empty()) << result.vr.fallback;
  EXPECT_FALSE(result.vr.control_method.empty());
  EXPECT_GT(result.vr.pilot, 0u);
  EXPECT_TRUE(std::isfinite(result.vr.beta));
  // The surrogate's exact mean is the churn-free system's completion time.
  ScenarioConfig surrogate = config.clone();
  surrogate.churn_enabled = false;
  EXPECT_DOUBLE_EQ(result.vr.control_mean, exact_mean(surrogate));
  // Lavenberg-Welch pilot splitting makes the adjusted estimator exactly
  // unbiased; 4 sigma against the exact churn-ful solver.
  EXPECT_NEAR(result.vr.mean, exact_mean(config), 4.0 * result.vr.std_error);
  EXPECT_GE(result.vr.variance_ratio, 1.0);
}

TEST(McVrTest, BothComposesPairsAndControlWithoutBias) {
  const ScenarioConfig config = storm_scenario();
  McConfig mc;
  mc.replications = 1000;
  mc.vr = VrMode::kBoth;
  const McResult result = run_monte_carlo(config, mc);

  EXPECT_TRUE(result.vr.antithetic);
  EXPECT_TRUE(result.vr.control);
  EXPECT_TRUE(result.vr.fallback.empty()) << result.vr.fallback;
  EXPECT_GT(result.vr.variance_ratio, 1.5);
  EXPECT_NEAR(result.vr.mean, exact_mean(config), 4.0 * result.vr.std_error);
}

TEST(McVrTest, ChurnFreeScenarioFallsBackWithPinnedMarker) {
  McConfig mc;
  mc.replications = 100;
  mc.vr = VrMode::kControlVariate;
  const McResult result = run_monte_carlo(paper_scenario(/*churn=*/false), mc);

  EXPECT_FALSE(result.vr.control);
  EXPECT_EQ(result.vr.fallback,
            "control variate unavailable: scenario is churn-free, so the control "
            "would coincide with the target");
  // The fallback leaves a plain (but still valid) estimate behind.
  EXPECT_DOUBLE_EQ(result.vr.mean, result.mean());
  EXPECT_DOUBLE_EQ(result.vr.variance_ratio, 1.0);
}

TEST(McVrTest, NonMappableTopologyFallsBackToAntitheticUnderBoth) {
  // graph-ring restricts the exchange topology, so the churn-free surrogate
  // has no exact solver: under kBoth the control is dropped (pinned marker)
  // while the antithetic component stays active.
  const cli::ScenarioSpec& spec = cli::find_scenario("graph-ring");
  const ScenarioConfig config = spec.build(spec.schema.resolve(cli::RawConfig{}));
  McConfig mc;
  mc.replications = 100;
  mc.vr = VrMode::kBoth;
  const McResult result = run_monte_carlo(config, mc);

  EXPECT_TRUE(result.vr.antithetic);
  EXPECT_FALSE(result.vr.control);
  EXPECT_EQ(result.vr.fallback,
            "control variate unavailable: neighbourhood-restricted topology");
}

TEST(McVrTest, AntitheticRequiresAnEvenReplicationCount) {
  McConfig mc;
  mc.replications = 7;
  mc.vr = VrMode::kAntithetic;
  EXPECT_THROW((void)run_monte_carlo(paper_scenario(), mc), std::invalid_argument);
}

TEST(McVrTest, ExplicitPilotIsHonoured) {
  McConfig mc;
  mc.replications = 200;
  mc.vr = VrMode::kControlVariate;
  mc.cv_pilot = 16;
  const McResult result = run_monte_carlo(paper_scenario(), mc);
  EXPECT_TRUE(result.vr.control);
  EXPECT_EQ(result.vr.pilot, 16u);
  EXPECT_EQ(result.vr.observations, 200u - 16u);
}

TEST(McVrTest, VrRunsAreThreadCountInvariant) {
  // Per-replication values land in arrays indexed by replication id, so the
  // adjusted estimate (like every raw statistic) must not depend on how the
  // reps were distributed over workers.
  const ScenarioConfig config = storm_scenario();
  McConfig mc;
  mc.replications = 200;
  mc.vr = VrMode::kBoth;
  mc.threads = 1;
  const McResult one = run_monte_carlo(config, mc);
  mc.threads = 4;
  const McResult four = run_monte_carlo(config, mc);
  EXPECT_DOUBLE_EQ(one.vr.mean, four.vr.mean);
  EXPECT_DOUBLE_EQ(one.vr.std_error, four.vr.std_error);
  EXPECT_DOUBLE_EQ(one.vr.beta, four.vr.beta);
  EXPECT_DOUBLE_EQ(one.p99, four.p99);
}

TEST(McShardsTest, EveryStatisticBitIdenticalAcrossShardCounts) {
  // The sharded queue pops the global (time, serial) minimum across shards,
  // so ANY shard count must reproduce the single-heap event order exactly —
  // not just statistically.
  const cli::ScenarioSpec& spec = cli::find_scenario("many-node-churn");
  cli::RawConfig raw;
  raw.set("nodes", "16");
  const ScenarioConfig config = spec.build(spec.schema.resolve(raw));
  McConfig mc;
  mc.replications = 50;
  const McResult base = run_monte_carlo(config, mc);
  for (const std::size_t shards : {std::size_t{3}, std::size_t{8}, std::size_t{64}}) {
    mc.shards = shards;
    const McResult sharded = run_monte_carlo(config, mc);
    EXPECT_DOUBLE_EQ(sharded.mean(), base.mean()) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(sharded.std_error(), base.std_error()) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(sharded.p50, base.p50) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(sharded.p99, base.p99) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(sharded.mean_failures, base.mean_failures) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(sharded.mean_tasks_moved, base.mean_tasks_moved)
        << "shards=" << shards;
  }
}

TEST(McShardsTest, ShardingComposesWithVarianceReduction) {
  const ScenarioConfig config = storm_scenario();
  McConfig mc;
  mc.replications = 200;
  mc.vr = VrMode::kBoth;
  const McResult base = run_monte_carlo(config, mc);
  mc.shards = 4;
  const McResult sharded = run_monte_carlo(config, mc);
  EXPECT_DOUBLE_EQ(sharded.vr.mean, base.vr.mean);
  EXPECT_DOUBLE_EQ(sharded.vr.std_error, base.vr.std_error);
  EXPECT_DOUBLE_EQ(sharded.vr.variance_ratio, base.vr.variance_ratio);
}

TEST(McShardsTest, SingleRunBitIdenticalUnderShardedSimulator) {
  const ScenarioConfig config = paper_scenario();
  des::Simulator plain;
  const RunResult a = run_scenario(config, 7, 3, nullptr, plain);
  des::Simulator sharded;
  sharded.set_shard_count(5);
  const RunResult b = run_scenario(config, 7, 3, nullptr, sharded);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.tasks_moved, b.tasks_moved);
}

}  // namespace
}  // namespace lbsim::mc
