// Unit tests for the compute-element substrate: service, failure freezing,
// checkpoint-resume, extraction, and the alternating-renewal failure process.

#include <gtest/gtest.h>

#include <memory>

#include "node/compute_element.hpp"
#include "node/failure_process.hpp"
#include "node/task.hpp"
#include "sim/simulator.hpp"
#include "stochastic/distributions.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::node {
namespace {

/// Deterministic unit service: every task takes exactly 1 s.
ComputeElement::ServiceTimeFn unit_service() {
  return [](const Task&, stoch::RngStream&) { return 1.0; };
}

struct Fixture {
  des::Simulator sim;
  stoch::RngStream rng{42};
};

TEST(TaskTest, MakeUnitTasks) {
  const TaskBatch batch = make_unit_tasks(3, 7, 100);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 100u);
  EXPECT_EQ(batch[2].id, 102u);
  EXPECT_EQ(batch[1].origin, 7);
  EXPECT_DOUBLE_EQ(batch[1].size, 1.0);
}

TEST(ComputeElementTest, ProcessesQueueInOrder) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  std::vector<std::uint64_t> completed;
  ce.set_completion_handler([&](const Task& t) { completed.push_back(t.id); });
  ce.enqueue_batch(make_unit_tasks(3, 0, 1));
  f.sim.run();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(f.sim.now(), 3.0);
  EXPECT_EQ(ce.queue_length(), 0u);
  EXPECT_EQ(ce.stats().tasks_completed, 3u);
}

TEST(ComputeElementTest, FailureFreezesService) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  int completed = 0;
  ce.set_completion_handler([&](const Task&) { ++completed; });
  ce.enqueue_batch(make_unit_tasks(2, 0, 1));
  // Fail at t = 0.4 (task 1 is 40% done), recover at t = 10.4.
  f.sim.schedule_at(0.4, [&] { ce.fail(); });
  f.sim.schedule_at(10.4, [&] { ce.recover(); });
  f.sim.run();
  // Task 1 finishes at 10.4 + 0.6 = 11.0 (checkpoint-resume), task 2 at 12.0.
  EXPECT_EQ(completed, 2);
  EXPECT_DOUBLE_EQ(f.sim.now(), 12.0);
  EXPECT_DOUBLE_EQ(ce.stats().down_time, 10.0);
  EXPECT_EQ(ce.stats().failures, 1u);
  EXPECT_EQ(ce.stats().recoveries, 1u);
}

TEST(ComputeElementTest, TasksArrivingWhileDownWaitForRecovery) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  int completed = 0;
  ce.set_completion_handler([&](const Task&) { ++completed; });
  ce.fail();
  ce.enqueue_batch(make_unit_tasks(2, 0, 1));
  f.sim.schedule_at(5.0, [&] { ce.recover(); });
  f.sim.run();
  EXPECT_EQ(completed, 2);
  EXPECT_DOUBLE_EQ(f.sim.now(), 7.0);
}

TEST(ComputeElementTest, FailRecoverIdempotent) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  ce.fail();
  ce.fail();  // no-op
  EXPECT_EQ(ce.stats().failures, 1u);
  ce.recover();
  ce.recover();  // no-op
  EXPECT_EQ(ce.stats().recoveries, 1u);
  EXPECT_TRUE(ce.is_up());
}

TEST(ComputeElementTest, ExtractTakesFromBack) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  ce.enqueue_batch(make_unit_tasks(5, 0, 1));  // ids 1..5, 1 in service
  const TaskBatch out = ce.extract_tasks(2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 5u);  // most recently queued leaves first
  EXPECT_EQ(out[1].id, 4u);
  EXPECT_EQ(ce.queue_length(), 3u);
  // Head task was untouched: completions still happen at 1.0, 2.0, 3.0.
  int completed = 0;
  ce.set_completion_handler([&](const Task&) { ++completed; });
  f.sim.run();
  EXPECT_EQ(completed, 3);
  EXPECT_DOUBLE_EQ(f.sim.now(), 3.0);
}

TEST(ComputeElementTest, ExtractMoreThanQueueTakesAllAndAbortsService) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  ce.enqueue_batch(make_unit_tasks(3, 0, 1));
  const TaskBatch out = ce.extract_tasks(10);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(ce.queue_length(), 0u);
  f.sim.run();
  EXPECT_EQ(ce.stats().tasks_completed, 0u);
}

TEST(ComputeElementTest, ExtractFromDownNodePreservesFrozenWork) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  ce.enqueue_batch(make_unit_tasks(4, 0, 1));
  f.sim.schedule_at(0.5, [&] {
    ce.fail();
    const TaskBatch out = ce.extract_tasks(2);  // LBP-2 backup action
    EXPECT_EQ(out.size(), 2u);
  });
  f.sim.schedule_at(1.5, [&] { ce.recover(); });
  int completed = 0;
  ce.set_completion_handler([&](const Task&) { ++completed; });
  f.sim.run();
  // Frozen head resumes at 1.5 with 0.5 s left -> 2.0; second task -> 3.0.
  EXPECT_EQ(completed, 2);
  EXPECT_DOUBLE_EQ(f.sim.now(), 3.0);
}

TEST(ComputeElementTest, ExtractZeroOrEmptyIsEmpty) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  EXPECT_TRUE(ce.extract_tasks(5).empty());
  ce.enqueue_batch(make_unit_tasks(2, 0, 1));
  EXPECT_TRUE(ce.extract_tasks(0).empty());
}

TEST(ComputeElementTest, QueueTraceRecordsChanges) {
  Fixture f;
  ComputeElement ce(f.sim, 0, unit_service(), f.rng);
  des::TimeSeries trace;
  ce.set_queue_trace(&trace);
  ce.enqueue_batch(make_unit_tasks(2, 0, 1));
  f.sim.run();
  EXPECT_DOUBLE_EQ(trace.value_at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.value_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.value_at(2.0), 0.0);
}

TEST(ComputeElementTest, StochasticServiceUsesProvidedStream) {
  des::Simulator sim;
  stoch::RngStream rng_a(7), rng_b(7);
  ComputeElement a(sim, 0, [](const Task&, stoch::RngStream& r) { return r.exponential(2.0); },
                   rng_a);
  a.enqueue_batch(make_unit_tasks(50, 0, 1));
  sim.run();
  const double t_a = sim.now();
  des::Simulator sim2;
  ComputeElement b(sim2, 0, [](const Task&, stoch::RngStream& r) { return r.exponential(2.0); },
                   rng_b);
  b.enqueue_batch(make_unit_tasks(50, 0, 1));
  sim2.run();
  EXPECT_DOUBLE_EQ(t_a, sim2.now());  // same stream, same trajectory
}

// ---------- failure process ----------

TEST(FailureProcessTest, AlternatesUpDown) {
  des::Simulator sim;
  stoch::RngStream svc_rng(1), churn_rng(2);
  ComputeElement ce(sim, 0, unit_service(), svc_rng);
  FailureProcess churn(sim, ce, std::make_unique<stoch::Deterministic>(2.0),
                       std::make_unique<stoch::Deterministic>(1.0), churn_rng);
  int failures = 0, recoveries = 0;
  churn.set_failure_handler([&](int) { ++failures; });
  churn.set_recovery_handler([&](int) { ++recoveries; });
  churn.start();
  sim.run_until(10.5);  // fail at 2,5,8; recover at 3,6,9
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(recoveries, 3);
  churn.stop();
}

TEST(FailureProcessTest, InitiallyDownFailsImmediately) {
  des::Simulator sim;
  stoch::RngStream svc_rng(1), churn_rng(2);
  ComputeElement ce(sim, 0, unit_service(), svc_rng);
  FailureProcess churn(sim, ce, nullptr, std::make_unique<stoch::Deterministic>(3.0),
                       churn_rng);
  churn.start(/*initially_down=*/true);
  EXPECT_FALSE(ce.is_up());
  sim.run_until(3.5);
  EXPECT_TRUE(ce.is_up());  // recovered at t = 3, and (no failure law) stays up
  sim.run_until(100.0);
  EXPECT_TRUE(ce.is_up());
}

TEST(FailureProcessTest, NullFailureLawMeansReliable) {
  des::Simulator sim;
  stoch::RngStream svc_rng(1), churn_rng(2);
  ComputeElement ce(sim, 0, unit_service(), svc_rng);
  FailureProcess churn(sim, ce, nullptr, nullptr, churn_rng);
  churn.start();
  ce.enqueue_batch(make_unit_tasks(5, 0, 1));
  sim.run();
  EXPECT_EQ(ce.stats().failures, 0u);
  EXPECT_EQ(ce.stats().tasks_completed, 5u);
}

TEST(FailureProcessTest, FailureLawWithoutRecoveryRejected) {
  des::Simulator sim;
  stoch::RngStream svc_rng(1), churn_rng(2);
  ComputeElement ce(sim, 0, unit_service(), svc_rng);
  EXPECT_THROW(FailureProcess(sim, ce, std::make_unique<stoch::Exponential>(0.05), nullptr,
                              churn_rng),
               std::invalid_argument);
}

TEST(FailureProcessTest, StopCancelsPendingChurn) {
  des::Simulator sim;
  stoch::RngStream svc_rng(1), churn_rng(2);
  ComputeElement ce(sim, 0, unit_service(), svc_rng);
  FailureProcess churn(sim, ce, std::make_unique<stoch::Deterministic>(2.0),
                       std::make_unique<stoch::Deterministic>(1.0), churn_rng);
  churn.start();
  churn.stop();
  sim.run_until(10.0);
  EXPECT_EQ(ce.stats().failures, 0u);
}

TEST(FailureProcessTest, EmpiricalAvailabilityMatchesTheory) {
  // Long-run fraction of up time ~ lambda_r / (lambda_f + lambda_r) = 2/3 for
  // mean up 20 s / mean down 10 s (node 1 of the paper).
  des::Simulator sim;
  stoch::RngStream svc_rng(1), churn_rng(99);
  ComputeElement ce(sim, 0, unit_service(), svc_rng);
  FailureProcess churn(sim, ce, std::make_unique<stoch::Exponential>(1.0 / 20.0),
                       std::make_unique<stoch::Exponential>(1.0 / 10.0), churn_rng);
  churn.start();
  const double horizon = 200000.0;
  sim.run_until(horizon);
  const double up_fraction = 1.0 - ce.stats().down_time / horizon;
  EXPECT_NEAR(up_fraction, 2.0 / 3.0, 0.02);
}

}  // namespace
}  // namespace lbsim::node
