// Tests for the gain optimiser: published optima (Table 1 / Table 2), exact vs
// grid consistency, sender selection, and the paper's monotonicity claim that
// churn reduces the optimal gain.

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "markov/params.hpp"

namespace lbsim::core {
namespace {

TEST(OptimizerTest, Fig3GridOptimum) {
  const auto opt = optimize_lbp1_grid(markov::ipdps2006_params(), 100, 60, 0.05);
  EXPECT_EQ(opt.sender, 0);
  EXPECT_NEAR(opt.gain, 0.35, 1e-9);
  EXPECT_EQ(opt.transfer, 35u);
  EXPECT_NEAR(opt.expected_completion, 117.0, 2.0);
}

TEST(OptimizerTest, Fig3NoFailureGridOptimum) {
  const auto opt =
      optimize_lbp1_grid(markov::without_failures(markov::ipdps2006_params()), 100, 60, 0.05);
  EXPECT_EQ(opt.sender, 0);
  EXPECT_NEAR(opt.gain, 0.45, 1e-9);
}

TEST(OptimizerTest, Table1OptimalGainsOnPaperGrid) {
  // Paper Table 1: optimal gains 0.15, 0.35, 0.15, 0.5, 0.25 for the five
  // workloads (grid step 0.05); senders follow "the larger load sends".
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  struct Row {
    std::size_t m0, m1;
    int sender;
    double gain;
  };
  for (const Row& row : {Row{200, 200, 0, 0.15}, Row{200, 100, 0, 0.35},
                         Row{100, 200, 1, 0.15}, Row{200, 50, 0, 0.50},
                         Row{50, 200, 1, 0.25}}) {
    const auto opt = optimize_lbp1_grid(p, row.m0, row.m1, 0.05);
    EXPECT_EQ(opt.sender, row.sender) << row.m0 << "," << row.m1;
    EXPECT_NEAR(opt.gain, row.gain, 0.05 + 1e-9) << row.m0 << "," << row.m1;
  }
}

TEST(OptimizerTest, ExactNeverWorseThanGrid) {
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  const auto exact = optimize_lbp1_exact(p, 100, 60);
  const auto grid = optimize_lbp1_grid(p, 100, 60, 0.05);
  EXPECT_LE(exact.expected_completion, grid.expected_completion + 1e-12);
  // And they agree to within one grid cell's worth of tasks.
  EXPECT_EQ(exact.sender, grid.sender);
  EXPECT_NEAR(static_cast<double>(exact.transfer), static_cast<double>(grid.transfer), 5.0);
}

TEST(OptimizerTest, SenderIsTheLargerLoad) {
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  EXPECT_EQ(optimize_lbp1_exact(p, 200, 50).sender, 0);
  EXPECT_EQ(optimize_lbp1_exact(p, 50, 200).sender, 1);
}

TEST(OptimizerTest, SymmetricWorkloadSendsTowardFasterNode) {
  // (200,200): node 1 is faster, so node 0 sends.
  EXPECT_EQ(optimize_lbp1_exact(markov::ipdps2006_params(), 200, 200).sender, 0);
}

TEST(OptimizerTest, ChurnReducesOptimalGain) {
  // The paper's conclusion: "the presence of node failure and recovery
  // warrants the use of a reduced load-balancing gain K".
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  const auto churny = optimize_lbp1_exact(p, 100, 60);
  const auto clean = optimize_lbp1_exact(markov::without_failures(p), 100, 60);
  EXPECT_LT(churny.transfer, clean.transfer);
}

TEST(OptimizerTest, GainStepValidation) {
  EXPECT_THROW((void)optimize_lbp1_grid(markov::ipdps2006_params(), 10, 10, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)optimize_lbp1_grid(markov::ipdps2006_params(), 10, 10, 1.5),
               std::invalid_argument);
}

TEST(OptimizerTest, ZeroWorkloadOnOneSide) {
  // (50, 0): node 0 must send toward the idle fast node.
  const auto opt = optimize_lbp1_exact(markov::ipdps2006_params(), 50, 0);
  EXPECT_EQ(opt.sender, 0);
  EXPECT_GT(opt.transfer, 0u);
}

TEST(OptimizerTest, Lbp2InitialGainsMatchTable2Closely) {
  // Paper Table 2 initial gains: 1.0, 1.0, 0.8, 1.0, 0.95. Our no-failure
  // optimum reproduces the saturated rows exactly and the interior rows within
  // the flat region around the optimum (0.15 tolerance).
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  // Saturated rows reach 1 only up to the integer rounding of the excess
  // (L = floor-ish of a fractional excess), hence the 0.01 slack.
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 200, 200).gain, 1.00, 0.15);
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 200, 100).gain, 1.00, 0.01);
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 100, 200).gain, 0.80, 0.15);
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 200, 50).gain, 1.00, 0.01);
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 50, 200).gain, 0.95, 0.15);
}

TEST(OptimizerTest, Lbp2InitialGainIdentifiesOverloadedSender) {
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  EXPECT_EQ(optimize_lbp2_initial_gain(p, 200, 50).sender, 0);
  EXPECT_EQ(optimize_lbp2_initial_gain(p, 50, 200).sender, 1);
}

TEST(OptimizerTest, Lbp2InitialGainBalancedSystem) {
  // Rates (1, 1), equal loads: no excess anywhere.
  markov::TwoNodeParams p;
  p.nodes[0] = markov::NodeParams{1.0, 0.0, 0.0};
  p.nodes[1] = markov::NodeParams{1.0, 0.0, 0.0};
  p.per_task_delay_mean = 0.02;
  const auto opt = optimize_lbp2_initial_gain(p, 30, 30);
  EXPECT_EQ(opt.sender, -1);
  EXPECT_EQ(opt.transfer, 0u);
}

TEST(OptimizerTest, NoFailureExpectedTimeMatchesTable1Column) {
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 200, 100).expected_completion, 106.93,
              0.01 * 106.93);
  EXPECT_NEAR(optimize_lbp2_initial_gain(p, 200, 200).expected_completion, 141.94,
              0.01 * 141.94);
}

}  // namespace
}  // namespace lbsim::core
