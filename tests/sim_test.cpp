// Unit tests for the DES kernel: event ordering, cancellation, clock, tracing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace lbsim::des {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.push(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventId{}));  // invalid handle is a safe no-op
}

TEST(EventQueueTest, CancelledEntrySkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  const EventId dead = q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  q.cancel(dead);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().callback();
  EXPECT_EQ(fired, std::vector<int>{2});
}

TEST(EventQueueTest, CancelOfAlreadyFiredEventReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.pop().callback();  // fires the 1.0 event
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelOfFiredEventNeverHitsARecycledSlot) {
  // The fired event's pool slot is recycled by the next push; a stale handle
  // must not cancel the new occupant.
  EventQueue q;
  const EventId stale = q.push(1.0, [] {});
  q.pop().callback();
  bool ran = false;
  q.push(1.0, [&] { ran = true; });  // reuses the freed slot
  EXPECT_FALSE(q.cancel(stale));
  ASSERT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, FifoTieBreakSurvivesSlotRecycling) {
  // Interleave pushes, cancels, and pops so slots are recycled mid-sequence;
  // events at the same timestamp must still fire in scheduling order.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(q.push(5.0, [&fired, i] { fired.push_back(i); }));
  q.cancel(ids[0]);
  q.cancel(ids[3]);
  // These reuse the two freed slots but must still fire after 1..7.
  for (int i = 8; i < 10; ++i) q.push(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueueTest, ClearDuringDispatchIsSafe) {
  // A callback may clear() the queue it is firing from (the popped callback
  // was moved out of the pool before invocation).
  EventQueue q;
  bool later_ran = false;
  q.push(1.0, [&] { q.clear(); });
  q.push(2.0, [&] { later_ran = true; });
  while (!q.empty()) q.pop().callback();
  EXPECT_FALSE(later_ran);
  EXPECT_TRUE(q.empty());
  // The queue is fully usable afterwards, and old handles stay dead.
  bool ran = false;
  q.push(3.0, [&] { ran = true; });
  q.pop().callback();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, MassCancellationCompactsTheHeap) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(static_cast<double>(i % 97), [] {}));
  }
  // Cancel 90%: lazy cancellation must not leave ~900 corpses in the heap.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    }
  }
  EXPECT_EQ(q.size(), 100u);
  EXPECT_LE(q.heap_records(), 2 * q.size());
  // Survivors still pop in (time, serial) order.
  double last = -1.0;
  while (!q.empty()) {
    EventQueue::Entry e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

TEST(EventQueueTest, ShardedPopOrderMatchesSingleHeap) {
  // Shard hints select a backing heap but must never affect firing order:
  // pop() takes the global (time, serial) minimum across shards.
  std::vector<std::pair<double, int>> plain, sharded;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
    EventQueue q;
    q.set_shard_count(shards);
    auto& sink = shards == 1 ? plain : sharded;
    sink.clear();
    for (int i = 0; i < 200; ++i) {
      const double t = static_cast<double>((i * 37) % 50);
      const int tag = i;
      q.push(t, [&sink, t, tag] { sink.emplace_back(t, tag); },
             static_cast<std::size_t>(i % 11));
    }
    while (!q.empty()) q.pop().callback();
    if (shards != 1) {
      EXPECT_EQ(sharded, plain) << "shards=" << shards;
    }
  }
}

TEST(EventQueueTest, CancelAndCompactionStayPerShard) {
  EventQueue q;
  q.set_shard_count(4);
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(static_cast<double>(i % 97), [] {},
                         static_cast<std::size_t>(i % 4)));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) EXPECT_TRUE(q.cancel(ids[i]));
  }
  EXPECT_EQ(q.size(), 100u);
  // Compaction bounds corpses shard-locally, so the global bound still holds.
  EXPECT_LE(q.heap_records(), 2 * q.size() + 4 * 64);
  double last = -1.0;
  while (!q.empty()) {
    EventQueue::Entry e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

TEST(EventQueueTest, SetShardCountRequiresAnEmptyQueue) {
  EventQueue q;
  q.push(1.0, [] {});
  EXPECT_THROW(q.set_shard_count(2), std::invalid_argument);
  (void)q.pop();
  q.set_shard_count(2);
  EXPECT_EQ(q.shard_count(), 2u);
  EXPECT_THROW(q.set_shard_count(0), std::invalid_argument);
  // The shard count survives clear().
  q.push(1.0, [] {}, 1);
  q.clear();
  EXPECT_EQ(q.shard_count(), 2u);
}

TEST(EventQueueTest, RejectsBadTimesAndNullCallbacks) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(q.push(1.0, nullptr), std::invalid_argument);
  EXPECT_THROW((void)q.pop(), std::invalid_argument);
}

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_at(1.5, [&] { seen.push_back(sim.now()); });
  sim.schedule_in(0.5, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_in(1.0, [&] {
    seen.push_back(sim.now());
    sim.schedule_in(1.0, [&] { seen.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
}

TEST(SimulatorTest, SchedulePastThrows) {
  Simulator sim;
  sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-0.1, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAndSetsClock) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  sim.run_until(5.5);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
  EXPECT_EQ(sim.pending_events(), 5u);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunWhilePendingHonoursStopPredicate) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  sim.run_while_pending([&] { return fired >= 3; });
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, ResetClearsEverything) {
  Simulator sim;
  sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  sim.step();
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_in(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

// ---------- trace ----------

TEST(TimeSeriesTest, StepFunctionLookup) {
  TimeSeries ts;
  ts.record(0.0, 10.0);
  ts.record(2.0, 8.0);
  ts.record(5.0, 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.99), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2.0), 8.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 0.0);
}

TEST(TimeSeriesTest, RejectsTimeTravel) {
  TimeSeries ts;
  ts.record(1.0, 1.0);
  EXPECT_THROW(ts.record(0.5, 2.0), std::invalid_argument);
  EXPECT_THROW((void)ts.value_at(0.5), std::invalid_argument);
}

TEST(TimeSeriesTest, EqualTimesAllowedLastWins) {
  TimeSeries ts;
  ts.record(1.0, 1.0);
  ts.record(1.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 2.0);
}

TEST(TimeSeriesTest, ResampleHoldsLastValue) {
  TimeSeries ts;
  ts.record(0.0, 4.0);
  ts.record(10.0, 7.0);
  const auto pts = ts.resample(0.0, 20.0, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts[0].value, 4.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 4.0);   // t = 5
  EXPECT_DOUBLE_EQ(pts[2].value, 7.0);   // t = 10
  EXPECT_DOUBLE_EQ(pts[4].value, 7.0);   // t = 20
}

TEST(TimeSeriesTest, ValueAtOnEmptySeriesThrows) {
  TimeSeries ts;
  EXPECT_THROW((void)ts.value_at(0.0), std::invalid_argument);
}

TEST(TimeSeriesTest, ResampleOnEmptySeriesThrows) {
  TimeSeries ts;
  EXPECT_THROW((void)ts.resample(0.0, 1.0, 3), std::invalid_argument);
}

TEST(TimeSeriesTest, ResampleRejectsReversedWindow) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  EXPECT_THROW((void)ts.resample(2.0, 1.0, 3), std::invalid_argument);
}

TEST(TimeSeriesTest, SinglePointDegenerateWindow) {
  // t0 == t1 collapses the grid onto one instant; a single recorded point
  // must cover it and every later query time.
  TimeSeries ts;
  ts.record(1.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 5.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 5.0);
  const auto pts = ts.resample(1.0, 1.0, 4);
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& p : pts) {
    EXPECT_DOUBLE_EQ(p.time, 1.0);
    EXPECT_DOUBLE_EQ(p.value, 5.0);
  }
}

TEST(EventQueueStatsTest, CountsScheduledPoppedCancelled) {
  EventQueue q;
  const EventId dead = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.push(3.0, [] {});
  EXPECT_TRUE(q.cancel(dead));
  while (!q.empty()) q.pop().callback();
  const EventQueue::Stats& s = q.stats();
  EXPECT_EQ(s.scheduled, 3u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.popped, 2u);
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_GE(s.max_shard_depth, 3u);
}

TEST(EventQueueStatsTest, StatsSurviveClear) {
  // Engines reuse one simulator across a replication loop; the instruments
  // are cumulative so a per-worker fold sees the whole loop's work.
  EventQueue q;
  q.push(1.0, [] {});
  q.clear();
  q.push(1.0, [] {});
  q.pop().callback();
  const EventQueue::Stats& s = q.stats();
  EXPECT_EQ(s.scheduled, 2u);
  EXPECT_EQ(s.popped, 1u);
}

TEST(SimulatorTest, ExposesQueueStats) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.queue_stats().scheduled, 2u);
  EXPECT_EQ(sim.queue_stats().popped, 2u);
}

}  // namespace
}  // namespace lbsim::des
