// Cross-validation of the lattice solvers against an independent brute-force
// implementation: the full reachable-state CTMC with direct first-passage
// solves (mean) and uniformisation (CDF). The two implementations share no
// code beyond the dense linear solver.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/ctmc.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"

namespace lbsim::markov {
namespace {

TEST(CtmcTest, TwoStateChainHandComputed) {
  // 0 --(2)--> 1 (absorbing): mean = 0.5; CDF(t) = 1 - exp(-2t).
  AbsorbingCtmc chain(2, [](std::size_t s) -> std::vector<AbsorbingCtmc::Transition> {
    if (s == 0) return {{1, 2.0}};
    return {};
  });
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  const auto mu = chain.mean_absorption_times();
  EXPECT_NEAR(mu[0], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(mu[1], 0.0);
  EXPECT_NEAR(chain.absorption_cdf(0, 1.0), 1.0 - std::exp(-2.0), 1e-8);
  EXPECT_DOUBLE_EQ(chain.absorption_cdf(1, 0.5), 1.0);
}

TEST(CtmcTest, ErlangChain) {
  // 0 -> 1 -> 2 -> absorbed at rate 1: Erlang(3,1), mean 3.
  AbsorbingCtmc chain(4, [](std::size_t s) -> std::vector<AbsorbingCtmc::Transition> {
    if (s < 3) return {{s + 1, 1.0}};
    return {};
  });
  EXPECT_NEAR(chain.mean_absorption_times()[0], 3.0, 1e-12);
  // CDF at the mean: P(Erlang(3,1) <= 3) = 1 - e^-3 (1 + 3 + 4.5).
  EXPECT_NEAR(chain.absorption_cdf(0, 3.0), 1.0 - std::exp(-3.0) * 8.5, 1e-8);
}

TEST(CtmcTest, RejectsBadInputs) {
  EXPECT_THROW(AbsorbingCtmc(0, [](std::size_t) {
                 return std::vector<AbsorbingCtmc::Transition>{};
               }),
               std::invalid_argument);
  EXPECT_THROW(AbsorbingCtmc(2,
                             [](std::size_t) -> std::vector<AbsorbingCtmc::Transition> {
                               return {{5, 1.0}};
                             }),
               std::invalid_argument);
  EXPECT_THROW(AbsorbingCtmc(2,
                             [](std::size_t) -> std::vector<AbsorbingCtmc::Transition> {
                               return {{1, -1.0}};
                             }),
               std::invalid_argument);
}

TEST(CtmcTest, UnabsorbableChainSingular) {
  // 0 <-> 1 with no absorbing state reachable.
  AbsorbingCtmc chain(3, [](std::size_t s) -> std::vector<AbsorbingCtmc::Transition> {
    if (s == 0) return {{1, 1.0}};
    if (s == 1) return {{0, 1.0}};
    return {};
  });
  EXPECT_THROW((void)chain.mean_absorption_times(), std::logic_error);
}

// ---------- two-node chain vs lattice solvers ----------

TEST(CtmcCrossValidationTest, MeanNoTransitMatchesLattice) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeMeanSolver solver(p);
  for (const auto& [q0, q1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 0}, {0, 2}, {3, 3}, {6, 4}}) {
    const TwoNodeChain built = build_two_node_chain(p, q0, q1, 0, 0);
    const auto mu = built.chain.mean_absorption_times();
    EXPECT_NEAR(mu[built.initial_state], solver.mean_no_transit(q0, q1), 1e-8)
        << q0 << "," << q1;
  }
}

TEST(CtmcCrossValidationTest, MeanWithTransitMatchesLattice) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeMeanSolver solver(p);
  const TwoNodeChain built = build_two_node_chain(p, 5, 3, 4, 1);
  const auto mu = built.chain.mean_absorption_times();
  EXPECT_NEAR(mu[built.initial_state], solver.mean_with_transit(5, 3, 4, 1), 1e-8);
}

TEST(CtmcCrossValidationTest, MeanTransitTowardNodeZero) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeMeanSolver solver(p);
  const TwoNodeChain built = build_two_node_chain(p, 2, 6, 3, 0);
  const auto mu = built.chain.mean_absorption_times();
  EXPECT_NEAR(mu[built.initial_state], solver.mean_with_transit(2, 6, 3, 0), 1e-8);
}

TEST(CtmcCrossValidationTest, MeanFromEveryWorkState) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeMeanSolver solver(p);
  for (unsigned w = 0; w < 4; ++w) {
    const TwoNodeChain built = build_two_node_chain(p, 4, 4, 0, 0, w);
    const auto mu = built.chain.mean_absorption_times();
    EXPECT_NEAR(mu[built.initial_state], solver.mean_no_transit(4, 4, w), 1e-8)
        << "state " << w;
  }
}

TEST(CtmcCrossValidationTest, CdfMatchesOdeSolver) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeCdfSolver::Config config;
  config.horizon = 60.0;
  config.dt = 0.01;
  const TwoNodeCdfSolver solver(p, config);
  const CdfCurve curve = solver.cdf_with_transit(3, 2, 2, 1);
  const TwoNodeChain built = build_two_node_chain(p, 3, 2, 2, 1);
  for (const double t : {1.0, 5.0, 10.0, 20.0, 40.0}) {
    const double brute = built.chain.absorption_cdf(built.initial_state, t);
    const auto k = static_cast<std::size_t>(t / config.dt);
    EXPECT_NEAR(curve.values[k], brute, 5e-4) << "t=" << t;
  }
}

TEST(CtmcCrossValidationTest, NoFailureCaseToo) {
  const TwoNodeParams p = without_failures(ipdps2006_params());
  TwoNodeMeanSolver solver(p);
  const TwoNodeChain built = build_two_node_chain(p, 7, 2, 3, 1);
  const auto mu = built.chain.mean_absorption_times();
  EXPECT_NEAR(mu[built.initial_state], solver.mean_with_transit(7, 2, 3, 1), 1e-8);
}

TEST(CtmcCrossValidationTest, ReachableStateCountIsTight) {
  // No-failure chain never leaves w = 3: states = transit box + landed box.
  const TwoNodeParams p = without_failures(ipdps2006_params());
  const TwoNodeChain built = build_two_node_chain(p, 2, 1, 2, 1);
  // tau=1: (a,b) in [0..2]x[0..1] = 6; after landing: [0..2]x[0..3] = 12.
  EXPECT_EQ(built.chain.state_count(), 18u);
}

}  // namespace
}  // namespace lbsim::markov
