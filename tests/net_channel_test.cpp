// Tests for the k-state Markov state-plane channel (Gilbert-Elliott at k=2):
// spec validation, geometric burst dwell, the 1-state == Bernoulli bit-identity
// reduction, decision staleness accounting, the cold-start bootstrap fix, and
// the headline effect — LBP gains degrade as channel bursts lengthen at a
// fixed stationary loss rate.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "core/policy.hpp"
#include "net/channel.hpp"
#include "stochastic/rng.hpp"
#include "testbed/config.hpp"
#include "testbed/experiment.hpp"

namespace lbsim::net {
namespace {

TEST(ChannelSpecTest, ValidatesInvariants) {
  ChannelSpec spec;
  EXPECT_NO_THROW(validate(spec));  // disabled is always valid

  spec.states = 2;
  spec.loss = {0.0, 1.0};  // blackout state is a legitimate boundary
  spec.mean_burst = {16.0, 4.0};
  EXPECT_NO_THROW(validate(spec));

  ChannelSpec bad_loss = spec;
  bad_loss.loss = {0.0, 1.5};
  EXPECT_THROW(validate(bad_loss), std::invalid_argument);

  ChannelSpec bad_burst = spec;
  bad_burst.mean_burst = {0.5};
  EXPECT_THROW(validate(bad_burst), std::invalid_argument);

  ChannelSpec bad_mult = spec;
  bad_mult.data_mult = {0.0};
  EXPECT_THROW(validate(bad_mult), std::invalid_argument);

  ChannelSpec coupled_without_states;
  coupled_without_states.env_coupled = true;
  EXPECT_THROW(validate(coupled_without_states), std::invalid_argument);

  ChannelSpec too_many = spec;
  too_many.states = 17;
  EXPECT_THROW(validate(too_many), std::invalid_argument);
}

TEST(ChannelModelTest, GilbertElliottBurstsAreGeometric) {
  // Bad-state dwell times are geometric in packets: with exit probability
  // 1/4 the mean bad burst must come out near 4 packets.
  ChannelSpec spec;
  spec.states = 2;
  spec.loss = {0.0, 1.0};
  spec.mean_burst = {8.0, 4.0};
  ChannelModel channel(spec, 0.0);
  stoch::RngStream rng(2006);

  std::size_t bursts = 0;
  std::size_t bad_steps = 0;
  bool in_bad = false;
  for (int i = 0; i < 400000; ++i) {
    (void)channel.step(rng);
    const bool bad = channel.effective_state() == 1;
    if (bad) {
      ++bad_steps;
      if (!in_bad) ++bursts;
    }
    in_bad = bad;
  }
  ASSERT_GT(bursts, 1000u);
  const double mean_burst = static_cast<double>(bad_steps) / static_cast<double>(bursts);
  EXPECT_NEAR(mean_burst, 4.0, 0.2);
  // Stationary bad fraction of a 2-state chain is 4 / (8 + 4) = 1/3.
  EXPECT_NEAR(static_cast<double>(bad_steps) / 400000.0, 1.0 / 3.0, 0.02);
}

TEST(ChannelModelTest, OneStateChannelIsBernoulliBitIdentical) {
  // A 1-state channel with loss p and the disabled-channel fallback at the
  // same p are the SAME code path: identical streams must give identical hop
  // sequences (the CRN invariant the validate command checks end to end).
  ChannelSpec one_state;
  one_state.states = 1;
  one_state.loss = {0.25};
  one_state.mean_burst = {7.0};  // irrelevant at k=1, must not perturb draws
  ChannelModel configured(one_state, 0.0);
  ChannelModel fallback(ChannelSpec{}, 0.25);

  stoch::RngStream r1(42), r2(42);
  for (int i = 0; i < 5000; ++i) {
    const ChannelHop a = configured.step(r1);
    const ChannelHop b = fallback.step(r2);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_DOUBLE_EQ(a.latency_mult, b.latency_mult);
  }
}

TEST(ChannelModelTest, FloorStateClampsAndReleases) {
  ChannelSpec spec;
  spec.states = 3;
  spec.loss = {0.0, 0.5, 1.0};
  spec.mean_burst = {1e6, 1.0, 1.0};  // pin the Markov state to 0
  ChannelModel channel(spec, 0.0);
  EXPECT_EQ(channel.effective_state(), 0u);
  channel.set_floor_state(2);
  EXPECT_EQ(channel.effective_state(), 2u);
  channel.set_floor_state(99);  // clipped to the last state
  EXPECT_EQ(channel.effective_state(), 2u);
  channel.set_floor_state(0);
  EXPECT_EQ(channel.effective_state(), 0u);
}

}  // namespace
}  // namespace lbsim::net

namespace lbsim::testbed {
namespace {

TEST(ChannelStalenessTest, DecisionAgeNearHalfPeriodUnderLosslessExchange) {
  // With a lossless state plane, the peer entry consulted at a random
  // failure/recovery instant was broadcast Uniform(0, period) ago: the pooled
  // decision-age mean sits well inside (0, period) and the max just under
  // period + latency. (t = 0 decisions contribute exact age-0 samples.)
  const TestbedConfig config =
      paper_testbed(100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  const ExperimentSummary summary = run_experiment(config, 200, 91, 2);
  ASSERT_GT(summary.state_age.count(), 400u);
  EXPECT_GT(summary.state_age.mean(), 0.15);
  EXPECT_LT(summary.state_age.mean(), 0.70);
  EXPECT_GT(summary.state_age.max(), 0.80);
  EXPECT_LE(summary.state_age.max(),
            config.state_broadcast_period + 2.0 * config.state_latency);
  EXPECT_DOUBLE_EQ(summary.state_age.min(), 0.0);  // the exact t = 0 seed
}

TEST(ChannelStalenessTest, BurstyChannelRaisesDecisionAge) {
  // Same 20% stationary loss, bursts 16x longer: contiguous outages must
  // stretch the staleness tail far past one broadcast period.
  TestbedConfig light = paper_testbed(100, 60, std::make_unique<core::Lbp2Policy>(1.0));
  light.channel.states = 2;
  light.channel.loss = {0.0, 1.0};
  light.channel.mean_burst = {4.0, 1.0};
  TestbedConfig bursty = light.clone();
  bursty.channel.mean_burst = {64.0, 16.0};
  const ExperimentSummary a = run_experiment(light, 120, 17, 2);
  const ExperimentSummary b = run_experiment(bursty, 120, 17, 2);
  EXPECT_GT(b.state_age.mean(), a.state_age.mean());
  EXPECT_GT(b.state_age.max(), a.state_age.max());
}

/// Records what the t = 0 decisions observe (per acting node), to pin the
/// cold-start bootstrap: an initially-down node must be seen as DOWN by every
/// peer's very first decision, not as up-and-empty.
class BootstrapProbePolicy final : public core::LoadBalancingPolicy {
 public:
  struct Log {
    std::vector<bool> node0_seen_up;
    std::vector<std::size_t> node0_seen_queue;
  };

  explicit BootstrapProbePolicy(std::shared_ptr<Log> log) : log_(std::move(log)) {}

  [[nodiscard]] std::string name() const override { return "bootstrap-probe"; }

  [[nodiscard]] std::vector<core::TransferDirective> on_start(
      const core::SystemView& view) override {
    log_->node0_seen_up.push_back(view.is_up(0));
    log_->node0_seen_queue.push_back(view.queue_length(0));
    return {};
  }

  [[nodiscard]] std::unique_ptr<core::LoadBalancingPolicy> clone() const override {
    return std::make_unique<BootstrapProbePolicy>(log_);
  }

 private:
  std::shared_ptr<Log> log_;
};

TEST(ChannelBootstrapTest, InitiallyDownNodeVisibleToFirstDecisions) {
  const auto log = std::make_shared<BootstrapProbePolicy::Log>();
  TestbedConfig config =
      paper_testbed(50, 30, std::make_unique<BootstrapProbePolicy>(log));
  config.initially_down = 0b01;  // node 0 starts down
  const mc::RunResult run = run_realization(config, 3, 0);

  // Both t = 0 decisions (node 0's own view, node 1's board view) saw the
  // truth: node 0 down with its real backlog.
  ASSERT_EQ(log->node0_seen_up.size(), 2u);
  EXPECT_FALSE(log->node0_seen_up[0]);
  EXPECT_FALSE(log->node0_seen_up[1]);
  EXPECT_EQ(log->node0_seen_queue[0], 50u);
  EXPECT_EQ(log->node0_seen_queue[1], 50u);

  // Starting down is an initial condition, not a t = 0 failure event — but
  // the node must still recover and drain everything.
  EXPECT_EQ(run.tasks_completed, 80u);
  EXPECT_GE(run.recoveries, 1u);
}

TEST(ChannelEffectTest, LbpGainDegradesWithMeanBurstLength) {
  // The headline Section-3 effect: at a FIXED 20% stationary loss rate,
  // stretching the channel's mean burst length degrades the LBP's advantage.
  // The state-aware LBP-2 withholds failure shipments to peers it believes
  // are down; long blackouts freeze that belief, so its compensation goes
  // wrong in both directions (ships to a dead peer, or withholds from a live
  // one). Common random numbers across the two settings (same seed, and the
  // channel draws from its own dedicated stream) isolate the channel
  // trajectory as the only difference.
  TestbedConfig light =
      paper_testbed(100, 60, std::make_unique<core::Lbp2Policy>(1.0, /*state_aware=*/true));
  light.channel.states = 2;
  light.channel.loss = {0.0, 1.0};
  light.channel.mean_burst = {4.0, 1.0};
  TestbedConfig bursty = light.clone();
  bursty.channel.mean_burst = {256.0, 64.0};
  const ExperimentSummary a = run_experiment(light, 200, 7, 2);
  const ExperimentSummary b = run_experiment(bursty, 200, 7, 2);
  EXPECT_GT(b.mean(), a.mean());
}

}  // namespace
}  // namespace lbsim::testbed
