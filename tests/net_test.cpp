// Unit tests for the network substrate: delay models, links, state plane.

#include <gtest/gtest.h>

#include <cmath>

#include "net/delay_model.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stochastic/stats.hpp"

namespace lbsim::net {
namespace {

TEST(DelayModelTest, ExponentialBundleMeanLinearInL) {
  const ExponentialBundleDelay model(0.02);
  EXPECT_DOUBLE_EQ(model.mean(1), 0.02);
  EXPECT_DOUBLE_EQ(model.mean(100), 2.0);
  EXPECT_THROW((void)model.mean(0), std::invalid_argument);
}

TEST(DelayModelTest, ExponentialBundleSampleMean) {
  const ExponentialBundleDelay model(0.02);
  stoch::RngStream rng(5);
  stoch::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(model.sample(35, rng));
  EXPECT_NEAR(stats.mean(), 0.7, 4.0 * stats.std_error());
  // Exponential bundle: stddev == mean.
  EXPECT_NEAR(stats.stddev(), 0.7, 0.02);
}

TEST(DelayModelTest, ErlangPerTaskSameMeanLowerVariance) {
  const ErlangPerTaskDelay erlang(0.02, 0.0);
  const ExponentialBundleDelay expo(0.02, 0.0);
  EXPECT_DOUBLE_EQ(erlang.mean(50), expo.mean(50));
  stoch::RngStream rng(6);
  stoch::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(erlang.sample(50, rng));
  EXPECT_NEAR(stats.mean(), 1.0, 4.0 * stats.std_error());
  // Erlang(50) has stddev mean/sqrt(50) ~ 0.141.
  EXPECT_NEAR(stats.stddev(), 1.0 / std::sqrt(50.0), 0.02);
}

TEST(DelayModelTest, ShiftAddsToMeanAndFloorsSamples) {
  const ErlangPerTaskDelay model(0.02, 0.5);
  EXPECT_DOUBLE_EQ(model.mean(10), 0.7);
  stoch::RngStream rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(model.sample(1, rng), 0.5);
}

TEST(DelayModelTest, DeterministicExact) {
  const DeterministicLinearDelay model(0.1, 0.2);
  stoch::RngStream rng(8);
  EXPECT_DOUBLE_EQ(model.sample(3, rng), 0.5);
  EXPECT_DOUBLE_EQ(model.mean(3), 0.5);
}

TEST(DelayModelTest, CloneSamplesIdentically) {
  const ErlangPerTaskDelay model(0.02, 0.01);
  const TransferDelayModelPtr copy = model.clone();
  stoch::RngStream r1(9), r2(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(5, r1), copy->sample(5, r2));
  }
}

TEST(DelayModelTest, RejectsBadParameters) {
  EXPECT_THROW(ExponentialBundleDelay(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialBundleDelay(0.02, -0.1), std::invalid_argument);
  EXPECT_THROW(ErlangPerTaskDelay(-1.0), std::invalid_argument);
}

// ---------- messages ----------

TEST(MessageTest, StatePacketWireSizeInPaperRange) {
  StateInfoPacket minimal;
  EXPECT_GE(minimal.wire_bytes(), 20u);
  StateInfoPacket with_payload = minimal;
  with_payload.has_policy_payload = true;
  EXPECT_LE(with_payload.wire_bytes(), 34u);
  EXPECT_GT(with_payload.wire_bytes(), minimal.wire_bytes());
}

TEST(MessageTest, DataTransferBytesGrowWithTasksAndSize) {
  DataTransfer small;
  small.tasks = node::make_unit_tasks(2, 0, 1);
  DataTransfer big;
  big.tasks = node::make_unit_tasks(10, 0, 1);
  EXPECT_GT(big.wire_bytes(), small.wire_bytes());
  DataTransfer heavy = small;
  heavy.tasks[0].size = 100.0;
  EXPECT_GT(heavy.wire_bytes(), small.wire_bytes());
}

// ---------- link ----------

TEST(LinkTest, DeliversBatchAfterDelay) {
  des::Simulator sim;
  stoch::RngStream rng(10);
  Link link(sim, 0, 1, std::make_unique<DeterministicLinearDelay>(0.1), rng);
  bool delivered = false;
  const double delay = link.send(node::make_unit_tasks(5, 0, 1), [&](DataTransfer&& xfer) {
    delivered = true;
    EXPECT_EQ(xfer.tasks.size(), 5u);
    EXPECT_EQ(xfer.from, 0);
    EXPECT_EQ(xfer.to, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 0.5);
  });
  EXPECT_DOUBLE_EQ(delay, 0.5);
  EXPECT_EQ(link.tasks_in_flight(), 5u);
  EXPECT_EQ(link.bundles_in_flight(), 1u);
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(link.tasks_in_flight(), 0u);
  EXPECT_EQ(link.tasks_delivered(), 5u);
  EXPECT_GT(link.bytes_sent(), 0u);
}

TEST(LinkTest, RejectsEmptyBatchAndSelfLink) {
  des::Simulator sim;
  stoch::RngStream rng(11);
  Link link(sim, 0, 1, std::make_unique<DeterministicLinearDelay>(0.1), rng);
  EXPECT_THROW(link.send({}, [](DataTransfer&&) {}), std::invalid_argument);
  EXPECT_THROW(Link(sim, 2, 2, std::make_unique<DeterministicLinearDelay>(0.1), rng),
               std::invalid_argument);
}

TEST(LinkTest, MultipleBundlesIndependent) {
  des::Simulator sim;
  stoch::RngStream rng(12);
  Link link(sim, 0, 1, std::make_unique<DeterministicLinearDelay>(0.1), rng);
  std::vector<double> arrivals;
  link.send(node::make_unit_tasks(1, 0, 1), [&](DataTransfer&&) {
    arrivals.push_back(sim.now());
  });
  link.send(node::make_unit_tasks(3, 0, 10), [&](DataTransfer&&) {
    arrivals.push_back(sim.now());
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.1);
  EXPECT_DOUBLE_EQ(arrivals[1], 0.3);
  EXPECT_EQ(link.bundles_delivered(), 2u);
}

// ---------- network ----------

net::Network::Config deterministic_config(double per_task = 0.1) {
  net::Network::Config config;
  config.data_delay = std::make_unique<DeterministicLinearDelay>(per_task);
  return config;
}

TEST(NetworkTest, FullMeshTransfers) {
  des::Simulator sim;
  stoch::RngStream rng(13);
  stoch::RngStream state_rng(113);
  Network network(sim, 3, deterministic_config(), rng, state_rng);
  int delivered_to = -1;
  network.transfer(2, 0, node::make_unit_tasks(4, 2, 1),
                   [&](DataTransfer&& xfer) { delivered_to = xfer.to; });
  EXPECT_EQ(network.tasks_in_flight(), 4u);
  sim.run();
  EXPECT_EQ(delivered_to, 0);
  EXPECT_EQ(network.tasks_in_flight(), 0u);
  EXPECT_THROW((void)network.link(1, 1), std::invalid_argument);
  EXPECT_THROW((void)network.link(0, 5), std::invalid_argument);
}

TEST(NetworkTest, BroadcastReachesAllPeers) {
  des::Simulator sim;
  stoch::RngStream rng(14);
  stoch::RngStream state_rng(114);
  Network network(sim, 4, deterministic_config(), rng, state_rng);
  StateInfoPacket packet;
  packet.sender = 1;
  packet.queue_size = 42;
  std::vector<int> receivers;
  const std::size_t sent = network.broadcast_state(packet, [&](int to, const StateInfoPacket& p) {
    receivers.push_back(to);
    EXPECT_EQ(p.queue_size, 42u);
  });
  EXPECT_EQ(sent, 3u);
  sim.run();
  EXPECT_EQ(receivers.size(), 3u);
  EXPECT_EQ(network.state_packets_lost(), 0u);
  EXPECT_GT(network.state_bytes_sent(), 0u);
}

TEST(NetworkTest, LossyStatePlaneDropsSomePackets) {
  des::Simulator sim;
  stoch::RngStream rng(15);
  stoch::RngStream state_rng(115);
  auto config = deterministic_config();
  config.state_loss_probability = 0.5;
  Network network(sim, 2, std::move(config), rng, state_rng);
  StateInfoPacket packet;
  packet.sender = 0;
  std::size_t delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    delivered += network.broadcast_state(packet, [](int, const StateInfoPacket&) {});
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered), 1000.0, 100.0);
  EXPECT_NEAR(static_cast<double>(network.state_packets_lost()), 1000.0, 100.0);
}

TEST(NetworkTest, RejectsDegenerateConfigs) {
  des::Simulator sim;
  stoch::RngStream rng(16);
  stoch::RngStream state_rng(116);
  EXPECT_THROW(Network(sim, 1, deterministic_config(), rng, state_rng),
               std::invalid_argument);
  // loss = 1.0 is a legitimate boundary (total state-plane blackout); only
  // probabilities above 1 are malformed.
  auto blackout = deterministic_config();
  blackout.state_loss_probability = 1.0;
  EXPECT_NO_THROW(Network(sim, 2, std::move(blackout), rng, state_rng));
  auto bad = deterministic_config();
  bad.state_loss_probability = 1.0 + 1e-9;
  EXPECT_THROW(Network(sim, 2, std::move(bad), rng, state_rng), std::invalid_argument);
  net::Network::Config no_delay;
  EXPECT_THROW(Network(sim, 2, std::move(no_delay), rng, state_rng), std::invalid_argument);
}

}  // namespace
}  // namespace lbsim::net
