// Tests for the regeneration-theory mean-completion-time solver (paper eq. (4))
// against closed forms, symmetry, monotonicity, and the published numbers.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "markov/linsolve.hpp"
#include "markov/oracle.hpp"
#include "markov/params.hpp"
#include "markov/two_node_mean.hpp"

namespace lbsim::markov {
namespace {

TwoNodeParams reliable_params(double r0, double r1, double d = 0.02) {
  TwoNodeParams p;
  p.nodes[0] = NodeParams{r0, 0.0, 0.0};
  p.nodes[1] = NodeParams{r1, 0.0, 0.0};
  p.per_task_delay_mean = d;
  return p;
}

// ---------- params ----------

TEST(ParamsTest, AvailabilityFormula) {
  EXPECT_DOUBLE_EQ(availability(NodeParams{1.0, 0.0, 0.0}), 1.0);
  EXPECT_NEAR(availability(NodeParams{1.0, 0.05, 0.1}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(availability(NodeParams{1.0, 0.05, 0.05}), 0.5, 1e-12);
}

TEST(ParamsTest, ValidationRejectsInconsistentChurn) {
  EXPECT_THROW(validate(NodeParams{0.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate(NodeParams{1.0, 0.05, 0.0}), std::invalid_argument);
  EXPECT_NO_THROW(validate(NodeParams{1.0, 0.0, 0.0}));
}

TEST(ParamsTest, PaperPresetMatchesSection4) {
  const TwoNodeParams p = ipdps2006_params();
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_d, 1.08);
  EXPECT_DOUBLE_EQ(p.nodes[1].lambda_d, 1.86);
  EXPECT_DOUBLE_EQ(1.0 / p.nodes[0].lambda_f, 20.0);
  EXPECT_DOUBLE_EQ(1.0 / p.nodes[1].lambda_f, 20.0);
  EXPECT_DOUBLE_EQ(1.0 / p.nodes[0].lambda_r, 10.0);
  EXPECT_DOUBLE_EQ(1.0 / p.nodes[1].lambda_r, 20.0);
  EXPECT_DOUBLE_EQ(p.per_task_delay_mean, 0.02);
}

TEST(ParamsTest, WithoutFailuresZeroesChurn) {
  const TwoNodeParams p = without_failures(ipdps2006_params());
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_f, 0.0);
  EXPECT_DOUBLE_EQ(p.nodes[1].lambda_f, 0.0);
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_d, 1.08);  // service untouched
}

// ---------- linsolve ----------

TEST(LinsolveTest, SolvesHandSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  const auto x = solve_dense({2.0, 1.0, 1.0, 3.0}, {5.0, 10.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinsolveTest, PivotsOnZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] -> x = [3; 2]
  const auto x = solve_dense({0.0, 1.0, 1.0, 0.0}, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinsolveTest, SingularThrows) {
  EXPECT_THROW((void)solve_dense({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW((void)solve_dense({1.0, 2.0, 3.0}, {1.0, 2.0}), std::invalid_argument);
}

// ---------- oracles ----------

TEST(OracleTest, ErlangRaceMeanMinDegenerate) {
  EXPECT_DOUBLE_EQ(erlang_race_mean_min(0, 1.0, 5, 1.0), 0.0);
  // min(Exp(a), Exp(b)) ~ Exp(a+b).
  EXPECT_NEAR(erlang_race_mean_min(1, 2.0, 1, 3.0), 1.0 / 5.0, 1e-12);
}

TEST(OracleTest, ErlangRaceMaxOfIdenticalExponentials) {
  // E[max(Exp(1), Exp(1))] = 1.5 (order statistics).
  EXPECT_NEAR(erlang_race_mean_max(1, 1.0, 1, 1.0), 1.5, 1e-12);
}

// ---------- mean solver vs closed forms ----------

TEST(MeanSolverTest, EmptySystemIsZero) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  EXPECT_DOUBLE_EQ(solver.mean_no_transit(0, 0), 0.0);
}

TEST(MeanSolverTest, SingleNodeNoFailureMatchesMOverRate) {
  TwoNodeMeanSolver solver(reliable_params(1.08, 1.86));
  for (const std::size_t m : {1u, 5u, 50u}) {
    EXPECT_NEAR(solver.mean_no_transit(m, 0), single_node_mean(m, 1.08), 1e-9);
    EXPECT_NEAR(solver.mean_no_transit(0, m), single_node_mean(m, 1.86), 1e-9);
  }
}

TEST(MeanSolverTest, TwoReliableNodesMatchErlangRace) {
  TwoNodeMeanSolver solver(reliable_params(1.08, 1.86));
  for (const auto& [m0, m1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {3, 2}, {10, 10}, {25, 40}}) {
    EXPECT_NEAR(solver.mean_no_transit(m0, m1),
                erlang_race_mean_max(m0, 1.08, m1, 1.86), 1e-8)
        << "m0=" << m0 << " m1=" << m1;
  }
}

TEST(MeanSolverTest, SingleChurningNodeMatchesClosedForm) {
  TwoNodeParams p;
  p.nodes[0] = NodeParams{1.08, 0.05, 0.1};
  p.nodes[1] = NodeParams{1.86, 0.0, 0.0};
  p.per_task_delay_mean = 0.02;
  TwoNodeMeanSolver solver(p);
  for (const std::size_t m : {1u, 7u, 30u}) {
    EXPECT_NEAR(solver.mean_no_transit(m, 0), single_node_churn_mean(m, p.nodes[0]), 1e-9);
  }
}

TEST(MeanSolverTest, ChurnOnIdleNodeDoesNotMatter) {
  // Node 1 failing/recovering is irrelevant when only node 0 has work and no
  // transfer happens.
  TwoNodeParams p = reliable_params(1.08, 1.86);
  p.nodes[1] = NodeParams{1.86, 0.5, 0.5};
  TwoNodeMeanSolver churny(p);
  TwoNodeMeanSolver clean(reliable_params(1.08, 1.86));
  EXPECT_NEAR(churny.mean_no_transit(20, 0), clean.mean_no_transit(20, 0), 1e-9);
}

TEST(MeanSolverTest, SymmetricUnderNodeRelabelling) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeParams swapped = p;
  std::swap(swapped.nodes[0], swapped.nodes[1]);
  TwoNodeMeanSolver a(p);
  TwoNodeMeanSolver b(swapped);
  EXPECT_NEAR(a.mean_no_transit(100, 60), b.mean_no_transit(60, 100), 1e-9);
  EXPECT_NEAR(a.mean_with_transit(65, 60, 35, 1), b.mean_with_transit(60, 65, 35, 0), 1e-9);
}

TEST(MeanSolverTest, TransitZeroEqualsNoTransit) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  EXPECT_DOUBLE_EQ(solver.mean_with_transit(10, 5, 0, 1), solver.mean_no_transit(10, 5));
}

TEST(MeanSolverTest, MonotoneInWorkload) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  double prev = -1.0;
  for (std::size_t m = 0; m <= 40; m += 5) {
    const double cur = solver.mean_no_transit(m, 20);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(MeanSolverTest, FailuresAlwaysHurt) {
  TwoNodeMeanSolver churny(ipdps2006_params());
  TwoNodeMeanSolver clean(without_failures(ipdps2006_params()));
  for (double k = 0.0; k <= 1.0; k += 0.25) {
    EXPECT_GT(churny.lbp1_mean(100, 60, 0, k), clean.lbp1_mean(100, 60, 0, k));
  }
}

TEST(MeanSolverTest, StartingDownIsWorse) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  const double both_up = solver.mean_no_transit(20, 20, 0b11);
  EXPECT_GT(solver.mean_no_transit(20, 20, 0b01), both_up);  // node 1 down
  EXPECT_GT(solver.mean_no_transit(20, 20, 0b10), both_up);  // node 0 down
  EXPECT_GT(solver.mean_no_transit(20, 20, 0b00), solver.mean_no_transit(20, 20, 0b01));
}

TEST(MeanSolverTest, TransitDelayChargesTime) {
  // All work in flight: completion >= bundle delay + service time.
  TwoNodeMeanSolver solver(reliable_params(1.0, 1.0, 0.5));
  const double mean = solver.mean_with_transit(0, 0, 10, 1);
  // bundle mean delay = 5 s, service of 10 tasks = 10 s.
  EXPECT_NEAR(mean, 15.0, 1e-9);
}

// ---------- the published numbers (Fig. 3 / Table 1) ----------

TEST(MeanSolverTest, Fig3OptimalGainWithFailures) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  // Paper: minimum ~117 s at K = 0.35 on the 0.05 grid.
  double best_gain = -1.0, best_mean = 1e18;
  for (int k = 0; k <= 20; ++k) {
    const double gain = 0.05 * k;
    const double mean = solver.lbp1_mean(100, 60, 0, gain);
    if (mean < best_mean) {
      best_mean = mean;
      best_gain = gain;
    }
  }
  EXPECT_NEAR(best_gain, 0.35, 1e-9);
  EXPECT_NEAR(best_mean, 117.0, 2.0);
}

TEST(MeanSolverTest, Fig3OptimalGainNoFailures) {
  TwoNodeMeanSolver solver(without_failures(ipdps2006_params()));
  double best_gain = -1.0, best_mean = 1e18;
  for (int k = 0; k <= 20; ++k) {
    const double gain = 0.05 * k;
    const double mean = solver.lbp1_mean(100, 60, 0, gain);
    if (mean < best_mean) {
      best_mean = mean;
      best_gain = gain;
    }
  }
  EXPECT_NEAR(best_gain, 0.45, 1e-9);
}

TEST(MeanSolverTest, Table1TheoreticalPredictions) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  // Paper Table 1 (theory column), tolerance 1%: our lattice recursion vs the
  // authors' implementation of the same equations.
  EXPECT_NEAR(solver.lbp1_mean(200, 200, 0, 0.15), 274.95, 0.01 * 274.95);
  EXPECT_NEAR(solver.lbp1_mean(200, 100, 0, 0.35), 210.13, 0.01 * 210.13);
  EXPECT_NEAR(solver.lbp1_mean(200, 50, 0, 0.50), 177.09, 0.01 * 177.09);
  EXPECT_NEAR(solver.lbp1_mean(100, 200, 1, 0.15), 210.13, 0.01 * 210.13);
  EXPECT_NEAR(solver.lbp1_mean(50, 200, 1, 0.25), 177.09, 0.01 * 177.09);
}

TEST(MeanSolverTest, Table1NoFailureColumn) {
  // The "without node failure" column reports the no-failure optimum; compare
  // our grid minimum against the published values (1% tolerance).
  TwoNodeMeanSolver solver(without_failures(ipdps2006_params()));
  const auto grid_min = [&](std::size_t m0, std::size_t m1, int sender) {
    double best = 1e18;
    for (int k = 0; k <= 20; ++k) {
      best = std::min(best, solver.lbp1_mean(m0, m1, sender, 0.05 * k));
    }
    return best;
  };
  EXPECT_NEAR(grid_min(200, 200, 0), 141.94, 0.01 * 141.94);
  EXPECT_NEAR(grid_min(200, 100, 0), 106.93, 0.01 * 106.93);
  EXPECT_NEAR(grid_min(200, 50, 0), 89.32, 0.01 * 89.32);
  EXPECT_NEAR(grid_min(100, 200, 1), 106.93, 0.01 * 106.93);
  EXPECT_NEAR(grid_min(50, 200, 1), 89.32, 0.01 * 89.32);
}

TEST(MeanSolverTest, TransferCountRounding) {
  EXPECT_EQ(TwoNodeMeanSolver::lbp1_transfer_count(100, 0.35), 35u);
  EXPECT_EQ(TwoNodeMeanSolver::lbp1_transfer_count(60, 0.333), 20u);
  EXPECT_EQ(TwoNodeMeanSolver::lbp1_transfer_count(0, 0.5), 0u);
  EXPECT_EQ(TwoNodeMeanSolver::lbp1_transfer_count(100, 1.0), 100u);
  EXPECT_THROW((void)TwoNodeMeanSolver::lbp1_transfer_count(10, 1.5),
               std::invalid_argument);
}

TEST(MeanSolverTest, RejectsBadArguments) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  EXPECT_THROW((void)solver.mean_no_transit(1, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)solver.mean_with_transit(1, 1, 1, 2), std::invalid_argument);
  EXPECT_THROW((void)solver.lbp1_mean(10, 10, 2, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace lbsim::markov
