// End-to-end tests of the lbsim dispatcher driven in-process, including the
// golden CSV-output check: `lbsim reproduce table1/table2 --golden-only` must
// emit exactly the solver values pinned in tests/markov_golden_test.cpp.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/lbsim.hpp"
#include "test_support.hpp"

namespace lbsim::cli {
namespace {

// The pins of tests/markov_golden_test.cpp (see the warning there before
// editing): two-node solvers at (m0,m1) = (100,60), gain 0.35.
constexpr double kGoldenMeanNoTransit = 141.21564887669729;
constexpr double kGoldenMeanLbp1 = 116.74907081578611;
constexpr double kGoldenCdfMedian = 108.65;
constexpr double kGoldenCdfP90 = 169.85;

struct CliResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  args.insert(args.begin(), "lbsim");
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out, err;
  CliResult result;
  result.exit_code = run_lbsim(static_cast<int>(argv.size()), argv.data(), out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Extracts the numeric value of the golden-CSV row whose metric contains
/// `metric` (the value is the cell after the last comma).
double golden_value(const std::string& csv, const std::string& metric) {
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(metric) == std::string::npos) continue;
    const std::size_t comma = line.rfind(',');
    if (comma == std::string::npos) break;
    return std::stod(line.substr(comma + 1));
  }
  ADD_FAILURE() << "metric '" << metric << "' not found in:\n" << csv;
  return 0.0;
}

TEST(CliReproduce, Table1GoldenCsvMatchesThePinnedSolverValues) {
  const CliResult result = run({"reproduce", "table1", "--golden-only", "--format=csv"});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("# command=lbsim reproduce table1"), std::string::npos);
  EXPECT_NEAR_REL(golden_value(result.out, "mean_no_transit"), kGoldenMeanNoTransit, 1e-9);
  EXPECT_NEAR_REL(golden_value(result.out, "lbp1_mean"), kGoldenMeanLbp1, 1e-9);
}

TEST(CliReproduce, Table2GoldenCsvMatchesThePinnedCdfQuantiles) {
  const CliResult result = run({"reproduce", "table2", "--golden-only", "--format=csv"});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NEAR_REL(golden_value(result.out, "lbp1_cdf_median"), kGoldenCdfMedian, 1e-9);
  EXPECT_NEAR_REL(golden_value(result.out, "lbp1_cdf_p90"), kGoldenCdfP90, 1e-9);
}

TEST(CliReproduce, GoldenOnlyRejectedForOtherArtifacts) {
  const CliResult result = run({"reproduce", "fig1", "--golden-only"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("golden-only"), std::string::npos);
}

TEST(CliReproduce, RejectsUnknownFormats) {
  const CliResult result = run({"reproduce", "table1", "--golden-only", "--format=xml"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("--format"), std::string::npos);
}

TEST(CliRun, TestbedEngineRejectsSemanticsItCannotEmulate) {
  // cold-start defaults node 0 down; since the channel-layer PR the testbed
  // honours initially-down nodes as an initial condition, so it runs.
  const CliResult down = run({"run", "cold-start", "--engine=testbed", "--reps=2"});
  EXPECT_EQ(down.exit_code, 0) << down.err;

  const CliResult periodic =
      run({"run", "periodic-rebalance", "--engine=testbed", "--reps=2"});
  EXPECT_EQ(periodic.exit_code, 2);
  EXPECT_NE(periodic.err.find("periodic"), std::string::npos);

  // Plain scenarios still run on the testbed.
  const CliResult ok = run({"run", "paper-two-node", "--engine=testbed", "--reps=2"});
  EXPECT_EQ(ok.exit_code, 0) << ok.err;
}

TEST(CliReproduce, UnknownArtifactFailsWithTheKnownList) {
  const CliResult result = run({"reproduce", "table9"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("table1"), std::string::npos);
}

TEST(CliList, ShowsScenariosArtifactsAndSchemas) {
  const CliResult list = run({"list"});
  ASSERT_EQ(list.exit_code, 0);
  for (const char* expected : {"paper-two-node", "churn-storm", "table1", "fig5"}) {
    EXPECT_NE(list.out.find(expected), std::string::npos) << expected;
  }
  const CliResult schema = run({"list", "multi-node"});
  ASSERT_EQ(schema.exit_code, 0);
  EXPECT_NE(schema.out.find("lambda_d"), std::string::npos);
  EXPECT_NE(schema.out.find("double-list"), std::string::npos);
}

TEST(CliRun, RunsAScenarioWithOverrides) {
  const CliResult result = run({"run", "paper-two-node", "gain=0.4", "m0=40", "m1=20",
                                "--reps=5", "--threads=1", "--format=csv"});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("# scenario=paper-two-node"), std::string::npos);
  EXPECT_NE(result.out.find("LBP-1(K=0.4"), std::string::npos);
  EXPECT_NE(result.out.find("# replications=5"), std::string::npos);
}

TEST(CliRun, ReportsConfigErrorsWithExitCode2) {
  const CliResult unknown = run({"run", "paper-two-node", "gian=0.4"});
  EXPECT_EQ(unknown.exit_code, 2);
  EXPECT_NE(unknown.err.find("did you mean 'gain'"), std::string::npos);

  const CliResult missing = run({"run"});
  EXPECT_EQ(missing.exit_code, 2);

  const CliResult badcmd = run({"frobnicate"});
  EXPECT_EQ(badcmd.exit_code, 2);
  EXPECT_NE(badcmd.err.find("unknown command"), std::string::npos);
}

TEST(CliSweepCommand, DryRunPrintsTheGrid) {
  const CliResult result =
      run({"sweep", "paper-two-node", "gain=0.1:0.3:0.1", "m0=50,100", "--dry-run"});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("dry run: 6 grid points"), std::string::npos);
  EXPECT_NE(result.out.find("LBP-1"), std::string::npos);
}

TEST(CliHelp, UsageOnHelpFlagAndNoArgs) {
  EXPECT_EQ(run({"--help"}).exit_code, 0);
  const CliResult bare = run({});
  EXPECT_EQ(bare.exit_code, 2);
  EXPECT_NE(bare.out.find("Usage:"), std::string::npos);
}

}  // namespace
}  // namespace lbsim::cli
